#!/usr/bin/env python
"""Quickstart: declare a scenario, run it, and watch it elect the plurality.

This walks the three layers of the public API:

1. declare a :class:`repro.ScenarioSpec` — dynamics, initial workload,
   run knobs *and what to observe* (the ``record`` field names metrics
   from ``repro metrics``) as data, using registry names
   (``repro scenarios`` lists them: ``"3-majority"``, ``"h-plurality"``,
   ``"paper-biased"``, ...);
2. run a single trajectory through :func:`repro.simulate`, read the
   recorded :class:`repro.TraceSet` and inspect the three proof phases;
3. run a replica ensemble through :func:`repro.simulate_ensemble` for
   statistics, compare the measured time with the theorem's λ log n
   prediction, and round-trip the scenario through JSON — the same file
   ``repro simulate scenario.json`` accepts.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import ScenarioSpec, simulate, simulate_ensemble
from repro.analysis import lambda_for, phase_segments, theorem1_rounds
from repro.experiments import ascii_plot


def main() -> None:
    n, k = 200_000, 16
    spec = ScenarioSpec(
        dynamics="3-majority",
        initial="paper-biased",  # Corollary 1's sqrt(2 λ n log n) bias shape
        n=n,
        k=k,
        replicas=64,
        seed=0,
        record=["counts", "bias"],  # observation is part of the scenario
    )
    config = spec.resolve().initial
    print(f"n={n}, k={k}, initial bias s={config.bias} "
          f"(plurality holds {config.plurality_count} agents)")

    # --- one trajectory -------------------------------------------------
    result = simulate(spec)
    assert result.plurality_won
    print(f"\nconsensus on color {result.winner} after {result.rounds} rounds "
          f"(stopped by: {result.stopped_by})")

    trajectory = result.trace.replica(0, "counts")
    print("\nproof phases traversed (Lemmas 3 → 4 → 5):")
    for seg in phase_segments(trajectory):
        print(f"  rounds {seg.start_round:>3}..{seg.end_round:<3}  {seg.phase}")

    bias_series = result.trace.replica(0, "bias")
    print("\nbias trajectory (log scale):")
    rounds = list(range(bias_series.size))
    print(
        ascii_plot(
            {"bias": (rounds, bias_series.tolist())},
            width=60,
            height=12,
            logy=True,
            xlabel="round",
            ylabel="s(c)",
        )
    )

    # --- an ensemble -----------------------------------------------------
    ens = simulate_ensemble(spec.with_overrides(seed=1))
    summary = ens.rounds_summary()
    lam = lambda_for(n, k)
    predicted = theorem1_rounds(n, lam)
    print(f"\n{ens.replicas} replicas: win rate {ens.plurality_win_rate:.2f}, "
          f"median {summary['median']:.0f} rounds, p90 {summary['p90']:.0f}")
    print(f"Theorem 1 scale λ·log(n) = {predicted:.0f} "
          f"(measured/predicted = {summary['median'] / predicted:.2f})")
    print(f"log2(n) for perspective: {math.log2(n):.1f}")

    # --- the scenario is data --------------------------------------------
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    print("\nthis exact scenario as JSON (runnable via `repro simulate <file>`):")
    print(spec.to_json())


if __name__ == "__main__":
    main()
