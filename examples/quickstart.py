#!/usr/bin/env python
"""Quickstart: run the 3-majority dynamics and watch it elect the plurality.

This walks the three layers of the public API:

1. build an initial configuration with a controlled bias;
2. run a single trajectory (with trajectory recording) and inspect the
   three proof phases;
3. run a replica ensemble for statistics, and compare the measured time
   with the theorem's λ log n prediction.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import Configuration, ThreeMajority, run_ensemble, run_process
from repro.analysis import lambda_for, phase_segments, theorem1_rounds
from repro.experiments import ascii_plot, theorem1_bias


def main() -> None:
    n, k = 200_000, 16
    bias = theorem1_bias(n, k)  # Corollary 1's sqrt(2 λ n log n) shape
    config = Configuration.biased(n, k, bias)
    print(f"n={n}, k={k}, initial bias s={config.bias} "
          f"(plurality holds {config.plurality_count} agents)")

    # --- one trajectory -------------------------------------------------
    dynamics = ThreeMajority()
    result = run_process(dynamics, config, rng=0, record_trajectory=True)
    assert result.plurality_won
    print(f"\nconsensus on color {result.winner} after {result.rounds} rounds")

    print("\nproof phases traversed (Lemmas 3 → 4 → 5):")
    for seg in phase_segments(result.trajectory):
        print(f"  rounds {seg.start_round:>3}..{seg.end_round:<3}  {seg.phase}")

    print("\nbias trajectory (log scale):")
    rounds = list(range(result.bias_history.size))
    print(
        ascii_plot(
            {"bias": (rounds, result.bias_history.tolist())},
            width=60,
            height=12,
            logy=True,
            xlabel="round",
            ylabel="s(c)",
        )
    )

    # --- an ensemble -----------------------------------------------------
    ens = run_ensemble(dynamics, config, replicas=64, rng=1)
    summary = ens.rounds_summary()
    lam = lambda_for(n, k)
    predicted = theorem1_rounds(n, lam)
    print(f"\n64 replicas: win rate {ens.plurality_win_rate:.2f}, "
          f"median {summary['median']:.0f} rounds, p90 {summary['p90']:.0f}")
    print(f"Theorem 1 scale λ·log(n) = {predicted:.0f} "
          f"(measured/predicted = {summary['median'] / predicted:.2f})")
    print(f"log2(n) for perspective: {math.log2(n):.1f}")


if __name__ == "__main__":
    main()
