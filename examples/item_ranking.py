#!/usr/bin/env python
"""Distributed item ranking: agreeing on the most popular item by gossip.

The paper's second motivating application ([21]): every node initially
"votes" for an item (a meme, a song, a candidate) with a realistic skewed
popularity distribution, and the network must converge on the *most
popular* item using only constant-size random polls.

The demo compares the protocols a practitioner might reach for:

* 1-sample polling (voter)        — converges, but to a random-ish item;
* 2 samples + uniform tie-break   — provably identical to polling;
* 3-majority                      — the paper's rule: elects the plurality;
* median on item ids              — converges to the median id (nonsense
                                    for ranking, the Theorem 3 story);
* undecided-state (extra state)   — fast here (low md(c)), the trade-off
                                    baseline.

Run:  python examples/item_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioSpec, simulate_ensemble
from repro.experiments import geometric_tail


def main() -> None:
    n, items = 30_000, 12
    popularity = geometric_tail(n, items, ratio=0.82)
    top = popularity.plurality_color
    print(f"{n} nodes, {items} items; initial vote counts:")
    print("  " + ", ".join(f"item{j}:{c}" for j, c in enumerate(popularity)))
    print(f"ground-truth winner: item{top} "
          f"(lead {popularity.bias} votes over runner-up)\n")

    # Protocols by registry name (see `repro scenarios`): each run is one
    # declarative ScenarioSpec over the same geometric-tail workload.
    protocols = [
        ("1-sample polling", "voter"),
        ("2-sample uniform", "2-sample-uniform"),
        ("3-majority", "3-majority"),
        ("median-of-ids", "median"),
        ("undecided-state", "undecided-state"),
    ]
    replicas = 24
    header = (
        f"{'protocol':>16} | {'elects top item':>15} | {'median rounds':>13} | {'verdict':<28}"
    )
    print(header)
    print("-" * len(header))
    for name, dynamics in protocols:
        spec = ScenarioSpec(
            dynamics=dynamics,
            initial="geometric-tail",
            initial_params={"ratio": 0.82},
            n=n,
            k=items,
            replicas=replicas,
            max_rounds=500_000,
            seed=hash(name) % 2**32,
        )
        ens = simulate_ensemble(spec)
        rate = ens.plurality_win_rate
        med = ens.rounds_summary()["median"]
        if rate > 0.9:
            verdict = "correct ranking"
        elif rate < 0.1:
            verdict = "systematically wrong"
        else:
            verdict = "coin-flip — unusable"
        print(f"{name:>16} | {rate:>15.2f} | {med:>13.0f} | {verdict:<28}")

    print(
        "\nReading: with no extra state, only 3-majority reliably elects the "
        "plurality item\n(Theorem 3); polling is a lottery weighted by vote "
        "share, and the median rule\nelects whichever item id sits in the "
        "middle of the id range."
    )


if __name__ == "__main__":
    main()
