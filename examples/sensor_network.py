#!/usr/bin/env python
"""Plurality consensus on physical topologies (beyond the paper's clique).

A sensor-network scenario: devices can only poll radio neighbors, not the
whole network.  The paper analyses the clique; this example asks how the
same 3-sample rule behaves on realistic topologies — the natural
"what if" a systems reader asks next.

Every topology is one declarative :class:`repro.ScenarioSpec` away: the
clique baseline records support size and distance-to-consensus per round
through ``record=``, and the physical topologies (random-regular, torus,
cycle) just set the spec's ``topology`` field — the same path as
``repro simulate --topology torus``.  All runs share the replica-batched
graph engine; only the barbell deadlock at the end drops to an explicit
per-agent color vector, which is what :class:`GraphPluralityProcess`
is still for.

Run:  python examples/sensor_network.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioSpec, simulate_ensemble
from repro.analysis import trace_round_means
from repro.graphs import GraphPluralityProcess, barbell

N, K, BIAS = 1_024, 4, 200
REPLICAS, MAX_ROUNDS = 8, 40_000


def sensor_spec(topology: str | None = None, **topology_params) -> ScenarioSpec:
    """One spec per topology; everything else held equal."""
    return ScenarioSpec(
        dynamics="3-majority",
        initial="biased",
        initial_params={"bias": BIAS},
        n=N,
        k=K,
        topology=topology,
        topology_params=topology_params,
        replicas=REPLICAS,
        max_rounds=MAX_ROUNDS,
        seed=1,
        record=["support-size", "tv-monochromatic"],  # observe, declaratively
    )


def measure(spec: ScenarioSpec) -> tuple[float, float]:
    """Win rate + median rounds (budget-censored) for one spec."""
    ens = simulate_ensemble(spec)
    med = float(np.median(np.where(ens.converged, ens.rounds, MAX_ROUNDS)))
    return ens.plurality_win_rate, med


def main() -> None:
    print(f"{N} sensors, {K} readings, initial bias {BIAS}\n")

    # --- the clique, declaratively, with a recorded trace ----------------
    clique_spec = sensor_spec()
    ens = simulate_ensemble(clique_spec)
    rate = ens.plurality_win_rate
    med = float(np.median(np.where(ens.converged, ens.rounds, MAX_ROUNDS)))
    trace = ens.trace
    print(f"clique baseline (ScenarioSpec + record=): win rate {rate:.2f}, "
          f"median rounds {med:.0f}")
    support = trace_round_means(trace, "support-size")
    tv = trace_round_means(trace, "tv-monochromatic")
    print("  mean colors alive / TV distance to consensus, per round:")
    for t in range(0, trace.n_rounds, max(1, trace.n_rounds // 6)):
        print(f"    round {int(support['rounds'][t]):>3}: "
              f"{support['mean'][t]:.2f} colors, TV {tv['mean'][t]:.3f} "
              f"({int(support['replicas'][t])} replicas still running)")

    # --- physical topologies: same spec, one extra field ------------------
    variants = [
        ("random 8-regular", sensor_spec("random-regular", d=8, seed=0)),
        ("torus 32x32", sensor_spec("torus", rows=32, cols=32)),
        ("cycle", sensor_spec("cycle")),
    ]
    header = f"{'topology':>18} | {'plurality wins':>14} | {'median rounds':>13}"
    print()
    print(header)
    print("-" * len(header))
    print(f"{'clique (paper)':>18} | {rate:>14.2f} | {med:>13.0f}")
    for name, spec in variants:
        t_rate, t_med = measure(spec)
        print(f"{name:>18} | {t_rate:>14.2f} | {t_med:>13.0f}")

    # --- community deadlock on the barbell --------------------------------
    # Needs a hand-placed color vector (each half unanimous), which specs
    # deliberately cannot express — the agent-level escape hatch.
    m = N // 2
    topo = barbell(m)
    colors = np.zeros(2 * m, dtype=np.int64)
    colors[m:] = 1  # each community starts internally unanimous
    proc = GraphPluralityProcess(topo, h=3)
    res = proc.run(colors, k=2, rng=np.random.default_rng(7), max_rounds=2_000)
    print(
        f"\nbarbell ({m}+{m} communities, opposite unanimous opinions): "
        f"{'consensus in ' + str(res.rounds) + ' rounds' if res.converged else 'no consensus within 2000 rounds'}"
    )
    print(
        "\nReading: sparse well-mixing topologies behave like the clique; "
        "poor expanders slow\nthe dynamics dramatically, and community "
        "structure can freeze it — the clique\nanalysis is the best case."
    )


if __name__ == "__main__":
    main()
