#!/usr/bin/env python
"""Plurality consensus on physical topologies (beyond the paper's clique).

A sensor-network scenario: devices can only poll radio neighbors, not the
whole network.  The paper analyses the clique; this example uses the
agent-level graph substrate to ask how the same 3-sample rule behaves on
realistic topologies — the natural "what if" a systems reader asks next.

We compare clique, random-regular (expander-like), torus (planar
deployment) and cycle (worst case) at equal n and equal initial bias, and
also demonstrate a known failure mode: on a barbell graph (two dense
communities joined by a bridge) local majorities deadlock for a long time.

Run:  python examples/sensor_network.py
"""

from __future__ import annotations

import numpy as np

from repro import Configuration
from repro.graphs import (
    GraphPluralityProcess,
    barbell,
    clique,
    cycle,
    random_coloring,
    random_regular,
    torus,
)


def measure(topo, config: Configuration, replicas: int, max_rounds: int, seed: int):
    wins, rounds = 0, []
    proc = GraphPluralityProcess(topo, h=3)
    for rep in range(replicas):
        rng = np.random.default_rng((seed, rep))
        colors = random_coloring(topo, config, rng)
        res = proc.run(colors, k=config.k, rng=rng, max_rounds=max_rounds)
        wins += int(res.plurality_won)
        rounds.append(res.rounds if res.converged else max_rounds)
    return wins / replicas, float(np.median(rounds))


def main() -> None:
    n = 1_024
    config = Configuration.biased(n, 4, 200)
    print(f"{n} sensors, 4 readings, initial bias {config.bias}\n")

    topologies = [
        ("clique (paper)", clique(n)),
        ("random 8-regular", random_regular(n, 8, seed=0)),
        ("torus 32x32", torus(32, 32)),
        ("cycle", cycle(n)),
    ]
    header = f"{'topology':>18} | {'plurality wins':>14} | {'median rounds':>13}"
    print(header)
    print("-" * len(header))
    for name, topo in topologies:
        rate, med = measure(topo, config, replicas=8, max_rounds=40_000, seed=1)
        print(f"{name:>18} | {rate:>14.2f} | {med:>13.0f}")

    # Community deadlock on the barbell.
    m = n // 2
    topo = barbell(m)
    colors = np.zeros(2 * m, dtype=np.int64)
    colors[m:] = 1  # each community starts internally unanimous
    proc = GraphPluralityProcess(topo, h=3)
    res = proc.run(colors, k=2, rng=np.random.default_rng(7), max_rounds=2_000)
    print(
        f"\nbarbell ({m}+{m} communities, opposite unanimous opinions): "
        f"{'consensus in ' + str(res.rounds) + ' rounds' if res.converged else 'no consensus within 2000 rounds'}"
    )
    print(
        "\nReading: sparse well-mixing topologies behave like the clique; "
        "poor expanders slow\nthe dynamics dramatically, and community "
        "structure can freeze it — the clique\nanalysis is the best case."
    )


if __name__ == "__main__":
    main()
