#!/usr/bin/env python
"""Plurality consensus on physical topologies (beyond the paper's clique).

A sensor-network scenario: devices can only poll radio neighbors, not the
whole network.  The paper analyses the clique; this example asks how the
same 3-sample rule behaves on realistic topologies — the natural
"what if" a systems reader asks next.

The clique baseline is a declarative :class:`repro.ScenarioSpec` with a
``record=`` observation spec: the returned :class:`repro.TraceSet` traces
support size and distance-to-consensus per round, replacing any bespoke
measurement loop.  The graph topologies (random-regular, torus, cycle,
barbell) then run on the agent-level graph substrate at equal n and equal
initial bias.

Run:  python examples/sensor_network.py
"""

from __future__ import annotations

import numpy as np

from repro import Configuration, ScenarioSpec, simulate_ensemble
from repro.analysis import trace_round_means
from repro.graphs import (
    GraphPluralityProcess,
    barbell,
    cycle,
    random_coloring,
    random_regular,
    torus,
)

N, K, BIAS = 1_024, 4, 200
REPLICAS, MAX_ROUNDS = 8, 40_000


def clique_baseline() -> tuple[float, float, object]:
    """The paper's clique, as data: spec + recorded observation."""
    spec = ScenarioSpec(
        dynamics="3-majority",
        initial="biased",
        initial_params={"bias": BIAS},
        n=N,
        k=K,
        replicas=REPLICAS,
        max_rounds=MAX_ROUNDS,
        seed=1,
        record=["support-size", "tv-monochromatic"],  # observe, declaratively
    )
    ens = simulate_ensemble(spec)
    med = float(np.median(np.where(ens.converged, ens.rounds, MAX_ROUNDS)))
    return ens.plurality_win_rate, med, ens.trace


def measure(topo, config: Configuration, replicas: int, max_rounds: int, seed: int):
    """Win rate + median rounds of the 3-sample rule on one graph topology."""
    wins, rounds = 0, []
    proc = GraphPluralityProcess(topo, h=3)
    for rep in range(replicas):
        rng = np.random.default_rng((seed, rep))
        colors = random_coloring(topo, config, rng)
        res = proc.run(colors, k=config.k, rng=rng, max_rounds=max_rounds)
        wins += int(res.plurality_won)
        rounds.append(res.rounds if res.converged else max_rounds)
    return wins / replicas, float(np.median(rounds))


def main() -> None:
    config = Configuration.biased(N, K, BIAS)
    print(f"{N} sensors, {K} readings, initial bias {config.bias}\n")

    # --- the clique, declaratively, with a recorded trace ----------------
    rate, med, trace = clique_baseline()
    print(f"clique baseline (ScenarioSpec + record=): win rate {rate:.2f}, "
          f"median rounds {med:.0f}")
    support = trace_round_means(trace, "support-size")
    tv = trace_round_means(trace, "tv-monochromatic")
    print("  mean colors alive / TV distance to consensus, per round:")
    for t in range(0, trace.n_rounds, max(1, trace.n_rounds // 6)):
        print(f"    round {int(support['rounds'][t]):>3}: "
              f"{support['mean'][t]:.2f} colors, TV {tv['mean'][t]:.3f} "
              f"({int(support['replicas'][t])} replicas still running)")

    # --- physical topologies (agent-level graph substrate) ---------------
    topologies = [
        ("random 8-regular", random_regular(N, 8, seed=0)),
        ("torus 32x32", torus(32, 32)),
        ("cycle", cycle(N)),
    ]
    header = f"{'topology':>18} | {'plurality wins':>14} | {'median rounds':>13}"
    print()
    print(header)
    print("-" * len(header))
    print(f"{'clique (paper)':>18} | {rate:>14.2f} | {med:>13.0f}")
    for name, topo in topologies:
        t_rate, t_med = measure(topo, config, replicas=REPLICAS,
                                max_rounds=MAX_ROUNDS, seed=1)
        print(f"{name:>18} | {t_rate:>14.2f} | {t_med:>13.0f}")

    # --- community deadlock on the barbell --------------------------------
    m = N // 2
    topo = barbell(m)
    colors = np.zeros(2 * m, dtype=np.int64)
    colors[m:] = 1  # each community starts internally unanimous
    proc = GraphPluralityProcess(topo, h=3)
    res = proc.run(colors, k=2, rng=np.random.default_rng(7), max_rounds=2_000)
    print(
        f"\nbarbell ({m}+{m} communities, opposite unanimous opinions): "
        f"{'consensus in ' + str(res.rounds) + ' rounds' if res.converged else 'no consensus within 2000 rounds'}"
    )
    print(
        "\nReading: sparse well-mixing topologies behave like the clique; "
        "poor expanders slow\nthe dynamics dramatically, and community "
        "structure can freeze it — the clique\nanalysis is the best case."
    )


if __name__ == "__main__":
    main()
