#!/usr/bin/env python
"""Replicated-database reconciliation under Byzantine faults.

The paper's first motivating application (Section 1 / related work [7, 20]):
a cluster of replicas holds versions of a datum; a plurality of replicas
holds the *correct* version, some hold stale versions, and a bounded number
of Byzantine replicas actively lie each round.  The cluster reconciles by
gossip: each replica polls three random replicas per round and adopts the
majority version — exactly the 3-majority dynamics with an F-bounded
dynamic adversary (Corollary 4).

The demo sweeps the number of Byzantine replicas and reports whether the
cluster stabilises on the correct version and how many replicas remain
corrupted in the almost-stable phase (the M of M-plurality consensus).

Run:  python examples/distributed_database.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioSpec, simulate
from repro.analysis import lambda_for
from repro.experiments import theorem1_bias


def reconcile(n_replicas: int, versions: int, byzantine: int, seed: int) -> dict:
    """One reconciliation campaign; returns stabilisation metrics."""
    budget = int(6 * lambda_for(n_replicas, versions) * np.log(n_replicas))
    # The whole campaign is one declarative scenario: dynamics, workload
    # and adversary by registry name, Byzantine budget as a parameter.
    spec = ScenarioSpec(
        dynamics="3-majority",
        initial="paper-biased",
        n=n_replicas,
        k=versions,
        adversary="targeted" if byzantine else None,
        adversary_params={"budget": byzantine} if byzantine else {},
        max_rounds=budget,
        seed=seed,
    )
    result = simulate(spec)
    final = result.final_counts
    correct = result.plurality_color
    return {
        "correct_version_won": int(np.argmax(final)) == correct,
        "stale_replicas": int(final.sum() - final[correct]),
        "rounds_budget": budget,
        "fully_consistent": result.converged,
    }


def main() -> None:
    n, versions = 50_000, 8
    s = theorem1_bias(n, versions)
    lam = lambda_for(n, versions)
    print(f"cluster of {n} replicas, {versions} candidate versions, "
          f"initial correct-version lead {s}")
    print(f"Corollary 4 tolerance: F = o(s/λ) = o({s / lam:.0f}) byzantine replicas\n")

    header = f"{'byzantine':>10} | {'correct wins':>12} | {'stale replicas':>14} | {'fully consistent':>16}"
    print(header)
    print("-" * len(header))
    for byzantine in (0, 10, 50, int(0.5 * s / lam), int(s / lam), int(3 * s / lam)):
        agg_win, agg_stale, agg_full = [], [], []
        for seed in range(5):
            out = reconcile(n, versions, byzantine, seed)
            agg_win.append(out["correct_version_won"])
            agg_stale.append(out["stale_replicas"])
            agg_full.append(out["fully_consistent"])
        print(
            f"{byzantine:>10} | {np.mean(agg_win):>12.2f} | "
            f"{np.median(agg_stale):>14.0f} | {np.mean(agg_full):>16.2f}"
        )

    print(
        "\nReading: below the o(s/λ) threshold the cluster always elects the "
        "correct version\nand holds all but O(F) replicas on it (the paper's "
        "M-plurality consensus); past the\nthreshold the adversary can erase "
        "the lead and stall reconciliation."
    )


if __name__ == "__main__":
    main()
