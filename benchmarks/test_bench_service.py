"""Network-service benchmarks: warm-path HTTP throughput over the wire.

``repro.service`` sells the same bargain as ``repro.serve`` — repeated
traffic stops paying for simulation — but adds HTTP framing, JSON
encoding and the asyncio hop on top.  These benches measure what a client
actually observes: requests/sec and latency for warm ``POST /v1/simulate``
requests against a live server (tagged ``path=warm`` in
``BENCH_results.json``, with the server-side p95 attached via
``extra_info``), and a guard asserting the warm path stays at least 10×
faster than the cold one, so the serving stack can never quietly grow an
overhead comparable to the simulations it memoises.
"""

from __future__ import annotations

import time

import pytest

from repro import faults
from repro.serve.cache import ResultCache
from repro.service import BackgroundServer, ScenarioService, ServiceClient

N, K, REPLICAS, SEEDS, DUPES = 6_000, 4, 4, 4, 3

#: SEEDS unique scenarios, each requested DUPES times — the shape of the
#: ``test_bench_serve`` batch workload, but arriving over a socket.  The
#: graph substrate (random-regular, ~150 ms per unique spec) keeps cold
#: simulation orders of magnitude above per-request HTTP overhead, which
#: is what the warm/cold ratio is measuring; the clique counts engines
#: are so fast (single-digit ms) that framing would dominate both sides.
SPECS = [
    dict(
        dynamics="3-majority",
        initial="paper-biased",
        n=N,
        k=K,
        replicas=REPLICAS,
        seed=seed,
        topology="random-regular",
        topology_params={"d": 8},
        max_rounds=300,
        stopping={"rule": "plurality-fraction", "fraction": 0.9},
    )
    for seed in range(SEEDS)
] * DUPES


@pytest.fixture(scope="module")
def server():
    service = ScenarioService(cache=ResultCache(None), workers=0)
    with BackgroundServer(service) as srv:
        yield srv


def _replay(client: ServiceClient, expect_source: str | None = None) -> float:
    """One pass over SPECS on a keep-alive connection; returns wall seconds."""
    start = time.perf_counter()
    for spec in SPECS:
        payload = client.simulate(spec)
        if expect_source is not None:
            assert payload["source"] == expect_source
    return time.perf_counter() - start


class TestServiceThroughput:
    def test_warm_simulate_requests(self, benchmark, server):
        with ServiceClient("127.0.0.1", server.port) as client:
            for spec in SPECS:
                client.simulate(spec)  # populate the cache

            def run():
                return _replay(client, expect_source="cache")

            benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
            stats = client.stats()
        warm = stats["requests"]["POST /v1/simulate"]
        benchmark.extra_info.update(
            path="warm",
            n=N,
            k=K,
            replicas=REPLICAS,
            requests=len(SPECS),
            unique=SEEDS,
            requests_per_second=round(
                len(SPECS) / float(benchmark.stats.stats.min), 1
            ),
            server_p95_ms=warm["p95_ms"],
        )

    def test_warm_at_least_10x_faster_than_cold(self, server):
        """Acceptance guard: warm HTTP replay >= 10 × faster than cold.

        Cold pays SEEDS full ensemble simulations; warm pays HTTP framing +
        JSON + a memory-LRU probe per request.  The workload keeps cold in
        the hundreds of milliseconds, orders of magnitude above the
        serving overhead, so 10× is a conservative, non-flaky bar.
        """
        service = server.service
        with ServiceClient("127.0.0.1", server.port) as client:
            cold_samples = []
            for _ in range(3):
                service.cache.clear()
                cold_samples.append(_replay(client))
            cold = min(cold_samples)
            warm = min(_replay(client, expect_source="cache") for _ in range(5))
        speedup = cold / warm
        assert speedup >= 10.0, (
            f"warm HTTP replay only {speedup:.1f}x faster than cold "
            f"(cold {cold * 1e3:.1f} ms, warm {warm * 1e3:.2f} ms)"
        )


#: Every fault point armed with a trigger that can never fire within the
#: bench's traffic volume — the plan is live, the bookkeeping runs, but no
#: fault ever engages.  This isolates the pure cost of carrying the
#: instrumentation on the hot path.
UNTRIGGERED_PLAN = {
    "seed": 0,
    "rules": [{"point": point, "nth": 10**9} for point in faults.POINTS],
}


class TestServiceChaosThroughput:
    """The fault-injection layer must be (nearly) free when dormant.

    The resilience PR threads ``faults.fire(...)`` checks through the
    connection loop, the cache read path and the executor.  These benches
    pin down what that costs: a warm-replay benchmark with every point
    armed-but-untriggered (``path=warm-armed`` in ``BENCH_results.json``,
    directly comparable to ``path=warm`` above), plus a guard asserting
    the armed checks add <2% to a warm request.
    """

    @pytest.fixture(autouse=True)
    def _disarmed(self):
        faults.disarm()
        yield
        faults.disarm()

    def test_warm_simulate_requests_armed(self, benchmark, server):
        faults.arm(UNTRIGGERED_PLAN)  # same process as the BackgroundServer
        with ServiceClient("127.0.0.1", server.port) as client:
            for spec in SPECS:
                client.simulate(spec)  # populate the cache

            def run():
                return _replay(client, expect_source="cache")

            benchmark.pedantic(run, rounds=5, iterations=1, warmup_rounds=1)
        benchmark.extra_info.update(
            path="warm-armed",
            n=N,
            k=K,
            replicas=REPLICAS,
            requests=len(SPECS),
            unique=SEEDS,
            fault_points=len(faults.POINTS),
            requests_per_second=round(
                len(SPECS) / float(benchmark.stats.stats.min), 1
            ),
        )

    def test_armed_untriggered_overhead_under_two_percent(self, server):
        """Acceptance guard: armed-but-untriggered checks cost <2% warm.

        Measured microscopically rather than as paired HTTP timings —
        socket jitter on a loopback request is far larger than the cost
        being guarded, so a differential wall-clock test would be noise.
        Instead: (cost of one armed ``fire()``) x (a generous bound on
        fault points crossed per warm request) against the measured warm
        per-request latency.
        """
        faults.arm(UNTRIGGERED_PLAN)
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            faults.fire("service.connection-drop")
        per_fire = (time.perf_counter() - start) / calls
        faults.disarm()

        with ServiceClient("127.0.0.1", server.port) as client:
            for spec in SPECS:
                client.simulate(spec)
            warm = min(_replay(client, expect_source="cache") for _ in range(3))
        per_request = warm / len(SPECS)

        # A warm hit crosses 2 fault points (connection-drop, slow-response);
        # 8 bounds even a cold request with cache + executor points in play.
        overhead = 8 * per_fire / per_request
        assert overhead < 0.02, (
            f"armed fault checks cost {overhead * 100:.2f}% of a warm request "
            f"({per_fire * 1e9:.0f} ns/fire vs {per_request * 1e6:.0f} us/request)"
        )
