"""Regeneration benches: one per experiment of DESIGN.md §4 (E1–E10).

Each bench regenerates the experiment's result table (the reproduction of
one paper claim) at smoke scale and asserts its headline criterion, so
``pytest benchmarks/ --benchmark-only`` both times and *validates* the full
reproduction pipeline.  EXPERIMENTS.md records the paper-scale numbers.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import get_experiment

SEED = 2014  # SPAA vintage


def _regen(benchmark, experiment_id: str):
    spec = get_experiment(experiment_id)
    table = benchmark.pedantic(
        lambda: spec(scale="smoke", seed=SEED), rounds=1, iterations=1
    )
    assert len(table) > 0
    return table


def test_bench_e01_drift(benchmark, show):
    table = _regen(benchmark, "E1")
    show(table)
    assert all(row["drift_ok"] for row in table.rows)


def test_bench_e02_upper_bound(benchmark, show):
    table = _regen(benchmark, "E2")
    show(table)
    assert all(row["win_rate"] == 1.0 for row in table.rows)
    assert all(row["ratio"] < 2.0 for row in table.rows)


def test_bench_e03_polylog(benchmark, show):
    table = _regen(benchmark, "E3")
    show(table)
    assert all(row["rounds_per_logn"] < 5.0 for row in table.rows)


def test_bench_e04_lower_bound(benchmark, show):
    table = _regen(benchmark, "E4")
    show(table)
    doubling = table.column("median_doubling_rounds")
    assert doubling == sorted(doubling)


def test_bench_e05_uniqueness(benchmark, show):
    table = _regen(benchmark, "E5")
    show(table)
    for row in table.rows:
        if row["in_M3"]:
            assert row["win_rate"] >= 0.9
        else:
            assert row["win_rate"] <= 0.75


def test_bench_e06_hplurality(benchmark, show):
    table = _regen(benchmark, "E6")
    show(table)
    rounds = table.column("median_rounds")
    assert rounds == sorted(rounds, reverse=True)
    assert all(row["rounds_x_h2_over_k"] > 0.5 for row in table.rows)


def test_bench_e07_bias_tightness(benchmark, show):
    table = _regen(benchmark, "E7")
    show(table)
    floor = 1 / (16 * math.e)
    for row in table.rows:
        if row["alpha"] <= 1.0:
            assert row["ci_low"] >= floor


def test_bench_e08_adversary(benchmark, show):
    table = _regen(benchmark, "E8")
    show(table)
    small_f = [r for r in table.rows if r["F_over_s_lambda"] <= 0.2]
    assert all(r["plurality_survived_rate"] == 1.0 for r in small_f)


def test_bench_e09_landscape(benchmark, show):
    table = _regen(benchmark, "E9")
    show(table)
    danger = {r["dynamics"]: r["value"] for r in table.rows if r["panel"] == "d-danger"}
    assert danger["undecided"] > danger["3-majority"]


def test_bench_e10_phases(benchmark, show):
    table = _regen(benchmark, "E10")
    show(table)
    by_phase = {row["phase"]: row for row in table.rows}
    assert by_phase["plurality-to-majority"]["mean_growth_factor"] > 1.0
    assert by_phase["majority-to-almost-all"]["mean_decay_ratio"] < 8 / 9


def test_bench_e11_crossmodel(benchmark, show):
    table = _regen(benchmark, "E11")
    show(table)
    und = {r["model"]: r for r in table.rows if r["panel"] == "b-undecided"}
    assert und["sequential"]["plurality_win_rate"] >= 0.9
    assert und["parallel"]["plurality_win_rate"] >= 0.9


def test_bench_e12_meanfield(benchmark, show):
    table = _regen(benchmark, "E12")
    show(table)
    rows = sorted(table.rows, key=lambda r: r["bias_over_sqrt_n"])
    assert rows[0]["stochastic_win_rate"] < 0.5
    assert rows[-1]["stochastic_win_rate"] >= 0.95
