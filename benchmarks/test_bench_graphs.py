"""Benchmarks for the graph substrate: batched engine + CSR packing.

The acceptance pair for the replica-batched graph engine: stepping an
(R, n) color matrix through one vectorized CSR gather per round must
beat the retired per-replica Python loop (re-implemented inline below,
since ``GraphPluralityProcess.run`` now delegates to the shared engine)
by >= 5x at n = 10^4, R = 64.  The JSON records both sides and the
ratio so the trajectory is tracked across PRs.
"""

from __future__ import annotations

import time

import networkx as nx
import numpy as np
import pytest

from repro import Configuration, ThreeMajority
from repro.core.rng import spawn_streams
from repro.core.samplers import row_plurality
from repro.graphs import Topology, random_regular, run_graph_ensemble
from repro.graphs.agentsim import random_coloring

N, REPLICAS, ROUNDS, K = 10_000, 64, 8, 32


@pytest.fixture(scope="module")
def topology():
    return random_regular(N, 8, seed=0)


@pytest.fixture(scope="module")
def config():
    # Near-balanced at k = 32: far from consensus, so every replica runs
    # the full ROUNDS budget in both implementations (no early retirement
    # skewing the comparison).
    return Configuration.biased(N, K, 200)


def _retired_per_replica_loop(topology, config, replicas, rounds, seed):
    """The pre-engine implementation: one Python loop per replica.

    Per replica per round: CSR picks, color gather, row-wise plurality,
    and the bincount the old history/stop bookkeeping performed.
    """
    gens = spawn_streams(seed, replicas)
    finals = np.empty((replicas, config.k), dtype=np.int64)
    for r, gen in enumerate(gens):
        colors = random_coloring(topology, config, gen)
        for _ in range(rounds):
            picks = topology.sample_neighbors(3, gen)
            seen = colors[picks]
            colors = row_plurality(seen, config.k, gen)
            counts = np.bincount(colors, minlength=config.k)
        finals[r] = counts
    return finals


def _batched(topology, config, replicas, rounds, seed):
    ens = run_graph_ensemble(
        ThreeMajority(), topology, config, replicas, max_rounds=rounds, rng=seed
    )
    assert (ens.rounds == rounds).all(), "a replica converged; fixture too easy"
    return ens


class TestBatchedGraphEngine:
    def test_batched_ensemble_n1e4_r64(self, benchmark, topology, config):
        benchmark.extra_info.update(
            engine="graph-batched", n=N, k=K, replicas=REPLICAS, rounds=ROUNDS
        )
        benchmark.pedantic(
            lambda: _batched(topology, config, REPLICAS, ROUNDS, 1), rounds=3, iterations=1
        )

    def test_per_replica_loop_n1e4_r64(self, benchmark, topology, config):
        benchmark.extra_info.update(
            engine="graph-per-replica", n=N, k=K, replicas=REPLICAS, rounds=ROUNDS
        )
        benchmark.pedantic(
            lambda: _retired_per_replica_loop(topology, config, REPLICAS, ROUNDS, 1),
            rounds=3,
            iterations=1,
        )

    def test_batched_vs_per_replica_speedup(self, benchmark, topology, config):
        """The >= 5x acceptance floor, recorded as extra_info."""

        def timed(fn) -> float:
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start

        batched = lambda: _batched(topology, config, REPLICAS, ROUNDS, 1)  # noqa: E731
        loop = lambda: _retired_per_replica_loop(  # noqa: E731
            topology, config, REPLICAS, ROUNDS, 1
        )
        timed(batched), timed(loop)  # warm-up
        t_batched = t_loop = float("inf")
        for _ in range(3):
            t_batched = min(t_batched, timed(batched))
            t_loop = min(t_loop, timed(loop))
        ratio = t_loop / t_batched
        benchmark.extra_info.update(
            n=N,
            k=K,
            replicas=REPLICAS,
            rounds=ROUNDS,
            per_replica_ms=t_loop * 1e3,
            batched_ms=t_batched * 1e3,
            speedup=ratio,
        )
        benchmark.pedantic(batched, rounds=1, iterations=1)
        assert ratio >= 5.0, (
            f"batched graph engine speedup only {ratio:.1f}x "
            f"(loop {t_loop * 1e3:.0f} ms, batched {t_batched * 1e3:.0f} ms)"
        )


class TestCsrPacking:
    """from_networkx is now an edge-array sorted-COO build."""

    @pytest.fixture(scope="class")
    def nx_graph(self):
        return nx.random_regular_graph(8, 20_000, seed=1)

    def test_from_networkx_n2e4(self, benchmark, nx_graph):
        benchmark.extra_info.update(n=20_000, d=8)
        topo = benchmark(lambda: Topology.from_networkx(nx_graph))
        assert topo.n == 20_000
        assert (topo.degrees == 9).all()  # 8 neighbors + self-loop
