"""Facade-dispatch and observation-layer benchmarks.

The declarative layer must be free: resolving a ScenarioSpec through the
registries is a few dict lookups plus object construction, amortised over
a whole replica ensemble.  The two timed benches land in
``BENCH_results.json`` (tagged ``api=facade`` / ``api=direct``) so the
dispatch cost is tracked across PRs, and the guard test *asserts* the
overhead stays under 5%.

Same deal for the metric-recording layer of :mod:`repro.core.metrics`:
activating the recorder with an *empty* metric list must stay within 2%
of the un-recorded path (guard test), and the timed benches (tagged
``record=none`` / ``record=plurality-fraction`` at n=10⁵, k=8) publish
the per-round cost of one scalar metric into ``BENCH_results.json``.
"""

from __future__ import annotations

import time

from repro import RecordSpec, ScenarioSpec, ThreeMajority, run_ensemble, simulate_ensemble
from repro.experiments.workloads import paper_biased

N, K, REPLICAS, MAX_ROUNDS, SEED = 200_000, 16, 64, 2_000, 7

SPEC = ScenarioSpec(
    dynamics="3-majority",
    initial="paper-biased",
    n=N,
    k=K,
    replicas=REPLICAS,
    max_rounds=MAX_ROUNDS,
    seed=SEED,
)

#: The issue-mandated observation-cost point: one scalar metric at
#: n = 1e5, k = 8.
REC_N, REC_K, REC_REPLICAS, REC_SEED = 100_000, 8, 64, 3


def _direct():
    return run_ensemble(
        ThreeMajority(), paper_biased(N, K), REPLICAS, max_rounds=MAX_ROUNDS, rng=SEED
    )


def _facade():
    return simulate_ensemble(SPEC)


def _recording_run(record):
    return run_ensemble(
        ThreeMajority(),
        paper_biased(REC_N, REC_K),
        REC_REPLICAS,
        max_rounds=2_000,
        record=record,
        rng=REC_SEED,
    )


def _guard_run(record):
    """Fixed-length workload for the overhead guard: the voter model needs
    Θ(n) rounds from a balanced start, so at 400 ≪ n rounds no replica
    ever absorbs — every run steps exactly ``max_rounds`` rounds for all
    replicas and the wall-time comparison is apples to apples."""
    from repro import Configuration, Voter

    return run_ensemble(
        Voter(),
        Configuration.balanced(REC_N, REC_K),
        256,
        max_rounds=400,
        record=record,
        rng=REC_SEED,
    )


class TestFacadeDispatch:
    def test_direct_run_ensemble(self, benchmark):
        benchmark.extra_info.update(api="direct", n=N, k=K, replicas=REPLICAS)
        ens = benchmark(_direct)
        assert ens.convergence_rate == 1.0

    def test_facade_simulate_ensemble(self, benchmark):
        benchmark.extra_info.update(api="facade", n=N, k=K, replicas=REPLICAS)
        ens = benchmark(_facade)
        assert ens.convergence_rate == 1.0

    def test_facade_overhead_under_5_percent(self):
        """The guard: interleaved best-of-N wall times, facade <= 1.05 × direct.

        Interleaving the two measurements (direct, facade, direct, ...)
        decorrelates clock-frequency / load drift from the comparison, and
        best-of over many repeats discards scheduler noise; the workload is
        sized so one call is a few ms, two orders of magnitude above the
        actual resolution cost (~tens of µs).
        """

        def timed(fn) -> float:
            start = time.perf_counter()
            ens = fn()
            elapsed = time.perf_counter() - start
            assert ens.convergence_rate == 1.0
            return elapsed

        timed(_direct), timed(_facade)  # warm caches (registration, tables, ...)
        direct = facade = float("inf")
        for _ in range(11):
            direct = min(direct, timed(_direct))
            facade = min(facade, timed(_facade))
        overhead = facade / direct - 1.0
        assert overhead < 0.05, (
            f"facade dispatch overhead {overhead:.1%} exceeds 5% "
            f"(direct {direct * 1e3:.2f} ms, facade {facade * 1e3:.2f} ms)"
        )


class TestRecordingOverhead:
    def test_bench_record_none(self, benchmark):
        benchmark.extra_info.update(
            record="none", n=REC_N, k=REC_K, replicas=REC_REPLICAS
        )
        ens = benchmark(lambda: _recording_run(None))
        assert ens.convergence_rate == 1.0

    def test_bench_record_one_scalar_metric(self, benchmark):
        """Per-round cost of one scalar metric at n=1e5, k=8.

        ``(this - record=none) / (mean rounds × replicas)`` in
        ``BENCH_results.json`` is the per-replica-round price of
        ``plurality-fraction``; ``rounds_total`` in extra_info provides the
        divisor.
        """
        probe = _recording_run(["plurality-fraction"])
        benchmark.extra_info.update(
            record="plurality-fraction",
            n=REC_N,
            k=REC_K,
            replicas=REC_REPLICAS,
            rounds_total=int(probe.trace.n_recorded.sum()),
        )
        ens = benchmark(lambda: _recording_run(["plurality-fraction"]))
        assert ens.trace is not None and ens.trace.metrics == ("plurality-fraction",)

    def test_empty_record_overhead_under_2_percent(self):
        """The guard: an active-but-empty recorder must be free.

        ``record=RecordSpec()`` exercises the whole recording machinery
        (cadence checks, per-round bookkeeping, trace assembly) with zero
        metrics; interleaved best-of-N wall times against ``record=None``
        over a fixed 400-round workload bound the machinery's overhead
        at 2%.
        """

        def timed(record) -> float:
            start = time.perf_counter()
            ens = _guard_run(record)
            elapsed = time.perf_counter() - start
            assert not ens.converged.any()  # fixed-length: nobody absorbs
            return elapsed

        timed(None), timed(RecordSpec())  # warm caches
        # Time-adjacent pairs share thermal/clock state, so the best paired
        # ratio isolates the recorder cost from slow frequency drift that
        # independent best-ofs would alias into the comparison.
        ratios = []
        for _ in range(9):
            bare = timed(None)
            empty = timed(RecordSpec())
            ratios.append(empty / bare)
        overhead = min(ratios) - 1.0
        assert overhead < 0.02, (
            f"empty-record overhead {overhead:.1%} exceeds 2% "
            f"(paired ratios: {', '.join(f'{r:.3f}' for r in ratios)})"
        )
