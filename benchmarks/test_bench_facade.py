"""Facade-dispatch benchmarks: ``simulate_ensemble(spec)`` vs ``run_ensemble``.

The declarative layer must be free: resolving a ScenarioSpec through the
registries is a few dict lookups plus object construction, amortised over
a whole replica ensemble.  The two timed benches land in
``BENCH_results.json`` (tagged ``api=facade`` / ``api=direct``) so the
dispatch cost is tracked across PRs, and the guard test *asserts* the
overhead stays under 5%.
"""

from __future__ import annotations

import time

from repro import ScenarioSpec, ThreeMajority, run_ensemble, simulate_ensemble
from repro.experiments.workloads import paper_biased

N, K, REPLICAS, MAX_ROUNDS, SEED = 200_000, 16, 64, 2_000, 7

SPEC = ScenarioSpec(
    dynamics="3-majority",
    initial="paper-biased",
    n=N,
    k=K,
    replicas=REPLICAS,
    max_rounds=MAX_ROUNDS,
    seed=SEED,
)


def _direct():
    return run_ensemble(
        ThreeMajority(), paper_biased(N, K), REPLICAS, max_rounds=MAX_ROUNDS, rng=SEED
    )


def _facade():
    return simulate_ensemble(SPEC)


class TestFacadeDispatch:
    def test_direct_run_ensemble(self, benchmark):
        benchmark.extra_info.update(api="direct", n=N, k=K, replicas=REPLICAS)
        ens = benchmark(_direct)
        assert ens.convergence_rate == 1.0

    def test_facade_simulate_ensemble(self, benchmark):
        benchmark.extra_info.update(api="facade", n=N, k=K, replicas=REPLICAS)
        ens = benchmark(_facade)
        assert ens.convergence_rate == 1.0

    def test_facade_overhead_under_5_percent(self):
        """The guard: interleaved best-of-N wall times, facade <= 1.05 × direct.

        Interleaving the two measurements (direct, facade, direct, ...)
        decorrelates clock-frequency / load drift from the comparison, and
        best-of over many repeats discards scheduler noise; the workload is
        sized so one call is a few ms, two orders of magnitude above the
        actual resolution cost (~tens of µs).
        """

        def timed(fn) -> float:
            start = time.perf_counter()
            ens = fn()
            elapsed = time.perf_counter() - start
            assert ens.convergence_rate == 1.0
            return elapsed

        timed(_direct), timed(_facade)  # warm caches (registration, tables, ...)
        direct = facade = float("inf")
        for _ in range(11):
            direct = min(direct, timed(_direct))
            facade = min(facade, timed(_facade))
        overhead = facade / direct - 1.0
        assert overhead < 0.05, (
            f"facade dispatch overhead {overhead:.1%} exceeds 5% "
            f"(direct {direct * 1e3:.2f} ms, facade {facade * 1e3:.2f} ms)"
        )
