"""A1 ablations — the design choices DESIGN.md §4 declares immaterial/material.

* exact multinomial engine vs agent-level engine: identical statistics
  (asserted on one-round means), ~n/k speed gap (timed);
* tie-break convention ("first" vs "uniform"): identical marginal law
  (Section 2 of the paper), asserted empirically;
* batched-ensemble vs per-replica execution: identical statistics, large
  speed gap (timed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Configuration, ThreeMajority, run_ensemble
from repro.core.majority import three_majority_law

SEED = 7


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(SEED)


class TestEngineAblation:
    N, K = 30_000, 8

    def _counts(self):
        return Configuration.biased(self.N, self.K, 3_000).counts

    def test_exact_engine_speed(self, benchmark, rng):
        dyn = ThreeMajority()
        counts = self._counts()
        benchmark(lambda: dyn.step(counts, rng))

    def test_agent_engine_speed(self, benchmark, rng):
        dyn = ThreeMajority(agent_level=True)
        counts = self._counts()
        benchmark(lambda: dyn.step(counts, rng))

    def test_engines_statistically_identical(self, benchmark, rng):
        counts = self._counts()
        mu = three_majority_law(counts) * self.N
        reps = 150

        def agree() -> float:
            exact = np.zeros(self.K)
            agent = np.zeros(self.K)
            e, a = ThreeMajority(), ThreeMajority(agent_level=True)
            for _ in range(reps):
                exact += e.step(counts, rng)
                agent += a.step(counts, rng)
            stderr = np.sqrt(self.N * 0.25 / reps)
            dev_e = np.max(np.abs(exact / reps - mu)) / stderr
            dev_a = np.max(np.abs(agent / reps - mu)) / stderr
            return max(dev_e, dev_a)

        worst = benchmark.pedantic(agree, rounds=1, iterations=1)
        assert worst < 6.0


class TestTieBreakAblation:
    def test_tie_breaks_share_marginal(self, benchmark, rng):
        counts = Configuration([12_000, 10_000, 8_000]).counts
        mu = three_majority_law(counts) * 30_000
        reps = 150

        def deviation() -> float:
            first = ThreeMajority(agent_level=True, tie_break="first")
            uniform = ThreeMajority(agent_level=True, tie_break="uniform")
            acc_f, acc_u = np.zeros(3), np.zeros(3)
            for _ in range(reps):
                acc_f += first.step(counts, rng)
                acc_u += uniform.step(counts, rng)
            stderr = np.sqrt(30_000 * 0.25 / reps)
            return float(
                max(
                    np.max(np.abs(acc_f / reps - mu)),
                    np.max(np.abs(acc_u / reps - mu)),
                )
                / stderr
            )

        worst = benchmark.pedantic(deviation, rounds=1, iterations=1)
        assert worst < 6.0


class TestBatchingAblation:
    CFG = Configuration.biased(20_000, 6, 2_500)

    def test_batched_ensemble_speed(self, benchmark):
        benchmark.pedantic(
            lambda: run_ensemble(ThreeMajority(), self.CFG, 64, rng=SEED, batch=True),
            rounds=1,
            iterations=3,
        )

    def test_unbatched_ensemble_speed(self, benchmark):
        benchmark.pedantic(
            lambda: run_ensemble(ThreeMajority(), self.CFG, 64, rng=SEED, batch=False),
            rounds=1,
            iterations=3,
        )

    def test_batching_preserves_statistics(self, benchmark):
        def stats() -> float:
            fast = run_ensemble(ThreeMajority(), self.CFG, 128, rng=1, batch=True)
            slow = run_ensemble(ThreeMajority(), self.CFG, 128, rng=2, batch=False)
            assert fast.plurality_win_rate == slow.plurality_win_rate == 1.0
            return abs(
                float(fast.rounds[fast.converged].mean())
                - float(slow.rounds[slow.converged].mean())
            )

        gap = benchmark.pedantic(stats, rounds=1, iterations=1)
        assert gap < 1.5
