"""Benchmarks for the active-support sparse ensemble engine.

The acceptance pair of this PR: post-coalescence ensemble rounds at
k = 4096 must be >= 10x faster sparse than dense (both records land in
``BENCH_results.json`` tagged ``engine``/``n``/``k``/``support``), and a
k = 2^16, n = 10^6, 128-replica ensemble must complete in seconds — the
regime the paper's Theorem 3 quantifies over (``k = n^ε``) and the dense
layout cannot touch.

Also here: the serve-cache trace-packing record (valid prefixes +
``np.savez_compressed`` vs the old dense ``np.savez`` layout) and the
guard that the dense runner's empty-stopping fast path stayed free after
the scratch-reuse cleanup.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

import numpy as np
import pytest

from repro import (
    Configuration,
    HPlurality,
    ResultCache,
    RoundBudgetStop,
    ScenarioSpec,
    ThreeMajority,
    Voter,
    run_ensemble,
    simulate_ensemble,
)

#: The post-coalescence fixture: a handful of survivors inside a large
#: dead color space — exactly what an ensemble looks like after the
#: coalescence prefix of a k = n^ε run.
K, SUPPORT, N, REPLICAS, ROUNDS = 4096, 8, 100_000, 128, 32


def _post_coalescence(k: int = K, support: int = SUPPORT, n: int = N) -> Configuration:
    counts = np.zeros(k, dtype=np.int64)
    positions = np.linspace(5, k - 7, support).astype(np.int64)
    masses = np.full(support, n // support, dtype=np.int64)
    masses[0] += n - int(masses.sum())
    counts[positions] = masses
    return Configuration(counts)


def _fixed_rounds(engine: str, dynamics=None, rounds: int = ROUNDS, seed: int = 7):
    """A fixed-length ensemble burst (round-budget stop, no absorption)."""
    return run_ensemble(
        dynamics if dynamics is not None else ThreeMajority(),
        _post_coalescence(),
        REPLICAS,
        rng=seed,
        max_rounds=rounds + 1,
        stopping=RoundBudgetStop(rounds),
        engine=engine,
    )


class TestSparseVsDensePostCoalescence:
    """The >= 10x acceptance pair at k = 4096, support = 8."""

    def test_dense_ensemble_rounds(self, benchmark):
        benchmark.extra_info.update(
            engine="dense", n=N, k=K, support=SUPPORT, replicas=REPLICAS, rounds=ROUNDS
        )
        ens = benchmark(lambda: _fixed_rounds("dense"))
        assert (ens.rounds == ROUNDS).all()

    def test_sparse_ensemble_rounds(self, benchmark):
        benchmark.extra_info.update(
            engine="sparse", n=N, k=K, support=SUPPORT, replicas=REPLICAS, rounds=ROUNDS
        )
        ens = benchmark(lambda: _fixed_rounds("sparse"))
        assert (ens.rounds == ROUNDS).all()

    def test_sparse_at_least_10x_faster_than_dense(self):
        """Interleaved best-of-N, like the facade guard: the compacted
        working set is 512x narrower, so 10x is a conservative floor."""

        def timed(engine: str) -> float:
            start = time.perf_counter()
            ens = _fixed_rounds(engine)
            elapsed = time.perf_counter() - start
            assert (ens.rounds == ROUNDS).all()
            return elapsed

        timed("dense"), timed("sparse")  # warm-up
        dense = sparse = float("inf")
        for _ in range(5):
            dense = min(dense, timed("dense"))
            sparse = min(sparse, timed("sparse"))
        ratio = dense / sparse
        assert ratio >= 10.0, (
            f"sparse speedup only {ratio:.1f}x "
            f"(dense {dense * 1e3:.1f} ms, sparse {sparse * 1e3:.1f} ms)"
        )

    def test_hplurality_sparse_recovers_exact_law(self, benchmark):
        # Dense auto at k = 4096 would be O(n·h) agent sampling; sparse
        # hands the law a width-8 axis and the C(12, 5) = 792-row exact
        # table takes over.
        dyn = HPlurality(5)
        assert dyn.resolved_engine(K) == "agent"
        assert dyn.resolved_engine(SUPPORT) == "counts"
        benchmark.extra_info.update(
            engine="sparse", dynamics="5-plurality", n=N, k=K, support=SUPPORT,
            replicas=REPLICAS, rounds=ROUNDS,
        )
        ens = benchmark(lambda: _fixed_rounds("sparse", dynamics=dyn))
        # 5 samples coalesce much faster than 3: replicas may absorb
        # before the budget; either way every replica retired validly.
        assert (ens.converged | (ens.rounds == ROUNDS)).all()


class TestLargeKCompletes:
    """k = 2^16, n = 10^6: the regime the ROADMAP calls impractical.

    A geometric-tail start with ~1.9k live colors inside 2^16 slots, run
    by 128 replicas all the way to a 90% plurality (~260 rounds each):
    completes in seconds on the sparse engine (measured ~5 s), where the
    dense layout pays 128 x 65536 cells for every one of those rounds
    (extrapolating the dense k = 4096 record: minutes, plus 64 GiB-class
    trace pressure if recorded).
    """

    def test_k65536_n1e6_ensemble_completes(self, benchmark):
        k, n, replicas = 2**16, 1_000_000, 128
        spec = ScenarioSpec(
            dynamics="3-majority",
            initial="geometric-tail",
            initial_params={"ratio": 0.995},
            n=n,
            k=k,
            replicas=replicas,
            seed=0,
            engine="sparse",
            max_rounds=20_000,
            stopping={"rule": "plurality-fraction", "fraction": 0.9},
        )
        support = int((spec.resolve().initial.counts > 0).sum())
        benchmark.extra_info.update(
            engine="sparse", n=n, k=k, support=support, replicas=replicas
        )
        ens = benchmark.pedantic(
            lambda: self._run_and_check(spec, n, k), rounds=1, iterations=1
        )
        assert (ens.stopped_by == "plurality-fraction").all()

    @staticmethod
    def _run_and_check(spec, n, k):
        ens = simulate_ensemble(spec)
        assert ens.final_counts.shape[1] == k
        assert (ens.final_counts.sum(axis=1) == n).all()
        assert (ens.final_counts.max(axis=1) >= int(0.9 * n)).all()
        return ens


class TestTracePackingOnDisk:
    """Serve-cache trace density: packed+compressed vs the dense layout."""

    def test_packed_trace_entry_size(self, benchmark):
        spec = ScenarioSpec(
            dynamics="3-majority",
            initial="paper-biased",
            n=50_000,
            k=64,
            replicas=64,
            seed=2,
            max_rounds=2_000,
            record={"metrics": ["counts", "bias"], "every": 1},
        )
        result = simulate_ensemble(spec)
        trace = result.trace
        dense_bytes = sum(col.nbytes for col in trace.data.values())
        valid_cells = int(trace.n_recorded.sum())
        total_cells = trace.replicas * trace.n_rounds

        with tempfile.TemporaryDirectory() as root:
            cache = ResultCache(root)
            key = cache.key_for(spec)

            def store():
                cache.put(key, result)
                return os.path.getsize(os.path.join(root, key + ".npz"))

            packed_bytes = benchmark(store)
            replay = ResultCache(root).get(key)
            assert replay.trace.digest() == trace.digest()
        benchmark.extra_info.update(
            dense_trace_bytes=dense_bytes,
            packed_entry_bytes=packed_bytes,
            reduction_factor=round(dense_bytes / packed_bytes, 2),
            valid_fraction=round(valid_cells / total_cells, 3),
            replicas=spec.replicas,
            k=spec.k,
        )
        # Valid-prefix packing + deflate must beat the dense blocks by a
        # comfortable factor on a heterogeneously-stopping ensemble.
        assert packed_bytes * 3 < dense_bytes


class TestStoppingFastPath:
    """Guard: the empty-stopping (stopping=None) round loop costs nothing
    extra versus a never-firing rule — the scratch-reuse cleanup must not
    have smuggled work into the common path."""

    def _burst(self, stopping):
        return run_ensemble(
            Voter(),
            Configuration.balanced(100_000, 8),
            256,
            max_rounds=300,
            stopping=stopping,
            rng=3,
        )

    def test_no_stopping_not_slower_than_never_firing_rule(self):
        def timed(stopping) -> float:
            start = time.perf_counter()
            ens = self._burst(stopping)
            elapsed = time.perf_counter() - start
            assert not ens.converged.any()
            return elapsed

        never = RoundBudgetStop(10**9)
        timed(None), timed(never)  # warm-up
        bare = ruled = float("inf")
        for _ in range(7):
            bare = min(bare, timed(None))
            ruled = min(ruled, timed(never))
        # The bare path must never be meaningfully slower than the ruled
        # one (generous slack: these are ~100 ms runs, noise is real).
        assert bare <= ruled * 1.10, (
            f"empty-stopping path {bare * 1e3:.1f} ms vs never-firing rule "
            f"{ruled * 1e3:.1f} ms"
        )
