"""Serving-substrate benchmarks: cold vs warm batch execution.

The whole point of ``repro.serve`` is that repeated scenario traffic stops
paying for simulation: a warm ``run_batch`` over a request list is pure
cache lookups.  Two timed benches land in ``BENCH_results.json`` (tagged
``path=cold`` / ``path=warm``) so the cache's value is tracked across PRs,
and the guard test asserts the warm path is at least 10× faster than the
cold one — the acceptance bar for the cache being worth its complexity.
"""

from __future__ import annotations

import shutil
import time

from repro import ScenarioSpec, run_batch
from repro.serve.cache import ResultCache

N, K, REPLICAS, SEEDS, DUPES = 40_000, 8, 32, 4, 3

#: SEEDS unique scenarios, each requested DUPES times (typical of sweep
#: traffic re-requesting the same points).
SPECS = [
    ScenarioSpec(
        dynamics="3-majority",
        initial="paper-biased",
        n=N,
        k=K,
        replicas=REPLICAS,
        seed=seed,
        stopping={"rule": "plurality-fraction", "fraction": 0.9},
    )
    for seed in range(SEEDS)
] * DUPES


def _cold(root) -> float:
    """One cold batch on a fresh cache; returns wall seconds."""
    shutil.rmtree(root, ignore_errors=True)
    cache = ResultCache(root)
    start = time.perf_counter()
    report = run_batch(SPECS, cache=cache, processes=1)
    elapsed = time.perf_counter() - start
    assert report.misses == SEEDS and report.deduped == SEEDS * (DUPES - 1)
    return elapsed


def _warm(cache) -> float:
    start = time.perf_counter()
    report = run_batch(SPECS, cache=cache, processes=1)
    elapsed = time.perf_counter() - start
    assert report.hits == SEEDS and report.misses == 0
    return elapsed


class TestBatchCacheThroughput:
    def test_cold_batch(self, benchmark, tmp_path):
        benchmark.extra_info.update(
            path="cold", n=N, k=K, replicas=REPLICAS, requests=len(SPECS), unique=SEEDS
        )
        root = tmp_path / "cache"

        def run():
            return _cold(root)

        benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)

    def test_warm_batch(self, benchmark, tmp_path):
        benchmark.extra_info.update(
            path="warm", n=N, k=K, replicas=REPLICAS, requests=len(SPECS), unique=SEEDS
        )
        cache = ResultCache(tmp_path / "cache")
        run_batch(SPECS, cache=cache, processes=1)  # populate
        benchmark(lambda: _warm(cache))

    def test_warm_at_least_10x_faster_than_cold(self, tmp_path):
        """The acceptance guard: warm throughput >= 10 × cold throughput.

        Cold pays SEEDS full ensemble simulations; warm pays SEEDS memory-LRU
        probes plus key hashing for every request.  The workload is sized so
        cold is tens of milliseconds — three orders of magnitude above a
        lookup — making 10× a conservative, non-flaky bar.
        """
        root = tmp_path / "cache"
        cold = min(_cold(root) for _ in range(3))
        cache = ResultCache(root)  # fresh memory layer; first warm pass promotes
        warm = min(_warm(cache) for _ in range(5))
        speedup = cold / warm
        assert speedup >= 10.0, (
            f"warm batch only {speedup:.1f}x faster than cold "
            f"(cold {cold * 1e3:.1f} ms, warm {warm * 1e3:.2f} ms)"
        )
