"""Throughput benchmarks for the low-level step engines.

These quantify the claim in DESIGN.md §3: the exact counts-level engine
makes a round O(k) instead of O(n), enabling n = 10^6+ at microsecond
round costs, while the agent-level engine (needed for h-plurality and
arbitrary 3-input rules) pays O(n·h).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Configuration,
    HPlurality,
    MedianDynamics,
    ThreeMajority,
    UndecidedState,
    majority_rule,
    skewed_rule,
)
from repro.core.samplers import categorical_matrix, row_plurality


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestCountsEngine:
    def test_three_majority_step_n1e6_k100(self, benchmark, rng):
        counts = Configuration.biased(1_000_000, 100, 50_000).counts
        dyn = ThreeMajority()
        benchmark.extra_info.update(engine="counts", n=1_000_000, k=100)
        benchmark(lambda: dyn.step(counts, rng))

    def test_three_input_rule_step_counts_n1e5_k64(self, benchmark, rng):
        counts = Configuration.biased(100_000, 64, 10_000).counts
        rule = majority_rule()  # O(k) pattern-decomposed law
        benchmark.extra_info.update(engine="counts", n=100_000, k=64)
        benchmark(lambda: rule.step(counts, rng))

    def test_three_majority_step_n1e7_k1000(self, benchmark, rng):
        counts = Configuration.biased(10_000_000, 1_000, 500_000).counts
        dyn = ThreeMajority()
        benchmark(lambda: dyn.step(counts, rng))

    def test_batched_replicas_1024(self, benchmark, rng):
        batch = np.tile(Configuration.biased(100_000, 16, 5_000).counts, (1024, 1))
        dyn = ThreeMajority()
        benchmark(lambda: dyn.step_many(batch, rng))

    def test_undecided_step_n1e6(self, benchmark, rng):
        state = UndecidedState.extend_counts(
            Configuration.biased(1_000_000, 64, 50_000).counts, undecided=0
        )
        dyn = UndecidedState()
        benchmark(lambda: dyn.step(state, rng))

    def test_median_step_k512(self, benchmark, rng):
        # O(k^2) class-wise engine.
        counts = Configuration.biased(1_000_000, 512, 100_000).counts
        dyn = MedianDynamics()
        benchmark(lambda: dyn.step(counts, rng))


class TestE5RuleEngines:
    """The acceptance pair: one arbitrary-rule round at n = 10^5, k = 5.

    The counts-level engine must beat agent-level by >= 20x here; the
    JSON records both so the ratio is tracked across PRs.
    """

    N, K = 100_000, 5

    def _counts(self):
        return Configuration.biased(self.N, self.K, 10_000).counts

    def test_e5_rule_step_counts_n1e5_k5(self, benchmark, rng):
        rule = skewed_rule((1, 3, 2))
        counts = self._counts()
        benchmark.extra_info.update(engine="counts", n=self.N, k=self.K, rule=rule.name)
        benchmark(lambda: rule.step(counts, rng))

    def test_e5_rule_step_agent_n1e5_k5(self, benchmark, rng):
        rule = skewed_rule((1, 3, 2))
        rule.engine = "agent"
        counts = self._counts()
        benchmark.extra_info.update(engine="agent", n=self.N, k=self.K, rule=rule.name)
        benchmark(lambda: rule.step(counts, rng))

    def test_e5_rule_ensemble_round_counts_r200(self, benchmark, rng):
        rule = skewed_rule((1, 3, 2))
        batch = np.tile(self._counts(), (200, 1))
        benchmark.extra_info.update(engine="counts", n=self.N, k=self.K, replicas=200)
        benchmark(lambda: rule.step_many(batch, rng))


class TestHPluralityEngines:
    def test_hplurality_step_counts_n1e5_h5_k16(self, benchmark, rng):
        counts = Configuration.biased(100_000, 16, 10_000).counts
        dyn = HPlurality(5)
        assert dyn.resolved_engine(16) == "counts"
        benchmark.extra_info.update(engine="counts", n=100_000, k=16, h=5)
        benchmark(lambda: dyn.step(counts, rng))

    def test_hplurality_step_agent_n1e5_h5_k16(self, benchmark, rng):
        counts = Configuration.biased(100_000, 16, 10_000).counts
        dyn = HPlurality(5, engine="agent")
        benchmark.extra_info.update(engine="agent", n=100_000, k=16, h=5)
        benchmark(lambda: dyn.step(counts, rng))


class TestAgentEngine:
    def test_hplurality_step_n1e5_h7(self, benchmark, rng):
        counts = Configuration.biased(100_000, 32, 10_000).counts
        dyn = HPlurality(7)  # h > 5: no counts-level law, agent engine
        benchmark.extra_info.update(engine="agent", n=100_000, k=32, h=7)
        benchmark(lambda: dyn.step(counts, rng))

    def test_agent_level_three_majority_n1e5(self, benchmark, rng):
        counts = Configuration.biased(100_000, 16, 10_000).counts
        dyn = ThreeMajority(agent_level=True)
        benchmark.extra_info.update(engine="agent", n=100_000, k=16)
        benchmark(lambda: dyn.step(counts, rng))

    def test_three_input_rule_step_agent_n1e5_k64(self, benchmark, rng):
        counts = Configuration.biased(100_000, 64, 10_000).counts
        rule = majority_rule()
        rule.engine = "agent"  # the O(k) law now covers every k; force agent
        benchmark.extra_info.update(engine="agent", n=100_000, k=64)
        benchmark(lambda: rule.step(counts, rng))

    def test_row_plurality_reduction(self, benchmark, rng):
        counts = Configuration.balanced(100_000, 32).counts
        samples = categorical_matrix(counts, 100_000, 7, rng)
        benchmark(lambda: row_plurality(samples, 32, rng))


class TestAuxiliaryEngines:
    def test_population_protocol_n500(self, benchmark, rng):
        from repro import PopulationProcess, UndecidedPopulation

        counts = Configuration.two_color(500, bias=200).counts
        proc = PopulationProcess(UndecidedPopulation())
        benchmark.pedantic(lambda: proc.run(counts, rng=rng), rounds=1, iterations=3)

    def test_mean_field_integration(self, benchmark):
        import numpy as np

        from repro.analysis import integrate_mean_field

        benchmark.pedantic(
            lambda: integrate_mean_field(
                ThreeMajority(), np.array([0.4, 0.35, 0.25]), t_max=40.0
            ),
            rounds=1,
            iterations=3,
        )

    def test_exact_markov_chain_n8_k3(self, benchmark):
        from repro.analysis import analyze

        benchmark.pedantic(lambda: analyze(ThreeMajority(), 8, 3), rounds=1, iterations=1)
