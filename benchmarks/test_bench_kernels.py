"""Throughput benchmarks for the low-level step engines.

These quantify the claim in DESIGN.md §3: the exact counts-level engine
makes a round O(k) instead of O(n), enabling n = 10^6+ at microsecond
round costs, while the agent-level engine (needed for h-plurality and
arbitrary 3-input rules) pays O(n·h).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Configuration,
    HPlurality,
    MedianDynamics,
    ThreeMajority,
    UndecidedState,
    majority_rule,
)
from repro.core.samplers import categorical_matrix, row_plurality


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestCountsEngine:
    def test_three_majority_step_n1e6_k100(self, benchmark, rng):
        counts = Configuration.biased(1_000_000, 100, 50_000).counts
        dyn = ThreeMajority()
        benchmark(lambda: dyn.step(counts, rng))

    def test_three_majority_step_n1e7_k1000(self, benchmark, rng):
        counts = Configuration.biased(10_000_000, 1_000, 500_000).counts
        dyn = ThreeMajority()
        benchmark(lambda: dyn.step(counts, rng))

    def test_batched_replicas_1024(self, benchmark, rng):
        batch = np.tile(Configuration.biased(100_000, 16, 5_000).counts, (1024, 1))
        dyn = ThreeMajority()
        benchmark(lambda: dyn.step_many(batch, rng))

    def test_undecided_step_n1e6(self, benchmark, rng):
        state = UndecidedState.extend_counts(
            Configuration.biased(1_000_000, 64, 50_000).counts, undecided=0
        )
        dyn = UndecidedState()
        benchmark(lambda: dyn.step(state, rng))

    def test_median_step_k512(self, benchmark, rng):
        # O(k^2) class-wise engine.
        counts = Configuration.biased(1_000_000, 512, 100_000).counts
        dyn = MedianDynamics()
        benchmark(lambda: dyn.step(counts, rng))


class TestAgentEngine:
    def test_hplurality_step_n1e5_h7(self, benchmark, rng):
        counts = Configuration.biased(100_000, 32, 10_000).counts
        dyn = HPlurality(7)
        benchmark(lambda: dyn.step(counts, rng))

    def test_agent_level_three_majority_n1e5(self, benchmark, rng):
        counts = Configuration.biased(100_000, 16, 10_000).counts
        dyn = ThreeMajority(agent_level=True)
        benchmark(lambda: dyn.step(counts, rng))

    def test_three_input_rule_step_n1e5(self, benchmark, rng):
        counts = Configuration.biased(100_000, 64, 10_000).counts
        rule = majority_rule()  # k=64 > exact-law cap, forces agent path
        benchmark(lambda: rule.step(counts, rng))

    def test_row_plurality_reduction(self, benchmark, rng):
        counts = Configuration.balanced(100_000, 32).counts
        samples = categorical_matrix(counts, 100_000, 7, rng)
        benchmark(lambda: row_plurality(samples, 32, rng))


class TestAuxiliaryEngines:
    def test_population_protocol_n500(self, benchmark, rng):
        from repro import PopulationProcess, UndecidedPopulation

        counts = Configuration.two_color(500, bias=200).counts
        proc = PopulationProcess(UndecidedPopulation())
        benchmark.pedantic(lambda: proc.run(counts, rng=rng), rounds=1, iterations=3)

    def test_mean_field_integration(self, benchmark):
        import numpy as np

        from repro.analysis import integrate_mean_field

        benchmark.pedantic(
            lambda: integrate_mean_field(
                ThreeMajority(), np.array([0.4, 0.35, 0.25]), t_max=40.0
            ),
            rounds=1,
            iterations=3,
        )

    def test_exact_markov_chain_n8_k3(self, benchmark):
        from repro.analysis import analyze

        benchmark.pedantic(lambda: analyze(ThreeMajority(), 8, 3), rounds=1, iterations=1)
