"""Benchmark-suite helpers.

Every file here uses the pytest-benchmark fixture, so the suite is run as::

    pytest benchmarks/ --benchmark-only

The experiment benches (`test_bench_eXX_*`) regenerate the E1–E10 result
tables of DESIGN.md §4 at smoke scale (timing the full regeneration);
`test_bench_kernels` times the low-level step engines, and
`test_bench_ablation` times the design alternatives DESIGN.md calls out.
Rendered tables are printed; pass ``-s`` to see them inline.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show():
    """Print a rendered table so `-s` runs double as report generators."""

    def _show(table) -> None:
        print()
        print(table.render())

    return _show
