"""Benchmark-suite helpers.

Every file here uses the pytest-benchmark fixture, so the suite is run as::

    pytest benchmarks/ --benchmark-only

The experiment benches (`test_bench_eXX_*`) regenerate the E1–E10 result
tables of DESIGN.md §4 at smoke scale (timing the full regeneration);
`test_bench_kernels` times the low-level step engines, and
`test_bench_ablation` times the design alternatives DESIGN.md calls out.
Rendered tables are printed; pass ``-s`` to see them inline.

Machine-readable results: after a timed run (i.e. not with
``--benchmark-disable``) the session writes ``benchmarks/BENCH_results.json``
— one record per benchmark with ns/op statistics plus whatever the bench
attached via ``benchmark.extra_info`` (engine, n, k, replicas, ...).
Records merge by fullname into the existing file, and the file is
*deliberately version-controlled*: committing refreshed numbers alongside a
perf-relevant PR is how the performance trajectory is tracked across PRs
(don't commit incidental refreshes from unrelated work).
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_NAME = "BENCH_results.json"


@pytest.fixture
def show():
    """Print a rendered table so `-s` runs double as report generators."""

    def _show(table) -> None:
        print()
        print(table.render())

    return _show


def pytest_sessionfinish(session, exitstatus):
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    records = []
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        records.append(
            {
                "name": bench.name,
                "group": getattr(bench, "group", None),
                "fullname": getattr(bench, "fullname", bench.name),
                "mean_ns": float(stats.mean) * 1e9,
                "median_ns": float(stats.median) * 1e9,
                "stddev_ns": float(stats.stddev) * 1e9,
                "min_ns": float(stats.min) * 1e9,
                "ops_per_s": float(stats.ops),
                "rounds": int(stats.rounds),
                "extra_info": dict(getattr(bench, "extra_info", {}) or {}),
            }
        )
    if not records:
        return
    out = pathlib.Path(__file__).parent / RESULTS_NAME
    # Merge with any existing file (keyed by fullname) so a filtered run
    # refreshes its own records without discarding the other groups.
    merged: dict[str, dict] = {}
    if out.exists():
        try:
            for rec in json.loads(out.read_text()).get("benchmarks", []):
                merged[rec.get("fullname", rec.get("name", ""))] = rec
        except (json.JSONDecodeError, OSError):
            merged = {}
    for rec in records:
        merged[rec["fullname"]] = rec
    payload = {
        "benchmarks": sorted(
            merged.values(), key=lambda r: r.get("fullname", r.get("name", ""))
        )
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {len(records)} benchmark records to {out} ({len(merged)} total)")
