"""Seeded, deterministic fault injection for the serving stack.

The paper's dynamics are robustness results; the serving stack around
them earns the same discipline only if its failure behavior is *testable*.
This module is the substrate: a process-wide registry of named
**injection points** threaded through the stack —

=============================  =================================================
point                          where it fires
=============================  =================================================
``executor.worker-crash``      :func:`repro.serve.executor._run_shard`, before a
                               task runs (simulated worker death)
``executor.worker-stall``      same place; sleeps ``seconds`` (default 30)
``cache.read-error``           :meth:`ResultCache._disk_get` manifest/npz read
                               (simulated disk I/O failure)
``cache.corrupt-payload``      same place; flips bytes of the on-disk npz so the
                               checksum/quarantine path engages end to end
``service.connection-drop``    the service connection loop, before a response
                               is written (peer sees a dropped keep-alive)
``service.slow-response``      the service dispatch path; delays the response
                               by ``seconds`` (default 1.0)
=============================  =================================================

— activated by a :class:`FaultPlan`: a JSON list of rules, each naming a
point, a trigger (``probability`` p per hit, or ``nth`` hit), an optional
``times`` cap on total fires, and free-form ``params`` the call site
interprets.  The plan carries one ``seed``; every point draws from its own
``random.Random`` stream derived from ``sha256(seed, point)``, so a plan
fires identically run after run, process after process — fault behavior is
*replayable*, which is what makes failure tests deterministic instead of
hopeful.

Arming is per-process.  :func:`arm`/:func:`disarm` set the plan directly;
subprocess workers and spawned servers inherit it through the
``REPRO_FAULT_PLAN`` environment variable (inline JSON, or ``@path`` to a
plan file), read once at import.  When no plan is armed, :func:`fire` is a
single module-global ``None`` check — the injection points are off-path
free (benchmark-guarded in ``benchmarks/test_bench_service.py``).

Plan JSON::

    {"seed": 7,
     "rules": [
       {"point": "executor.worker-crash", "probability": 0.2},
       {"point": "cache.corrupt-payload", "nth": 3, "times": 1},
       {"point": "executor.worker-stall", "nth": 5, "times": 1,
        "params": {"seconds": 3.0}}
     ]}
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InjectedWorkerCrash",
    "POINTS",
    "active_plan",
    "arm",
    "arm_from_env",
    "describe",
    "disarm",
    "fire",
]

#: Environment variable carrying the plan into subprocesses: inline JSON,
#: or ``@/path/to/plan.json``.
ENV_VAR = "REPRO_FAULT_PLAN"

#: The injection points wired through the stack (call sites listed above).
POINTS = (
    "executor.worker-crash",
    "executor.worker-stall",
    "cache.read-error",
    "cache.corrupt-payload",
    "service.connection-drop",
    "service.slow-response",
)


class InjectedFault(Exception):
    """Base of every exception an injection point raises.

    Call sites that convert *real* per-item exceptions into error
    envelopes re-raise this class, so an injected infrastructure failure
    stays retryable instead of being swallowed as a deterministic item
    error.
    """


class InjectedWorkerCrash(InjectedFault):
    """A worker died mid-shard (the soft, in-process form of a crash)."""


@dataclass(frozen=True)
class FaultRule:
    """One armed rule: when ``point`` is hit, should it fire?"""

    point: str
    probability: float | None = None
    nth: int | None = None
    times: int | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.point not in POINTS:
            raise ValueError(f"unknown fault point {self.point!r}; known: {POINTS}")
        if (self.probability is None) == (self.nth is None):
            raise ValueError(
                f"rule for {self.point!r} needs exactly one trigger: "
                "'probability' or 'nth'"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")

    def to_dict(self) -> dict:
        out: dict = {"point": self.point}
        if self.probability is not None:
            out["probability"] = self.probability
        if self.nth is not None:
            out["nth"] = self.nth
        if self.times is not None:
            out["times"] = self.times
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict):
            raise ValueError(f"fault rule must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - {"point", "probability", "nth", "times", "params"}
        if unknown:
            raise ValueError(f"unknown fault-rule keys {sorted(unknown)}")
        return cls(
            point=data.get("point", ""),
            probability=None if data.get("probability") is None else float(data["probability"]),
            nth=None if data.get("nth") is None else int(data["nth"]),
            times=None if data.get("times") is None else int(data["times"]),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rule list; the unit that arms a process."""

    rules: tuple[FaultRule, ...]
    seed: int = 0

    def __post_init__(self):
        seen = set()
        for rule in self.rules:
            if rule.point in seen:
                raise ValueError(f"duplicate rule for point {rule.point!r}")
            seen.add(rule.point)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - {"seed", "rules"}
        if unknown:
            raise ValueError(f"unknown fault-plan keys {sorted(unknown)}")
        rules = data.get("rules", [])
        if not isinstance(rules, list):
            raise ValueError("fault-plan 'rules' must be a JSON array")
        return cls(
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


class _ArmedPlan:
    """Per-process runtime state: counters + per-point derived RNG streams."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rules = {rule.point: rule for rule in plan.rules}
        self.hits = {point: 0 for point in self.rules}
        self.fired = {point: 0 for point in self.rules}
        # One stdlib Random per point, derived from (plan seed, point name):
        # deterministic, and independent of every other randomness consumer
        # in the process (the engines' numpy streams are untouched).
        self.streams = {
            point: random.Random(
                int.from_bytes(
                    hashlib.sha256(f"{plan.seed}:{point}".encode()).digest()[:8], "big"
                )
            )
            for point in self.rules
        }

    def fire(self, point: str) -> FaultRule | None:
        rule = self.rules.get(point)
        if rule is None:
            return None
        self.hits[point] += 1
        if rule.times is not None and self.fired[point] >= rule.times:
            return None
        if rule.nth is not None:
            triggered = self.hits[point] == rule.nth
        else:
            triggered = self.streams[point].random() < rule.probability
        if not triggered:
            return None
        self.fired[point] += 1
        return rule


#: The armed plan, or None. A single global read keeps the disarmed
#: fast path to one dict-free branch per injection point.
_armed: _ArmedPlan | None = None


def arm(plan: FaultPlan | dict | str) -> FaultPlan:
    """Arm ``plan`` (a FaultPlan, plan dict, or JSON text) in this process.

    Re-arming resets every hit/fire counter, so a test can replay the
    exact same fault schedule.
    """
    global _armed
    if isinstance(plan, str):
        plan = FaultPlan.from_json(plan)
    elif isinstance(plan, dict):
        plan = FaultPlan.from_dict(plan)
    _armed = _ArmedPlan(plan)
    return plan


def disarm() -> None:
    """Drop the armed plan; every point goes back to off-path free."""
    global _armed
    _armed = None


def active_plan() -> FaultPlan | None:
    """The armed plan, or None."""
    return None if _armed is None else _armed.plan


def fire(point: str) -> FaultRule | None:
    """Should ``point`` fire on this hit?  None when disarmed or untriggered.

    This is the call every injection point makes; with no plan armed it is
    one global load and one branch.
    """
    if _armed is None:
        return None
    return _armed.fire(point)


def describe() -> dict | None:
    """JSON-able armed-plan state (what ``/v1/stats`` reports), or None."""
    if _armed is None:
        return None
    return {
        "seed": _armed.plan.seed,
        "points": {
            point: {"hits": _armed.hits[point], "fired": _armed.fired[point]}
            for point in sorted(_armed.rules)
        },
    }


def arm_from_env(environ=os.environ) -> FaultPlan | None:
    """Arm from ``$REPRO_FAULT_PLAN`` (inline JSON or ``@path``), if set.

    Called once at import, which is how spawn-context pool workers and
    ``python -m repro.service`` subprocesses inherit the parent's plan.
    """
    raw = environ.get(ENV_VAR)
    if not raw:
        return None
    raw = raw.strip()
    if raw.startswith("@"):
        return arm(FaultPlan.from_file(raw[1:]))
    return arm(raw)


arm_from_env()
