"""Run the scenario service: ``python -m repro.service [options]``.

Shutdown semantics: SIGTERM drains gracefully (stop accepting, finish
in-flight work within ``--drain-grace`` seconds, then close) — the
orchestrator-friendly path; SIGINT (Ctrl-C) stops immediately.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from .. import faults
from ..serve.cache import DEFAULT_MEMORY_ENTRIES, ResultCache, default_cache_dir
from .app import ScenarioService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP/JSON scenario service over the repro.serve substrate",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321, help="0 picks a free port")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="serve without any result cache"
    )
    parser.add_argument(
        "--memory-entries",
        type=int,
        default=DEFAULT_MEMORY_ENTRIES,
        help=(
            "in-memory LRU capacity of the result cache (entries); small values "
            "force disk reads, which is how the chaos smoke exercises the "
            "corruption-quarantine path"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "process-pool width for cache misses; 0 (default) executes misses "
            "on in-process threads"
        ),
    )
    parser.add_argument(
        "--shards",
        default=None,
        help="comma-separated shard node names for the consistent-hash ring",
    )
    parser.add_argument(
        "--shard-self", default="local", help="this node's name in --shards"
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help=(
            "default per-request deadline for the work endpoints (ms); exceeded "
            "deadlines answer 504.  Clients can override per request with an "
            "x-deadline-ms header"
        ),
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=0,
        help=(
            "concurrent-work cap; excess work requests are shed with 429 + "
            "Retry-After.  0 (default) = unbounded"
        ),
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        help="seconds before one worker attempt counts as stalled and retries",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds SIGTERM waits for in-flight work before closing",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        help=(
            "arm a repro.faults plan: inline JSON or @path/to/plan.json "
            "(also honoured from $REPRO_FAULT_PLAN)"
        ),
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    if args.fault_plan:
        raw = args.fault_plan.strip()
        if raw.startswith("@"):
            faults.arm(faults.FaultPlan.from_file(raw[1:]))
        else:
            faults.arm(raw)
    cache = None
    if not args.no_cache:
        cache = ResultCache(
            args.cache_dir if args.cache_dir else default_cache_dir(),
            memory_entries=args.memory_entries,
        )
    shards = [s.strip() for s in args.shards.split(",")] if args.shards else None
    service = ScenarioService(
        cache,
        workers=args.workers,
        shards=shards,
        shard_self=args.shard_self,
        deadline_seconds=None if args.deadline_ms is None else args.deadline_ms / 1e3,
        max_in_flight=args.max_in_flight,
        worker_timeout=args.worker_timeout,
    )
    host, port = await service.start(args.host, args.port)
    print(f"repro-service listening on http://{host}:{port}", flush=True)

    # SIGINT stops now; SIGTERM drains (finish in-flight within the grace
    # budget) — the contract process supervisors expect.
    stop = asyncio.Event()
    drain = asyncio.Event()
    loop = asyncio.get_running_loop()
    with contextlib.suppress(NotImplementedError):
        loop.add_signal_handler(signal.SIGINT, stop.set)
    with contextlib.suppress(NotImplementedError):
        loop.add_signal_handler(signal.SIGTERM, drain.set)
    waiters = [
        asyncio.create_task(stop.wait(), name="stop"),
        asyncio.create_task(drain.wait(), name="drain"),
    ]
    done, pending = await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
    for task in pending:
        task.cancel()
    if drain.is_set():
        drained = await service.drain(args.drain_grace)
        print(
            f"repro-service drained ({'clean' if drained else 'grace expired'})",
            flush=True,
        )
    else:
        await service.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
