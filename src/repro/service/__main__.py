"""Run the scenario service: ``python -m repro.service [options]``."""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from ..serve.cache import ResultCache, default_cache_dir
from .app import ScenarioService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP/JSON scenario service over the repro.serve substrate",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321, help="0 picks a free port")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="serve without any result cache"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "process-pool width for cache misses; 0 (default) executes misses "
            "on in-process threads"
        ),
    )
    parser.add_argument(
        "--shards",
        default=None,
        help="comma-separated shard node names for the consistent-hash ring",
    )
    parser.add_argument(
        "--shard-self", default="local", help="this node's name in --shards"
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir if args.cache_dir else default_cache_dir())
    shards = [s.strip() for s in args.shards.split(",")] if args.shards else None
    service = ScenarioService(
        cache, workers=args.workers, shards=shards, shard_self=args.shard_self
    )
    host, port = await service.start(args.host, args.port)
    print(f"repro-service listening on http://{host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    await stop.wait()
    await service.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
