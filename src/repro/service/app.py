"""The scenario service: asyncio HTTP front over the serve substrate.

:class:`ScenarioService` owns one listening socket, one
:class:`~repro.serve.cache.ResultCache`, an optional process-pool worker
tier, the in-flight coalescing table and the consistent-hash
:class:`~repro.service.sharding.ShardMap`.  Request handling is a
straight pipeline::

    parse JSON  →  strict ScenarioSpec validation (error envelope on
    failure)  →  content-addressed cache_key  →  shard lookup  →
    in-flight coalescing  →  cache probe  →  miss dispatched to the
    worker tier  →  store  →  JSON payload

Two concurrent requests for the same key run the simulation **once**:
the first becomes the owner of an in-flight future, later arrivals await
it (``source: "coalesced"``, counted in ``/v1/stats``).  Workers reuse
:func:`repro.serve.executor._run_shard` — the same stateless
spec-JSON-in, result-out discipline as ``run_batch`` — over a
spawn-context :class:`~concurrent.futures.ProcessPoolExecutor`;
``workers=0`` executes misses on threads in-process (the
dependency-light mode used by tests and the smoke harness).  Blocking
cache I/O runs via :func:`asyncio.to_thread`, which is what the
:class:`ResultCache` locking added alongside this module makes safe.

Resilience (all deterministic under :mod:`repro.faults`, exercised by
the chaos smoke in CI):

* **deadlines** — ``deadline_seconds`` (or a per-request ``x-deadline-ms``
  header) bounds the work endpoints; exceeding it answers a 504
  ``DeadlineExceeded`` envelope, and a cancelled *owner* rejects its
  coalesced followers with the typed :class:`OwnerCancelled` (also 504)
  instead of stranding them;
* **worker recovery** — a crashed (``BrokenProcessPool``) or stalled
  (``worker_timeout``) worker loses one attempt, not the request: the
  pool is respawned and the task retried with exponential backoff +
  jitter up to ``worker_attempts`` times (results are pure functions of
  the spec, so retries are bit-identical);
* **backpressure** — ``max_in_flight`` caps concurrent work; excess
  requests are shed with 429 + ``Retry-After`` (counted in ``/v1/stats``
  under ``shed``) rather than queued without bound;
* **graceful drain** — :meth:`ScenarioService.drain` (SIGTERM in
  ``python -m repro.service``) stops accepting, answers new work 503,
  finishes in-flight requests within a grace budget, then closes.

See the package docstring (:mod:`repro.service`) for the wire schema.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing as mp
import random
import re
import threading
import time
from bisect import bisect_left
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from .. import __version__, faults
from ..core.process import ENGINE_SCHEMA_VERSION, EnsembleResult
from ..scenario import ScenarioSpec
from ..serve.cache import ResultCache, cache_key
from ..serve.envelope import EnvelopeError, error_envelope, prepare_spec
from ..serve.executor import (
    FROM_CACHE,
    FROM_DEDUP,
    FROM_RUN,
    WorkerPoolError,
    _run_shard,
    backoff_delay,
)
from .http import HttpError, Request, encode_response, read_request
from .sharding import ShardMap

__all__ = ["LatencyHistogram", "OwnerCancelled", "ScenarioService", "result_payload"]

#: Provenance label for a request that awaited another request's run.
FROM_COALESCED = "coalesced"
#: Provenance label for a request whose item failed validation.
FROM_ERROR = "error"

#: Request body cap: a batch of a few thousand specs fits comfortably.
DEFAULT_MAX_BODY = 8 << 20

#: Upper bound on memoised validations (canonical spec JSON strings);
#: far above any realistic working set, small enough to bound memory.
VALIDATION_MEMO_ENTRIES = 4096

#: Retry policy defaults for the worker tier (crash/stall recovery).  8
#: attempts puts exhaustion under an injected crash probability of 0.2 at
#: ~2.6e-6 per request — the chaos smoke's zero-5xx assertion is sound.
DEFAULT_WORKER_ATTEMPTS = 8

#: Work endpoints: the routes that execute simulations, and therefore the
#: ones deadlines bound and backpressure sheds.  Health, stats and cached
#: result lookups always answer.
_WORK_LABELS = frozenset({"POST /v1/simulate", "POST /v1/batch"})

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class OwnerCancelled(Exception):
    """The owning request of a coalesced key was cancelled mid-run.

    Set on the in-flight future (instead of the raw ``CancelledError``,
    which would tear through the followers' own ``wait_for`` guards) so
    every coalesced follower fails typed — the dispatcher maps this to a
    504, same as the owner's own deadline.
    """


def _finite(value: float) -> float | None:
    """NaN/inf → None: the wire format is strict JSON (``allow_nan=False``)."""
    value = float(value)
    return value if np.isfinite(value) else None


def result_payload(key: str, source: str, result: EnsembleResult) -> dict[str, object]:
    """JSON-able result envelope shared by simulate/batch/result endpoints.

    Carries enough to check end-to-end bit-identity from the client side:
    the full per-replica ``winners``/``rounds``/``converged`` vectors plus
    the :meth:`TraceSet.digest` (which covers dtypes, shapes and raw
    bytes of every recorded column).
    """
    trace = result.trace
    return {
        "key": key,
        "source": source,
        "replicas": result.replicas,
        "plurality_color": int(result.plurality_color),
        "plurality_win_rate": _finite(result.plurality_win_rate),
        "convergence_rate": _finite(result.convergence_rate),
        "winners": [int(w) for w in result.winners],
        "rounds": [int(r) for r in result.rounds],
        "converged": [bool(c) for c in result.converged],
        "rounds_summary": {
            name: _finite(value) for name, value in result.rounds_summary().items()
        },
        "stop_reasons": result.stop_reasons(),
        "trace": None
        if trace is None
        else {
            "metrics": list(trace.metrics),
            "every": trace.every,
            "rounds_recorded": trace.n_rounds,
            "replicas": trace.replicas,
            "digest": trace.digest(),
        },
    }


class LatencyHistogram:
    """Fixed log-spaced latency histogram with quantile readout.

    Buckets grow by √2 from 0.1 ms to ~100 s, so any latency is within
    ~20% of its bucket bound — plenty for p50/p95/p99 reporting without
    storing per-request samples.  Only touched from the event loop, so it
    needs no locking.
    """

    def __init__(self):
        bounds = [1e-4]
        while bounds[-1] < 100.0:
            bounds.append(bounds[-1] * 2 ** 0.5)
        self._bounds = bounds  # upper edge of each bucket, seconds
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[bisect_left(self._bounds, seconds)] += 1
        self.count += 1
        self.total += seconds

    def quantile(self, q: float) -> float | None:
        """Upper bucket edge holding the q-quantile (seconds); None when empty."""
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= target and bucket:
                return self._bounds[min(index, len(self._bounds) - 1)]
        return self._bounds[-1]

    def to_dict(self) -> dict[str, object]:
        def _ms(seconds: float | None) -> float | None:
            return None if seconds is None else round(seconds * 1e3, 3)

        return {
            "count": self.count,
            "mean_ms": _ms(self.total / self.count) if self.count else None,
            "p50_ms": _ms(self.quantile(0.50)),
            "p95_ms": _ms(self.quantile(0.95)),
            "p99_ms": _ms(self.quantile(0.99)),
        }


class ScenarioService:
    """One service instance: routes, stats, coalescing, worker tier.

    Parameters
    ----------
    cache:
        :class:`ResultCache` to probe and fill; ``None`` serves without
        caching (every request runs, ``/v1/result`` always 404s).
    workers:
        Process-pool width for cache misses.  ``0`` (default) executes
        misses on in-process threads — no pool start-up cost, the right
        mode for tests and smoke runs; ``>= 1`` starts a spawn-context
        pool of stateless workers on :meth:`start`.
    shards:
        Node names for the consistent-hash ring (default: just
        ``shard_self``).  ``shard_self`` must be listed; requests whose
        key another node owns are still served locally (single-host
        deployment) but carry the owner in the response ``shard`` field,
        and the mismatch is counted in ``/v1/stats``.
    deadline_seconds:
        Default per-request deadline for the work endpoints (``None`` —
        the default — means unbounded).  A client ``x-deadline-ms``
        header overrides it per request.  Exceeding the deadline answers
        504 and cancels the underlying run.
    max_in_flight:
        Concurrent-work cap; ``0`` (default) is unbounded.  Work requests
        arriving at the cap are shed with 429 + ``Retry-After`` instead
        of queueing without bound.
    worker_attempts:
        Total attempts per run before a crashed/stalled worker tier gives
        up with a 500 (each retry respawns the pool and backs off with
        jitter).
    worker_timeout:
        Seconds to wait for one worker attempt before declaring it
        stalled and retrying on a fresh pool (``None``: wait forever —
        rely on the request deadline instead).
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        *,
        workers: int = 0,
        shards: list[str] | None = None,
        shard_self: str = "local",
        max_body: int = DEFAULT_MAX_BODY,
        deadline_seconds: float | None = None,
        max_in_flight: int = 0,
        worker_attempts: int = DEFAULT_WORKER_ATTEMPTS,
        worker_timeout: float | None = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(f"deadline_seconds must be > 0, got {deadline_seconds}")
        if max_in_flight < 0:
            raise ValueError(f"max_in_flight must be >= 0, got {max_in_flight}")
        if worker_attempts < 1:
            raise ValueError(f"worker_attempts must be >= 1, got {worker_attempts}")
        if worker_timeout is not None and worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be > 0, got {worker_timeout}")
        self.cache = cache
        self.workers = int(workers)
        self.shard_self = shard_self
        self.shard_map = ShardMap(shards if shards else [shard_self])
        if shard_self not in self.shard_map.nodes:
            raise ValueError(
                f"shard_self {shard_self!r} is not in shards {list(self.shard_map.nodes)!r}"
            )
        self.max_body = int(max_body)
        self.deadline_seconds = None if deadline_seconds is None else float(deadline_seconds)
        self.max_in_flight = int(max_in_flight)
        self.worker_attempts = int(worker_attempts)
        self.worker_timeout = None if worker_timeout is None else float(worker_timeout)
        self._pool: ProcessPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._draining = False
        # Validation memo: canonical spec JSON → already passed validate().
        # Registry validation can materialise a topology graph (hundreds of
        # ms), so the warm path must not re-pay it per request.  Accessed
        # from handler worker threads; guarded by its own lock.
        self._validated: OrderedDict[str, None] = OrderedDict()
        self._validated_lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}
        self._errors: dict[str, int] = {}
        self.in_flight = 0
        self.runs = 0
        self.coalesced = 0
        self.remote_shard_requests = 0
        self.shed = 0
        self.deadline_hits = 0
        self.worker_retries = 0
        self.dropped_connections = 0
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self.workers > 0 and self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=mp.get_context("spawn")
            )
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self._started_at = time.monotonic()
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def drain(self, grace: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, then close.

        New work requests on surviving keep-alive connections answer 503
        (``Draining``) while existing in-flight work completes; after
        ``grace`` seconds any stragglers are abandoned to :meth:`close`.
        Returns True when in-flight work hit zero within the budget —
        what SIGTERM handling in ``python -m repro.service`` reports.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        budget = time.monotonic() + float(grace)
        while self.in_flight > 0 and time.monotonic() < budget:
            await asyncio.sleep(0.02)
        drained = self.in_flight == 0
        await self.close()
        return drained

    def _respawn_pool(self) -> None:
        """Replace a broken or stalled worker pool with a fresh one."""
        if self._pool is None:
            return
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=mp.get_context("spawn")
        )

    # -- connection / dispatch ----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, max_body=self.max_body)
                except HttpError as exc:
                    writer.write(
                        encode_response(
                            exc.status, {"error": error_envelope(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.headers.get("connection", "").lower() != "close"
                status, payload, extra_headers = await self._dispatch(request)
                if faults.fire("service.connection-drop") is not None:
                    # Injected network failure: hang up without writing the
                    # response, so clients exercise their reconnect path.
                    self.dropped_connections += 1
                    break
                if self._draining:
                    keep_alive = False  # shed keep-alives so drain converges
                writer.write(
                    encode_response(
                        status, payload, keep_alive=keep_alive, headers=extra_headers
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            writer.close()
            # CancelledError: event-loop teardown cancels handlers mid-close;
            # the socket is going away either way, so finish quietly.
            with contextlib.suppress(
                ConnectionResetError, BrokenPipeError, asyncio.CancelledError
            ):
                await writer.wait_closed()

    async def _dispatch(self, request: Request) -> tuple[int, dict, dict | None]:
        label, method, handler, argument = self._route(request)
        histogram = self._histograms.setdefault(label, LatencyHistogram())
        is_work = label in _WORK_LABELS
        if is_work and self._draining:
            self._errors[label] = self._errors.get(label, 0) + 1
            envelope = {
                "type": "Draining",
                "message": "service is draining; no new work accepted",
            }
            return 503, {"error": envelope}, None
        if is_work and self.max_in_flight and self.in_flight >= self.max_in_flight:
            # Shed rather than queue: the client's Retry-After backoff is
            # the queue, and it is bounded on *their* side.
            self.shed += 1
            self._errors[label] = self._errors.get(label, 0) + 1
            envelope = {
                "type": "Overloaded",
                "message": (
                    f"{self.in_flight} requests in flight (cap {self.max_in_flight}); "
                    "retry after backoff"
                ),
            }
            return 429, {"error": envelope}, {"Retry-After": "1"}
        rule = faults.fire("service.slow-response")
        if rule is not None:
            await asyncio.sleep(float(rule.params.get("seconds", 1.0)))
        self.in_flight += 1
        start = time.perf_counter()
        deadline = None
        try:
            if handler is None:
                raise HttpError(404, f"no route for {request.path!r}")
            if request.method != method:
                raise HttpError(405, f"{request.path} only accepts {method}")
            deadline = self._deadline_for(request) if is_work else None
            if deadline is not None:
                status, payload = await asyncio.wait_for(
                    handler(request, argument), deadline
                )
            else:
                status, payload = await handler(request, argument)
        except HttpError as exc:
            status, payload = exc.status, {"error": error_envelope(exc)}
        except TimeoutError:  # asyncio.wait_for: the deadline fired
            self.deadline_hits += 1
            budget = f"its {deadline * 1e3:.0f} ms deadline" if deadline else "a deadline"
            status, payload = 504, {
                "error": {"type": "DeadlineExceeded", "message": f"request exceeded {budget}"}
            }
        except OwnerCancelled as exc:
            # Coalesced follower whose owner was cancelled: same verdict
            # (and same status) as if this request had timed out itself.
            self.deadline_hits += 1
            status, payload = 504, {"error": error_envelope(exc)}
        except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the loop
            status, payload = 500, {"error": error_envelope(exc)}
        finally:
            self.in_flight -= 1
            histogram.observe(time.perf_counter() - start)
        if status >= 400:
            self._errors[label] = self._errors.get(label, 0) + 1
        return status, payload, None

    def _deadline_for(self, request: Request) -> float | None:
        """Effective deadline (seconds): ``x-deadline-ms`` header else config."""
        raw = request.headers.get("x-deadline-ms")
        if raw is None:
            return self.deadline_seconds
        try:
            ms = float(raw)
        except ValueError:
            raise HttpError(400, f"x-deadline-ms is not a number: {raw!r}") from None
        if ms <= 0:
            raise HttpError(400, f"x-deadline-ms must be > 0, got {raw}")
        return ms / 1e3

    def _route(self, request: Request):
        """Resolve one request to ``(stats label, method, handler, argument)``."""
        path = request.path.rstrip("/") or "/"
        if path == "/v1/health":
            return "GET /v1/health", "GET", self._handle_health, None
        if path == "/v1/stats":
            return "GET /v1/stats", "GET", self._handle_stats, None
        if path == "/v1/simulate":
            return "POST /v1/simulate", "POST", self._handle_simulate, None
        if path == "/v1/batch":
            return "POST /v1/batch", "POST", self._handle_batch, None
        if path.startswith("/v1/result/"):
            key = path[len("/v1/result/"):]
            return "GET /v1/result", "GET", self._handle_result, key
        return request.method + " " + path, request.method, None, None

    # -- execution core ------------------------------------------------------

    async def _obtain(self, spec: ScenarioSpec) -> tuple[str, str, EnsembleResult]:
        """Serve one validated spec: coalesce → cache → run; returns provenance."""
        key = self.cache.key_for(spec) if self.cache is not None else cache_key(spec)
        if self.shard_map.owner_of(key) != self.shard_self:
            self.remote_shard_requests += 1
        pending = self._inflight.get(key)
        if pending is not None:
            self.coalesced += 1
            return key, FROM_COALESCED, await pending
        # Register the future BEFORE the first await: between the in-flight
        # probe above and this line the coroutine never yields, so exactly
        # one request per key can become the owner — later duplicates land
        # on the branch above even while the owner is still probing the
        # cache in a thread.
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            if self.cache is not None:
                cached = await asyncio.to_thread(self.cache.get, key)
                if cached is not None:
                    future.set_result(cached)
                    return key, FROM_CACHE, cached
            result = await self._execute(key, spec)
            if self.cache is not None:
                await asyncio.to_thread(self.cache.put, key, result)
            self.runs += 1
            future.set_result(result)
            return key, FROM_RUN, result
        except BaseException as exc:
            # BaseException: a cancelled owner must not strand followers
            # on a forever-pending future.
            if not future.done():
                if isinstance(exc, asyncio.CancelledError):
                    # Deadline (or teardown) cancelled the owner: fail the
                    # followers typed — a raw CancelledError would tear
                    # through their own wait_for guards unrecognisably.
                    future.set_exception(
                        OwnerCancelled(
                            f"owning request for {key[:12]}… was cancelled before completing"
                        )
                    )
                else:
                    future.set_exception(exc)
                # Coalesced awaiters consume the exception; without any,
                # tell asyncio it is handled (it re-raises below regardless).
                future.exception()
            raise
        finally:
            del self._inflight[key]

    async def _execute(self, key: str, spec: ScenarioSpec) -> EnsembleResult:
        """Run one miss through the worker tier (stateless ``_run_shard`` task).

        Survives worker death and stalls: each failed attempt respawns the
        pool and retries after jittered exponential backoff, up to
        ``worker_attempts`` total.  A retry is safe by construction — the
        result is a pure function of the spec, so the bits are identical
        whichever attempt produces them.  A *deterministic* spec failure
        (the worker returned an error envelope) never retries; it is
        re-raised typed so the envelope reaches the wire unchanged.
        """
        shard = [(key, spec.to_json(indent=None))]
        # Deterministic jitter keyed on the content address: replayable
        # schedules, uncorrelated across concurrent requests.
        jitter = random.Random(int(key[:16], 16))
        last: BaseException | None = None
        for attempt in range(self.worker_attempts):
            if attempt:
                self.worker_retries += 1
                await asyncio.sleep(backoff_delay(attempt - 1, jitter))
            try:
                if self._pool is not None:
                    waiter = asyncio.get_running_loop().run_in_executor(
                        self._pool, _run_shard, shard
                    )
                    if self.worker_timeout is not None:
                        pairs = await asyncio.wait_for(
                            asyncio.shield(waiter), self.worker_timeout
                        )
                    else:
                        pairs = await waiter
                else:
                    pairs = await asyncio.to_thread(_run_shard, shard)
            except (BrokenProcessPool, faults.InjectedFault) as exc:
                last = exc
                self._respawn_pool()
                continue
            except TimeoutError:
                last = TimeoutError(
                    f"worker stalled past worker_timeout={self.worker_timeout}s"
                )
                self._respawn_pool()  # the stalled worker is wedged; replace it
                continue
            payload = pairs[0][1]
            if isinstance(payload, dict):  # per-item error envelope from the worker
                raise EnvelopeError(payload)
            return payload
        raise WorkerPoolError(
            f"worker execution failed after {self.worker_attempts} attempts"
        ) from last

    # -- handlers ------------------------------------------------------------

    async def _handle_health(self, request: Request, _argument) -> tuple[int, dict]:
        return 200, {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "schema_version": ENGINE_SCHEMA_VERSION,
            "workers": self.workers,
            "cache": self.cache is not None,
            "shard_self": self.shard_self,
            "draining": self._draining,
        }

    async def _handle_stats(self, request: Request, _argument) -> tuple[int, dict]:
        cache_stats = None
        if self.cache is not None:
            cache_stats = await asyncio.to_thread(self.cache.stats)
        requests = {}
        total_hits = total = 0
        for label, histogram in sorted(self._histograms.items()):
            requests[label] = {
                **histogram.to_dict(),
                "errors": self._errors.get(label, 0),
            }
        if cache_stats is not None:
            total_hits = cache_stats["hits"]
            total = cache_stats["hits"] + cache_stats["misses"]
        return 200, {
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "in_flight": self.in_flight,
            "runs": self.runs,
            "coalesced": self.coalesced,
            "remote_shard_requests": self.remote_shard_requests,
            "shed": self.shed,
            "deadline_hits": self.deadline_hits,
            "worker_retries": self.worker_retries,
            "dropped_connections": self.dropped_connections,
            "draining": self._draining,
            "limits": {
                "max_in_flight": self.max_in_flight or None,
                "deadline_ms": None
                if self.deadline_seconds is None
                else round(self.deadline_seconds * 1e3, 3),
                "worker_attempts": self.worker_attempts,
                "worker_timeout_s": self.worker_timeout,
            },
            "faults": faults.describe(),
            "cache": cache_stats,
            "cache_hit_rate": round(total_hits / total, 4) if total else None,
            "requests": requests,
            "shards": self.shard_map.describe(),
        }

    def _prepare(self, entry) -> tuple[ScenarioSpec | None, dict | None]:
        """:func:`prepare_spec` with the validation memo applied.

        Runs on a worker thread (``asyncio.to_thread``) so a cold
        validation never stalls the event loop; a spec whose canonical
        JSON already validated skips straight through.
        """
        spec, error = prepare_spec(entry, validate=False)
        if error is not None:
            return None, error
        token = spec.to_json(indent=None)
        with self._validated_lock:
            known = token in self._validated
            if known:
                self._validated.move_to_end(token)
        if not known:
            try:
                spec.validate()
            except Exception as exc:  # noqa: BLE001 — becomes the item envelope
                return None, error_envelope(exc)
            with self._validated_lock:
                self._validated[token] = None
                while len(self._validated) > VALIDATION_MEMO_ENTRIES:
                    self._validated.popitem(last=False)
        return spec, None

    async def _handle_simulate(self, request: Request, _argument) -> tuple[int, dict]:
        spec, error = await asyncio.to_thread(self._prepare, request.json())
        if error is not None:
            return 400, {"error": error}
        key, source, result = await self._obtain(spec)
        payload = result_payload(key, source, result)
        payload["shard"] = self.shard_map.owner_of(key)
        payload["spec"] = spec.to_dict()
        return 200, payload

    async def _handle_batch(self, request: Request, _argument) -> tuple[int, dict]:
        body = request.json()
        if isinstance(body, dict) and "scenarios" in body:
            body = body["scenarios"]
        if not isinstance(body, list) or not body:
            raise HttpError(
                400, 'batch body must be a non-empty JSON array (or {"scenarios": [...]})'
            )
        start = time.perf_counter()
        prepared = await asyncio.to_thread(
            lambda: [self._prepare(entry) for entry in body]
        )

        # Dedup valid items by key; the first occurrence owns the execution
        # slot (run_batch's discipline), later duplicates report "dedup".
        keys: list[str | None] = []
        owner_of: dict[str, int] = {}
        for position, (spec, error) in enumerate(prepared):
            if spec is None:
                keys.append(None)
                continue
            key = self.cache.key_for(spec) if self.cache is not None else cache_key(spec)
            keys.append(key)
            owner_of.setdefault(key, position)

        owners = list(owner_of.items())
        obtained = await asyncio.gather(
            *(self._obtain(prepared[position][0]) for _key, position in owners),
            return_exceptions=True,
        )
        outcome: dict[str, object] = {
            key: result for (key, _), result in zip(owners, obtained)
        }

        items: list[dict] = []
        counters = {FROM_CACHE: 0, FROM_RUN: 0, FROM_DEDUP: 0, FROM_COALESCED: 0}
        errors = 0
        for position, ((spec, error), key) in enumerate(zip(prepared, keys)):
            if error is not None:
                errors += 1
                items.append({"key": None, "source": FROM_ERROR, "error": error})
                continue
            value = outcome[key]
            if isinstance(value, BaseException):
                errors += 1
                items.append(
                    {"key": key, "source": FROM_ERROR, "error": error_envelope(value)}
                )
                continue
            _key, source, result = value
            if owner_of[key] != position:
                source = FROM_DEDUP
            counters[source] += 1
            item = result_payload(key, source, result)
            item["error"] = None
            items.append(item)
        return 200, {
            "requests": len(items),
            "unique": len(owner_of),
            "hits": counters[FROM_CACHE],
            "misses": counters[FROM_RUN],
            "deduped": counters[FROM_DEDUP],
            "coalesced": counters[FROM_COALESCED],
            "errors": errors,
            "wall_seconds": round(time.perf_counter() - start, 6),
            "items": items,
        }

    async def _handle_result(self, request: Request, key: str) -> tuple[int, dict]:
        if not _KEY_RE.match(key):
            raise HttpError(400, f"result key must be a sha256 hex digest, got {key!r}")
        if self.cache is None:
            raise HttpError(404, "service is running without a result cache")
        cached = await asyncio.to_thread(self.cache.get, key)
        if cached is None:
            raise HttpError(404, f"no cached result under key {key}")
        return 200, result_payload(key, FROM_CACHE, cached)
