"""The scenario service: asyncio HTTP front over the serve substrate.

:class:`ScenarioService` owns one listening socket, one
:class:`~repro.serve.cache.ResultCache`, an optional process-pool worker
tier, the in-flight coalescing table and the consistent-hash
:class:`~repro.service.sharding.ShardMap`.  Request handling is a
straight pipeline::

    parse JSON  →  strict ScenarioSpec validation (error envelope on
    failure)  →  content-addressed cache_key  →  shard lookup  →
    in-flight coalescing  →  cache probe  →  miss dispatched to the
    worker tier  →  store  →  JSON payload

Two concurrent requests for the same key run the simulation **once**:
the first becomes the owner of an in-flight future, later arrivals await
it (``source: "coalesced"``, counted in ``/v1/stats``).  Workers reuse
:func:`repro.serve.executor._run_shard` — the same stateless
spec-JSON-in, result-out discipline as ``run_batch`` — over a
spawn-context :class:`~concurrent.futures.ProcessPoolExecutor`;
``workers=0`` executes misses on threads in-process (the
dependency-light mode used by tests and the smoke harness).  Blocking
cache I/O runs via :func:`asyncio.to_thread`, which is what the
:class:`ResultCache` locking added alongside this module makes safe.

See the package docstring (:mod:`repro.service`) for the wire schema.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing as mp
import re
import threading
import time
from bisect import bisect_left
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .. import __version__
from ..core.process import ENGINE_SCHEMA_VERSION, EnsembleResult
from ..scenario import ScenarioSpec
from ..serve.cache import ResultCache, cache_key
from ..serve.envelope import error_envelope, prepare_spec
from ..serve.executor import FROM_CACHE, FROM_DEDUP, FROM_RUN, _run_shard
from .http import HttpError, Request, encode_response, read_request
from .sharding import ShardMap

__all__ = ["LatencyHistogram", "ScenarioService", "result_payload"]

#: Provenance label for a request that awaited another request's run.
FROM_COALESCED = "coalesced"
#: Provenance label for a request whose item failed validation.
FROM_ERROR = "error"

#: Request body cap: a batch of a few thousand specs fits comfortably.
DEFAULT_MAX_BODY = 8 << 20

#: Upper bound on memoised validations (canonical spec JSON strings);
#: far above any realistic working set, small enough to bound memory.
VALIDATION_MEMO_ENTRIES = 4096

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


def _finite(value: float) -> float | None:
    """NaN/inf → None: the wire format is strict JSON (``allow_nan=False``)."""
    value = float(value)
    return value if np.isfinite(value) else None


def result_payload(key: str, source: str, result: EnsembleResult) -> dict[str, object]:
    """JSON-able result envelope shared by simulate/batch/result endpoints.

    Carries enough to check end-to-end bit-identity from the client side:
    the full per-replica ``winners``/``rounds``/``converged`` vectors plus
    the :meth:`TraceSet.digest` (which covers dtypes, shapes and raw
    bytes of every recorded column).
    """
    trace = result.trace
    return {
        "key": key,
        "source": source,
        "replicas": result.replicas,
        "plurality_color": int(result.plurality_color),
        "plurality_win_rate": _finite(result.plurality_win_rate),
        "convergence_rate": _finite(result.convergence_rate),
        "winners": [int(w) for w in result.winners],
        "rounds": [int(r) for r in result.rounds],
        "converged": [bool(c) for c in result.converged],
        "rounds_summary": {
            name: _finite(value) for name, value in result.rounds_summary().items()
        },
        "stop_reasons": result.stop_reasons(),
        "trace": None
        if trace is None
        else {
            "metrics": list(trace.metrics),
            "every": trace.every,
            "rounds_recorded": trace.n_rounds,
            "replicas": trace.replicas,
            "digest": trace.digest(),
        },
    }


class LatencyHistogram:
    """Fixed log-spaced latency histogram with quantile readout.

    Buckets grow by √2 from 0.1 ms to ~100 s, so any latency is within
    ~20% of its bucket bound — plenty for p50/p95/p99 reporting without
    storing per-request samples.  Only touched from the event loop, so it
    needs no locking.
    """

    def __init__(self):
        bounds = [1e-4]
        while bounds[-1] < 100.0:
            bounds.append(bounds[-1] * 2 ** 0.5)
        self._bounds = bounds  # upper edge of each bucket, seconds
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[bisect_left(self._bounds, seconds)] += 1
        self.count += 1
        self.total += seconds

    def quantile(self, q: float) -> float | None:
        """Upper bucket edge holding the q-quantile (seconds); None when empty."""
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= target and bucket:
                return self._bounds[min(index, len(self._bounds) - 1)]
        return self._bounds[-1]

    def to_dict(self) -> dict[str, object]:
        def _ms(seconds: float | None) -> float | None:
            return None if seconds is None else round(seconds * 1e3, 3)

        return {
            "count": self.count,
            "mean_ms": _ms(self.total / self.count) if self.count else None,
            "p50_ms": _ms(self.quantile(0.50)),
            "p95_ms": _ms(self.quantile(0.95)),
            "p99_ms": _ms(self.quantile(0.99)),
        }


class ScenarioService:
    """One service instance: routes, stats, coalescing, worker tier.

    Parameters
    ----------
    cache:
        :class:`ResultCache` to probe and fill; ``None`` serves without
        caching (every request runs, ``/v1/result`` always 404s).
    workers:
        Process-pool width for cache misses.  ``0`` (default) executes
        misses on in-process threads — no pool start-up cost, the right
        mode for tests and smoke runs; ``>= 1`` starts a spawn-context
        pool of stateless workers on :meth:`start`.
    shards:
        Node names for the consistent-hash ring (default: just
        ``shard_self``).  ``shard_self`` must be listed; requests whose
        key another node owns are still served locally (single-host
        deployment) but carry the owner in the response ``shard`` field,
        and the mismatch is counted in ``/v1/stats``.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        *,
        workers: int = 0,
        shards: list[str] | None = None,
        shard_self: str = "local",
        max_body: int = DEFAULT_MAX_BODY,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.cache = cache
        self.workers = int(workers)
        self.shard_self = shard_self
        self.shard_map = ShardMap(shards if shards else [shard_self])
        if shard_self not in self.shard_map.nodes:
            raise ValueError(
                f"shard_self {shard_self!r} is not in shards {list(self.shard_map.nodes)!r}"
            )
        self.max_body = int(max_body)
        self._pool: ProcessPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        # Validation memo: canonical spec JSON → already passed validate().
        # Registry validation can materialise a topology graph (hundreds of
        # ms), so the warm path must not re-pay it per request.  Accessed
        # from handler worker threads; guarded by its own lock.
        self._validated: OrderedDict[str, None] = OrderedDict()
        self._validated_lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}
        self._errors: dict[str, int] = {}
        self.in_flight = 0
        self.runs = 0
        self.coalesced = 0
        self.remote_shard_requests = 0
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self.workers > 0 and self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=mp.get_context("spawn")
            )
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self._started_at = time.monotonic()
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- connection / dispatch ----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, max_body=self.max_body)
                except HttpError as exc:
                    writer.write(
                        encode_response(
                            exc.status, {"error": error_envelope(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.headers.get("connection", "").lower() != "close"
                status, payload = await self._dispatch(request)
                writer.write(encode_response(status, payload, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            writer.close()
            # CancelledError: event-loop teardown cancels handlers mid-close;
            # the socket is going away either way, so finish quietly.
            with contextlib.suppress(
                ConnectionResetError, BrokenPipeError, asyncio.CancelledError
            ):
                await writer.wait_closed()

    async def _dispatch(self, request: Request) -> tuple[int, dict]:
        label, method, handler, argument = self._route(request)
        histogram = self._histograms.setdefault(label, LatencyHistogram())
        self.in_flight += 1
        start = time.perf_counter()
        try:
            if handler is None:
                raise HttpError(404, f"no route for {request.path!r}")
            if request.method != method:
                raise HttpError(405, f"{request.path} only accepts {method}")
            status, payload = await handler(request, argument)
        except HttpError as exc:
            status, payload = exc.status, {"error": error_envelope(exc)}
        except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the loop
            status, payload = 500, {"error": error_envelope(exc)}
        finally:
            self.in_flight -= 1
            histogram.observe(time.perf_counter() - start)
        if status >= 400:
            self._errors[label] = self._errors.get(label, 0) + 1
        return status, payload

    def _route(self, request: Request):
        """Resolve one request to ``(stats label, method, handler, argument)``."""
        path = request.path.rstrip("/") or "/"
        if path == "/v1/health":
            return "GET /v1/health", "GET", self._handle_health, None
        if path == "/v1/stats":
            return "GET /v1/stats", "GET", self._handle_stats, None
        if path == "/v1/simulate":
            return "POST /v1/simulate", "POST", self._handle_simulate, None
        if path == "/v1/batch":
            return "POST /v1/batch", "POST", self._handle_batch, None
        if path.startswith("/v1/result/"):
            key = path[len("/v1/result/"):]
            return "GET /v1/result", "GET", self._handle_result, key
        return request.method + " " + path, request.method, None, None

    # -- execution core ------------------------------------------------------

    async def _obtain(self, spec: ScenarioSpec) -> tuple[str, str, EnsembleResult]:
        """Serve one validated spec: coalesce → cache → run; returns provenance."""
        key = self.cache.key_for(spec) if self.cache is not None else cache_key(spec)
        if self.shard_map.owner_of(key) != self.shard_self:
            self.remote_shard_requests += 1
        pending = self._inflight.get(key)
        if pending is not None:
            self.coalesced += 1
            return key, FROM_COALESCED, await pending
        # Register the future BEFORE the first await: between the in-flight
        # probe above and this line the coroutine never yields, so exactly
        # one request per key can become the owner — later duplicates land
        # on the branch above even while the owner is still probing the
        # cache in a thread.
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            if self.cache is not None:
                cached = await asyncio.to_thread(self.cache.get, key)
                if cached is not None:
                    future.set_result(cached)
                    return key, FROM_CACHE, cached
            result = await self._execute(key, spec)
            if self.cache is not None:
                await asyncio.to_thread(self.cache.put, key, result)
            self.runs += 1
            future.set_result(result)
            return key, FROM_RUN, result
        except BaseException as exc:
            # BaseException: a cancelled owner must not strand followers
            # on a forever-pending future.
            if not future.done():
                future.set_exception(exc)
                # Coalesced awaiters consume the exception; without any,
                # tell asyncio it is handled (it re-raises below regardless).
                future.exception()
            raise
        finally:
            del self._inflight[key]

    async def _execute(self, key: str, spec: ScenarioSpec) -> EnsembleResult:
        """Run one miss through the worker tier (stateless ``_run_shard`` task)."""
        shard = [(key, spec.to_json(indent=None))]
        if self._pool is not None:
            pairs = await asyncio.get_running_loop().run_in_executor(
                self._pool, _run_shard, shard
            )
        else:
            pairs = await asyncio.to_thread(_run_shard, shard)
        return pairs[0][1]

    # -- handlers ------------------------------------------------------------

    async def _handle_health(self, request: Request, _argument) -> tuple[int, dict]:
        return 200, {
            "status": "ok",
            "version": __version__,
            "schema_version": ENGINE_SCHEMA_VERSION,
            "workers": self.workers,
            "cache": self.cache is not None,
            "shard_self": self.shard_self,
        }

    async def _handle_stats(self, request: Request, _argument) -> tuple[int, dict]:
        cache_stats = None
        if self.cache is not None:
            cache_stats = await asyncio.to_thread(self.cache.stats)
        requests = {}
        total_hits = total = 0
        for label, histogram in sorted(self._histograms.items()):
            requests[label] = {
                **histogram.to_dict(),
                "errors": self._errors.get(label, 0),
            }
        if cache_stats is not None:
            total_hits = cache_stats["hits"]
            total = cache_stats["hits"] + cache_stats["misses"]
        return 200, {
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "in_flight": self.in_flight,
            "runs": self.runs,
            "coalesced": self.coalesced,
            "remote_shard_requests": self.remote_shard_requests,
            "cache": cache_stats,
            "cache_hit_rate": round(total_hits / total, 4) if total else None,
            "requests": requests,
            "shards": self.shard_map.describe(),
        }

    def _prepare(self, entry) -> tuple[ScenarioSpec | None, dict | None]:
        """:func:`prepare_spec` with the validation memo applied.

        Runs on a worker thread (``asyncio.to_thread``) so a cold
        validation never stalls the event loop; a spec whose canonical
        JSON already validated skips straight through.
        """
        spec, error = prepare_spec(entry, validate=False)
        if error is not None:
            return None, error
        token = spec.to_json(indent=None)
        with self._validated_lock:
            known = token in self._validated
            if known:
                self._validated.move_to_end(token)
        if not known:
            try:
                spec.validate()
            except Exception as exc:  # noqa: BLE001 — becomes the item envelope
                return None, error_envelope(exc)
            with self._validated_lock:
                self._validated[token] = None
                while len(self._validated) > VALIDATION_MEMO_ENTRIES:
                    self._validated.popitem(last=False)
        return spec, None

    async def _handle_simulate(self, request: Request, _argument) -> tuple[int, dict]:
        spec, error = await asyncio.to_thread(self._prepare, request.json())
        if error is not None:
            return 400, {"error": error}
        key, source, result = await self._obtain(spec)
        payload = result_payload(key, source, result)
        payload["shard"] = self.shard_map.owner_of(key)
        payload["spec"] = spec.to_dict()
        return 200, payload

    async def _handle_batch(self, request: Request, _argument) -> tuple[int, dict]:
        body = request.json()
        if isinstance(body, dict) and "scenarios" in body:
            body = body["scenarios"]
        if not isinstance(body, list) or not body:
            raise HttpError(
                400, 'batch body must be a non-empty JSON array (or {"scenarios": [...]})'
            )
        start = time.perf_counter()
        prepared = await asyncio.to_thread(
            lambda: [self._prepare(entry) for entry in body]
        )

        # Dedup valid items by key; the first occurrence owns the execution
        # slot (run_batch's discipline), later duplicates report "dedup".
        keys: list[str | None] = []
        owner_of: dict[str, int] = {}
        for position, (spec, error) in enumerate(prepared):
            if spec is None:
                keys.append(None)
                continue
            key = self.cache.key_for(spec) if self.cache is not None else cache_key(spec)
            keys.append(key)
            owner_of.setdefault(key, position)

        owners = list(owner_of.items())
        obtained = await asyncio.gather(
            *(self._obtain(prepared[position][0]) for _key, position in owners),
            return_exceptions=True,
        )
        outcome: dict[str, object] = {
            key: result for (key, _), result in zip(owners, obtained)
        }

        items: list[dict] = []
        counters = {FROM_CACHE: 0, FROM_RUN: 0, FROM_DEDUP: 0, FROM_COALESCED: 0}
        errors = 0
        for position, ((spec, error), key) in enumerate(zip(prepared, keys)):
            if error is not None:
                errors += 1
                items.append({"key": None, "source": FROM_ERROR, "error": error})
                continue
            value = outcome[key]
            if isinstance(value, BaseException):
                errors += 1
                items.append(
                    {"key": key, "source": FROM_ERROR, "error": error_envelope(value)}
                )
                continue
            _key, source, result = value
            if owner_of[key] != position:
                source = FROM_DEDUP
            counters[source] += 1
            item = result_payload(key, source, result)
            item["error"] = None
            items.append(item)
        return 200, {
            "requests": len(items),
            "unique": len(owner_of),
            "hits": counters[FROM_CACHE],
            "misses": counters[FROM_RUN],
            "deduped": counters[FROM_DEDUP],
            "coalesced": counters[FROM_COALESCED],
            "errors": errors,
            "wall_seconds": round(time.perf_counter() - start, 6),
            "items": items,
        }

    async def _handle_result(self, request: Request, key: str) -> tuple[int, dict]:
        if not _KEY_RE.match(key):
            raise HttpError(400, f"result key must be a sha256 hex digest, got {key!r}")
        if self.cache is None:
            raise HttpError(404, "service is running without a result cache")
        cached = await asyncio.to_thread(self.cache.get, key)
        if cached is None:
            raise HttpError(404, f"no cached result under key {key}")
        return 200, result_payload(key, FROM_CACHE, cached)
