"""Sustained-load harness: seeded corpus + async replay driver.

Two halves, both deterministic:

* :func:`generate_corpus` builds a scenario corpus from the registries —
  every entry is a strict-validated :class:`ScenarioSpec` dict with a
  concrete seed, sized to run in milliseconds on the counts engines —
  and :func:`corpus_json` renders it byte-identically at a fixed
  ``seed`` (asserted in the tests; ``benchmarks/load/corpus.json`` is
  the committed instance).  A deterministic tail of duplicate entries
  exercises dedup/coalescing the way real repeated traffic would.

* :func:`run_load` replays a corpus against a live service at a target
  concurrency (one :class:`AsyncConnection` per virtual user, shared
  work queue), in two passes — **cold** (every unique spec simulates)
  then **warm** (every request is a cache hit) — followed by a
  ``/v1/result`` lookup sweep.  The report carries client-observed
  p50/p95/p99 per phase, requests/sec, per-request provenance counts,
  the server's ``/v1/stats`` delta (hit rate, coalescing), and a
  ``replay_identical`` verdict: cold, warm and lookup must agree on
  winners/rounds and trace digest for every key.

:func:`drive` is the CLI entry (``repro load``): it optionally spawns a
fresh service subprocess (``python -m repro.service``) with an empty
cache so the cold pass is genuinely cold, replays, applies the p95
budget, and returns the JSON report.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from .. import faults
from ..scenario import ScenarioSpec
from .client import AsyncConnection, RetryPolicy, ServiceClient, ServiceUnavailable

__all__ = [
    "corpus_json",
    "drive",
    "generate_corpus",
    "run_load",
    "spawn_service",
    "write_corpus",
]

#: Default committed corpus location, relative to the repository root.
DEFAULT_CORPUS = "benchmarks/load/corpus.json"

#: Smoke tier: first N corpus entries, low concurrency, generous budget.
SMOKE_ENTRIES = 8
SMOKE_CONCURRENCY = 2

_DYNAMICS = (
    ("3-majority", {}),
    ("h-plurality", {"h": 2}),
    ("h-plurality", {"h": 3}),
)
_WORKLOADS = (
    ("paper-biased", {}),
    ("geometric-tail", {"ratio": 0.9}),
)


def generate_corpus(seed: int = 0, unique: int = 24, duplicates: int | None = None) -> list[dict]:
    """Deterministic scenario corpus drawn from the registries.

    ``unique`` distinct specs (sequential spec seeds, sampled dynamics /
    workload / size) followed by ``duplicates`` exact repeats of sampled
    earlier entries (default ``unique // 4``).  Every entry round-trips
    through strict validation, so the corpus is guaranteed servable.
    """
    if unique < 1:
        raise ValueError(f"unique must be >= 1, got {unique}")
    duplicates = unique // 4 if duplicates is None else duplicates
    rng = np.random.default_rng(seed)
    entries: list[dict] = []
    for index in range(unique):
        dynamics, dynamics_params = _DYNAMICS[int(rng.integers(len(_DYNAMICS)))]
        initial, initial_params = _WORKLOADS[int(rng.integers(len(_WORKLOADS)))]
        spec = ScenarioSpec(
            dynamics=dynamics,
            dynamics_params=dict(dynamics_params),
            initial=initial,
            initial_params=dict(initial_params),
            n=int(rng.integers(4, 25)) * 1000,
            k=int(rng.choice([3, 4, 6, 8])),
            replicas=int(rng.choice([4, 8])),
            max_rounds=800,
            stopping={"rule": "plurality-fraction", "fraction": 0.9},
            # Half the corpus records a trace so cold/warm digest identity
            # is exercised over the wire, not just winners/rounds.
            record={"metrics": ["bias", "plurality-fraction"], "every": 1}
            if index % 2 == 0
            else None,
            seed=index,
        ).validate()
        entries.append(spec.to_dict())
    for _ in range(duplicates):
        entries.append(dict(entries[int(rng.integers(unique))]))
    return entries


def corpus_json(seed: int = 0, unique: int = 24, duplicates: int | None = None) -> str:
    """The corpus rendered canonically (sorted keys, 2-space indent, LF)."""
    entries = generate_corpus(seed=seed, unique=unique, duplicates=duplicates)
    return json.dumps(entries, indent=2, sort_keys=True) + "\n"


def write_corpus(path, seed: int = 0, unique: int = 24, duplicates: int | None = None) -> int:
    """Write the corpus to ``path``; returns the number of entries."""
    entries = generate_corpus(seed=seed, unique=unique, duplicates=duplicates)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


# -- replay driver -----------------------------------------------------------


def _identity_view(payload: dict) -> dict:
    """The fields two servings of the same key must agree on, bit for bit."""
    return {
        "key": payload["key"],
        "winners": payload["winners"],
        "rounds": payload["rounds"],
        "converged": payload["converged"],
        "plurality_color": payload["plurality_color"],
        "stop_reasons": payload["stop_reasons"],
        "trace_digest": None if payload["trace"] is None else payload["trace"]["digest"],
    }


#: Client-side retry attempts per request in the replay driver — generous,
#: because under an armed chaos plan a request can be shed (429), deadline
#: (504) or lose its connection several times and still must complete for
#: the bit-identity verdict to be checkable.
REPLAY_RETRY_ATTEMPTS = 6


async def _replay_phase(
    host: str,
    port: int,
    requests: list[tuple[str, str, dict | None]],
    concurrency: int,
    *,
    retry_attempts: int = REPLAY_RETRY_ATTEMPTS,
) -> tuple[list[dict], list[float], float, dict]:
    """Drive ``requests`` (method, path, payload) through N user connections.

    Every virtual user retries degraded responses (429/5xx, per
    :class:`RetryPolicy`) and transport failures with capped backoff —
    safe because requests are idempotent by content address.  Returns
    per-request response payloads (request order), per-request
    client-observed latencies in seconds (successful attempts), the phase
    wall time, and a degradation counter dict: every status observed
    (including retried attempts), retries taken, transport failures, and
    reconnects.
    """
    queue: asyncio.Queue[tuple[int, tuple[str, str, dict | None]]] = asyncio.Queue()
    for item in enumerate(requests):
        queue.put_nowait(item)
    payloads: list[dict | None] = [None] * len(requests)
    latencies: list[float] = []
    counters = {"statuses": {}, "retried": 0, "unavailable": 0, "reconnects": 0}
    policy = RetryPolicy(attempts=retry_attempts, rng=random.Random(0))

    async def _one(conn: AsyncConnection, method, path, payload) -> dict:
        for attempt in range(policy.attempts):
            if attempt:
                counters["retried"] += 1
                retry_after = conn.last_headers.get("retry-after")
                try:
                    retry_after = None if retry_after is None else float(retry_after)
                except ValueError:
                    retry_after = None
                await asyncio.sleep(policy.delay(attempt - 1, retry_after))
            start = time.perf_counter()
            try:
                status, body = await conn.request_json(method, path, payload)
            except ServiceUnavailable:
                counters["unavailable"] += 1
                if attempt == policy.attempts - 1:
                    raise
                continue
            counters["statuses"][status] = counters["statuses"].get(status, 0) + 1
            if status < 400:
                latencies.append(time.perf_counter() - start)
                return body
            if status not in policy.statuses or attempt == policy.attempts - 1:
                raise RuntimeError(f"{method} {path} failed with {status}: {body}")
        raise AssertionError("unreachable")  # pragma: no cover

    async def user() -> None:
        conn = await AsyncConnection.open(host, port)
        try:
            while True:
                try:
                    index, (method, path, payload) = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                payloads[index] = await _one(conn, method, path, payload)
        finally:
            counters["reconnects"] += conn.reconnects
            await conn.close()

    start = time.perf_counter()
    await asyncio.gather(*(user() for _ in range(max(1, concurrency))))
    wall = time.perf_counter() - start
    return payloads, latencies, wall, counters


def _phase_summary(
    payloads: list[dict], latencies: list[float], wall: float, counters: dict | None = None
) -> dict:
    sources: dict[str, int] = {}
    for payload in payloads:
        source = payload.get("source", "?")
        sources[source] = sources.get(source, 0) + 1
    samples = np.asarray(latencies) * 1e3
    p50, p95, p99 = (float(v) for v in np.percentile(samples, [50, 95, 99]))
    summary = {
        "requests": len(payloads),
        "wall_seconds": round(wall, 4),
        "rps": round(len(payloads) / wall, 2) if wall > 0 else None,
        "latency_ms": {
            "mean": round(float(samples.mean()), 3),
            "p50": round(p50, 3),
            "p95": round(p95, 3),
            "p99": round(p99, 3),
            "max": round(float(samples.max()), 3),
        },
        "sources": sources,
    }
    if counters is not None:
        summary["statuses"] = {str(k): v for k, v in sorted(counters["statuses"].items())}
        summary["retried"] = counters["retried"]
        summary["reconnects"] = counters["reconnects"]
    return summary


async def run_load(host: str, port: int, specs: list[dict], *, concurrency: int = 4) -> dict:
    """Cold pass → warm pass → lookup sweep; returns the full report dict."""
    probe = await AsyncConnection.open(host, port)
    try:
        status, health = await probe.request_json("GET", "/v1/health")
        if status != 200:
            raise RuntimeError(f"/v1/health answered {status}: {health}")
        _, stats_before = await probe.request_json("GET", "/v1/stats")
    finally:
        await probe.close()

    simulate_requests = [("POST", "/v1/simulate", spec) for spec in specs]
    cold_payloads, cold_latencies, cold_wall, cold_counters = await _replay_phase(
        host, port, simulate_requests, concurrency
    )
    warm_payloads, warm_latencies, warm_wall, warm_counters = await _replay_phase(
        host, port, simulate_requests, concurrency
    )

    cold_views = [_identity_view(p) for p in cold_payloads]
    warm_views = [_identity_view(p) for p in warm_payloads]
    identical = cold_views == warm_views

    unique_keys = sorted({view["key"] for view in cold_views})
    lookup_requests = [("GET", f"/v1/result/{key}", None) for key in unique_keys]
    lookup_payloads, lookup_latencies, lookup_wall, lookup_counters = await _replay_phase(
        host, port, lookup_requests, concurrency
    )
    by_key = {view["key"]: view for view in cold_views}
    identical = identical and all(
        _identity_view(payload) == by_key[payload["key"]] for payload in lookup_payloads
    )

    probe = await AsyncConnection.open(host, port)
    try:
        _, stats_after = await probe.request_json("GET", "/v1/stats")
    finally:
        await probe.close()

    return {
        "health": health,
        "concurrency": concurrency,
        "corpus_requests": len(specs),
        "unique_keys": len(unique_keys),
        "phases": {
            "cold": _phase_summary(cold_payloads, cold_latencies, cold_wall, cold_counters),
            "warm": _phase_summary(warm_payloads, warm_latencies, warm_wall, warm_counters),
            "lookup": _phase_summary(
                lookup_payloads, lookup_latencies, lookup_wall, lookup_counters
            ),
        },
        "replay_identical": identical,
        "degraded": _degraded_verdict(
            [cold_counters, warm_counters, lookup_counters], stats_before, stats_after
        ),
        "server_stats": stats_after,
        "server_stats_before": stats_before,
    }


def _degraded_verdict(phase_counters: list[dict], stats_before: dict, stats_after: dict) -> dict:
    """Aggregate degradation report + the ``ok`` verdict.

    ``ok`` means every request ultimately succeeded with only *survivable*
    degradation along the way: shed (429) and deadline (504) responses are
    allowed — they are the resilience layer doing its job — but any other
    5xx is a real failure.  Counts are per-run deltas so a long-lived
    server can be load-tested repeatedly.
    """
    statuses: dict[int, int] = {}
    retried = unavailable = reconnects = 0
    for counters in phase_counters:
        for status, count in counters["statuses"].items():
            statuses[status] = statuses.get(status, 0) + count
        retried += counters["retried"]
        unavailable += counters["unavailable"]
        reconnects += counters["reconnects"]

    def _delta(field: str) -> int | None:
        before, after = stats_before.get(field), stats_after.get(field)
        if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
            return None
        return int(after - before)

    def _cache_delta(field: str) -> int | None:
        before = (stats_before.get("cache") or {}).get(field)
        after = (stats_after.get("cache") or {}).get(field)
        if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
            return None
        return int(after - before)

    disallowed = {
        str(status): count
        for status, count in sorted(statuses.items())
        if status >= 500 and status != 504
    }
    return {
        "ok": not disallowed,
        "statuses": {str(status): count for status, count in sorted(statuses.items())},
        "disallowed_statuses": disallowed,
        "retried": retried,
        "unavailable": unavailable,
        "reconnects": reconnects,
        "shed": _delta("shed"),
        "deadline_hits": _delta("deadline_hits"),
        "worker_retries": _delta("worker_retries"),
        "dropped_connections": _delta("dropped_connections"),
        "cache_quarantined": _cache_delta("quarantined"),
        "cache_read_errors": _cache_delta("read_errors"),
        "faults": stats_after.get("faults"),
    }


# -- service spawning / CLI orchestration ------------------------------------


def _free_port(host: str) -> int:
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def spawn_service(
    *,
    cache_dir: str,
    workers: int = 0,
    host: str = "127.0.0.1",
    timeout: float = 60.0,
    fault_plan: str | None = None,
    deadline_ms: float | None = None,
    max_in_flight: int = 0,
    memory_entries: int | None = None,
) -> tuple[subprocess.Popen, str, int]:
    """Start ``python -m repro.service`` and wait for ``/v1/health``.

    ``fault_plan`` (inline JSON or ``@path``) arms :mod:`repro.faults` in
    the child — and, via ``$REPRO_FAULT_PLAN``, in every worker the child
    spawns.  ``memory_entries`` shrinks the cache's in-memory LRU; the
    chaos smoke sets 1 so warm traffic actually reads disk, which is the
    only way the corruption-quarantine path can fire under load.
    """
    port = _free_port(host)
    package_root = str(Path(__file__).resolve().parents[2])  # .../src
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    argv = [
        sys.executable,
        "-m",
        "repro.service",
        "--host",
        host,
        "--port",
        str(port),
        "--workers",
        str(workers),
        "--cache-dir",
        cache_dir,
    ]
    if fault_plan:
        env[faults.ENV_VAR] = fault_plan
    if deadline_ms is not None:
        argv += ["--deadline-ms", str(deadline_ms)]
    if max_in_flight:
        argv += ["--max-in-flight", str(max_in_flight)]
    if memory_entries is not None:
        argv += ["--memory-entries", str(memory_entries)]
    process = subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    client = ServiceClient(host, port, timeout=5.0)
    deadline = time.perf_counter() + timeout
    try:
        while True:
            if process.poll() is not None:
                output = process.stdout.read() if process.stdout else ""
                raise RuntimeError(
                    f"service exited with {process.returncode} before serving:\n{output}"
                )
            try:
                client.health()
                return process, host, port
            except Exception:
                if time.perf_counter() > deadline:
                    process.terminate()
                    raise RuntimeError(f"service did not answer /v1/health in {timeout}s")
                time.sleep(0.1)
    finally:
        client.close()


def drive(
    specs: list[dict],
    *,
    concurrency: int = 4,
    server: tuple[str, int] | None = None,
    service_workers: int = 0,
    p95_budget_ms: float | None = None,
    fault_plan: str | None = None,
    deadline_ms: float | None = None,
    max_in_flight: int = 0,
    memory_entries: int | None = None,
) -> dict:
    """Replay ``specs``; spawn a fresh cold service unless ``server`` is given.

    The budget (when set) applies to the **warm** ``/v1/simulate`` p95 —
    the steady-state read path the service exists for.  The verdict lands
    in the report under ``budget``; callers decide the exit code.
    ``fault_plan``/``deadline_ms``/``max_in_flight``/``memory_entries``
    configure the spawned service (ignored with an external ``server``) —
    the chaos smoke's knobs.
    """
    process = None
    tmp_cache = None
    if server is None:
        tmp_cache = tempfile.mkdtemp(prefix="repro-load-cache-")
        process, host, port = spawn_service(
            cache_dir=tmp_cache,
            workers=service_workers,
            fault_plan=fault_plan,
            deadline_ms=deadline_ms,
            max_in_flight=max_in_flight,
            memory_entries=memory_entries,
        )
    else:
        host, port = server
    try:
        report = asyncio.run(run_load(host, port, specs, concurrency=concurrency))
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
    report["spawned_service"] = process is not None
    if fault_plan:
        if fault_plan.startswith("@"):
            plan = faults.FaultPlan.from_file(fault_plan[1:])
        else:
            plan = faults.FaultPlan.from_json(fault_plan)
        report["fault_plan"] = plan.to_dict()
    else:
        report["fault_plan"] = None
    if p95_budget_ms is not None:
        warm_p95 = report["phases"]["warm"]["latency_ms"]["p95"]
        report["budget"] = {
            "p95_budget_ms": p95_budget_ms,
            "warm_p95_ms": warm_p95,
            "within_budget": warm_p95 <= p95_budget_ms,
        }
    return report
