"""Network-facing scenario service: asyncio HTTP/JSON over ``repro.serve``.

A :class:`~repro.scenario.ScenarioSpec` is already a strict, hashable
JSON payload, and its ensemble result is a pure function of (canonical
spec JSON, seed, engine schema version) — so serving simulations is a
read-heavy, content-addressed workload.  This package puts a socket in
front of that fact with **no new runtime dependency**: the HTTP/1.1
framing is hand-rolled on :mod:`asyncio` streams (:mod:`.http`), requests
validate through the same strict ``ScenarioSpec.from_dict`` the library
uses everywhere, cache misses run on a spawn-context process-pool worker
tier sharing :mod:`repro.serve.executor`'s stateless-worker discipline,
concurrent duplicate requests coalesce onto one run, and a
consistent-hash :class:`~repro.service.sharding.ShardMap` over the cache
key routes toward the multi-host story.

Run it with ``python -m repro.service`` (or spawn it through ``repro
load``); drive it with :class:`~repro.service.client.ServiceClient` or
plain ``curl``.

Wire schema
-----------
All bodies are strict JSON (``NaN``/``Infinity`` never appear; they are
serialized as ``null``).  Every error, at any status, is the envelope
``{"error": {"type": <exception class>, "message": <text>}}`` — the same
per-item envelope ``repro batch --json`` reports.

``POST /v1/simulate`` — body: one scenario object (exactly the
``ScenarioSpec.to_dict()`` schema; unknown keys are rejected, the seed
must be concrete).  Response 200::

    {"key": <sha256 hex>,             # content-addressed cache key
     "source": "run"|"cache"|"coalesced",
     "shard": <owning node>,          # consistent-hash owner of the key
     "spec": {...},                   # the validated spec, echoed
     "replicas": R,
     "plurality_color": c,
     "plurality_win_rate": f|null, "convergence_rate": f|null,
     "winners": [R ints], "rounds": [R ints], "converged": [R bools],
     "rounds_summary": {"mean": ..., "median": ..., ...},
     "stop_reasons": {<rule>: count, ...},
     "trace": null | {"metrics": [...], "every": m,
                      "rounds_recorded": T, "replicas": R,
                      "digest": <sha256 of the TraceSet>}}

The ``winners``/``rounds``/``converged`` vectors plus ``trace.digest``
make end-to-end bit-identity checkable from the client side; cold run,
warm replay and a direct :func:`~repro.scenario.simulate_ensemble` agree
on all of them at equal seed.

``POST /v1/batch`` — body: an array of scenario objects (or
``{"scenarios": [...]}``).  Invalid items do **not** abort the batch:
every item is validated up front and answered positionally.  Response
200::

    {"requests": N, "unique": U, "hits": h, "misses": m, "deduped": d,
     "coalesced": c, "errors": e, "wall_seconds": s,
     "items": [ <simulate payload + "error": null>
                | {"key": <hex>|null, "source": "error",
                   "error": {"type": ..., "message": ...}}, ... ]}

Duplicate items within one batch report ``"source": "dedup"`` and share
the first occurrence's execution, exactly like
:func:`repro.serve.executor.run_batch`.

``GET /v1/result/{key}`` — content-addressed lookup of a previously
computed result (``key`` is the 64-hex-digit cache key).  200 with the
simulate payload (``source: "cache"``, no ``spec`` echo) or 404.

``GET /v1/health`` — liveness: ``{"status": "ok", "version": ...,
"schema_version": ..., "workers": ..., "cache": bool, "shard_self": ...}``.

``GET /v1/stats`` — counters: ``in_flight``, ``runs`` (underlying
executions), ``coalesced`` (requests that awaited another request's
run — two concurrent duplicates show ``runs == 1, coalesced == 1``),
``remote_shard_requests``, ``cache`` (the
:meth:`~repro.serve.cache.ResultCache.stats` dict), ``cache_hit_rate``,
``shards`` (the ring), and per-endpoint latency histograms under
``requests`` (``count``/``errors``/``mean_ms``/``p50_ms``/``p95_ms``/
``p99_ms``).

The load harness (:mod:`.load`) replays the committed seeded corpus
``benchmarks/load/corpus.json`` against a spawned service — see ``repro
load --help`` and the README's "Serving over the network" section.
"""

from .app import LatencyHistogram, ScenarioService, result_payload
from .client import AsyncConnection, ServiceClient, ServiceError
from .load import drive, generate_corpus, run_load, spawn_service, write_corpus
from .runner import BackgroundServer
from .sharding import ShardMap

__all__ = [
    "AsyncConnection",
    "BackgroundServer",
    "LatencyHistogram",
    "ScenarioService",
    "ServiceClient",
    "ServiceError",
    "ShardMap",
    "drive",
    "generate_corpus",
    "result_payload",
    "run_load",
    "spawn_service",
    "write_corpus",
]
