"""Network-facing scenario service: asyncio HTTP/JSON over ``repro.serve``.

A :class:`~repro.scenario.ScenarioSpec` is already a strict, hashable
JSON payload, and its ensemble result is a pure function of (canonical
spec JSON, seed, engine schema version) — so serving simulations is a
read-heavy, content-addressed workload.  This package puts a socket in
front of that fact with **no new runtime dependency**: the HTTP/1.1
framing is hand-rolled on :mod:`asyncio` streams (:mod:`.http`), requests
validate through the same strict ``ScenarioSpec.from_dict`` the library
uses everywhere, cache misses run on a spawn-context process-pool worker
tier sharing :mod:`repro.serve.executor`'s stateless-worker discipline,
concurrent duplicate requests coalesce onto one run, and a
consistent-hash :class:`~repro.service.sharding.ShardMap` over the cache
key routes toward the multi-host story.

Run it with ``python -m repro.service`` (or spawn it through ``repro
load``); drive it with :class:`~repro.service.client.ServiceClient` or
plain ``curl``.

Wire schema
-----------
All bodies are strict JSON (``NaN``/``Infinity`` never appear; they are
serialized as ``null``).  Every error, at any status, is the envelope
``{"error": {"type": <exception class>, "message": <text>}}`` — the same
per-item envelope ``repro batch --json`` reports.

``POST /v1/simulate`` — body: one scenario object (exactly the
``ScenarioSpec.to_dict()`` schema; unknown keys are rejected, the seed
must be concrete).  Response 200::

    {"key": <sha256 hex>,             # content-addressed cache key
     "source": "run"|"cache"|"coalesced",
     "shard": <owning node>,          # consistent-hash owner of the key
     "spec": {...},                   # the validated spec, echoed
     "replicas": R,
     "plurality_color": c,
     "plurality_win_rate": f|null, "convergence_rate": f|null,
     "winners": [R ints], "rounds": [R ints], "converged": [R bools],
     "rounds_summary": {"mean": ..., "median": ..., ...},
     "stop_reasons": {<rule>: count, ...},
     "trace": null | {"metrics": [...], "every": m,
                      "rounds_recorded": T, "replicas": R,
                      "digest": <sha256 of the TraceSet>}}

The ``winners``/``rounds``/``converged`` vectors plus ``trace.digest``
make end-to-end bit-identity checkable from the client side; cold run,
warm replay and a direct :func:`~repro.scenario.simulate_ensemble` agree
on all of them at equal seed.

``POST /v1/batch`` — body: an array of scenario objects (or
``{"scenarios": [...]}``).  Invalid items do **not** abort the batch:
every item is validated up front and answered positionally.  Response
200::

    {"requests": N, "unique": U, "hits": h, "misses": m, "deduped": d,
     "coalesced": c, "errors": e, "wall_seconds": s,
     "items": [ <simulate payload + "error": null>
                | {"key": <hex>|null, "source": "error",
                   "error": {"type": ..., "message": ...}}, ... ]}

Duplicate items within one batch report ``"source": "dedup"`` and share
the first occurrence's execution, exactly like
:func:`repro.serve.executor.run_batch`.

``GET /v1/result/{key}`` — content-addressed lookup of a previously
computed result (``key`` is the 64-hex-digit cache key).  200 with the
simulate payload (``source: "cache"``, no ``spec`` echo) or 404.

``GET /v1/health`` — liveness: ``{"status": "ok", "version": ...,
"schema_version": ..., "workers": ..., "cache": bool, "shard_self": ...}``.

``GET /v1/stats`` — counters: ``in_flight``, ``runs`` (underlying
executions), ``coalesced`` (requests that awaited another request's
run — two concurrent duplicates show ``runs == 1, coalesced == 1``),
``remote_shard_requests``, ``cache`` (the
:meth:`~repro.serve.cache.ResultCache.stats` dict, including the
``quarantined``/``read_errors`` corruption counters), ``cache_hit_rate``,
``shards`` (the ring), resilience counters (``shed``, ``deadline_hits``,
``worker_retries``, ``dropped_connections``, ``draining``, ``limits``,
``faults`` — the armed fault plan's trigger state, or ``null``), and
per-endpoint latency histograms under ``requests``
(``count``/``errors``/``mean_ms``/``p50_ms``/``p95_ms``/``p99_ms``).

Resilience status codes
-----------------------
Beyond 200/400/404/405/500, clients must expect:

* **429** — the work cap (``--max-in-flight``) is hit; the request was
  shed before any work started.  Carries a ``Retry-After: 1`` header and
  an ``Overloaded`` envelope; retry with backoff
  (:class:`~repro.service.client.RetryPolicy` does this).
* **503** — the service is draining after SIGTERM; a ``Draining``
  envelope, and the connection closes after the response.  In-flight
  work still completes within the drain grace.
* **504** — the per-request deadline expired (``--deadline-ms`` config
  or an ``x-deadline-ms`` request header, header wins): a
  ``DeadlineExceeded`` envelope for the request owning the run, an
  ``OwnerCancelled`` envelope for coalesced followers whose owner's
  budget expired first.

All three are *safe to retry*: results are content-addressed, so a
resent request either recomputes deterministically or hits the cache.

The load harness (:mod:`.load`) replays the committed seeded corpus
``benchmarks/load/corpus.json`` against a spawned service — see ``repro
load --help`` and the README's "Serving over the network" section.  Under
``--fault-plan`` it doubles as the chaos harness: the report gains a
``degraded`` verdict asserting nothing worse than 429/504 leaked while
the injected faults (:mod:`repro.faults`) were firing.
"""

from .app import LatencyHistogram, ScenarioService, result_payload
from .client import (
    AsyncConnection,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from .load import drive, generate_corpus, run_load, spawn_service, write_corpus
from .runner import BackgroundServer
from .sharding import ShardMap

__all__ = [
    "AsyncConnection",
    "BackgroundServer",
    "LatencyHistogram",
    "RetryPolicy",
    "ScenarioService",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "ShardMap",
    "drive",
    "generate_corpus",
    "result_payload",
    "run_load",
    "spawn_service",
    "write_corpus",
]
