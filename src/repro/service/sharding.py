"""Consistent-hash shard map over content-addressed cache keys.

The serve layer's :func:`~repro.serve.cache.cache_key` is a sha256 hex
digest of the scenario request, so it is already a uniformly distributed
shard key; :class:`ShardMap` places each key on a node via a classic
consistent-hash ring (every node owns ``points`` pseudo-random ring
positions, a key belongs to the first node clockwise from its own
position).  Adding or removing one node therefore only moves ``~1/N`` of
the keyspace — the property that lets a multi-host deployment grow
without flushing every host's cache.

A single-host service runs with the degenerate one-node map; the ring is
still consulted per request (and surfaced in ``/v1/stats``) so the
routing decision is exercised long before a second host exists.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable, Sequence

__all__ = ["ShardMap"]

#: Ring positions per node: enough that per-node load is within a few
#: percent of uniform, small enough that the ring stays a tiny array.
DEFAULT_POINTS = 128


def _ring_position(token: str) -> int:
    return int.from_bytes(hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")


class ShardMap:
    """Immutable consistent-hash ring over named shard nodes.

    ``nodes`` are opaque names — a deployment would use peer base URLs —
    and must be unique.  ``owner_of(key)`` is deterministic across
    processes and Python versions (sha256 only, no :func:`hash`).
    """

    def __init__(self, nodes: Sequence[str], *, points: int = DEFAULT_POINTS):
        nodes = list(nodes)
        if not nodes:
            raise ValueError("ShardMap needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate shard nodes: {nodes!r}")
        if not all(isinstance(node, str) and node for node in nodes):
            raise ValueError(f"shard nodes must be non-empty strings: {nodes!r}")
        if points < 1:
            raise ValueError(f"points must be >= 1, got {points}")
        self.nodes = tuple(nodes)
        self.points = int(points)
        ring = []
        for node in self.nodes:
            for replica in range(self.points):
                ring.append((_ring_position(f"{node}#{replica}"), node))
        ring.sort()
        self._positions = [position for position, _ in ring]
        self._owners = [node for _, node in ring]

    def owner_of(self, key: str) -> str:
        """The node owning ``key`` (first ring point clockwise from its hash)."""
        position = _ring_position(key)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0  # wrap: the ring is circular
        return self._owners[index]

    def assignments(self, keys: Iterable[str]) -> dict[str, int]:
        """Keys-per-node histogram (balance diagnostics; used by the tests)."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.owner_of(key)] += 1
        return counts

    def describe(self) -> dict[str, object]:
        """JSON-able summary (what ``/v1/stats`` reports under ``shards``)."""
        return {
            "nodes": list(self.nodes),
            "points_per_node": self.points,
            "ring_size": len(self._positions),
        }

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"ShardMap(nodes={list(self.nodes)!r}, points={self.points})"
