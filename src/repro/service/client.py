"""Clients for the scenario service (stdlib only).

:class:`ServiceClient` is the synchronous client — one keep-alive
:class:`http.client.HTTPConnection` per instance (so it is *not* shared
across threads; give each thread its own) — used by the tests, the
benchmark suite and the CLI health poll.  :class:`AsyncConnection` is the
coroutine-side equivalent used by the load driver: one open socket, one
request at a time, keep-alive across requests, so a driver worker models
one persistent user connection.
"""

from __future__ import annotations

import asyncio
import http.client
import json

__all__ = ["AsyncConnection", "ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """Non-2xx response; carries the status and the decoded error body."""

    def __init__(self, status: int, body: dict):
        error = body.get("error", {}) if isinstance(body, dict) else {}
        super().__init__(
            f"HTTP {status}: {error.get('type', 'Error')}: {error.get('message', body)}"
        )
        self.status = status
        self.body = body


class ServiceClient:
    """Blocking JSON client over one keep-alive connection."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request_json(self, method: str, path: str, payload=None) -> tuple[int, dict]:
        """One request/response cycle; reconnects once on a dropped keep-alive."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        decoded = json.loads(data.decode("utf-8")) if data else {}
        return response.status, decoded

    def _checked(self, method: str, path: str, payload=None) -> dict:
        status, body = self.request_json(method, path, payload)
        if status >= 400:
            raise ServiceError(status, body)
        return body

    def health(self) -> dict:
        return self._checked("GET", "/v1/health")

    def stats(self) -> dict:
        return self._checked("GET", "/v1/stats")

    def simulate(self, spec: dict) -> dict:
        return self._checked("POST", "/v1/simulate", spec)

    def batch(self, scenarios: list) -> dict:
        return self._checked("POST", "/v1/batch", scenarios)

    def result(self, key: str) -> dict:
        return self._checked("GET", f"/v1/result/{key}")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class AsyncConnection:
    """One keep-alive connection for coroutine-side load generation."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def open(cls, host: str, port: int) -> "AsyncConnection":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request_json(self, method: str, path: str, payload=None) -> tuple[int, dict]:
        body = b""
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: service\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("service closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length) if length else b""
        return status, json.loads(data.decode("utf-8")) if data else {}

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
