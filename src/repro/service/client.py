"""Clients for the scenario service (stdlib only).

:class:`ServiceClient` is the synchronous client — one keep-alive
:class:`http.client.HTTPConnection` per instance (so it is *not* shared
across threads; give each thread its own) — used by the tests, the
benchmark suite and the CLI health poll.  :class:`AsyncConnection` is the
coroutine-side equivalent used by the load driver: one open socket, one
request at a time, keep-alive across requests, so a driver worker models
one persistent user connection.

Failure semantics (both clients): a dropped keep-alive gets **one**
explicit reconnect-and-resend attempt — safe because every request is
idempotent by content address — and exhaustion raises the typed
:class:`ServiceUnavailable` instead of a bare ``OSError``.  On top of
that, :class:`RetryPolicy` (opt-in for :class:`ServiceClient`, used by
the load driver) retries 429/5xx/timeout responses with capped
exponential backoff, honouring ``Retry-After`` on sheds.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import time
from dataclasses import dataclass, field

__all__ = [
    "AsyncConnection",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
]


class ServiceError(Exception):
    """Non-2xx response; carries the status and the decoded error body."""

    def __init__(self, status: int, body: dict):
        error = body.get("error", {}) if isinstance(body, dict) else {}
        super().__init__(
            f"HTTP {status}: {error.get('type', 'Error')}: {error.get('message', body)}"
        )
        self.status = status
        self.body = body


class ServiceUnavailable(ConnectionError):
    """The service could not be reached after bounded reconnect attempts.

    Raised where the pre-resilience clients leaked a bare ``OSError`` /
    ``ConnectionError``: after the one reconnect-and-resend attempt on a
    dropped keep-alive fails too.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry: which responses retry, how long to back off.

    Safe by construction: every service request is idempotent — results
    are content-addressed pure functions of the spec — so replaying a
    request can never double-apply anything.  Retries cover shed (429),
    server-side failures (5xx, including 504 deadlines) and transport
    errors (:class:`ServiceUnavailable`); backoff is exponential with
    50–150% jitter, capped, and a server ``Retry-After`` takes precedence.
    """

    attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    statuses: frozenset = frozenset({429, 500, 502, 503, 504})
    #: Jitter source; seedable for deterministic schedules in tests.
    rng: random.Random = field(default_factory=random.Random, compare=False)

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def delay(self, attempt: int, retry_after: float | None = None) -> float:
        if retry_after is not None:
            return min(float(retry_after), self.backoff_cap)
        nominal = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return nominal * (0.5 + self.rng.random())


def _parse_retry_after(value) -> float | None:
    """Seconds from a ``Retry-After`` header value (delta-seconds form only)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return seconds if seconds >= 0 else None


class ServiceClient:
    """Blocking JSON client over one keep-alive connection.

    ``retry`` arms the checked methods (:meth:`simulate`, :meth:`batch`,
    …) with a :class:`RetryPolicy`; ``None`` (default) keeps the historic
    fail-fast behaviour.  :attr:`retried` counts policy retries actually
    taken — the load driver surfaces it in its ``degraded_ok`` verdict.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.retried = 0
        self.last_retry_after: float | None = None
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request_json(self, method: str, path: str, payload=None) -> tuple[int, dict]:
        """One request/response cycle; reconnects once on a dropped keep-alive.

        Raises :class:`ServiceUnavailable` when the resend fails too.
        """
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self.close()
                if attempt:
                    raise ServiceUnavailable(
                        f"{self.host}:{self.port} unreachable after reconnect: {exc}"
                    ) from exc
        self.last_retry_after = _parse_retry_after(response.getheader("Retry-After"))
        decoded = json.loads(data.decode("utf-8")) if data else {}
        return response.status, decoded

    def _checked(self, method: str, path: str, payload=None) -> dict:
        policy = self.retry
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(attempts):
            if attempt:
                self.retried += 1
                time.sleep(policy.delay(attempt - 1, self.last_retry_after))
            try:
                status, body = self.request_json(method, path, payload)
            except ServiceUnavailable:
                if policy is None or attempt == attempts - 1:
                    raise
                self.last_retry_after = None
                continue
            if status < 400:
                return body
            if policy is None or status not in policy.statuses or attempt == attempts - 1:
                raise ServiceError(status, body)
        raise ServiceError(status, body)  # pragma: no cover — loop always returns/raises

    def health(self) -> dict:
        return self._checked("GET", "/v1/health")

    def stats(self) -> dict:
        return self._checked("GET", "/v1/stats")

    def simulate(self, spec: dict) -> dict:
        return self._checked("POST", "/v1/simulate", spec)

    def batch(self, scenarios: list) -> dict:
        return self._checked("POST", "/v1/batch", scenarios)

    def result(self, key: str) -> dict:
        return self._checked("GET", f"/v1/result/{key}")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class AsyncConnection:
    """One keep-alive connection for coroutine-side load generation.

    A request that dies mid-flight on a *reused* connection (the server
    dropped the keep-alive — or the chaos plan did) is resent exactly once
    over a fresh connection; a second transport failure raises
    :class:`ServiceUnavailable`.  :attr:`last_headers` holds the response
    headers of the most recent request (the load driver reads
    ``retry-after`` from it).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        host: str | None = None,
        port: int | None = None,
    ):
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self.reconnects = 0
        self.last_headers: dict[str, str] = {}

    @classmethod
    async def open(cls, host: str, port: int) -> "AsyncConnection":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=host, port=port)

    async def _reconnect(self) -> None:
        if self._host is None or self._port is None:
            raise ServiceUnavailable(
                "connection dropped and no (host, port) to reconnect to"
            )
        await self.close()
        self._reader, self._writer = await asyncio.open_connection(self._host, self._port)
        self.reconnects += 1

    async def request_json(self, method: str, path: str, payload=None) -> tuple[int, dict]:
        body = b""
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        for attempt in (0, 1):
            try:
                return await self._roundtrip(method, path, body)
            except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                if attempt:
                    raise ServiceUnavailable(
                        f"{self._host}:{self._port} unreachable after reconnect: {exc}"
                    ) from exc
                try:
                    await self._reconnect()
                except OSError as reconnect_exc:
                    raise ServiceUnavailable(
                        f"reconnect to {self._host}:{self._port} failed: {reconnect_exc}"
                    ) from reconnect_exc
        raise AssertionError("unreachable")  # pragma: no cover

    async def _roundtrip(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: service\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("service closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        length = 0
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length) if length else b""
        self.last_headers = headers
        return status, json.loads(data.decode("utf-8")) if data else {}

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
