"""Minimal HTTP/1.1 framing over asyncio streams.

The service speaks a deliberately small slice of HTTP — JSON bodies over
``GET``/``POST`` with keep-alive — implemented directly on
:mod:`asyncio` streams so the library gains a network face without any
new runtime dependency.  The framing is strict where it matters for a
JSON API (request-line shape, header syntax, ``Content-Length`` bodies,
size limits) and silent about everything it does not need (chunked
transfer, multipart, range requests all answer 400).

:func:`read_request` parses one request off a stream (``None`` on a
clean end-of-stream between requests), :func:`encode_response` frames
one JSON response, and :class:`HttpError` carries a status code from the
parser to the connection loop.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpError", "Request", "encode_response", "read_request"]

_MAX_LINE = 8192
_MAX_HEADERS = 64

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """Protocol-level failure; ``status`` becomes the response code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed request: method, split target, lower-cased headers, raw body."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self):
        """The body decoded as JSON (:class:`HttpError` 400 when it isn't)."""
        if not self.body:
            raise HttpError(400, "request body is empty (expected JSON)")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader, *, max_body: int) -> Request | None:
    """Parse one request off ``reader``; ``None`` on a clean end-of-stream."""
    line = await reader.readline()
    if not line:
        return None  # connection closed between requests: normal keep-alive end
    if len(line) >= _MAX_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, f"malformed request line: {line.decode('latin-1')!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        line = await reader.readline()
        if len(line) >= _MAX_LINE:
            raise HttpError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line: {line.decode('latin-1')!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, f"more than {_MAX_HEADERS} headers")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "Content-Length is not an integer") from None
    if length < 0:
        raise HttpError(400, "Content-Length is negative")
    if length > max_body:
        raise HttpError(413, f"request body of {length} bytes exceeds the {max_body}-byte cap")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None  # peer hung up mid-body; nothing to answer
    return Request(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def encode_response(
    status: int,
    payload,
    *,
    keep_alive: bool = True,
    headers: dict[str, str] | None = None,
) -> bytes:
    """Frame one JSON response (``allow_nan=False``: the wire is strict JSON).

    ``headers`` adds extra response headers (e.g. ``Retry-After`` on a 429
    shed); names and values must be latin-1 encodable.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False).encode(
        "utf-8"
    )
    reason = _REASONS.get(status, "Unknown")
    extra = ""
    if headers:
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers.items())
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}"
        "\r\n"
    )
    return head.encode("latin-1") + body
