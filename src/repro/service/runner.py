"""In-process service hosting: an event loop on a background thread.

:class:`BackgroundServer` runs a :class:`~repro.service.app.ScenarioService`
on its own thread + event loop and hands back the bound address — the
harness the integration tests and the benchmark suite use to exercise
the real network path (sockets, framing, coalescing) without spawning a
subprocess.  The CLI load driver spawns a real subprocess instead
(``python -m repro.service``); both paths serve the same application
object.
"""

from __future__ import annotations

import asyncio
import threading

from .app import ScenarioService

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """Host ``service`` on a daemon thread; use as a context manager.

    The service object stays accessible (``self.service``) so a test can
    reach its cache or counters directly — the cache is thread-safe, the
    loop-confined counters are read-only from outside.
    """

    def __init__(self, service: ScenarioService | None = None, *, host: str = "127.0.0.1"):
        self.service = service if service is not None else ScenarioService()
        self.host = host
        self.port: int | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def base_url(self) -> str:
        assert self.port is not None, "server not started"
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BackgroundServer":
        assert self._thread is None, "server already started"
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        if self.port is None:
            raise RuntimeError("service did not come up within 30 s")
        return self

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                _host, port = await self.service.start(self.host, 0)
            except BaseException as exc:  # noqa: BLE001 — surfaced to start()
                self._startup_error = exc
                self._ready.set()
                return
            self.port = port
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await self.service.close()

        asyncio.run(main())

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
