"""Declarative scenarios: serializable specs + the ``simulate()`` facade.

Every claim of the paper quantifies over a *scenario*: a dynamics from the
h-dynamics family, an initial-configuration family, an optional F-bounded
adversary and a success/stopping predicate.  This module makes scenarios
*data* instead of hand-written object construction:

>>> from repro import ScenarioSpec, simulate_ensemble
>>> spec = ScenarioSpec(
...     dynamics="3-majority",
...     initial="paper-biased",
...     n=100_000,
...     k=8,
...     replicas=32,
...     seed=0,
... )
>>> ens = simulate_ensemble(spec)          # doctest: +SKIP
>>> spec == ScenarioSpec.from_json(spec.to_json())
True

Names are resolved through the string-keyed registries of
:mod:`repro.core.registry` (``repro scenarios`` lists them), parameters
are validated strictly against the target factory's signature, and
``to_dict``/``from_dict``/``to_json``/``from_json`` round-trip losslessly
— which is what makes scenarios shardable, cacheable and servable.  The
:func:`simulate` / :func:`simulate_ensemble` facades resolve a spec and
dispatch straight to :func:`repro.core.process.run_process` /
:func:`~repro.core.process.run_ensemble`, so at equal seed they reproduce
the direct Python API bit for bit (asserted in the tests, with the
dispatch overhead guarded in the benchmark suite).
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field, fields, replace
from typing import Any

import numpy as np

from .core.adversary import Adversary
from .core.config import Configuration
from .core.dynamics import Dynamics
from .core.metrics import RecordSpec, as_record_spec
from .core.process import (
    ENSEMBLE_ENGINES,
    EnsembleResult,
    ProcessResult,
    run_ensemble,
    run_process,
)
from .core.registry import ADVERSARIES, DYNAMICS, METRICS, STOPPING, TOPOLOGIES, WORKLOADS
from .core.stopping import StoppingRule, stopping_from_dict

__all__ = ["ScenarioSpec", "ResolvedScenario", "simulate", "simulate_ensemble"]

_registered = False


def _ensure_registered() -> None:
    """Import the modules whose decorators populate the registries.

    The dynamics/adversary/stopping registrations ride on ``repro.core``
    (already imported above); the workload generators live one layer up in
    :mod:`repro.experiments.workloads`, and the topology generators in
    :mod:`repro.graphs.topology` — both imported lazily here to keep
    ``repro.core`` free of upward dependencies (and the networkx import
    off the non-graph paths).
    """
    global _registered
    if not _registered:
        from .experiments import workloads  # noqa: F401 — import registers WORKLOADS
        from .graphs import topology  # noqa: F401 — import registers TOPOLOGIES

        _registered = True


def _checked_params(name: str, value: object) -> dict[str, Any]:
    if not isinstance(value, Mapping):
        raise ValueError(f"{name} must be a mapping of parameter names, got {value!r}")
    if not all(isinstance(key, str) for key in value):
        raise ValueError(f"{name} keys must be strings")
    return dict(value)


def _checked_int(name: str, value: object, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class ResolvedScenario:
    """A spec's names resolved to live objects, ready for the runners.

    ``topology`` is a built :class:`~repro.graphs.topology.Topology` when
    the spec names one (the facades then dispatch to the graph engine of
    :mod:`repro.graphs.ensemble`), ``None`` for the counts-level clique
    runners.
    """

    dynamics: Dynamics
    initial: Configuration
    adversary: Adversary | None
    stopping: StoppingRule | None
    record: RecordSpec | None = None
    topology: object | None = None


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable simulation scenario.

    All object references are registry *names* (see ``repro scenarios``)
    plus nested parameter dicts, so a spec is plain data: JSON round-trips
    are lossless and strict (unknown keys, unknown names and invalid
    parameters are rejected with messages naming the accepted values).

    ``stopping`` is the serialized ``{"rule": <name>, **params}`` form of
    a :class:`~repro.core.stopping.StoppingRule`; passing a rule instance
    normalises it to that dict.  ``record`` is the serialized
    ``{"metrics": [...], "every": m}`` form of a
    :class:`~repro.core.metrics.RecordSpec` (metric names from ``repro
    metrics``); passing a RecordSpec or a plain list of names normalises
    it to that dict, and the resulting columnar
    :class:`~repro.core.metrics.TraceSet` lands on the result's ``trace``
    field.  ``engine`` selects :func:`~repro.core.process.run_ensemble`'s
    batch layout — ``"auto"`` (default), ``"dense"``, or the O(support)
    large-``k`` ``"sparse"`` mode; it changes how randomness is consumed,
    so it is part of the scenario's content address (``"auto"`` is
    omitted from the canonical JSON, like an unset ``record``).
    ``topology`` names a graph generator from ``repro topologies``
    (``topology_params`` its parameters, ``n`` is passed automatically):
    the scenario then runs agent-level on that graph through the
    replica-batched engine of :mod:`repro.graphs.ensemble` instead of the
    counts-level clique runners.  ``None`` (default) is the paper's
    clique model, and is omitted from the canonical JSON so every
    pre-topology cache key is preserved.  ``seed`` is the default stream
    for the :func:`simulate` facades (overridable per call).
    """

    dynamics: str
    n: int
    k: int
    initial: str = "balanced"
    dynamics_params: dict[str, Any] = field(default_factory=dict)
    initial_params: dict[str, Any] = field(default_factory=dict)
    adversary: str | None = None
    adversary_params: dict[str, Any] = field(default_factory=dict)
    stopping: dict[str, Any] | None = None
    record: dict[str, Any] | None = None
    replicas: int = 1
    max_rounds: int = 1_000_000
    engine: str = "auto"
    topology: str | None = None
    topology_params: dict[str, Any] = field(default_factory=dict)
    seed: int | None = 0

    def __post_init__(self):
        if not isinstance(self.dynamics, str) or not self.dynamics:
            raise ValueError(f"dynamics must be a registry name, got {self.dynamics!r}")
        if not isinstance(self.initial, str) or not self.initial:
            raise ValueError(f"initial must be a registry name, got {self.initial!r}")
        if self.adversary is not None and not isinstance(self.adversary, str):
            raise ValueError(f"adversary must be a registry name or None, got {self.adversary!r}")
        object.__setattr__(self, "n", _checked_int("n", self.n, 1))
        object.__setattr__(self, "k", _checked_int("k", self.k, 1))
        object.__setattr__(self, "replicas", _checked_int("replicas", self.replicas, 1))
        object.__setattr__(self, "max_rounds", _checked_int("max_rounds", self.max_rounds, 0))
        for name in ("dynamics_params", "initial_params", "adversary_params"):
            object.__setattr__(self, name, _checked_params(name, getattr(self, name)))
        stopping = self.stopping
        if isinstance(stopping, StoppingRule):
            stopping = stopping.to_dict()
        if stopping is not None:
            stopping = dict(_checked_params("stopping", stopping))
            if not isinstance(stopping.get("rule"), str):
                raise ValueError("stopping dict needs a string 'rule' key")
        object.__setattr__(self, "stopping", stopping)
        record = self.record
        if record is not None:
            # Normalise every accepted spelling (RecordSpec, name list,
            # dict) through RecordSpec validation to the serialized dict.
            record = as_record_spec(record).to_dict()
        object.__setattr__(self, "record", record)
        if self.engine not in ENSEMBLE_ENGINES:
            raise ValueError(
                f"engine must be one of {ENSEMBLE_ENGINES}, got {self.engine!r}"
            )
        if self.topology is not None and not isinstance(self.topology, str):
            raise ValueError(f"topology must be a registry name or None, got {self.topology!r}")
        object.__setattr__(
            self, "topology_params", _checked_params("topology_params", self.topology_params)
        )
        if self.topology is None and self.topology_params:
            raise ValueError("topology_params given without a topology name")
        if self.topology is not None and self.engine != "auto":
            raise ValueError(
                "graph scenarios run on the graph engine; engine must stay 'auto' "
                f"when topology is set (got engine={self.engine!r})"
            )
        if self.seed is not None:
            if isinstance(self.seed, bool) or not isinstance(self.seed, (int, np.integer)):
                raise ValueError(f"seed must be an int or None, got {self.seed!r}")
            object.__setattr__(self, "seed", int(self.seed))

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the dict
        # fields; canonical (sorted-key, compact) JSON is the stable
        # identity — the same string the serve-layer cache keys on.
        return hash(self.canonical_json())

    def canonical_json(self) -> str:
        """Canonical identity string: compact JSON with sorted keys.

        Two specs are the same scenario iff their canonical JSON is equal;
        this is the string :mod:`repro.serve.cache` hashes into the
        content-addressed cache key.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able dict holding every field (lossless)."""
        out: dict[str, Any] = {
            "dynamics": self.dynamics,
            "n": self.n,
            "k": self.k,
            "initial": self.initial,
            "dynamics_params": dict(self.dynamics_params),
            "initial_params": dict(self.initial_params),
            "adversary": self.adversary,
            "adversary_params": dict(self.adversary_params),
            "stopping": json.loads(json.dumps(self.stopping)) if self.stopping else None,
            "replicas": self.replicas,
            "max_rounds": self.max_rounds,
            "seed": self.seed,
        }
        if self.record is not None:
            # Only present when set: an unrecorded spec keeps the exact
            # pre-record canonical JSON, so its content-addressed cache
            # entries from older versions stay valid (the engine contract
            # did not change — recording never perturbs a run).
            out["record"] = json.loads(json.dumps(self.record))
        if self.engine != "auto":
            # Same discipline for the ensemble layout: "auto" (the
            # default, and the only value older specs could mean) is
            # omitted, so an explicit "dense"/"sparse" choice — which
            # changes how randomness is consumed — addresses its own cache
            # entries while auto specs keep their canonical identity.
            out["engine"] = self.engine
        if self.topology is not None:
            # Same discipline again: the clique (topology=None, the only
            # scenario older specs could express) is omitted, so every
            # pre-topology canonical JSON — and with it every existing
            # content-addressed cache key — is preserved verbatim, while a
            # graph scenario addresses its own entries.
            out["topology"] = self.topology
            out["topology_params"] = dict(self.topology_params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Strict inverse of :meth:`to_dict`: unknown keys are rejected."""
        if not isinstance(data, Mapping):
            raise ValueError(f"scenario must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        missing = sorted({"dynamics", "n", "k"} - set(data))
        if missing:
            raise ValueError(f"scenario is missing required keys: {', '.join(missing)}")
        return cls(**dict(data))

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"scenario JSON does not parse: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "ScenarioSpec":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    # -- resolution ----------------------------------------------------------

    def resolve(self) -> ResolvedScenario:
        """Resolve all names through the registries into live objects."""
        _ensure_registered()
        dynamics = DYNAMICS.build(self.dynamics, **self.dynamics_params)
        if not isinstance(dynamics, Dynamics):
            raise TypeError(f"dynamics {self.dynamics!r} did not build a Dynamics")
        initial = WORKLOADS.build(self.initial, self.n, self.k, **self.initial_params)
        if not isinstance(initial, Configuration):
            raise TypeError(f"workload {self.initial!r} did not build a Configuration")
        if initial.n != self.n or initial.k != self.k:
            raise ValueError(
                f"workload {self.initial!r} produced (n={initial.n}, k={initial.k}), "
                f"expected (n={self.n}, k={self.k})"
            )
        adversary = None
        if self.adversary is not None:
            adversary = ADVERSARIES.build(self.adversary, **self.adversary_params)
            if not isinstance(adversary, Adversary):
                raise TypeError(f"adversary {self.adversary!r} did not build an Adversary")
        stopping = stopping_from_dict(self.stopping) if self.stopping is not None else None
        record = None
        if self.record is not None:
            record = as_record_spec(self.record)
            record.resolve()  # validate every metric name against METRICS
        topology = None
        if self.topology is not None:
            from .graphs.ensemble import graph_ineligibility
            from .graphs.topology import Topology

            if adversary is not None:
                raise ValueError(
                    "adversaries are not supported on graph topologies yet; "
                    "drop the adversary or the topology"
                )
            reason = graph_ineligibility(dynamics)
            if reason is not None:
                raise ValueError(f"topology {self.topology!r} unavailable: {reason}")
            topology = TOPOLOGIES.build(self.topology, self.n, **self.topology_params)
            if not isinstance(topology, Topology):
                raise TypeError(f"topology {self.topology!r} did not build a Topology")
            if topology.n != self.n:
                raise ValueError(
                    f"topology {self.topology!r} built {topology.n} nodes, expected n={self.n}"
                )
        return ResolvedScenario(
            dynamics=dynamics,
            initial=initial,
            adversary=adversary,
            stopping=stopping,
            record=record,
            topology=topology,
        )

    def validate(self) -> "ScenarioSpec":
        """Check every name and parameter by resolving once; returns self."""
        self.resolve()
        return self

    @staticmethod
    def registries() -> dict[str, list[str]]:
        """Registered names per component kind (what ``repro scenarios`` shows)."""
        _ensure_registered()
        return {
            "dynamics": DYNAMICS.names(),
            "workloads": WORKLOADS.names(),
            "adversaries": ADVERSARIES.names(),
            "stopping": STOPPING.names(),
            "metrics": METRICS.names(),
            "topologies": TOPOLOGIES.names(),
        }


def simulate(
    spec: ScenarioSpec,
    *,
    rng: int | np.random.Generator | None = None,
    record_trajectory: bool = False,
) -> ProcessResult:
    """Run one trajectory of ``spec`` (seed from the spec unless ``rng`` given).

    Thin facade over :func:`repro.core.process.run_process`: at equal seed
    the result is bit-identical to building the objects by hand.  The
    spec's ``record`` field selects the metrics traced into
    ``ProcessResult.trace`` (``record_trajectory=`` is the deprecated
    spelling of adding ``"counts"``).  The spec's ``engine`` field is an
    ensemble-layout choice and does not apply to a single trajectory.
    Specs naming a ``topology`` dispatch to the agent-level graph runner
    (:func:`~repro.graphs.ensemble.run_graph_process`) with the same
    result/trace contract.
    """
    resolved = spec.resolve()
    if resolved.topology is not None:
        from .graphs.ensemble import run_graph_process

        return run_graph_process(
            resolved.dynamics,
            resolved.topology,
            resolved.initial,
            max_rounds=spec.max_rounds,
            stopping=resolved.stopping,
            record=resolved.record,
            record_trajectory=record_trajectory,
            rng=spec.seed if rng is None else rng,
        )
    return run_process(
        resolved.dynamics,
        resolved.initial,
        max_rounds=spec.max_rounds,
        adversary=resolved.adversary,
        stopping=resolved.stopping,
        record=resolved.record,
        record_trajectory=record_trajectory,
        rng=spec.seed if rng is None else rng,
    )


def simulate_ensemble(
    spec: ScenarioSpec,
    *,
    rng: int | np.random.Generator | None = None,
    batch: bool = True,
) -> EnsembleResult:
    """Run ``spec.replicas`` trajectories of ``spec`` through the batched kernels.

    Thin facade over :func:`repro.core.process.run_ensemble`; the
    ``replicas``/``max_rounds``/``seed`` knobs come from the spec, with
    ``rng`` overriding the seed for callers that thread their own streams.
    Specs naming a ``topology`` dispatch to the replica-batched graph
    engine (:func:`~repro.graphs.ensemble.run_graph_ensemble`), which
    returns the same :class:`~repro.core.process.EnsembleResult` contract
    — stopping rules, traces and the serve cache work unchanged.
    """
    resolved = spec.resolve()
    if resolved.topology is not None:
        from .graphs.ensemble import run_graph_ensemble

        return run_graph_ensemble(
            resolved.dynamics,
            resolved.topology,
            resolved.initial,
            spec.replicas,
            max_rounds=spec.max_rounds,
            stopping=resolved.stopping,
            record=resolved.record,
            rng=spec.seed if rng is None else rng,
            batch=batch,
        )
    return run_ensemble(
        resolved.dynamics,
        resolved.initial,
        spec.replicas,
        max_rounds=spec.max_rounds,
        adversary=resolved.adversary,
        stopping=resolved.stopping,
        record=resolved.record,
        rng=spec.seed if rng is None else rng,
        batch=batch,
        engine=spec.engine,
    )
