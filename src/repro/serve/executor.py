"""Batch executor: dedup, cache probe, and sharded execution of many specs.

:func:`run_batch` is the serving hot path for scenario traffic.  It takes a
request-ordered list of :class:`~repro.scenario.ScenarioSpec`, collapses
duplicate requests onto one execution via their content-addressed
:func:`~repro.serve.cache.cache_key`, serves whatever the
:class:`~repro.serve.cache.ResultCache` already holds, and shards the
remaining misses over a spawn-context process pool (the same pool
discipline as :func:`repro.experiments.parallel.parallel_sweep`: spawn
context for BLAS-thread safety, stateless workers, one coarse
pickle-friendly shard of work per worker, small arrays back).

Determinism: every spec carries its own seed, so a result is a pure
function of the spec — identical whichever worker (or the parent) runs it,
and bit-identical to a direct :func:`~repro.scenario.simulate_ensemble`
call.  That is what makes the dedup and the cache sound.  Specs with
``seed=None`` are rejected up front.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.process import EnsembleResult
from ..scenario import ScenarioSpec, simulate_ensemble
from .cache import ResultCache, cache_key

__all__ = ["BatchReport", "run_batch"]

#: Per-request provenance labels in :attr:`BatchReport.sources`.
FROM_CACHE = "cache"
FROM_RUN = "run"
FROM_DEDUP = "dedup"


@dataclass
class BatchReport:
    """Outcome of one :func:`run_batch` call, in request order."""

    results: list[EnsembleResult]
    keys: list[str]
    #: Per-request provenance: ``"cache"`` (served from the cache), ``"run"``
    #: (freshly executed), or ``"dedup"`` (duplicate of an earlier request in
    #: the same batch).
    sources: list[str] = field(repr=False)
    hits: int = 0
    misses: int = 0
    deduped: int = 0
    wall_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.results)

    def summary(self) -> dict[str, object]:
        """JSON-able batch-level counters (what ``repro batch`` prints)."""
        return {
            "requests": self.requests,
            "unique": self.requests - self.deduped,
            "hits": self.hits,
            "misses": self.misses,
            "deduped": self.deduped,
            "wall_seconds": self.wall_seconds,
        }


def _run_shard(shard: list[tuple[str, str]]) -> list[tuple[str, EnsembleResult]]:
    """Worker: execute one shard of ``(key, spec_json)`` tasks.

    Module-level (picklable) and stateless; the spec JSON is the entire
    task description, per the coarse-communication discipline.
    """
    out = []
    for key, spec_json in shard:
        spec = ScenarioSpec.from_json(spec_json)
        out.append((key, simulate_ensemble(spec)))
    return out


def run_batch(
    specs: Sequence[ScenarioSpec],
    *,
    cache: ResultCache | None = None,
    processes: int | None = None,
) -> BatchReport:
    """Execute ``specs``, merging cache hits and fresh runs in request order.

    Parameters
    ----------
    specs:
        The request batch; every spec must have a concrete ``seed`` (results
        would otherwise be irreproducible, breaking dedup and caching).
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are stored back.  Without a cache the batch still
        dedups identical requests within itself.
    processes:
        Pool width for the misses.  ``None`` lets ``multiprocessing`` pick;
        ``1`` (or a batch with at most one miss) runs inline with no pool —
        the dependency-free fallback path.

    Duplicate requests share one ``EnsembleResult`` object; treat results
    as read-only (the cache already hands out defensive copies).
    """
    specs = list(specs)
    for position, spec in enumerate(specs):
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(f"specs[{position}] is not a ScenarioSpec: {spec!r}")
        if spec.seed is None:
            raise ValueError(
                f"specs[{position}] has seed=None; batch execution needs concrete "
                "seeds so results are reproducible and cacheable"
            )
    start = time.perf_counter()
    keys = [
        cache.key_for(spec) if cache is not None else cache_key(spec) for spec in specs
    ]

    # Dedup: the first occurrence of each key owns the execution slot.
    owner_of: dict[str, int] = {}
    sources: list[str] = []
    for position, key in enumerate(keys):
        if key in owner_of:
            sources.append(FROM_DEDUP)
        else:
            owner_of[key] = position
            sources.append(None)  # filled below with "cache" or "run"

    results: dict[str, EnsembleResult] = {}
    to_run: list[tuple[str, str]] = []
    for key, position in owner_of.items():
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            results[key] = cached
            sources[position] = FROM_CACHE
        else:
            to_run.append((key, specs[position].to_json(indent=None)))
            sources[position] = FROM_RUN
    hits = len(owner_of) - len(to_run)

    if to_run:
        fresh = _execute(to_run, processes)
        for key, result in fresh:
            results[key] = result
            if cache is not None:
                cache.put(key, result)

    ordered = [results[key] for key in keys]
    return BatchReport(
        results=ordered,
        keys=keys,
        sources=sources,
        hits=hits,
        misses=len(to_run),
        deduped=len(specs) - len(owner_of),
        wall_seconds=time.perf_counter() - start,
    )


def _execute(
    tasks: list[tuple[str, str]], processes: int | None
) -> list[tuple[str, EnsembleResult]]:
    """Run the miss tasks, sharded over a spawn pool (or inline when trivial)."""
    if processes == 1 or len(tasks) <= 1:
        return _run_shard(tasks)
    ctx = mp.get_context("spawn")  # fork-safety with BLAS threads
    workers = processes if processes is not None else min(len(tasks), ctx.cpu_count() or 1)
    workers = max(1, min(workers, len(tasks)))
    if workers == 1:
        return _run_shard(tasks)
    shards = [tasks[offset::workers] for offset in range(workers)]
    with ctx.Pool(processes=workers) as pool:
        shard_results = pool.map(_run_shard, shards)
    return [pair for shard in shard_results for pair in shard]
