"""Batch executor: dedup, cache probe, and sharded execution of many specs.

:func:`run_batch` is the serving hot path for scenario traffic.  It takes a
request-ordered list of :class:`~repro.scenario.ScenarioSpec`, collapses
duplicate requests onto one execution via their content-addressed
:func:`~repro.serve.cache.cache_key`, serves whatever the
:class:`~repro.serve.cache.ResultCache` already holds, and shards the
remaining misses over a spawn-context process pool (the same pool
discipline as :func:`repro.experiments.parallel.parallel_sweep`: spawn
context for BLAS-thread safety, stateless workers, one coarse
pickle-friendly shard of work per worker, small arrays back).

Determinism: every spec carries its own seed, so a result is a pure
function of the spec — identical whichever worker (or the parent) runs it,
and bit-identical to a direct :func:`~repro.scenario.simulate_ensemble`
call.  That is what makes the dedup and the cache sound — **and** what
makes retrying a lost shard safe: re-running a task after a worker crash
reproduces the exact same bits the dead worker would have returned.

Failure semantics (the resilience contract, tested in
``tests/test_serve.py``):

* a spec that *raises* inside a worker (a deterministic item failure)
  becomes a per-item ``{"type", "message"}`` error envelope in
  :attr:`BatchReport.errors` — one poisoned spec never takes down its
  batch siblings;
* a worker that *dies* (``BrokenProcessPool``) or *stalls* past
  ``worker_timeout`` loses its shard, not the batch: the pool is
  respawned and the lost tasks are retried with exponential backoff +
  deterministic jitter, up to ``max_attempts`` total attempts, with
  per-key retry counts recorded in :attr:`BatchReport.retries`;
* both failure modes are injectable deterministically through
  :mod:`repro.faults` (``executor.worker-crash`` /
  ``executor.worker-stall``), which is how the chaos suite exercises
  these paths without real hardware failures.

Specs with ``seed=None`` are rejected up front.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import random
import time
from collections.abc import Sequence
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from .. import faults
from ..core.process import EnsembleResult
from ..scenario import ScenarioSpec, simulate_ensemble
from .cache import ResultCache, cache_key
from .envelope import error_envelope

__all__ = ["BatchReport", "WorkerPoolError", "run_batch"]

#: Per-request provenance labels in :attr:`BatchReport.sources`.
FROM_CACHE = "cache"
FROM_RUN = "run"
FROM_DEDUP = "dedup"
FROM_ERROR = "error"

#: Retry policy defaults for lost shards (crash / stall recovery).
DEFAULT_MAX_ATTEMPTS = 4
BACKOFF_BASE_SECONDS = 0.05
BACKOFF_CAP_SECONDS = 2.0


class WorkerPoolError(RuntimeError):
    """Every attempt at executing a shard's tasks failed (crash/stall)."""


@dataclass
class BatchReport:
    """Outcome of one :func:`run_batch` call, in request order."""

    results: list[EnsembleResult | None]
    keys: list[str]
    #: Per-request provenance: ``"cache"`` (served from the cache), ``"run"``
    #: (freshly executed), ``"dedup"`` (duplicate of an earlier request in
    #: the same batch), or ``"error"`` (the item failed inside a worker;
    #: see :attr:`errors`).
    sources: list[str] = field(repr=False)
    #: Per-request ``{"type", "message"}`` envelope where the item failed
    #: in a worker, None elsewhere — aligned with :attr:`results`, which
    #: holds None at the same positions.
    errors: list[dict | None] = field(default_factory=list, repr=False)
    #: Per-key retry counts for tasks whose shard was lost to a worker
    #: crash or stall and re-executed (provenance for the chaos suite).
    retries: dict[str, int] = field(default_factory=dict, repr=False)
    hits: int = 0
    misses: int = 0
    deduped: int = 0
    failed: int = 0
    wall_seconds: float = 0.0

    @property
    def requests(self) -> int:
        return len(self.results)

    def summary(self) -> dict[str, object]:
        """JSON-able batch-level counters (what ``repro batch`` prints)."""
        return {
            "requests": self.requests,
            "unique": self.requests - self.deduped,
            "hits": self.hits,
            "misses": self.misses,
            "deduped": self.deduped,
            "failed": self.failed,
            "retries": int(sum(self.retries.values())),
            "wall_seconds": self.wall_seconds,
        }


def _run_shard(shard: list[tuple[str, str]]) -> list[tuple[str, object]]:
    """Worker: execute one shard of ``(key, spec_json)`` tasks.

    Module-level (picklable) and stateless; the spec JSON is the entire
    task description, per the coarse-communication discipline.  Each pair
    in the return value carries either the :class:`EnsembleResult` or a
    per-item ``{"type", "message"}`` error envelope — a deterministic
    item failure must not poison its shard siblings.  Injected faults
    (:mod:`repro.faults`) deliberately bypass the per-item catch: they
    model *infrastructure* failures, which are retryable, unlike a spec
    that fails the same way on every attempt.
    """
    out: list[tuple[str, object]] = []
    for key, spec_json in shard:
        rule = faults.fire("executor.worker-crash")
        if rule is not None:
            if rule.params.get("hard"):
                # Simulated hard death: the pool sees a vanished worker
                # (BrokenProcessPool), exactly like an OOM kill.
                os._exit(3)
            raise faults.InjectedWorkerCrash(
                f"injected worker crash before task {key[:12]}"
            )
        rule = faults.fire("executor.worker-stall")
        if rule is not None:
            time.sleep(float(rule.params.get("seconds", 30.0)))
        try:
            spec = ScenarioSpec.from_json(spec_json)
            out.append((key, simulate_ensemble(spec)))
        except faults.InjectedFault:
            raise
        except Exception as exc:  # noqa: BLE001 — becomes the item's envelope
            out.append((key, error_envelope(exc)))
    return out


def run_batch(
    specs: Sequence[ScenarioSpec],
    *,
    cache: ResultCache | None = None,
    processes: int | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    worker_timeout: float | None = None,
) -> BatchReport:
    """Execute ``specs``, merging cache hits and fresh runs in request order.

    Parameters
    ----------
    specs:
        The request batch; every spec must have a concrete ``seed`` (results
        would otherwise be irreproducible, breaking dedup and caching).
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are stored back.  Without a cache the batch still
        dedups identical requests within itself.
    processes:
        Pool width for the misses.  ``None`` lets ``multiprocessing`` pick;
        ``1`` (or a batch with at most one miss) runs inline with no pool —
        the dependency-free fallback path.
    max_attempts:
        Total attempts per task before the batch raises
        :class:`WorkerPoolError` — only worker *crashes and stalls* retry
        (results are pure functions of the spec, so a retry is
        bit-identical); deterministic item failures never do.
    worker_timeout:
        Seconds to wait for a pool attempt before declaring the
        outstanding shards stalled and retrying them on a fresh pool.
        ``None`` (default) waits indefinitely.

    Duplicate requests share one ``EnsembleResult`` object; treat results
    as read-only (the cache already hands out defensive copies).
    """
    specs = list(specs)
    for position, spec in enumerate(specs):
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(f"specs[{position}] is not a ScenarioSpec: {spec!r}")
        if spec.seed is None:
            raise ValueError(
                f"specs[{position}] has seed=None; batch execution needs concrete "
                "seeds so results are reproducible and cacheable"
            )
    start = time.perf_counter()
    keys = [
        cache.key_for(spec) if cache is not None else cache_key(spec) for spec in specs
    ]

    # Dedup: the first occurrence of each key owns the execution slot.
    owner_of: dict[str, int] = {}
    sources: list[str] = []
    for position, key in enumerate(keys):
        if key in owner_of:
            sources.append(FROM_DEDUP)
        else:
            owner_of[key] = position
            sources.append(None)  # filled below with "cache", "run" or "error"

    results: dict[str, EnsembleResult] = {}
    failures: dict[str, dict] = {}
    to_run: list[tuple[str, str]] = []
    for key, position in owner_of.items():
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            results[key] = cached
            sources[position] = FROM_CACHE
        else:
            to_run.append((key, specs[position].to_json(indent=None)))
            sources[position] = FROM_RUN
    hits = len(owner_of) - len(to_run)

    retries: dict[str, int] = {}
    if to_run:
        fresh = _execute(
            to_run,
            processes,
            max_attempts=max_attempts,
            worker_timeout=worker_timeout,
            retries=retries,
        )
        for key, payload in fresh:
            if isinstance(payload, dict):  # per-item worker error envelope
                failures[key] = payload
                sources[owner_of[key]] = FROM_ERROR
            else:
                results[key] = payload
                if cache is not None:
                    cache.put(key, payload)

    ordered = [results.get(key) for key in keys]
    errors = [failures.get(key) for key in keys]
    return BatchReport(
        results=ordered,
        keys=keys,
        sources=sources,
        errors=errors,
        retries=retries,
        hits=hits,
        misses=len(to_run),
        deduped=len(specs) - len(owner_of),
        failed=sum(1 for envelope in errors if envelope is not None),
        wall_seconds=time.perf_counter() - start,
    )


def backoff_delay(attempt: int, jitter: random.Random) -> float:
    """Exponential backoff with jitter: uniformly 50–150% of the nominal step.

    The jitter source is an explicit ``random.Random`` so callers that
    need reproducible schedules (the chaos tests) can seed it.
    """
    nominal = min(BACKOFF_CAP_SECONDS, BACKOFF_BASE_SECONDS * (2 ** attempt))
    return nominal * (0.5 + jitter.random())


def _execute(
    tasks: list[tuple[str, str]],
    processes: int | None,
    *,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    worker_timeout: float | None = None,
    retries: dict[str, int] | None = None,
) -> list[tuple[str, object]]:
    """Run the miss tasks with crash/stall recovery; records per-key retries.

    Each attempt runs the still-pending tasks — inline when trivial,
    sharded over a **fresh** spawn pool otherwise (a broken or stalled
    pool is never reused).  Tasks whose shard completed are banked across
    attempts; only lost tasks retry.
    """
    if retries is None:
        retries = {}
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    # Deterministic jitter: the schedule is a function of the task list,
    # not of wall clock or PID, so chaos runs replay identically.
    jitter = random.Random(len(tasks) * 1_000_003 + max_attempts)
    pending = list(tasks)
    done: list[tuple[str, object]] = []
    last_error: BaseException | None = None
    for attempt in range(max_attempts):
        if attempt:
            for key, _ in pending:
                retries[key] = retries.get(key, 0) + 1
            time.sleep(backoff_delay(attempt - 1, jitter))
        completed, pending, last_error = _one_attempt(
            pending, processes, worker_timeout
        )
        done.extend(completed)
        if not pending:
            return done
    raise WorkerPoolError(
        f"{len(pending)} task(s) still failing after {max_attempts} attempts"
    ) from last_error


def _one_attempt(
    tasks: list[tuple[str, str]],
    processes: int | None,
    worker_timeout: float | None,
) -> tuple[list[tuple[str, object]], list[tuple[str, str]], BaseException | None]:
    """One execution attempt: ``(completed pairs, lost tasks, last error)``."""
    if processes == 1 or len(tasks) <= 1:
        try:
            return _run_shard(tasks), [], None
        except faults.InjectedFault as exc:
            return [], list(tasks), exc
    ctx = mp.get_context("spawn")  # fork-safety with BLAS threads
    workers = processes if processes is not None else min(len(tasks), ctx.cpu_count() or 1)
    workers = max(1, min(workers, len(tasks)))
    if workers == 1:
        try:
            return _run_shard(tasks), [], None
        except faults.InjectedFault as exc:
            return [], list(tasks), exc
    shards = [tasks[offset::workers] for offset in range(workers)]
    completed: list[tuple[str, object]] = []
    lost: list[tuple[str, str]] = []
    last_error: BaseException | None = None
    # A fresh pool per attempt: after a crash the old pool is broken, and
    # after a stall its worker is wedged — respawning is the recovery.
    pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
    try:
        futures = {pool.submit(_run_shard, shard): shard for shard in shards}
        finished, unfinished = wait(
            futures, timeout=worker_timeout, return_when=FIRST_EXCEPTION
        )
        # FIRST_EXCEPTION returns early when a shard dies; shards still in
        # flight at that point (or past the stall timeout) count as lost
        # and retry — their tasks are pure, so nothing is double-counted.
        for future in finished:
            try:
                completed.extend(future.result())
            except (BrokenProcessPool, faults.InjectedFault) as exc:
                last_error = exc
                lost.extend(futures[future])
        for future in unfinished:
            if last_error is None:
                last_error = TimeoutError(
                    f"shard stalled past worker_timeout={worker_timeout}s"
                )
            lost.extend(futures[future])
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return completed, lost, last_error
