"""Content-addressed cache for :class:`~repro.core.process.EnsembleResult`.

A scenario is plain data (PR 2), so its simulation result is a pure
function of ``(canonical scenario JSON, effective seed, engine schema
version)``.  :func:`cache_key` hashes exactly that triple;
:class:`ResultCache` stores results under the key in a small in-memory LRU
backed by an on-disk store (one ``.npz`` of arrays plus one ``.json``
manifest per entry), so warm lookups cost a dict probe and cold processes
can still reuse results written by earlier runs.  Recorded
:class:`~repro.core.metrics.TraceSet` columns are stored *packed* — only
each replica's valid prefix, deflate-compressed via
``np.savez_compressed`` — and unpacked to the bit-identical zero-padded
columnar layout on read; with heterogeneous stopping the dense blocks
are mostly padding, so trace-bearing entries shrink by an integer factor
(measured in ``benchmarks/test_bench_sparse.py``).

Correctness contract (asserted in ``tests/test_serve.py``):

* a cache hit is **bit-identical** to calling
  :func:`~repro.scenario.simulate_ensemble` directly at equal seed — same
  arrays, same dtypes, same per-replica ``stopped_by`` labels, and the
  same columnar :class:`~repro.core.metrics.TraceSet` when the spec
  carries a ``record`` (the record config is part of the spec's canonical
  JSON, so recorded and un-recorded runs address different entries);
* entries written under a different
  :data:`~repro.core.process.ENGINE_SCHEMA_VERSION` are never served:
  the version is part of the key, so a new engine simply cannot address
  old entries (plus a manifest check as defence in depth for an entry
  that somehow lands under the right key).  Orphaned old-version files
  are reclaimed by :meth:`ResultCache.purge_stale` (``repro cache
  purge``) or wholesale by :meth:`ResultCache.clear`;
* scenarios with ``seed=None`` (OS entropy) are not cacheable and are
  rejected at key time;
* a corrupted disk entry degrades to a recomputable **miss**, never to an
  unpickling crash or a wrong-bits hit: every ``.npz`` payload is
  checksummed (sha256, recorded in the manifest) at write time and
  verified on every disk read.  An entry that fails verification — or
  fails to decode — is moved aside into ``quarantine/`` (counted in
  :meth:`ResultCache.stats` under ``quarantined``) so operators can
  inspect it, while the caller simply recomputes.  A *transient* read
  error (``OSError``) is also a miss but leaves the possibly-good entry
  in place (counted under ``read_errors``).  Both paths are exercised
  deterministically via the :mod:`repro.faults` points
  ``cache.read-error`` and ``cache.corrupt-payload``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import threading
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from .. import faults
from ..core.metrics import TraceSet
from ..core.process import ENGINE_SCHEMA_VERSION, EnsembleResult
from ..scenario import ScenarioSpec

__all__ = [
    "DEFAULT_MEMORY_ENTRIES",
    "QUARANTINE_DIR",
    "ResultCache",
    "cache_key",
    "default_cache_dir",
]

#: Default capacity of the in-memory LRU layer (entries, not bytes).
DEFAULT_MEMORY_ENTRIES = 256

_MANIFEST_SUFFIX = ".json"
_ARRAYS_SUFFIX = ".npz"

#: Subdirectory (under the cache root) where corrupt entries are moved.
#: Out of the ``*.json`` glob namespace, so stats()/clear()/purge_stale()
#: never mistake a quarantined file for a live entry.
QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    """On-disk cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _seed_token(seed) -> object:
    """JSON-able canonical form of an effective seed.

    Accepts an ``int`` or a :class:`numpy.random.SeedSequence` (the form
    :func:`~repro.core.rng.derive_seed` produces, which is how sweeps name
    their per-point streams).  Generators are rejected: their future output
    depends on hidden state, so a result keyed on one would not be
    reproducible.
    """
    if isinstance(seed, bool) or seed is None:
        raise ValueError(f"seed {seed!r} is not cacheable (need an int or SeedSequence)")
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if entropy is None:
            raise ValueError("cannot cache a SeedSequence with OS entropy")
        if isinstance(entropy, (int, np.integer)):
            entropy = [int(entropy)]
        else:
            entropy = [int(word) for word in entropy]
        return {
            "entropy": entropy,
            "spawn_key": [int(word) for word in seed.spawn_key],
            "pool_size": int(seed.pool_size),
        }
    raise ValueError(f"seed {seed!r} is not cacheable (need an int or SeedSequence)")


def cache_key(
    spec: ScenarioSpec,
    *,
    seed=None,
    schema_version: int = ENGINE_SCHEMA_VERSION,
) -> str:
    """Content-addressed key of one ensemble request (a sha256 hex digest).

    The key hashes the spec's canonical JSON, the *effective* seed and the
    engine schema version.  ``seed`` overrides the spec's own seed — this is
    the hook for the sweep harness, which threads derived
    :class:`~numpy.random.SeedSequence` streams instead of the spec seed;
    the spec's ``seed`` field is excluded from the hash in that case, so a
    sweep point caches identically whatever throwaway seed the builder put
    in the spec.
    """
    scenario = spec.to_dict()
    if seed is not None:
        scenario["seed"] = None
        effective = _seed_token(seed)
    else:
        effective = _seed_token(spec.seed)
    payload = {"schema": int(schema_version), "scenario": scenario, "seed": effective}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _encode(result: EnsembleResult) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a result into a JSON-able manifest + an array payload."""
    manifest = {
        "plurality_color": int(result.plurality_color),
        "max_rounds": int(result.max_rounds),
        "has_final_counts": result.final_counts is not None,
        "has_stopped_by": result.stopped_by is not None,
        "trace": None,
    }
    arrays: dict[str, np.ndarray] = {
        "rounds": result.rounds,
        "winners": result.winners,
        "converged": result.converged,
    }
    if result.final_counts is not None:
        arrays["final_counts"] = result.final_counts
    if result.stopped_by is not None:
        # Object arrays don't npz-save without pickle; str labels round-trip
        # exactly through a fixed-width unicode array.
        arrays["stopped_by"] = np.asarray(result.stopped_by, dtype=str)
    trace = result.trace
    if trace is not None:
        # Metric columns are stored by position (names in the manifest): the
        # names are arbitrary registry strings, not valid npz keys.  They
        # are *packed*: only each replica's valid prefix is stored (the
        # padding past a replica's stop round is zero by construction, and
        # ``n_recorded`` + the recorded round count reconstruct it exactly)
        # — with heterogeneous stopping a dense (R, T, ...) block is mostly
        # padding, so this is where the cache's disk weight went.
        manifest["trace"] = {
            "n": int(trace.n),
            "every": int(trace.every),
            "metrics": list(trace.metrics),
            "packed": True,
        }
        arrays["trace_rounds"] = trace.rounds
        arrays["trace_n_recorded"] = trace.n_recorded
        valid = trace.valid_mask()
        for position, name in enumerate(trace.metrics):
            arrays[f"trace_values_{position}"] = trace.data[name][valid]
    return manifest, arrays


def _decode(manifest: dict, arrays) -> EnsembleResult:
    stopped_by = None
    if manifest["has_stopped_by"]:
        stopped_by = np.array([str(label) for label in arrays["stopped_by"]], dtype=object)
    trace = None
    trace_meta = manifest.get("trace")
    if trace_meta is not None:
        rounds = np.asarray(arrays["trace_rounds"])
        n_recorded = np.asarray(arrays["trace_n_recorded"])
        data: dict[str, np.ndarray] = {}
        if trace_meta.get("packed"):
            # Unpack the valid prefixes back into the zero-padded columnar
            # layout: bit-identical to the recorded TraceSet (asserted via
            # digest() in the tests and the CI cold/warm smoke).
            n_rounds = int(rounds.size)
            valid = np.arange(n_rounds)[None, :] < n_recorded[:, None]
            for position, name in enumerate(trace_meta["metrics"]):
                flat = np.asarray(arrays[f"trace_values_{position}"])
                column = np.zeros(
                    (int(n_recorded.size), n_rounds) + flat.shape[1:], dtype=flat.dtype
                )
                column[valid] = flat
                data[str(name)] = column
        else:  # pre-packing dense layout (defence in depth; keyed out by schema)
            for position, name in enumerate(trace_meta["metrics"]):
                data[str(name)] = np.asarray(arrays[f"trace_values_{position}"])
        trace = TraceSet(
            n=int(trace_meta["n"]),
            every=int(trace_meta["every"]),
            rounds=rounds,
            n_recorded=n_recorded,
            data=data,
        )
    return EnsembleResult(
        rounds=np.asarray(arrays["rounds"]),
        winners=np.asarray(arrays["winners"]),
        converged=np.asarray(arrays["converged"]),
        plurality_color=int(manifest["plurality_color"]),
        max_rounds=int(manifest["max_rounds"]),
        final_counts=np.asarray(arrays["final_counts"]) if manifest["has_final_counts"] else None,
        stopped_by=stopped_by,
        trace=trace,
    )


def _copy_result(result: EnsembleResult) -> EnsembleResult:
    """Defensive copy so callers can't mutate the cached arrays."""
    return EnsembleResult(
        rounds=result.rounds.copy(),
        winners=result.winners.copy(),
        converged=result.converged.copy(),
        plurality_color=result.plurality_color,
        max_rounds=result.max_rounds,
        final_counts=None if result.final_counts is None else result.final_counts.copy(),
        stopped_by=None if result.stopped_by is None else result.stopped_by.copy(),
        trace=None if result.trace is None else result.trace.copy(),
    )


def _corrupt_file(path: Path, n_bytes: int = 16) -> None:
    """Flip ``n_bytes`` mid-file, in place (the corrupt-payload injection).

    Deterministic damage: inverts bytes starting at the file's midpoint, so
    the payload sha256 can no longer match the manifest checksum.
    """
    try:
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            offset = size // 2
            handle.seek(offset)
            chunk = handle.read(min(n_bytes, size - offset))
            handle.seek(offset)
            handle.write(bytes(byte ^ 0xFF for byte in chunk))
    except OSError:
        pass


class ResultCache:
    """LRU-over-disk store of ensemble results, keyed by :func:`cache_key`.

    Thread-safe: every public operation serializes on one reentrant lock
    (the network service hammers a single cache from many threads), and
    hits hand out defensive copies, so concurrent readers can never
    observe each other's mutations.  Cross-*process* races on the disk
    layer (a ``repro cache clear`` against a running service) degrade to
    misses, never to corrupt hits: the atomic manifest-last write order
    plus best-effort ``_disk_put`` guarantee an entry on disk is complete.

    Parameters
    ----------
    root:
        Directory for the on-disk layer; created on first write.  ``None``
        makes the cache memory-only (useful for tests and one-shot sweeps).
    memory_entries:
        Capacity of the in-memory LRU layer.  Disk entries are unbounded;
        ``clear()`` removes both layers.
    schema_version:
        The engine contract this cache trusts.  Disk entries recorded under
        any other version are deleted on lookup instead of served.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        schema_version: int = ENGINE_SCHEMA_VERSION,
    ):
        if memory_entries < 1:
            raise ValueError(f"memory_entries must be >= 1, got {memory_entries}")
        self.root = None if root is None else Path(root).expanduser()
        self.memory_entries = int(memory_entries)
        self.schema_version = int(schema_version)
        self._memory: OrderedDict[str, EnsembleResult] = OrderedDict()
        # One reentrant lock over the LRU, the counters and the disk
        # put/remove paths: the service serves many threads off one cache,
        # and an OrderedDict move_to_end racing a popitem corrupts the LRU.
        # Simulation never runs under the lock (fetch_or_run locks only
        # through get/put), so contention is bounded by (de)serialization.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidated = 0
        self.quarantined = 0
        self.read_errors = 0

    # -- keying --------------------------------------------------------------

    def key_for(self, spec: ScenarioSpec, *, seed=None) -> str:
        return cache_key(spec, seed=seed, schema_version=self.schema_version)

    # -- lookup / store ------------------------------------------------------

    def get(self, key: str) -> EnsembleResult | None:
        """The stored result for ``key``, or None on a miss."""
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return _copy_result(cached)
            cached = self._disk_get(key)
            if cached is not None:
                self._memory_put(key, cached)
                self.hits += 1
                return _copy_result(cached)
            self.misses += 1
            return None

    def put(self, key: str, result: EnsembleResult) -> None:
        """Store ``result`` under ``key`` in both layers."""
        if not isinstance(result, EnsembleResult):
            raise TypeError(f"can only cache EnsembleResult, got {type(result).__name__}")
        result = _copy_result(result)
        with self._lock:
            self._memory_put(key, result)
            self._disk_put(key, result)
            self.stores += 1

    def fetch_or_run(self, spec: ScenarioSpec, *, seed=None, runner=None) -> EnsembleResult:
        """Serve ``spec`` from the cache, running and storing it on a miss.

        ``runner`` defaults to :func:`~repro.scenario.simulate_ensemble`
        driven by the effective seed, so hit or miss the caller sees the
        exact same result.
        """
        key = self.key_for(spec, seed=seed)
        cached = self.get(key)
        if cached is not None:
            return cached
        if runner is None:
            from ..core.rng import make_rng
            from ..scenario import simulate_ensemble

            result = simulate_ensemble(spec, rng=None if seed is None else make_rng(seed))
        else:
            result = runner(spec)
        self.put(key, result)
        return result

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Counters + layer sizes, JSON-able (what ``repro cache stats`` prints)."""
        disk_entries = 0
        disk_bytes = 0
        with self._lock:
            if self.root is not None and self.root.is_dir():
                for manifest in self.root.glob("*" + _MANIFEST_SUFFIX):
                    try:
                        disk_bytes += manifest.stat().st_size
                        disk_entries += 1
                        arrays = manifest.with_suffix(_ARRAYS_SUFFIX)
                        if arrays.exists():
                            disk_bytes += arrays.stat().st_size
                    except OSError:
                        continue  # entry removed by another process mid-scan
            return {
                "root": None if self.root is None else str(self.root),
                "schema_version": self.schema_version,
                "memory_entries": len(self._memory),
                "memory_capacity": self.memory_entries,
                "disk_entries": disk_entries,
                "disk_bytes": disk_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "invalidated": self.invalidated,
                "quarantined": self.quarantined,
                "read_errors": self.read_errors,
            }

    def purge_stale(self) -> int:
        """Delete disk entries recorded under another engine schema version.

        Old-version entries can never be *served* (the version is hashed
        into the key), but they would otherwise sit on disk forever after a
        version bump; this reclaims them without touching current entries.
        Returns the number of entries removed.
        """
        removed = 0
        with self._lock:
            if self.root is not None and self.root.is_dir():
                for manifest_path in self.root.glob("*" + _MANIFEST_SUFFIX):
                    try:
                        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
                    except (OSError, json.JSONDecodeError):
                        manifest = {}
                    if manifest.get("schema") != self.schema_version:
                        self._remove_entry(manifest_path)
                        removed += 1
        return removed

    def clear(self) -> int:
        """Drop every entry in both layers; returns the number of distinct
        keys removed (an entry resident in memory *and* on disk counts once)."""
        with self._lock:
            keys = set(self._memory)
            self._memory.clear()
            if self.root is not None and self.root.is_dir():
                for manifest in self.root.glob("*" + _MANIFEST_SUFFIX):
                    keys.add(manifest.stem)
                    self._remove_entry(manifest)
                quarantine = self.root / QUARANTINE_DIR
                if quarantine.is_dir():
                    for stale in quarantine.iterdir():
                        try:
                            stale.unlink()
                        except OSError:
                            pass
            return len(keys)

    # -- internals -----------------------------------------------------------

    def _memory_put(self, key: str, result: EnsembleResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _paths(self, key: str) -> tuple[Path, Path]:
        assert self.root is not None
        return self.root / (key + _MANIFEST_SUFFIX), self.root / (key + _ARRAYS_SUFFIX)

    def _disk_get(self, key: str) -> EnsembleResult | None:
        if self.root is None:
            return None
        manifest_path, arrays_path = self._paths(key)
        if not manifest_path.exists():
            return None
        if faults.fire("cache.read-error") is not None:
            # Injected transient disk I/O failure: a miss, but the entry
            # (which may be perfectly good) stays on disk for the next read.
            self.read_errors += 1
            return None
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            self._quarantine(key)  # corrupt manifest: preserve for inspection
            return None
        except OSError:
            self.read_errors += 1
            return None
        if manifest.get("schema") != self.schema_version:
            # Written by a different engine contract: invalidate, don't serve.
            self._remove_entry(manifest_path)
            self.invalidated += 1
            return None
        rule = faults.fire("cache.corrupt-payload")
        if rule is not None:
            # Corrupt the *on-disk* payload in place, so the checksum →
            # quarantine → recompute path engages end to end, exactly as it
            # would for real bit rot.
            _corrupt_file(arrays_path, int(rule.params.get("bytes", 16)))
        try:
            blob = arrays_path.read_bytes()
        except OSError:
            self.read_errors += 1
            return None
        checksum = manifest.get("checksum")
        if checksum is not None and hashlib.sha256(blob).hexdigest() != checksum:
            self._quarantine(key)
            return None
        try:
            with np.load(io.BytesIO(blob)) as arrays:
                return _decode(manifest, arrays)
        except (OSError, KeyError, ValueError, zipfile.BadZipFile):
            # Decode failure past the checksum gate (or a legacy entry with
            # no checksum): corruption either way — quarantine, don't serve.
            self._quarantine(key)
            return None

    def _disk_put(self, key: str, result: EnsembleResult) -> None:
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        manifest_path, arrays_path = self._paths(key)
        manifest, arrays = _encode(result)
        manifest["schema"] = self.schema_version
        manifest["key"] = key
        # Write arrays first, manifest last (atomically): a manifest on disk
        # marks a complete entry, so a crash mid-write leaves a miss, not a
        # corrupt hit.  The ".tmp" suffix keeps in-flight files out of the
        # "*.json"/"*.npz" entry namespace that stats()/clear() glob over.
        # Trace-bearing entries are the heavy ones (per-round columns); the
        # zlib pass typically shrinks their zero-padding-free prefixes by
        # a further integer factor.  Trace-less entries stay uncompressed —
        # they are a handful of per-replica scalars, not worth the CPU.
        save = np.savez_compressed if manifest.get("trace") else np.savez
        # A concurrent purge_stale()/clear() from *another process* (in-process
        # callers serialize on self._lock) can remove the directory entries —
        # or an operator can delete the root wholesale — while this write is
        # in flight.  A cache put is best-effort: tolerate the race, drop the
        # entry, and leave the caller's result untouched.
        try:
            with tempfile.NamedTemporaryFile(
                dir=self.root, suffix=_ARRAYS_SUFFIX + ".tmp", delete=False
            ) as handle:
                save(handle, **arrays)
                tmp_arrays = handle.name
            # Checksum the exact bytes that land on disk (np.savez seeks to
            # patch zip headers, so hashing must read back, not wrap the
            # stream).  Verified on every disk read; a mismatch quarantines
            # the entry instead of serving or crashing on rotten bits.
            manifest["checksum"] = hashlib.sha256(
                Path(tmp_arrays).read_bytes()
            ).hexdigest()
        except OSError:
            return
        tmp_manifest = None
        try:
            os.replace(tmp_arrays, arrays_path)
            with tempfile.NamedTemporaryFile(
                "w",
                dir=self.root,
                suffix=_MANIFEST_SUFFIX + ".tmp",
                delete=False,
                encoding="utf-8",
            ) as handle:
                json.dump(manifest, handle, sort_keys=True)
                tmp_manifest = handle.name
            os.replace(tmp_manifest, manifest_path)
        except OSError:
            # Never leave a manifest-less or half-renamed entry behind: the
            # manifest marks completeness, so removing both files restores
            # "miss", which is always a correct state.
            for stale in (tmp_arrays, tmp_manifest, arrays_path):
                if stale is None:
                    continue
                try:
                    os.unlink(stale)
                except OSError:
                    pass

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry's files into ``quarantine/`` (fallback: delete).

        Either way the entry stops being servable — the caller sees a miss
        and recomputes — but quarantining preserves the bad bytes for
        post-mortem instead of destroying the evidence.
        """
        manifest_path, arrays_path = self._paths(key)
        quarantine = self.root / QUARANTINE_DIR
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            for path in (manifest_path, arrays_path):
                if path.exists():
                    os.replace(path, quarantine / path.name)
        except OSError:
            self._remove_entry(manifest_path)
        self.quarantined += 1

    def _remove_entry(self, manifest_path: Path) -> None:
        for path in (manifest_path, manifest_path.with_suffix(_ARRAYS_SUFFIX)):
            try:
                path.unlink()
            except OSError:
                pass

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
            if self.root is None:
                return False
            return self._paths(key)[0].exists()

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, entries={len(self._memory)}mem, "
            f"schema={self.schema_version}, hits={self.hits}, misses={self.misses})"
        )
