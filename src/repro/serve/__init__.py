"""Serving substrate: the content-addressed result cache + batch executor.

``repro.serve`` is the layer that turns the declarative scenario API into
something that can absorb heavy repeated traffic: :class:`ResultCache`
memoises :func:`~repro.scenario.simulate_ensemble` results under a
content-addressed key (canonical scenario JSON + seed + engine schema
version), and :func:`run_batch` executes many specs at once — deduping
identical requests, serving hits from the cache and sharding the misses
over a spawn-context process pool — while preserving request order.

Results served from the cache are bit-identical to a direct
``simulate_ensemble`` call at equal seed, and cache entries written by an
older engine (see ``repro.core.process.ENGINE_SCHEMA_VERSION``) are
invalidated instead of served.
"""

from .cache import DEFAULT_MEMORY_ENTRIES, ResultCache, cache_key, default_cache_dir
from .envelope import error_envelope, prepare_spec, prepare_specs
from .executor import BatchReport, run_batch

__all__ = [
    "BatchReport",
    "DEFAULT_MEMORY_ENTRIES",
    "ResultCache",
    "cache_key",
    "default_cache_dir",
    "error_envelope",
    "prepare_spec",
    "prepare_specs",
    "run_batch",
]
