"""Per-item spec validation with error envelopes.

``repro batch`` and the network service both accept *lists* of scenario
objects from untrusted input, and both need the same failure semantics:
one malformed item must not abort the valid ones.  :func:`prepare_specs`
validates every item up front — strict :meth:`ScenarioSpec.from_dict`
structure, a concrete seed (reproducibility is what makes dedup and
caching sound), and a full registry :meth:`~repro.scenario.ScenarioSpec.validate`
so unknown names fail here instead of inside a worker — and returns one
``(spec, error)`` pair per item in request order.  Exactly one of the
pair is ``None``; errors are JSON-able ``{"type", "message"}`` envelopes,
the shape both the CLI output and the service wire format embed.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..scenario import ScenarioSpec

__all__ = ["EnvelopeError", "error_envelope", "prepare_spec", "prepare_specs"]


class EnvelopeError(Exception):
    """An exception reconstructed from a ``{"type", "message"}`` envelope.

    Worker shards report per-item failures as envelopes (picklable,
    JSON-able); when a caller needs the failure back as an exception —
    the service raising it to coalesced followers — this carries the
    original envelope so :func:`error_envelope` round-trips the worker's
    exception type instead of reporting ``EnvelopeError``.
    """

    def __init__(self, envelope: dict[str, str]):
        super().__init__(envelope.get("message", "worker failure"))
        self.envelope = {
            "type": str(envelope.get("type", "Error")),
            "message": str(envelope.get("message", "")),
        }


def error_envelope(exc: BaseException) -> dict[str, str]:
    """JSON-able ``{"type", "message"}`` form of one validation failure."""
    if isinstance(exc, EnvelopeError):
        return dict(exc.envelope)
    return {"type": type(exc).__name__, "message": str(exc)}


def prepare_spec(
    entry, *, validate: bool = True
) -> tuple[ScenarioSpec | None, dict[str, str] | None]:
    """Validate one scenario object into ``(spec, None)`` or ``(None, envelope)``.

    ``validate=False`` skips the registry :meth:`~repro.scenario.ScenarioSpec.validate`
    pass (which can be expensive — topology validation materialises the
    graph) for callers that memoise it themselves, e.g. the service's
    per-spec validation cache.  Structural parsing and the concrete-seed
    requirement always apply.
    """
    try:
        if isinstance(entry, ScenarioSpec):
            spec = entry
        elif isinstance(entry, Mapping):
            spec = ScenarioSpec.from_dict(entry)
        else:
            raise ValueError(
                f"scenario must be a JSON object, got {type(entry).__name__}"
            )
        if spec.seed is None:
            raise ValueError(
                "scenario has seed=None; serving needs concrete seeds so results "
                "are reproducible and cacheable"
            )
        if validate:
            spec.validate()  # resolve every registry name before any item runs
        return spec, None
    except Exception as exc:  # noqa: BLE001 — any failure becomes the item's envelope
        return None, error_envelope(exc)


def prepare_specs(
    entries: Sequence,
) -> list[tuple[ScenarioSpec | None, dict[str, str] | None]]:
    """Validate every item (request order preserved, no early abort)."""
    return [prepare_spec(entry) for entry in entries]
