"""Sequential population-protocol engine (the paper's contrast model).

The related work the paper positions against ([2] Angluin-Aspnes-Eisenstat,
[21] Perron-Vasudevan-Vojnovic, [8] Draief-Vojnovic, [3] Babaee-Draief)
lives in the *population model*: at each discrete tick a single ordered
pair of agents (initiator, responder) is drawn u.a.r. and interacts — there
is no synchronous round.  A parallel round corresponds to ~n ticks, which
is how cross-model time comparisons are normalised.

This module implements the model exactly at the counts level: because the
protocols below are anonymous, an interaction's effect depends only on the
(state-of-initiator, state-of-responder) pair, whose distribution is a
simple function of the counts — so each tick is O(1) work and no per-agent
array is needed.

Protocols provided:

* :class:`PairwiseVoter` — initiator copies responder (sequential polling);
* :class:`UndecidedPopulation` — the Angluin et al. 3-state protocol,
  generalised to k colors exactly as in [21]: a colored initiator meeting
  a different color becomes undecided, an undecided initiator adopts the
  responder's color.  The paper notes its multivalued version fails to
  elect the plurality for k ≥ 3 from some Θ(n)-bias starts — which
  :mod:`repro.experiments` can now exhibit against the *parallel*
  undecided-state dynamics.

Use :class:`PopulationProcess` to run to consensus and convert tick counts
into parallel-round equivalents (ticks / n).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PairwiseProtocol",
    "PairwiseVoter",
    "UndecidedPopulation",
    "PopulationProcess",
    "PopulationResult",
]


class PairwiseProtocol(abc.ABC):
    """An anonymous two-agent interaction rule on an extended state vector.

    State convention matches the parallel engines: ``counts`` has one slot
    per color plus (optionally) trailing protocol-specific slots; the
    protocol declares the total slot count for ``k`` colors via
    :meth:`slots`.
    """

    name: str = "pairwise-protocol"

    @abc.abstractmethod
    def slots(self, k: int) -> int:
        """Total state-vector length for ``k`` colors."""

    @abc.abstractmethod
    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        """Embed a k-color count vector into the protocol's state vector."""

    @abc.abstractmethod
    def interact(self, initiator: int, responder: int) -> int:
        """New state of the *initiator* after meeting ``responder``.

        The responder is unchanged (one-way protocols; all the protocols
        the paper's related work analyses are one-way).
        """

    def colored_view(self, state: np.ndarray, k: int) -> np.ndarray:
        return state[:k]


class PairwiseVoter(PairwiseProtocol):
    """Sequential polling: the initiator adopts the responder's color."""

    name = "pairwise-voter"

    def slots(self, k: int) -> int:
        return k

    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        return np.asarray(counts, dtype=np.int64).copy()

    def interact(self, initiator: int, responder: int) -> int:
        return responder


class UndecidedPopulation(PairwiseProtocol):
    """Angluin et al.'s third-state protocol, multivalued version of [21].

    Slot ``k`` is the undecided state.  Transitions (initiator only):
    colored ``i`` meets colored ``j != i`` → undecided; undecided meets
    colored ``j`` → ``j``; all other meetings leave the initiator as is.
    """

    name = "undecided-population"

    def slots(self, k: int) -> int:
        return k + 1

    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        return np.concatenate([counts, [0]])

    def interact(self, initiator: int, responder: int) -> int:
        # Slot indices are resolved by the process; the undecided slot is
        # always the last one, flagged by the caller via _undecided_slot.
        undecided = self._undecided_slot
        if initiator == undecided:
            return responder if responder != undecided else undecided
        if responder == undecided:
            return initiator
        if initiator != responder:
            return undecided
        return initiator

    _undecided_slot: int = -1  # set by PopulationProcess before running


@dataclass
class PopulationResult:
    """Outcome of a sequential run."""

    converged: bool
    winner: int | None
    ticks: int
    plurality_color: int
    final_counts: np.ndarray

    @property
    def plurality_won(self) -> bool:
        return self.converged and self.winner == self.plurality_color

    def parallel_rounds(self, n: int) -> float:
        """Tick count normalised to parallel-round equivalents."""
        return self.ticks / n


class PopulationProcess:
    """Exact counts-level simulator of one-way pairwise protocols.

    Each tick draws an ordered pair of *distinct* agents u.a.r.; since the
    protocol is anonymous, only the pair of state-slots matters, and those
    are sampled directly from the counts: the initiator slot ``a`` with
    probability ``c_a / n``, the responder slot ``b`` with probability
    ``c_b / (n-1)`` (minus the initiator, handled exactly).  Uniform draws
    are consumed from pre-generated blocks to amortise RNG overhead.
    """

    _BLOCK = 8192

    def __init__(self, protocol: PairwiseProtocol):
        self.protocol = protocol

    def run(
        self,
        counts: np.ndarray,
        *,
        max_ticks: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> PopulationResult:
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        counts = np.asarray(counts, dtype=np.int64)
        k = counts.size
        n = int(counts.sum())
        if n < 2:
            raise ValueError("population protocols need at least two agents")
        slots = self.protocol.slots(k)
        state = self.protocol.initial_state(counts).astype(np.int64)
        if state.size != slots:
            raise RuntimeError("protocol initial_state produced wrong slot count")
        if hasattr(self.protocol, "_undecided_slot"):
            self.protocol._undecided_slot = slots - 1
        plurality_color = int(np.argmax(counts))
        if max_ticks is None:
            max_ticks = 200 * n * max(1, int(np.log(max(n, 3)))) * k

        state_list = state.tolist()  # Python ints: the tick loop is scalar
        ticks = 0
        uniforms = generator.random(self._BLOCK)
        u_pos = 0

        def draw() -> float:
            nonlocal uniforms, u_pos
            if u_pos >= uniforms.size:
                uniforms = generator.random(self._BLOCK)
                u_pos = 0
            v = uniforms[u_pos]
            u_pos += 1
            return float(v)

        def sample_slot(weights: list[int], total: int) -> int:
            x = draw() * total
            acc = 0.0
            for idx, w in enumerate(weights):
                acc += w
                if x < acc:
                    return idx
            return len(weights) - 1

        def colored_mono() -> bool:
            return max(state_list[:k]) == n

        while ticks < max_ticks and not colored_mono():
            a = sample_slot(state_list, n)
            # responder drawn among the other n-1 agents
            state_list[a] -= 1
            b = sample_slot(state_list, n - 1)
            state_list[a] += 1
            new_a = self.protocol.interact(a, b)
            if new_a != a:
                state_list[a] -= 1
                state_list[new_a] += 1
            ticks += 1

        final = np.asarray(state_list[:k], dtype=np.int64)
        converged = bool(final.max() == n)
        return PopulationResult(
            converged=converged,
            winner=int(np.argmax(final)) if converged else None,
            ticks=ticks,
            plurality_color=plurality_color,
            final_counts=final,
        )
