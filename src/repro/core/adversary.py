"""F-bounded dynamic adversaries (paper, Section 3.1).

A *T-bounded dynamic adversary* observes the full configuration at the end
of each round and may arbitrarily recolor up to ``T`` agents before the
next round begins.  Corollary 4 shows 3-majority still reaches
``O(s/λ)``-plurality consensus when ``F = o(s/λ)``.

Adversaries here operate on count vectors (the clique is anonymous, so a
count-level action is fully general) and must satisfy two contracts,
enforced by :meth:`Adversary.corrupt`:

* total mass is preserved;
* at most ``budget`` agents change color (L1 distance ≤ 2·budget).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "Adversary",
    "TargetedAdversary",
    "BalancingAdversary",
    "RandomAdversary",
    "ReviveAdversary",
]


class Adversary(abc.ABC):
    """Base class; subclasses implement :meth:`_act` on a copy of counts."""

    def __init__(self, budget: int):
        if budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self.budget = int(budget)

    @abc.abstractmethod
    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the corrupted counts; may assume a private mutable copy."""

    def corrupt(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply the adversary, validating its contract."""
        counts = np.asarray(counts, dtype=np.int64)
        out = np.asarray(self._act(counts.copy(), rng), dtype=np.int64)
        if out.shape != counts.shape:
            raise RuntimeError("adversary changed the number of colors")
        if out.sum() != counts.sum():
            raise RuntimeError("adversary changed the number of agents")
        if np.any(out < 0):
            raise RuntimeError("adversary produced negative counts")
        moved = int(np.abs(out - counts).sum()) // 2
        if moved > self.budget:
            raise RuntimeError(f"adversary moved {moved} agents, budget {self.budget}")
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}(budget={self.budget})"


class TargetedAdversary(Adversary):
    """Worst-case strategy: move plurality supporters to the runner-up.

    This directly attacks the bias ``s(c)``, reducing it by ``2F`` per
    round — the strategy against which Corollary 4's bound is stated.
    """

    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        top = int(np.argmax(counts))
        masked = counts.copy()
        masked[top] = -1
        runner = int(np.argmax(masked))
        move = min(self.budget, int(counts[top]))
        counts[top] -= move
        counts[runner] += move
        return counts


class BalancingAdversary(Adversary):
    """Greedy bias-minimiser: repeatedly level the top two colors.

    Moves up to ``budget`` agents from the current maximum to the current
    minimum-among-supported colors, one greedy unit block at a time; a
    stronger bias-reduction than :class:`TargetedAdversary` when several
    colors are close to the top.
    """

    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        remaining = self.budget
        while remaining > 0:
            top = int(np.argmax(counts))
            low = int(np.argmin(counts))
            if counts[top] - counts[low] <= 1:
                break
            # Move just enough to level, bounded by the budget.
            move = min(remaining, int(counts[top] - counts[low]) // 2, int(counts[top]))
            if move == 0:
                break
            counts[top] -= move
            counts[low] += move
            remaining -= move
        return counts


class RandomAdversary(Adversary):
    """Noise model: recolor ``budget`` uniformly random agents uniformly.

    Not adversarial in the game-theoretic sense; used as the control
    strategy in E8 to separate "any perturbation" from "worst-case
    perturbation".
    """

    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = int(counts.sum())
        if n == 0:
            return counts
        k = counts.size
        move = min(self.budget, n)
        # Choose `move` agents by color proportionally (hypergeometric via
        # multivariate sampling without replacement).
        victims = rng.multivariate_hypergeometric(counts, move)
        counts -= victims
        counts += rng.multinomial(move, np.full(k, 1.0 / k))
        return counts


class ReviveAdversary(Adversary):
    """Keeps minority colors alive: feeds the weakest supported-or-dead color.

    Moves agents from the plurality to the globally smallest count; against
    3-majority this maximally delays Lemma 5's final extinction step.
    """

    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        top = int(np.argmax(counts))
        low = int(np.argmin(counts))
        if top == low:
            return counts
        move = min(self.budget, int(counts[top]))
        counts[top] -= move
        counts[low] += move
        return counts
