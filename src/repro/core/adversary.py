"""F-bounded dynamic adversaries (paper, Section 3.1).

A *T-bounded dynamic adversary* observes the full configuration at the end
of each round and may arbitrarily recolor up to ``T`` agents before the
next round begins.  Corollary 4 shows 3-majority still reaches
``O(s/λ)``-plurality consensus when ``F = o(s/λ)``.

Adversaries here operate on count vectors (the clique is anonymous, so a
count-level action is fully general) and must satisfy two contracts,
enforced by :meth:`Adversary.corrupt` and :meth:`Adversary.corrupt_many`:

* total mass is preserved;
* at most ``budget`` agents change color (L1 distance ≤ 2·budget).

Replica ensembles corrupt all rows in one call through
:meth:`Adversary.corrupt_many`; strategies whose action is a per-row
argmax/argmin arithmetic (targeted, revive) override :meth:`Adversary._act_many`
with fully broadcast implementations, so the ensemble hot path has no
Python-level loop over replicas.
"""

from __future__ import annotations

import abc

import numpy as np

from .registry import ADVERSARIES

__all__ = [
    "Adversary",
    "TargetedAdversary",
    "BalancingAdversary",
    "RandomAdversary",
    "ReviveAdversary",
]


class Adversary(abc.ABC):
    """Base class; subclasses implement :meth:`_act` on a copy of counts."""

    #: True when the strategy never moves mass onto a color whose count is
    #: zero *and* its action depends only on the supported counts — so
    #: acting on a support-compacted ``(R, s)`` batch and scattering back
    #: equals acting on the dense ``(R, k)`` one.  This is the contract the
    #: ensemble runner's ``engine="sparse"`` layout needs; strategies that
    #: can revive extinct colors (targeted's monochromatic corner, random's
    #: uniform-over-k refill, revive by design) must leave it False, which
    #: keeps ``engine="auto"`` dense and makes an explicit ``"sparse"``
    #: request fail loudly instead of silently changing the strategy.
    support_preserving: bool = False

    def __init__(self, budget: int):
        if budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self.budget = int(budget)

    @abc.abstractmethod
    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the corrupted counts; may assume a private mutable copy."""

    def _act_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Corrupt an ``(R, k)`` batch; may assume a private mutable copy.

        The default applies :meth:`_act` row by row; strategies with
        broadcastable actions override it.
        """
        if counts.shape[0] == 0:
            return counts
        return np.stack([self._act(row, rng) for row in counts])

    def corrupt(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply the adversary to one configuration, validating its contract."""
        counts = np.asarray(counts, dtype=np.int64)
        out = np.asarray(self._act(counts.copy(), rng), dtype=np.int64)
        self._validate(counts[None, :], out[None, :])
        return out

    def corrupt_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply the adversary to every row of an ``(R, k)`` batch.

        Validation of the mass/budget contract is a single vectorized pass
        over the batch.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("corrupt_many expects (R, k) counts")
        out = np.asarray(self._act_many(counts.copy(), rng), dtype=np.int64)
        self._validate(counts, out)
        return out

    def _validate(self, before: np.ndarray, after: np.ndarray) -> None:
        if after.shape != before.shape:
            raise RuntimeError("adversary changed the number of colors")
        if np.any(after.sum(axis=1) != before.sum(axis=1)):
            raise RuntimeError("adversary changed the number of agents")
        if np.any(after < 0):
            raise RuntimeError("adversary produced negative counts")
        moved = np.abs(after - before).sum(axis=1) // 2
        if np.any(moved > self.budget):
            raise RuntimeError(
                f"adversary moved {int(moved.max())} agents, budget {self.budget}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(budget={self.budget})"


@ADVERSARIES.register("targeted")
class TargetedAdversary(Adversary):
    """Worst-case strategy: move plurality supporters to the runner-up.

    This directly attacks the bias ``s(c)``, reducing it by ``2F`` per
    round — the strategy against which Corollary 4's bound is stated.
    """

    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return self._act_many(counts[None, :], rng)[0]

    def _act_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if counts.shape[0] == 0:
            return counts
        rows = np.arange(counts.shape[0])
        top = np.argmax(counts, axis=1)
        top_vals = counts[rows, top]
        masked = counts.copy()
        masked[rows, top] = -1
        runner = np.argmax(masked, axis=1)
        move = np.minimum(self.budget, top_vals)
        counts[rows, top] -= move
        counts[rows, runner] += move
        return counts


@ADVERSARIES.register("balancing")
class BalancingAdversary(Adversary):
    """Greedy bias-minimiser: repeatedly level the top two *supported* colors.

    Moves up to ``budget`` agents from the current maximum to the current
    minimum-among-supported colors, one greedy unit block at a time; a
    stronger bias-reduction than :class:`TargetedAdversary` when several
    colors are close to the top.  Extinct (count-0) colors are never fed:
    this adversary attacks the bias, not Lemma 5's extinction argument, so
    dead colors stay dead.  The batch path runs the same greedy schedule for
    all rows in lock-step (each iteration is one broadcast argmax/argmin
    pass over the still-active rows), bit-identical to the per-row loop.

    Because it only ever looks at and feeds supported colors, this is the
    one built-in strategy with :attr:`~Adversary.support_preserving` set:
    acting on the sparse engine's support-compacted columns is exactly the
    dense action.
    """

    support_preserving = True

    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        remaining = self.budget
        while remaining > 0:
            supported = np.nonzero(counts > 0)[0]
            if supported.size <= 1:
                break
            top = int(np.argmax(counts))  # the max is always supported
            low = int(supported[np.argmin(counts[supported])])
            gap = int(counts[top] - counts[low])
            if gap <= 1:
                break
            # Move just enough to level, bounded by the budget.
            move = min(remaining, gap // 2)
            counts[top] -= move
            counts[low] += move
            remaining -= move
        return counts

    def _act_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if counts.shape[0] == 0 or self.budget == 0:
            return counts
        replicas = counts.shape[0]
        remaining = np.full(replicas, self.budget, dtype=np.int64)
        active = np.ones(replicas, dtype=bool)
        while True:
            rows = np.nonzero(active)[0]
            if rows.size == 0:
                break
            sub = counts[rows]
            pick = np.arange(rows.size)
            supported = sub > 0
            top = np.argmax(sub, axis=1)
            low = np.argmin(np.where(supported, sub, np.iinfo(np.int64).max), axis=1)
            gap = sub[pick, top] - sub[pick, low]
            move = np.minimum(remaining[rows], gap // 2)
            progressing = (supported.sum(axis=1) > 1) & (gap > 1) & (move > 0)
            stalled = rows[~progressing]
            active[stalled] = False
            rows = rows[progressing]
            if rows.size == 0:
                break
            top, low, move = top[progressing], low[progressing], move[progressing]
            counts[rows, top] -= move
            counts[rows, low] += move
            remaining[rows] -= move
            active[rows] = remaining[rows] > 0
        return counts


@ADVERSARIES.register("random")
class RandomAdversary(Adversary):
    """Noise model: recolor ``budget`` uniformly random agents uniformly.

    Not adversarial in the game-theoretic sense; used as the control
    strategy in E8 to separate "any perturbation" from "worst-case
    perturbation".  Victim selection needs one hypergeometric draw per row
    (no batched API), but the uniform refill is a single batched
    multinomial.
    """

    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return self._act_many(counts[None, :], rng)[0]

    def _act_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if counts.shape[0] == 0:
            return counts
        k = counts.shape[1]
        totals = counts.sum(axis=1)
        moves = np.minimum(self.budget, totals)
        for r in range(counts.shape[0]):
            if moves[r] > 0:
                # Choose victims by color proportionally (hypergeometric =
                # sampling agents without replacement).
                counts[r] -= rng.multivariate_hypergeometric(counts[r], int(moves[r]))
        counts += rng.multinomial(moves, np.full(k, 1.0 / k))
        return counts


@ADVERSARIES.register("revive")
class ReviveAdversary(Adversary):
    """Keeps minority colors alive: feeds the weakest supported-or-dead color.

    Moves agents from the plurality to the globally smallest count; against
    3-majority this maximally delays Lemma 5's final extinction step.
    """

    def _act(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return self._act_many(counts[None, :], rng)[0]

    def _act_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if counts.shape[0] == 0:
            return counts
        rows = np.arange(counts.shape[0])
        top = np.argmax(counts, axis=1)
        low = np.argmin(counts, axis=1)
        move = np.where(top != low, np.minimum(self.budget, counts[rows, top]), 0)
        counts[rows, top] -= move
        counts[rows, low] += move
        return counts
