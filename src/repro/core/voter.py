"""One- and two-sample baselines the paper contrasts against.

* :class:`Voter` (the *polling* / 1-majority process [Hassin-Peleg 01]):
  copy one uniform sample.  Martingale in each color count; the consensus
  color is color ``j`` with probability exactly ``c_j / n``, so it elects a
  minority with constant probability even at bias Θ(n) — experiment E9.

* :class:`TwoChoices`: sample two agents, adopt their color iff they agree,
  otherwise keep your own.  For ``k = 2`` this is fast and correct
  w.h.p. under √(n log n) bias; for large ``k`` from balanced starts the
  per-round progress is Θ(1/k) agreements, the "stall" E9 exhibits.
"""

from __future__ import annotations

import numpy as np

from .dynamics import CountsDynamics
from .registry import DYNAMICS

__all__ = ["Voter", "TwoChoices"]


@DYNAMICS.register("voter", summary="1-sample polling baseline")
class Voter(CountsDynamics):
    """Polling dynamics: adopt the color of one uniform sample."""

    name = "voter"
    sample_size = 1
    color_law_broadcasts = True
    support_closed = True  # copies a sampled color

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        c = np.asarray(counts, dtype=np.float64)
        n = c.sum(axis=-1, keepdims=True)
        if np.any(n <= 0):
            raise ValueError("empty configuration has no color law")
        return c / n


@DYNAMICS.register("two-choices", summary="adopt a doubly-sampled color, else keep own")
class TwoChoices(CountsDynamics):
    """Two-choices dynamics: adopt a doubly-sampled color, else keep own.

    Not a pure anonymous color law — the next color depends on the agent's
    current color — so the exact engine treats each current-color class
    separately: a class-``i`` agent moves to ``j`` with probability
    ``(c_j/n)^2`` for ``j != i`` and stays with the remaining mass.  The
    next configuration is the sum of ``k`` independent multinomials, one
    per class.
    """

    name = "two-choices"
    sample_size = 2
    support_closed = True  # adopts a sampled color or keeps its own

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        # Marginal law over a uniformly random agent (used by the exact
        # Markov analysis): average the class-conditional laws weighted by
        # class sizes.  Note the *joint* step below is NOT multinomial in
        # this law; step() overrides with the exact class-wise sampling.
        c = np.asarray(counts, dtype=np.float64)
        n = c.sum()
        if n <= 0:
            raise ValueError("empty configuration has no color law")
        f = c / n
        sq = f * f
        stay_extra = 1.0 - sq.sum()
        # P(agent ends j) = P(start j) * (stay) + P(any start) * (c_j/n)^2
        return f * stay_extra + sq

    def class_transition_matrix(self, counts: np.ndarray) -> np.ndarray:
        """``M[i, j]``: probability a class-``i`` agent has color ``j`` next."""
        c = np.asarray(counts, dtype=np.float64)
        n = c.sum()
        if n <= 0:
            raise ValueError("empty configuration has no transition matrix")
        f = c / n
        sq = f * f
        k = c.size
        mat = np.tile(sq, (k, 1))
        stay = 1.0 - (sq.sum() - sq)  # 1 - sum_{j != i} (c_j/n)^2
        np.fill_diagonal(mat, stay)
        return mat

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        k = counts.size
        if counts.sum() == 0:
            return counts.copy()
        mat = self.class_transition_matrix(counts)
        out = np.zeros(k, dtype=np.int64)
        occupied = np.nonzero(counts)[0]
        # One multinomial per occupied class; k is small on the hot path.
        draws = rng.multinomial(counts[occupied], mat[occupied])
        out += draws.sum(axis=0)
        return out

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k) counts")
        return np.stack([self.step(row, rng) for row in counts])
