"""The paper's protagonist: 3-majority, and its h-sample generalisation.

* :class:`ThreeMajority` — every agent samples three agents u.a.r. (with
  replacement, possibly itself) and adopts the sample's majority color,
  breaking three-way ties by taking the first sample.  Lemma 1 of the paper
  gives the exact per-agent law

      ``p_j = (c_j / n^3) * (n^2 + n c_j - sum_h c_h^2)``,

  which is independent of the tie-break convention; we use it to run the
  exact counts-level engine.  An agent-level step (explicit triple sampling)
  is kept for cross-validation and for the tie-break ablation.

* :class:`HPlurality` — the h-sample plurality rule of Section 4.3.  For
  general ``h`` and ``k`` the per-agent law has no tractable closed form, so
  stepping is agent-level: an ``(n, h)`` categorical sample matrix reduced
  row-wise with uniform tie-breaking.  ``HPlurality(3)`` with uniform
  tie-break has the same marginal law as :class:`ThreeMajority`.

* :class:`TwoSampleUniform` — two samples, ties broken uniformly.  Its law
  collapses to ``p_j = c_j / n`` (the polling/voter process), which is the
  paper's remark that two samples are *not* enough.
"""

from __future__ import annotations

import numpy as np

from .dynamics import CountsDynamics, Dynamics
from .samplers import categorical_matrix, row_plurality

__all__ = ["ThreeMajority", "HPlurality", "TwoSampleUniform", "three_majority_law"]


def three_majority_law(counts: np.ndarray) -> np.ndarray:
    """Lemma 1's exact next-color law for the 3-majority dynamics.

    ``p_j = (c_j / n^3) (n^2 + n c_j - sum_h c_h^2)``; rows sum to one by
    the identity ``sum_j c_j = n``.
    """
    c = np.asarray(counts, dtype=np.float64)
    n = c.sum(axis=-1, keepdims=True)
    if np.any(n <= 0):
        raise ValueError("empty configuration has no color law")
    sq = (c * c).sum(axis=-1, keepdims=True)
    return (c / n**3) * (n**2 + n * c - sq)


class ThreeMajority(CountsDynamics):
    """3-majority dynamics on the clique (exact counts-level engine).

    Parameters
    ----------
    agent_level:
        When True, :meth:`step` samples explicit triples per agent instead
        of using the Lemma 1 multinomial — statistically identical, ~n/k
        times slower; used by the validation tests and the engine ablation.
    tie_break:
        ``"first"`` (paper's rule) or ``"uniform"``; only observable in
        agent-level mode and only through joint statistics — the marginal
        law (hence the counts process) is the same, which the ablation
        bench verifies empirically.
    """

    name = "3-majority"
    sample_size = 3

    def __init__(self, agent_level: bool = False, tie_break: str = "first"):
        if tie_break not in ("first", "uniform"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        self.agent_level = bool(agent_level)
        self.tie_break = tie_break

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        return three_majority_law(np.asarray(counts, dtype=np.int64))

    def color_law_batch(self, counts: np.ndarray) -> np.ndarray:
        return three_majority_law(np.asarray(counts, dtype=np.int64))

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if not self.agent_level:
            return super().step(counts, rng)
        return self._agent_step(np.asarray(counts, dtype=np.int64), rng)

    def _agent_step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = int(counts.sum())
        k = counts.size
        if n == 0:
            return counts.copy()
        triples = categorical_matrix(counts, n, 3, rng)
        a, b, c = triples[:, 0], triples[:, 1], triples[:, 2]
        out = np.where(b == c, b, a)  # bc pair wins; else default to first
        out = np.where(a == b, a, out)
        out = np.where(a == c, a, out)
        if self.tie_break == "uniform":
            distinct = (a != b) & (b != c) & (a != c)
            if np.any(distinct):
                pick = rng.integers(0, 3, size=int(distinct.sum()))
                out[distinct] = triples[distinct, :][np.arange(pick.size), pick]
        return np.bincount(out, minlength=k).astype(np.int64)


class HPlurality(Dynamics):
    """h-plurality dynamics: adopt the plurality of ``h`` uniform samples.

    Ties among maximal sample colors are broken uniformly at random
    (Section 4.3 of the paper).  Implemented agent-level; per-round cost is
    O(n·h) sampling plus a chunked O(n·k) histogram reduction.
    """

    name = "h-plurality"

    def __init__(self, h: int):
        if h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        self.h = int(h)
        self.sample_size = self.h
        self.name = f"{h}-plurality"

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        n = int(counts.sum())
        k = counts.size
        if n == 0:
            return counts.copy()
        if self.h == 1:
            # 1-plurality is exactly the voter model: p = c / n.
            from .samplers import multinomial_step

            return multinomial_step(n, counts / n, rng)
        samples = categorical_matrix(counts, n, self.h, rng)
        winners = row_plurality(samples, k, rng)
        return np.bincount(winners, minlength=k).astype(np.int64)

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        """Exact law, available for ``h = 1`` and ``h = 3`` only."""
        counts = np.asarray(counts, dtype=np.int64)
        if self.h == 1:
            return counts / counts.sum()
        if self.h == 3:
            return three_majority_law(counts)
        raise NotImplementedError(
            f"no closed-form color law for h={self.h}; use the agent-level step"
        )


class TwoSampleUniform(CountsDynamics):
    """Two samples with uniform tie-breaking — provably just polling.

    ``p_j = (c_j/n)^2 + 2 (c_j/n)(1 - c_j/n) / 2 = c_j / n``: the same
    marginal as the voter model, hence (paper, Section 1) it converges to a
    minority with constant probability even under bias Θ(n).
    """

    name = "2-sample-uniform"
    sample_size = 2

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        c = np.asarray(counts, dtype=np.float64)
        return c / c.sum()

    def color_law_batch(self, counts: np.ndarray) -> np.ndarray:
        c = np.asarray(counts, dtype=np.float64)
        return c / c.sum(axis=1, keepdims=True)
