"""The paper's protagonist: 3-majority, and its h-sample generalisation.

* :class:`ThreeMajority` — every agent samples three agents u.a.r. (with
  replacement, possibly itself) and adopts the sample's majority color,
  breaking three-way ties by taking the first sample.  Lemma 1 of the paper
  gives the exact per-agent law

      ``p_j = (c_j / n^3) * (n^2 + n c_j - sum_h c_h^2)``,

  which is independent of the tie-break convention; we use it to run the
  exact counts-level engine.  An agent-level step (explicit triple sampling)
  is kept for cross-validation and for the tie-break ablation.

* :class:`HPlurality` — the h-sample plurality rule of Section 4.3.  For
  ``h <= 5`` the per-agent law *is* tractable: the sample histogram is one
  of the ``C(k+h-1, h)`` weak compositions of ``h`` into ``k`` colors, each
  with multinomial probability, and uniform tie-splitting distributes each
  composition's mass over its maximal colors.  We enumerate the
  compositions once per ``(h, k)`` (cached) and evaluate the law as two
  dense matrix products — the exact counts-level engine.  For larger ``h``
  (or ``k`` so large the table would not fit) stepping falls back to the
  agent-level engine: an ``(n, h)`` categorical sample matrix reduced
  row-wise with uniform tie-breaking.  ``HPlurality(3)`` with uniform
  tie-break has the same marginal law as :class:`ThreeMajority`.

* :class:`TwoSampleUniform` — two samples, ties broken uniformly.  Its law
  collapses to ``p_j = c_j / n`` (the polling/voter process), which is the
  paper's remark that two samples are *not* enough.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from .dynamics import CountsDynamics, Dynamics, validate_engine
from .registry import DYNAMICS
from .samplers import (
    batched_agent_step,
    categorical_matrix,
    equal_totals,
    row_plurality,
)

__all__ = ["ThreeMajority", "HPlurality", "TwoSampleUniform", "three_majority_law"]


def three_majority_law(counts: np.ndarray) -> np.ndarray:
    """Lemma 1's exact next-color law for the 3-majority dynamics.

    ``p_j = (c_j / n^3) (n^2 + n c_j - sum_h c_h^2)``; rows sum to one by
    the identity ``sum_j c_j = n``.  Broadcasts over leading axes.
    """
    c = np.asarray(counts, dtype=np.float64)
    n = c.sum(axis=-1, keepdims=True)
    if np.any(n <= 0):
        raise ValueError("empty configuration has no color law")
    sq = (c * c).sum(axis=-1, keepdims=True)
    return (c / n**3) * (n**2 + n * c - sq)


@DYNAMICS.register("3-majority", summary="3-majority on the clique (Lemma 1 exact law)")
class ThreeMajority(CountsDynamics):
    """3-majority dynamics on the clique (exact counts-level engine).

    Parameters
    ----------
    agent_level:
        Legacy spelling of ``engine="agent"``: :meth:`step` samples explicit
        triples per agent instead of using the Lemma 1 multinomial —
        statistically identical, ~n/k times slower; used by the validation
        tests and the engine ablation.
    tie_break:
        ``"first"`` (paper's rule) or ``"uniform"``; only observable in
        agent-level mode and only through joint statistics — the marginal
        law (hence the counts process) is the same, which the ablation
        bench verifies empirically.
    engine:
        ``"counts"`` / ``"agent"`` / ``"auto"`` (= counts; the law always
        exists).  Must agree with ``agent_level`` when both are given.
    """

    name = "3-majority"
    sample_size = 3
    color_law_broadcasts = True
    support_closed = True  # agents adopt a sampled color

    def __init__(self, agent_level: bool = False, tie_break: str = "first", engine: str = "auto"):
        if tie_break not in ("first", "uniform"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        validate_engine(engine)
        if engine == "agent":
            agent_level = True
        elif engine == "counts" and agent_level:
            raise ValueError("engine='counts' conflicts with agent_level=True")
        self.agent_level = bool(agent_level)
        self.engine = "agent" if self.agent_level else "counts"
        self.tie_break = tie_break

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        return three_majority_law(counts)

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if not self.agent_level:
            return super().step(counts, rng)
        return self._agent_step(np.asarray(counts, dtype=np.int64), rng)

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if not self.agent_level:
            return super().step_many(counts, rng)
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k) counts")
        if counts.shape[0] == 0:
            return counts.copy()
        if not equal_totals(counts):
            return Dynamics.step_many(self, counts, rng)
        # The per-agent majority reduction is elementwise, so it rides the
        # chunked batch sampler across replicas with no Python loop.
        return batched_agent_step(counts, 3, rng, self._reduce_triples)

    def _agent_step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = int(counts.sum())
        k = counts.size
        if n == 0:
            return counts.copy()
        triples = categorical_matrix(counts, n, 3, rng)
        return np.bincount(self._reduce_triples(triples, rng), minlength=k).astype(np.int64)

    def _reduce_triples(self, triples: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Majority color of each ``(rows, 3)`` sample triple (shared by the
        single-configuration and replica-batched agent engines)."""
        a, b, c = triples[:, 0], triples[:, 1], triples[:, 2]
        out = np.where(b == c, b, a)  # bc pair wins; else default to first
        out = np.where(a == b, a, out)
        out = np.where(a == c, a, out)
        if self.tie_break == "uniform":
            distinct = (a != b) & (b != c) & (a != c)
            if np.any(distinct):
                pick = rng.integers(0, 3, size=int(distinct.sum()))
                out[distinct] = triples[distinct, :][np.arange(pick.size), pick]
        return out


class _CompositionTable:
    """Exact-law machinery for one block of h-plurality sample multisets.

    ``rows`` enumerates multisets of ``h`` samples over ``k`` colors (weak
    compositions of ``h``), each row sorted ascending.  For a probability
    vector ``p`` the block's law contribution is

        ``law = (coeff * prod(p[sup_idx] ** sup_exp, axis=1)) @ winners``

    where ``coeff`` is the multinomial coefficient, ``sup_idx``/``sup_exp``
    the ≤ h support colors with their multiplicities (padding exponent 0,
    exploiting ``0.0 ** 0 == 1.0``), and ``winners[r]`` splits row ``r``'s
    mass uniformly over its maximal colors.
    """

    def __init__(self, h: int, k: int, rows: np.ndarray | None = None):
        if rows is None:
            rows = np.array(
                list(itertools.combinations_with_replacement(range(k), h)), dtype=np.int64
            )
        mult = (rows[:, :, None] == rows[:, None, :]).sum(axis=2)  # multiplicity per slot
        first = np.ones_like(rows, dtype=bool)
        first[:, 1:] = rows[:, 1:] != rows[:, :-1]  # first slot of each distinct color
        fact = np.array([math.factorial(i) for i in range(h + 1)], dtype=np.float64)
        self.coeff = fact[h] / np.where(first, fact[mult], 1.0).prod(axis=1)
        self.sup_idx = rows
        self.sup_exp = np.where(first, mult, 0).astype(np.float64)
        top = mult.max(axis=1, keepdims=True)
        win = first & (mult == top)
        weights = win / win.sum(axis=1, keepdims=True)
        self.winners = np.zeros((rows.shape[0], k))
        np.add.at(self.winners, (np.arange(rows.shape[0])[:, None], rows), weights)

    def law(self, p: np.ndarray) -> np.ndarray:
        """Exact law for ``p`` of shape ``(k,)`` or a batch ``(R, k)``."""
        probs = self.coeff * np.prod(p[..., self.sup_idx] ** self.sup_exp, axis=-1)
        return probs @ self.winners


def _streamed_composition_law(h: int, k: int, p: np.ndarray, block_rows: int) -> np.ndarray:
    """Composition law evaluated in bounded-memory blocks.

    Used when the full ``(C, k)`` winner table would be too large to cache:
    enumerate compositions in blocks, accumulate each block's contribution,
    never materialising more than ``block_rows`` rows at once.
    """
    law = np.zeros(p.shape, dtype=np.float64)
    stream = itertools.combinations_with_replacement(range(k), h)
    while True:
        block = list(itertools.islice(stream, block_rows))
        if not block:
            return law
        law += _CompositionTable(h, k, np.array(block, dtype=np.int64)).law(p)


@DYNAMICS.register("h-plurality", summary="plurality of h uniform samples (Section 4.3)")
class HPlurality(CountsDynamics):
    """h-plurality dynamics: adopt the plurality of ``h`` uniform samples.

    Ties among maximal sample colors are broken uniformly at random
    (Section 4.3 of the paper).

    Parameters
    ----------
    h:
        Sample size.
    engine:
        ``"counts"`` — exact multinomial stepping from the closed-form law
        (``h <= 3``) or the composition-enumeration law (``h <= 5``, any
        ``k``: oversized tables are evaluated in streamed blocks, correct
        but slow — raises only for ``h > 5``); ``"agent"`` — explicit
        per-agent sampling, O(n·h) per round; ``"auto"`` (default) — counts
        whenever the composition table is comfortably small
        (``counts_table_cap`` rows), agent-level otherwise.
    counts_table_cap:
        Row budget the ``"auto"`` engine allows the composition table
        before falling back to agent-level stepping.  Defaults to
        :attr:`_MAX_AUTO_COMPOSITIONS` (100k rows); raise it to keep large
        ``(h, k)`` points on the exact counts engine (correct at any size
        — oversized tables stream in blocks, trading memory for time).
        Travels through a :class:`~repro.scenario.ScenarioSpec` as
        ``dynamics_params={"h": ..., "counts_table_cap": ...}`` or via
        ``repro simulate --counts-table-cap``.
    """

    name = "h-plurality"
    color_law_broadcasts = True
    support_closed = True  # the plurality of a sample is one of the samples

    #: largest h with a counts-level engine (composition enumeration).
    _MAX_COUNTS_H = 5
    #: auto engine switches to agent-level above this many table rows.
    _MAX_AUTO_COMPOSITIONS = 100_000
    #: tables up to this many cells (rows × k) are built whole and cached;
    #: larger laws are evaluated by streaming composition blocks instead.
    _MAX_TABLE_CELLS = 2**24

    def __init__(self, h: int, engine: str = "auto", counts_table_cap: int | None = None):
        if h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        self.h = int(h)
        self.sample_size = self.h
        self.name = f"{h}-plurality"
        self.engine = validate_engine(engine)
        if counts_table_cap is not None:
            counts_table_cap = int(counts_table_cap)
            if counts_table_cap < 1:
                raise ValueError(f"counts_table_cap must be >= 1, got {counts_table_cap}")
        self.counts_table_cap = counts_table_cap
        self._tables: dict[int, _CompositionTable] = {}

    # -- engine selection ------------------------------------------------------

    @staticmethod
    def composition_count(h: int, k: int) -> int:
        """Number of weak compositions of ``h`` into ``k`` parts."""
        return math.comb(k + h - 1, h)

    def counts_engine_available(self, k: int) -> bool:
        """Whether the exact counts-level law exists at all (any ``k``)."""
        return self.h <= self._MAX_COUNTS_H

    def resolved_engine(self, k: int) -> str:
        """The engine :meth:`step` will actually use at this ``k``."""
        if self.engine == "agent":
            return "agent"
        if self.engine == "counts":
            if not self.counts_engine_available(k):
                raise ValueError(
                    f"engine='counts' unavailable for {self.name} (h > {self._MAX_COUNTS_H})"
                )
            return "counts"
        if self.h <= 3:
            return "counts"
        cap = self.counts_table_cap if self.counts_table_cap is not None else self._MAX_AUTO_COMPOSITIONS
        if self.h <= self._MAX_COUNTS_H and self.composition_count(self.h, k) <= cap:
            return "counts"
        return "agent"

    def _table(self, k: int) -> _CompositionTable:
        table = self._tables.get(k)
        if table is None:
            table = self._tables[k] = _CompositionTable(self.h, k)
        return table

    # -- dynamics interface ----------------------------------------------------

    def supports_exact_law(self) -> bool:
        return self.h <= self._MAX_COUNTS_H

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        n = int(counts.sum())
        k = counts.size
        if n == 0:
            return counts.copy()
        if self.resolved_engine(k) == "counts":
            return super().step(counts, rng)
        samples = categorical_matrix(counts, n, self.h, rng)
        winners = row_plurality(samples, k, rng)
        return np.bincount(winners, minlength=k).astype(np.int64)

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k) counts")
        if counts.shape[0] and self.resolved_engine(counts.shape[1]) != "counts":
            if not equal_totals(counts):
                return Dynamics.step_many(self, counts, rng)
            # Replica-batched agent engine: chunked sample draws reduced
            # by the plurality rule — no Python loop over replicas.
            k = counts.shape[1]
            return batched_agent_step(
                counts, self.h, rng, lambda samples, r: row_plurality(samples, k, r)
            )
        return super().step_many(counts, rng)

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        """Exact law: closed forms for ``h <= 3``, compositions for ``h <= 5``.

        Broadcasts over leading axes (the composition path vectorizes over
        replica batches through the same cached table).  When the full
        composition table would exceed :attr:`_MAX_TABLE_CELLS` the law is
        evaluated by streaming blocks — same result, bounded memory, O(C·h)
        time (so very large ``k`` is slow but never wrong, keeping the
        :meth:`supports_exact_law` contract exact for every ``h <= 5``).
        """
        c = np.asarray(counts, dtype=np.float64)
        n = c.sum(axis=-1, keepdims=True)
        if np.any(n <= 0):
            raise ValueError("empty configuration has no color law")
        k = c.shape[-1]
        if self.h <= 2:
            # h = 1 is the voter model; h = 2 with uniform tie-split also
            # collapses to polling: p² + 2·p(1-p)/2 = p.
            return c / n
        if self.h == 3:
            return three_majority_law(c)
        if self.h > self._MAX_COUNTS_H:
            raise NotImplementedError(
                f"no tractable color law for {self.name}; use the agent-level engine"
            )
        p = c / n
        replicas = p.shape[0] if p.ndim == 2 else 1
        ncomp = self.composition_count(self.h, k)
        if ncomp * k > self._MAX_TABLE_CELLS:
            # Composition stream sized so each (R, block, h) intermediate
            # stays within the cell budget.
            block_rows = max(1, self._MAX_TABLE_CELLS // (k * replicas))
            return _streamed_composition_law(self.h, k, p, block_rows)
        table = self._table(k)
        if p.ndim == 2 and replicas * ncomp * self.h > self._MAX_TABLE_CELLS:
            # Large replica batches: evaluate in replica blocks so the
            # (R, C, h) power intermediate stays bounded.
            rows_per_block = max(1, self._MAX_TABLE_CELLS // (ncomp * self.h))
            return np.concatenate(
                [table.law(p[i : i + rows_per_block]) for i in range(0, replicas, rows_per_block)]
            )
        return table.law(p)


@DYNAMICS.register("2-sample-uniform", summary="two samples, uniform tie-break (= polling)")
class TwoSampleUniform(CountsDynamics):
    """Two samples with uniform tie-breaking — provably just polling.

    ``p_j = (c_j/n)^2 + 2 (c_j/n)(1 - c_j/n) / 2 = c_j / n``: the same
    marginal as the voter model, hence (paper, Section 1) it converges to a
    minority with constant probability even under bias Θ(n).
    """

    name = "2-sample-uniform"
    sample_size = 2
    color_law_broadcasts = True
    support_closed = True  # law collapses to c/n

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        c = np.asarray(counts, dtype=np.float64)
        return c / c.sum(axis=-1, keepdims=True)
