"""String-keyed registries: the name → factory maps behind the scenario API.

A :class:`~repro.scenario.ScenarioSpec` refers to dynamics, initial
configurations, adversaries and stopping rules *by name*; these registries
resolve the names back to the concrete classes and factory functions of
:mod:`repro.core` and :mod:`repro.experiments.workloads`.  Four instances
exist:

* :data:`DYNAMICS` — every dynamics class and 3-input-rule factory,
  keyed by the same identifier the instances carry in ``Dynamics.name``
  (``"3-majority"``, ``"h-plurality"``, ``"voter"``, ...);
* :data:`ADVERSARIES` — the F-bounded adversary strategies
  (``"targeted"``, ``"balancing"``, ``"random"``, ``"revive"``);
* :data:`WORKLOADS` — initial-configuration generators with the uniform
  signature ``fn(n, k, **params) -> Configuration``;
* :data:`STOPPING` — the stopping-rule constructors of
  :mod:`repro.core.stopping`;
* :data:`METRICS` — the vectorized per-round observables of
  :mod:`repro.core.metrics` a scenario's ``record`` field may name
  (``repro metrics`` lists them);
* :data:`TOPOLOGIES` — named graph generators with the uniform signature
  ``fn(n, **params) -> Topology`` (``"clique"``, ``"torus"``,
  ``"random-regular"``, ...), populated by :mod:`repro.graphs.topology`
  and selected through a scenario's ``topology`` field (``repro
  topologies`` lists them).

Entries are added with the :meth:`Registry.register` decorator at module
import time; :meth:`Registry.build` validates the parameter dict against
the factory's signature *before* calling it, so a scenario file with a
misspelled parameter fails with a message naming the accepted ones instead
of a bare ``TypeError`` from deep inside a constructor.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass

__all__ = [
    "Registry",
    "RegistryEntry",
    "DYNAMICS",
    "ADVERSARIES",
    "WORKLOADS",
    "STOPPING",
    "METRICS",
    "TOPOLOGIES",
]


@dataclass(frozen=True)
class RegistryEntry:
    """One named factory plus its display metadata."""

    name: str
    factory: Callable[..., object]
    summary: str

    @property
    def signature(self) -> inspect.Signature:
        """The factory's signature, computed once (signature(...) is slow)."""
        cached = self.__dict__.get("_signature")
        if cached is None:
            cached = inspect.signature(self.factory)
            object.__setattr__(self, "_signature", cached)
        return cached

    def parameter_names(self) -> list[str]:
        """Keyword parameters the factory accepts (``**kwargs`` → ``...``)."""
        out: list[str] = []
        for param in self.signature.parameters.values():
            if param.kind is inspect.Parameter.VAR_KEYWORD:
                out.append("...")
            elif param.kind is not inspect.Parameter.VAR_POSITIONAL:
                out.append(param.name)
        return out


def _first_doc_line(factory: Callable[..., object]) -> str:
    doc = inspect.getdoc(factory)
    return doc.splitlines()[0].strip() if doc else ""


class Registry:
    """An ordered name → factory map with strict build-time validation."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    # -- population ----------------------------------------------------------

    def register(self, name: str, *, summary: str | None = None):
        """Decorator: file the decorated class/function under ``name``."""
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} registry needs a non-empty string name")

        def decorate(factory: Callable[..., object]) -> Callable[..., object]:
            if name in self._entries:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            self._entries[name] = RegistryEntry(
                name=name, factory=factory, summary=summary or _first_doc_line(factory)
            )
            return factory

        return decorate

    # -- lookup --------------------------------------------------------------

    def get(self, name: str) -> RegistryEntry:
        entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(self.names()) or "<none registered>"
            raise KeyError(f"unknown {self.kind} {name!r}; known: {known}")
        return entry

    def names(self) -> list[str]:
        return sorted(self._entries)

    def items(self) -> list[tuple[str, RegistryEntry]]:
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    # -- construction ---------------------------------------------------------

    def build(self, name: str, /, *args, **params) -> object:
        """Resolve ``name`` and call its factory with validated parameters."""
        entry = self.get(name)
        if not all(isinstance(key, str) for key in params):
            raise ValueError(f"{self.kind} {name!r} parameters must have string keys")
        try:
            entry.signature.bind(*args, **params)
        except TypeError as exc:
            raise ValueError(
                f"invalid parameters for {self.kind} {name!r}: {exc} "
                f"(accepted: {', '.join(entry.parameter_names())})"
            ) from exc
        return entry.factory(*args, **params)

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, names={self.names()})"


#: Dynamics classes / rule factories, keyed by their ``Dynamics.name``.
DYNAMICS = Registry("dynamics")

#: F-bounded adversary strategies, keyed by strategy name.
ADVERSARIES = Registry("adversary")

#: Initial-configuration generators, signature ``fn(n, k, **params)``.
WORKLOADS = Registry("workload")

#: Stopping-rule constructors (see :mod:`repro.core.stopping`).
STOPPING = Registry("stopping rule")

#: Per-round observables a scenario's ``record`` field may name
#: (see :mod:`repro.core.metrics`).
METRICS = Registry("metric")

#: Graph generators a scenario's ``topology`` field may name, with the
#: uniform signature ``fn(n, **params) -> Topology``.  Populated by
#: :mod:`repro.graphs.topology` at import time.
TOPOLOGIES = Registry("topology")
