"""Composable stopping rules for the process runners.

A :class:`StoppingRule` decides when a trajectory may halt *before* the
natural absorbing state (a monochromatic configuration) is reached, and —
just as importantly — records *which* criterion fired, surfaced as
``ProcessResult.stopped_by`` / ``EnsembleResult.stopped_by``.  Rules are
checked after every round on the color counts only (for dynamics with
extra state, e.g. undecided-state, the undecided slot is excluded from the
counts but included in ``n``), and never consume randomness, so adding a
rule cannot perturb a trajectory — only truncate it.

Built-in rules (registry names in :data:`repro.core.registry.STOPPING`):

* ``monochromatic`` — some color holds all ``n`` agents (the runner always
  applies this as the absorbing condition; registering it makes the
  default expressible in a scenario file);
* ``plurality-fraction`` — the top color holds at least ``fraction · n``
  agents (successor of the deprecated ``stop_at_plurality_fraction=``
  flag of :func:`repro.core.process.run_process`);
* ``bias-threshold`` — the additive bias ``s(c) = c_(1) - c_(2)`` reaches
  ``threshold``;
* ``round-budget`` — ``rounds`` rounds have elapsed (a *soft* budget that
  marks the replica as rule-stopped; a hard ``max_rounds`` expiry is
  labelled ``"max-rounds"`` instead);
* ``any-of`` — fires when any member rule fires, reporting the first
  member (in order) that did.

Serialization: ``rule.to_dict()`` ↔ :func:`stopping_from_dict` round-trip
through plain JSON-able dicts of the shape ``{"rule": <name>, **params}``.

Metric-threshold rules
----------------------
The configuration-dependent rules are thresholds over the same
:class:`~repro.core.metrics.Metric` objects the trace recorder uses
(``monochromatic`` and ``plurality-fraction`` over ``plurality-count``,
``bias-threshold`` over ``bias``), via the shared
:class:`MetricThresholdStop` base: one vectorized evaluation path serves
both the scalar :meth:`StoppingRule.met` and the batched
:meth:`StoppingRule.met_many`, so the two can never disagree.  The
``stopped_by`` label vocabulary is unchanged from the pre-metric
implementation (asserted in ``tests/test_stopping.py``).
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence

import numpy as np

from .metrics import Metric
from .registry import METRICS, STOPPING

__all__ = [
    "StoppingRule",
    "MetricThresholdStop",
    "MonochromaticStop",
    "PluralityFractionStop",
    "BiasThresholdStop",
    "RoundBudgetStop",
    "AnyOfStop",
    "stopping_from_dict",
]

#: ``stopped_by`` label used by the runners when the hard round budget
#: (``max_rounds``) expires without convergence or a rule firing — distinct
#: from the soft ``"round-budget"`` *rule* label, so the two cases stay
#: distinguishable in ``stop_reasons()``.
BUDGET_EXHAUSTED = "max-rounds"


class StoppingRule(abc.ABC):
    """Base class: a pure predicate over (color counts, n, round index)."""

    #: Registry name; also the label recorded in ``stopped_by``.
    rule: str = "stopping-rule"

    @abc.abstractmethod
    def met(self, counts: np.ndarray, n: int, t: int) -> bool:
        """True iff the rule fires on this configuration at round ``t``."""

    def met_many(self, counts: np.ndarray, n: int, t: int) -> np.ndarray:
        """Vectorized :meth:`met` over an ``(R, k)`` batch of counts.

        Built-in rules get a loop-free version through
        :class:`MetricThresholdStop`; the default exists so third-party
        rules only need :meth:`met`.
        """
        return np.fromiter(
            (self.met(row, n, t) for row in counts), dtype=bool, count=counts.shape[0]
        )

    @property
    def sparse_invariant(self) -> bool:
        """True when the rule may be evaluated on support-compacted counts.

        The sparse ensemble engine hands rules the ``(R, s)`` compacted
        columns instead of the dense ``(R, k)`` counts; a rule qualifies
        when its verdict is identical on both (built-in threshold rules
        inherit the answer from their metric, ``round-budget`` never looks
        at the counts at all).  Third-party rules default to False, which
        keeps ``engine="auto"`` dense and makes an explicit ``"sparse"``
        request fail loudly.
        """
        return False

    def fired(self, counts: np.ndarray, n: int, t: int) -> str | None:
        """Name of the (sub-)rule that fired, or None."""
        return self.rule if self.met(counts, n, t) else None

    def fired_many(self, counts: np.ndarray, n: int, t: int) -> np.ndarray:
        """Per-replica fired-rule names (object array of str | None)."""
        out = np.full(counts.shape[0], None, dtype=object)
        out[self.met_many(counts, n, t)] = self.rule
        return out

    def params(self) -> dict[str, object]:
        """JSON-able constructor parameters (inverse of the registry factory)."""
        return {}

    def to_dict(self) -> dict[str, object]:
        return {"rule": self.rule, **self.params()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StoppingRule):
            return NotImplemented
        return type(self) is type(other) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(repr(sorted(self.to_dict().items(), key=lambda kv: kv[0])))

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value!r}" for key, value in self.params().items())
        return f"{type(self).__name__}({inner})"


class MetricThresholdStop(StoppingRule):
    """A rule of the form ``metric(counts) >= threshold``.

    Subclasses name a registered metric via :attr:`metric_name` and return
    the (possibly ``n``-dependent) threshold from :meth:`threshold_for`.
    Both :meth:`met` and :meth:`met_many` run through the metric's single
    vectorized ``compute_many`` — the scalar path is the batch path on one
    row, so there is exactly one evaluation path to validate.
    """

    #: Name of the metric (in :data:`repro.core.registry.METRICS`) compared
    #: against the threshold.
    metric_name: str = "metric"

    @property
    def metric(self) -> Metric:
        cached = getattr(self, "_metric", None)
        if cached is None:
            cached = METRICS.build(self.metric_name)
            assert isinstance(cached, Metric)
            self._metric = cached
        return cached

    def threshold_for(self, n: int):
        """The firing threshold at population size ``n``."""
        raise NotImplementedError

    @property
    def sparse_invariant(self) -> bool:
        return self.metric.sparse_invariant

    def met_many(self, counts: np.ndarray, n: int, t: int) -> np.ndarray:
        values = self.metric.compute_many(np.asarray(counts), n)
        return values >= self.threshold_for(n)

    def met(self, counts: np.ndarray, n: int, t: int) -> bool:
        return bool(self.met_many(np.asarray(counts)[None, :], n, t)[0])


@STOPPING.register("monochromatic")
class MonochromaticStop(MetricThresholdStop):
    """Stop when one color holds every agent (the absorbing state)."""

    rule = "monochromatic"
    metric_name = "plurality-count"

    def threshold_for(self, n: int) -> int:
        # max_j c_j <= n always, so >= n is exactly the old == n test.
        return n


@STOPPING.register("plurality-fraction")
class PluralityFractionStop(MetricThresholdStop):
    """Stop once the top color holds at least ``fraction`` of all agents."""

    rule = "plurality-fraction"
    metric_name = "plurality-count"

    def __init__(self, fraction: float):
        fraction = float(fraction)
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def threshold_for(self, n: int) -> float:
        # Thresholding the integer count against fraction·n preserves the
        # pre-metric comparison bit for bit (no division on the left side).
        return self.fraction * n

    def params(self) -> dict[str, object]:
        return {"fraction": self.fraction}


@STOPPING.register("bias-threshold")
class BiasThresholdStop(MetricThresholdStop):
    """Stop once the additive bias ``s(c) = c_(1) - c_(2)`` reaches ``threshold``."""

    rule = "bias-threshold"
    metric_name = "bias"

    def __init__(self, threshold: int):
        threshold = int(threshold)
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold

    def threshold_for(self, n: int) -> int:
        return self.threshold

    def params(self) -> dict[str, object]:
        return {"threshold": self.threshold}


@STOPPING.register("round-budget")
class RoundBudgetStop(StoppingRule):
    """Stop after ``rounds`` rounds (a soft budget, recorded as this rule)."""

    rule = "round-budget"

    def __init__(self, rounds: int):
        rounds = int(rounds)
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        self.rounds = rounds

    @property
    def sparse_invariant(self) -> bool:
        return True  # never inspects the counts

    def met(self, counts: np.ndarray, n: int, t: int) -> bool:
        return t >= self.rounds

    def met_many(self, counts: np.ndarray, n: int, t: int) -> np.ndarray:
        return np.full(counts.shape[0], t >= self.rounds, dtype=bool)

    def params(self) -> dict[str, object]:
        return {"rounds": self.rounds}


@STOPPING.register("any-of")
class AnyOfStop(StoppingRule):
    """Fire when any member rule fires; report the first member that did."""

    rule = "any-of"

    def __init__(self, rules: Sequence[StoppingRule | Mapping]):
        members: list[StoppingRule] = []
        for member in rules:
            if isinstance(member, Mapping):
                member = stopping_from_dict(member)
            if not isinstance(member, StoppingRule):
                raise ValueError(f"any-of members must be stopping rules, got {member!r}")
            members.append(member)
        if not members:
            raise ValueError("any-of needs at least one member rule")
        self.rules = tuple(members)

    @property
    def sparse_invariant(self) -> bool:
        return all(rule.sparse_invariant for rule in self.rules)

    def met(self, counts: np.ndarray, n: int, t: int) -> bool:
        return any(rule.met(counts, n, t) for rule in self.rules)

    def met_many(self, counts: np.ndarray, n: int, t: int) -> np.ndarray:
        out = np.zeros(counts.shape[0], dtype=bool)
        for rule in self.rules:
            out |= rule.met_many(counts, n, t)
        return out

    def fired(self, counts: np.ndarray, n: int, t: int) -> str | None:
        for rule in self.rules:
            name = rule.fired(counts, n, t)
            if name is not None:
                return name
        return None

    def fired_many(self, counts: np.ndarray, n: int, t: int) -> np.ndarray:
        out = np.full(counts.shape[0], None, dtype=object)
        unset = np.ones(counts.shape[0], dtype=bool)
        for rule in self.rules:
            if not unset.any():
                break
            names = rule.fired_many(counts, n, t)
            hit = unset & ~np.equal(names, None)
            out[hit] = names[hit]
            unset &= ~hit
        return out

    def params(self) -> dict[str, object]:
        return {"rules": [rule.to_dict() for rule in self.rules]}


def stopping_from_dict(data: Mapping) -> StoppingRule:
    """Build a stopping rule from its ``{"rule": <name>, **params}`` dict.

    Strict inverse of :meth:`StoppingRule.to_dict`: the ``rule`` key is
    required, the name must be registered, and unknown parameters are
    rejected by the registry's signature validation.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"stopping rule must be a mapping, got {type(data).__name__}")
    payload = dict(data)
    name = payload.pop("rule", None)
    if not isinstance(name, str):
        raise ValueError("stopping rule dict needs a string 'rule' key")
    built = STOPPING.build(name, **payload)
    assert isinstance(built, StoppingRule)
    return built
