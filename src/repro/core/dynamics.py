"""Abstract interface shared by every dynamics in the library.

A *dynamics* (paper, Definition 1) is a synchronous anonymous update rule:
each round, every agent resamples its color from a law that depends only on
the current configuration.  On the clique this makes the count vector a
Markov chain, and each dynamics is fully described by its per-agent
**color law** and/or a **step kernel** that samples the next configuration.

Implementations provide at least one of:

* :meth:`Dynamics.color_law` — the exact per-agent distribution of the next
  color given the configuration (when a closed form exists; enables the
  exact multinomial engine and the exact Markov-chain analysis);

* :meth:`Dynamics.step` — one sampled round.  The default implementation
  samples ``Multinomial(n, color_law(c))``, which is *exact* on the clique;
  agent-level dynamics override it instead.

Dynamics that carry extra per-agent state beyond the color (the
undecided-state protocol) extend the state vector with additional slots and
document the convention; see :mod:`repro.core.undecided`.

Registry names
--------------
Every concrete dynamics is registered in
:data:`repro.core.registry.DYNAMICS` under a string key — ``"3-majority"``,
``"h-plurality"``, ``"2-sample-uniform"``, ``"voter"``, ``"two-choices"``,
``"median"``, ``"undecided-state"``, plus the 3-input-rule factories
(``"majority-rule"``, ``"median-rule"``, ``"skewed-rule"``,
``"three-input-rule"``, ...) — so a declarative
:class:`~repro.scenario.ScenarioSpec` can reference it by name; run
``repro scenarios`` for the full annotated list.  Constructor keywords
(``h=``, ``engine=``, ...) travel in the spec's ``dynamics_params`` dict.

Engine-selection matrix
-----------------------
Two *law* engines exist (see :mod:`repro.core.samplers`): the exact
**counts-level** engine — one ``Multinomial(n, color_law(c))`` draw per
round, O(k) — and the **agent-level** engine — explicit per-agent sampling,
O(n·h) per round.  Dynamics whose constructor takes an ``engine=`` keyword
accept ``"counts"``, ``"agent"`` or ``"auto"``; the rest are fixed.

=====================  =======================  ===========================
dynamics               default engine           notes
=====================  =======================  ===========================
ThreeMajority          counts (Lemma 1 law)     ``engine="agent"`` (or the
                                                legacy ``agent_level=True``)
                                                for cross-validation /
                                                tie-break ablation
ThreeInputRule         counts (O(k) pattern-    ``engine="agent"`` keeps the
                       decomposed law)          explicit triple sampler
HPlurality             auto: counts for h ≤ 5   composition enumeration,
                       while the composition    C(k+h-1, h) table rows;
                       table stays small,       ``engine="counts"`` forces
                       agent otherwise          it, ``"agent"`` forbids it
TwoSampleUniform       counts (law = c/n)       fixed
Voter / TwoChoices     counts                   fixed
MedianDynamics         counts (class-wise       fixed, O(k²) law
                       product of multinomials)
UndecidedState         counts (product form)    fixed, extra state slot
=====================  =======================  ===========================

Orthogonal to the law engine, :func:`repro.core.process.run_ensemble`
selects an **ensemble layout** via its own ``engine=`` keyword:

* ``"dense"`` — replicas step on the full ``(R, k)`` count matrix (the
  historical layout; counts-engine runs are bit-identical to previous
  releases at equal seed, while agent-level engines reordered their
  draws when they went replica-batched);
* ``"sparse"`` — replicas step on the **union-live-support compacted**
  ``(R, s)`` columns (see :mod:`repro.core.support`), re-compacting with
  hysteresis as colors go extinct, so per-round cost is O(s) not O(k).
  Both law engines ride it unchanged: a support-closed law evaluated on
  the sorted compacted axis equals the dense law restricted to the
  support, and the agent-level samplers only ever draw supported colors.
  For :class:`~repro.core.majority.HPlurality` the compaction also
  shrinks the composition table from C(k+h−1, h) to C(s+h−1, h) rows,
  re-enabling the exact law at ``k`` far beyond the dense auto cutoff;
* ``"auto"`` — sparse once ``k`` is large (and the dynamics / adversary /
  stopping rule are all sparse-eligible), dense otherwise.

A third axis is the **topology**: everything above assumes the clique,
where anonymous counts are a Markov chain.  A
:class:`~repro.scenario.ScenarioSpec` with a ``topology`` field instead
runs on the **graph engine** (:mod:`repro.graphs.ensemble`) — the state
per replica is the full ``(n,)`` color vector, ensembles step an
``(R, n)`` matrix through one CSR neighbor-gather per round, and the
per-agent rule is the dynamics' :class:`~repro.graphs.ensemble.GraphKernel`
(the same agent-level reductions the clique engines use, so the graph
engine on the clique topology cross-validates against the counts law).
Dynamics with extra non-color state (``undecided-state``) have no graph
kernel; :func:`repro.graphs.ensemble.graph_ineligibility` explains why.

The agent-level paths are retained everywhere they exist because they are
the *statistical ground truth* the counts-level laws are validated against
(``tests/test_counts_engines.py``); their ``step_many`` batches the
per-agent draws across replicas through the chunked offset-flattened
categorical kernel (:func:`repro.core.samplers.batched_agent_step`)
instead of a Python loop over rows — each chunk is reduced to its
``(rows, k)`` histograms before the next is drawn, so peak memory
matches the old per-replica path.
"""

from __future__ import annotations

import abc

import numpy as np

from .samplers import multinomial_step, multinomial_step_batch

__all__ = ["Dynamics", "CountsDynamics"]

#: Recognised values for the ``engine=`` keyword of selectable dynamics.
ENGINES = ("auto", "counts", "agent")


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


class Dynamics(abc.ABC):
    """Base class for synchronous anonymous dynamics on the clique."""

    #: Human-readable identifier used in result tables.
    name: str = "dynamics"

    #: Number of neighbor samples each agent draws per round (h of the
    #: paper's h-dynamics classification); informational.
    sample_size: int = 1

    #: Whether the rule uses any per-agent state beyond the current color.
    uses_extra_state: bool = False

    #: Whether the rule can never *revive* a color: a color with count zero
    #: is assigned probability zero by the law / can never be produced by a
    #: step.  This is the contract that makes the ensemble runner's
    #: support-compacted ``engine="sparse"`` layout exact.  Every built-in
    #: dynamics opts in (Definition 1 rules return one of their sampled
    #: inputs, so only supported colors are ever adopted), but the default
    #: is False — like ``Adversary.support_preserving`` and
    #: ``Metric.sparse_invariant`` — so a third-party rule with mutation or
    #: noise keeps ``engine="auto"`` dense and makes an explicit
    #: ``"sparse"`` request fail loudly instead of silently never reviving.
    support_closed: bool = False

    #: Whether :meth:`color_law` accepts ``(..., k)`` stacked configurations
    #: and broadcasts over the leading axes (reductions written with
    #: ``axis=-1``).  Enables the loop-free :meth:`CountsDynamics.color_law_batch`
    #: default; laws that reduce over the whole array must leave this False.
    color_law_broadcasts: bool = False

    @abc.abstractmethod
    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Sample the configuration after one synchronous round."""

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance a batch of replicas: ``counts`` has shape ``(R, k)``.

        The default loops over rows; counts-level dynamics override with a
        single broadcasted multinomial call.
        """
        counts = np.asarray(counts)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k) counts")
        if counts.shape[0] == 0:
            return counts.copy()
        return np.stack([self.step(row, rng) for row in counts])

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        """Exact per-agent next-color distribution, if known in closed form.

        Raises :class:`NotImplementedError` for dynamics without one (the
        exact Markov analysis is then unavailable for this rule).
        """
        raise NotImplementedError(f"{self.name} has no closed-form color law")

    def supports_exact_law(self) -> bool:
        """True when :meth:`color_law` is implemented.

        Resolved *structurally* — the method is overridden somewhere below
        :class:`Dynamics` — and cached per instance, so no throwaway
        configuration is ever evaluated.  Dynamics whose law exists only for
        part of their parameter space (:class:`~repro.core.majority.HPlurality`)
        override this with the precise predicate.
        """
        cached = getattr(self, "_supports_exact_law", None)
        if cached is None:
            cached = type(self).color_law is not Dynamics.color_law
            self._supports_exact_law = cached
        return cached

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class CountsDynamics(Dynamics):
    """Dynamics defined by an exact per-agent color law.

    Subclasses implement :meth:`color_law`; stepping is the exact
    multinomial draw, both for single configurations and replica batches.
    Laws written with ``axis=-1`` reductions should set
    :attr:`~Dynamics.color_law_broadcasts` so the batch path is a single
    broadcasted call instead of a Python loop over replicas.
    """

    def color_law_batch(self, counts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`color_law` over an ``(R, k)`` batch."""
        counts = np.asarray(counts)
        if counts.ndim != 2:
            raise ValueError("color_law_batch expects (R, k) counts")
        if self.color_law_broadcasts:
            return np.asarray(self.color_law(counts), dtype=np.float64)
        return np.stack([self.color_law(row) for row in counts])

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        n = int(counts.sum())
        if n == 0:
            return counts.copy()
        return multinomial_step(n, self.color_law(counts), rng)

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k) counts")
        if counts.shape[0] == 0:
            return counts.copy()
        totals = counts.sum(axis=1)
        laws = self.color_law_batch(counts)
        return multinomial_step_batch(totals, laws, rng)
