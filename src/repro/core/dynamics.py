"""Abstract interface shared by every dynamics in the library.

A *dynamics* (paper, Definition 1) is a synchronous anonymous update rule:
each round, every agent resamples its color from a law that depends only on
the current configuration.  On the clique this makes the count vector a
Markov chain, and each dynamics is fully described by its per-agent
**color law** and/or a **step kernel** that samples the next configuration.

Implementations provide at least one of:

* :meth:`Dynamics.color_law` — the exact per-agent distribution of the next
  color given the configuration (when a closed form exists; enables the
  exact multinomial engine and the exact Markov-chain analysis);

* :meth:`Dynamics.step` — one sampled round.  The default implementation
  samples ``Multinomial(n, color_law(c))``, which is *exact* on the clique;
  agent-level dynamics override it instead.

Dynamics that carry extra per-agent state beyond the color (the
undecided-state protocol) extend the state vector with additional slots and
document the convention; see :mod:`repro.core.undecided`.
"""

from __future__ import annotations

import abc

import numpy as np

from .samplers import multinomial_step, multinomial_step_batch

__all__ = ["Dynamics", "CountsDynamics"]


class Dynamics(abc.ABC):
    """Base class for synchronous anonymous dynamics on the clique."""

    #: Human-readable identifier used in result tables.
    name: str = "dynamics"

    #: Number of neighbor samples each agent draws per round (h of the
    #: paper's h-dynamics classification); informational.
    sample_size: int = 1

    #: Whether the rule uses any per-agent state beyond the current color.
    uses_extra_state: bool = False

    @abc.abstractmethod
    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Sample the configuration after one synchronous round."""

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Advance a batch of replicas: ``counts`` has shape ``(R, k)``.

        The default loops over rows; counts-level dynamics override with a
        single broadcasted multinomial call.
        """
        counts = np.asarray(counts)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k) counts")
        return np.stack([self.step(row, rng) for row in counts])

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        """Exact per-agent next-color distribution, if known in closed form.

        Raises :class:`NotImplementedError` for dynamics without one (the
        exact Markov analysis is then unavailable for this rule).
        """
        raise NotImplementedError(f"{self.name} has no closed-form color law")

    def supports_exact_law(self) -> bool:
        """True when :meth:`color_law` is implemented."""
        try:
            self.color_law(np.array([1, 1], dtype=np.int64))
        except NotImplementedError:
            return False
        except Exception:
            return True
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class CountsDynamics(Dynamics):
    """Dynamics defined by an exact per-agent color law.

    Subclasses implement :meth:`color_law` (and optionally
    :meth:`color_law_batch`); stepping is the exact multinomial draw, both
    for single configurations and replica batches.
    """

    def color_law_batch(self, counts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`color_law` over an ``(R, k)`` batch.

        Default stacks the scalar implementation; subclasses with broadcast
        arithmetic override for speed.
        """
        counts = np.asarray(counts)
        if counts.ndim != 2:
            raise ValueError("color_law_batch expects (R, k) counts")
        return np.stack([self.color_law(row) for row in counts])

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        n = int(counts.sum())
        if n == 0:
            return counts.copy()
        return multinomial_step(n, self.color_law(counts), rng)

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k) counts")
        if counts.shape[0] == 0:
            return counts.copy()
        totals = counts.sum(axis=1)
        laws = self.color_law_batch(counts)
        return multinomial_step_batch(totals, laws, rng)
