"""The class ``D3(k)`` of 3-input dynamics (paper, Definitions 1-4).

A 3-input dynamics is specified by ``f : [k]^3 -> [k]`` with
``f(x1,x2,x3) ∈ {x1,x2,x3}``.  Theorem 3 shows that within this class the
3-majority rules (clear-majority + uniform properties) are the *only*
plurality-consensus solvers.  This module provides a concrete, simulatable
parameterisation of the class, the δ-counter machinery of Definition 3, and
the classification predicates — the substrate for experiment E5.

Parameterisation
----------------
We cover every rule whose behaviour depends on the input triple only
through (i) its equality pattern and (ii) the *order* of the color indices
(colors are totally ordered by index, as the median dynamics requires):

* on an all-equal triple the rule must return that color;
* on a *clear-majority* triple (exactly two equal) the rule picks one of
  ``"major"``, ``"minor"``, ``"low"``, ``"high"`` — independently for each
  of the three positional patterns ``XXY`` (x1=x2), ``XYX`` (x1=x3) and
  ``YXX`` (x2=x3);
* on a triple of three distinct colors the rule picks a *position* (0, 1
  or 2) as a function of the rank pattern ``(rank(x1), rank(x2), rank(x3))``
  — one choice for each of the 6 patterns — or picks a uniformly random
  position (``"uniform"``).

This family contains 3-majority (both tie-break conventions), the median
dynamics, min/max rules, the voter ("first") rule and the skewed rules of
Lemma 8, and is closed under everything Theorem 3's proof manipulates.

δ-counters (Definition 3): for three distinct colors ordered
``low < mid < high``, ``delta[rho]`` counts the permutation patterns on
which the rule returns the rank-``rho`` color; ``sum(delta) = 6`` and the
uniform property is ``delta == (2, 2, 2)``.

Exact O(k) color law
--------------------
Every rule in this family has a closed-form per-agent law, obtained by
decomposing the ordered-triple distribution by equality pattern.  With
``p = c/n``, ``B1/B2`` the strictly-below prefix sums of ``p``/``p²`` in
the color order and ``A1/A2`` the strictly-above suffix sums:

* all-equal triples contribute ``p_j³``;
* each clear-majority pattern (probability ``p_a² p_b`` for pair color
  ``a``, odd color ``b``) contributes, per the rule's choice,
  ``major: p_j²(1-p_j)``, ``minor: p_j(S2-p_j²)``,
  ``low: p_j² A1_j + p_j A2_j``, ``high: p_j² B1_j + p_j B2_j``;
* the six orderings of a distinct set ``{x<y<z}`` are equally likely, so
  the distinct part depends only on the δ-counters:
  ``p_j (δ0 e2(A) + δ1 B1_j A1_j + δ2 e2(B))`` with
  ``e2(A) = (A1² - A2)/2`` the sum of ``p_y p_z`` over pairs above ``j``
  (and symmetrically below).

Everything is prefix sums — O(k) per configuration, broadcastable over
replica batches — which is what lets arbitrary 3-input rules ride the same
exact multinomial engine as Lemma 1's 3-majority.  The O(k³) sum over all
ordered triples is kept as :meth:`ThreeInputRule.color_law_reference` and
cross-checked in the tests.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

import numpy as np

from .dynamics import CountsDynamics, Dynamics, validate_engine
from .registry import DYNAMICS
from .samplers import batched_agent_step, categorical_matrix, equal_totals

__all__ = [
    "ThreeInputRule",
    "three_input_rule",
    "PAIR_PATTERNS",
    "DISTINCT_PATTERNS",
    "majority_rule",
    "majority_uniform_rule",
    "median_rule",
    "min_rule",
    "max_rule",
    "first_rule",
    "skewed_rule",
    "all_position_rules",
]

#: positional equality patterns with a clear majority.
PAIR_PATTERNS = ("XXY", "XYX", "YXX")

#: the six rank patterns of a distinct triple: (rank(x1), rank(x2), rank(x3)).
DISTINCT_PATTERNS = tuple(itertools.permutations((0, 1, 2)))

_PAIR_CHOICES = ("major", "minor", "low", "high")


def _pattern_index(ra: np.ndarray, rb: np.ndarray, rc: np.ndarray) -> np.ndarray:
    return ra * 9 + rb * 3 + rc


class ThreeInputRule(CountsDynamics):
    """A concrete member of ``D3(k)``.

    Parameters
    ----------
    pair_choice:
        Mapping from each pattern in :data:`PAIR_PATTERNS` to one of
        ``"major"`` / ``"minor"`` / ``"low"`` / ``"high"``.
    distinct_choice:
        Either the string ``"uniform"`` (uniformly random position) or a
        mapping from each rank pattern in :data:`DISTINCT_PATTERNS` to a
        position in {0, 1, 2}.
    name:
        Identifier for result tables.
    engine:
        ``"counts"`` — exact multinomial stepping from the O(k) closed-form
        law; ``"agent"`` — explicit per-agent triple sampling (the
        statistical ground-truth path, O(n) per round); ``"auto"``
        (default) — counts, since the exact law exists for every rule in
        the family.
    """

    sample_size = 3
    color_law_broadcasts = True
    support_closed = True  # f(x1, x2, x3) is one of its inputs

    def __init__(
        self,
        pair_choice: Mapping[str, str],
        distinct_choice: Mapping[tuple[int, int, int], int] | str,
        name: str = "3-input-rule",
        engine: str = "auto",
    ):
        for pat in PAIR_PATTERNS:
            if pat not in pair_choice:
                raise ValueError(f"pair_choice missing pattern {pat!r}")
            if pair_choice[pat] not in _PAIR_CHOICES:
                raise ValueError(f"invalid pair choice {pair_choice[pat]!r}")
        self.pair_choice = dict(pair_choice)
        if distinct_choice == "uniform":
            self.distinct_choice: dict[tuple[int, int, int], int] | str = "uniform"
        else:
            if isinstance(distinct_choice, str):
                raise ValueError(f"unknown distinct_choice {distinct_choice!r}")
            missing = set(DISTINCT_PATTERNS) - set(distinct_choice)
            if missing:
                raise ValueError(f"distinct_choice missing patterns {sorted(missing)}")
            for pat, pos in distinct_choice.items():
                if pos not in (0, 1, 2):
                    raise ValueError(f"position must be 0/1/2, got {pos!r} for {pat}")
            self.distinct_choice = {tuple(p): int(v) for p, v in distinct_choice.items()}
        self.name = name
        self.engine = validate_engine(engine)

    # -- classification (Definitions 2-4) ------------------------------------

    def has_clear_majority_property(self) -> bool:
        """Definition 2: returns the majority on every clear-majority triple."""
        return all(v == "major" for v in self.pair_choice.values())

    def delta_counters(self) -> tuple[float, float, float]:
        """Definition 3's (δ_low, δ_mid, δ_high) over the 6 distinct patterns.

        For the ``"uniform"`` distinct choice each pattern contributes 1/3
        to every rank, giving the exactly-uniform (2, 2, 2).
        """
        if self.distinct_choice == "uniform":
            return (2.0, 2.0, 2.0)
        delta = [0.0, 0.0, 0.0]
        for pattern in DISTINCT_PATTERNS:
            pos = self.distinct_choice[pattern]
            delta[pattern[pos]] += 1.0
        return tuple(delta)  # type: ignore[return-value]

    def has_uniform_property(self) -> bool:
        """Definition 3: δ_low = δ_mid = δ_high (= 2)."""
        d = self.delta_counters()
        return abs(d[0] - 2.0) < 1e-12 and abs(d[1] - 2.0) < 1e-12 and abs(d[2] - 2.0) < 1e-12

    def is_three_majority(self) -> bool:
        """Definition 4: member of the class ``M3`` of 3-majority dynamics."""
        return self.has_clear_majority_property() and self.has_uniform_property()

    # -- vectorized application ------------------------------------------------

    def apply(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Evaluate ``f`` on aligned triple arrays of color indices."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        c = np.asarray(c, dtype=np.int64)
        out = a.copy()

        eq_ab = a == b
        eq_ac = a == c
        eq_bc = b == c
        all_eq = eq_ab & eq_ac
        pat_xxy = eq_ab & ~eq_ac  # x1 = x2 != x3
        pat_xyx = eq_ac & ~eq_ab  # x1 = x3 != x2
        pat_yxx = eq_bc & ~eq_ab  # x2 = x3 != x1
        distinct = ~(eq_ab | eq_ac | eq_bc)

        out[all_eq] = a[all_eq]
        for mask, major, minor in (
            (pat_xxy, a, c),
            (pat_xyx, a, b),
            (pat_yxx, b, a),
        ):
            if not np.any(mask):
                continue
            choice = self.pair_choice[
                "XXY" if mask is pat_xxy else "XYX" if mask is pat_xyx else "YXX"
            ]
            if choice == "major":
                out[mask] = major[mask]
            elif choice == "minor":
                out[mask] = minor[mask]
            elif choice == "low":
                out[mask] = np.minimum(major[mask], minor[mask])
            else:  # high
                out[mask] = np.maximum(major[mask], minor[mask])

        if np.any(distinct):
            ad, bd, cd = a[distinct], b[distinct], c[distinct]
            stack = np.stack([ad, bd, cd], axis=1)
            if self.distinct_choice == "uniform":
                pos = rng.integers(0, 3, size=ad.size)
            else:
                ra = (ad > bd).astype(np.int64) + (ad > cd)
                rb = (bd > ad).astype(np.int64) + (bd > cd)
                rc = (cd > ad).astype(np.int64) + (cd > bd)
                table = np.zeros(27, dtype=np.int64)
                for pattern, p in self.distinct_choice.items():
                    table[_pattern_index(*(np.array([v]) for v in pattern))[0]] = p
                pos = table[_pattern_index(ra, rb, rc)]
            out[distinct] = stack[np.arange(ad.size), pos]
        return out

    # -- dynamics interface ----------------------------------------------------

    def resolved_engine(self, k: int | None = None) -> str:
        """The engine :meth:`step` will use (the O(k) law covers every k)."""
        return "agent" if self.engine == "agent" else "counts"

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.engine != "agent":
            return super().step(counts, rng)
        counts = np.asarray(counts, dtype=np.int64)
        n = int(counts.sum())
        k = counts.size
        if n == 0:
            return counts.copy()
        triples = categorical_matrix(counts, n, 3, rng)
        new_colors = self.apply(triples[:, 0], triples[:, 1], triples[:, 2], rng)
        return np.bincount(new_colors, minlength=k).astype(np.int64)

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.engine != "agent":
            return super().step_many(counts, rng)
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k) counts")
        if counts.shape[0] == 0:
            return counts.copy()
        if not equal_totals(counts):
            return Dynamics.step_many(self, counts, rng)
        # apply() is elementwise over aligned triple arrays, so the whole
        # replica batch reduces through the chunked batch sampler.
        return batched_agent_step(
            counts, 3, rng, lambda t, r: self.apply(t[:, 0], t[:, 1], t[:, 2], r)
        )

    def _law_from_probs(self, p: np.ndarray) -> np.ndarray:
        """O(k) closed-form law from color probabilities ``p`` (axis -1).

        Broadcasts over any leading axes; see the module docstring for the
        derivation of each equality-pattern term.
        """
        p2 = p * p
        B1 = np.cumsum(p, axis=-1) - p  # strictly-below prefix sums
        B2 = np.cumsum(p2, axis=-1) - p2
        S1 = p.sum(axis=-1, keepdims=True)
        S2 = p2.sum(axis=-1, keepdims=True)
        A1 = S1 - B1 - p  # strictly-above suffix sums
        A2 = S2 - B2 - p2
        law = p * p2  # all-equal triples
        for pattern in PAIR_PATTERNS:
            choice = self.pair_choice[pattern]
            if choice == "major":
                law = law + p2 * (S1 - p)
            elif choice == "minor":
                law = law + p * (S2 - p2)
            elif choice == "low":
                law = law + p2 * A1 + p * A2
            else:  # high
                law = law + p2 * B1 + p * B2
        d_low, d_mid, d_high = self.delta_counters()
        law = law + p * (
            d_low * 0.5 * (A1 * A1 - A2)
            + d_mid * B1 * A1
            + d_high * 0.5 * (B1 * B1 - B2)
        )
        return law

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        """Exact per-agent law, O(k) via the equality-pattern decomposition.

        Accepts ``(..., k)`` stacked configurations and broadcasts over the
        leading axes.
        """
        c = np.asarray(counts, dtype=np.float64)
        n = c.sum(axis=-1, keepdims=True)
        if np.any(n <= 0):
            raise ValueError("empty configuration has no color law")
        return self._law_from_probs(c / n)

    def color_law_reference(self, counts: np.ndarray) -> np.ndarray:
        """Exact law by brute-force summation over all k³ ordered triples.

        O(k³) memory and time — the independent oracle the O(k) law is
        validated against; not used on any hot path.
        """
        counts = np.asarray(counts, dtype=np.int64)
        k = counts.size
        n = counts.sum()
        if n <= 0:
            raise ValueError("empty configuration has no color law")
        f = counts / n
        idx = np.arange(k, dtype=np.int64)
        A, B, C = np.meshgrid(idx, idx, idx, indexing="ij")
        prob = f[A] * f[B] * f[C]
        law = np.zeros(k)
        if self.distinct_choice == "uniform":
            # Deterministic part on non-distinct triples, 1/3 each on distinct.
            a, b, c = A.ravel(), B.ravel(), C.ravel()
            distinct = (a != b) & (b != c) & (a != c)
            rng_dummy = np.random.default_rng(0)  # unused on non-distinct triples
            chosen = self.apply(a, b, c, rng_dummy)
            p = prob.ravel()
            np.add.at(law, chosen[~distinct], p[~distinct])
            for pos, arr in enumerate((a, b, c)):
                np.add.at(law, arr[distinct], p[distinct] / 3.0)
        else:
            rng_dummy = np.random.default_rng(0)  # rule is deterministic
            chosen = self.apply(A.ravel(), B.ravel(), C.ravel(), rng_dummy)
            np.add.at(law, chosen, prob.ravel())
        return law

    def __repr__(self) -> str:
        return (
            f"ThreeInputRule(name={self.name!r}, pair={self.pair_choice}, "
            f"distinct={self.distinct_choice}, delta={self.delta_counters()})"
        )


# -- built-in rules ---------------------------------------------------------


@DYNAMICS.register("majority-rule")
def majority_rule() -> ThreeInputRule:
    """3-majority with the paper's 'first sample' tie-break on distinct triples."""
    return ThreeInputRule(
        pair_choice={p: "major" for p in PAIR_PATTERNS},
        distinct_choice={pat: 0 for pat in DISTINCT_PATTERNS},
        name="3-majority/first",
    )


@DYNAMICS.register("majority-uniform-rule")
def majority_uniform_rule() -> ThreeInputRule:
    """3-majority with uniform tie-break on distinct triples."""
    return ThreeInputRule(
        pair_choice={p: "major" for p in PAIR_PATTERNS},
        distinct_choice="uniform",
        name="3-majority/uniform",
    )


@DYNAMICS.register("median-rule")
def median_rule() -> ThreeInputRule:
    """Doerr et al.'s median as a member of D3: clear-majority, δ=(0,6,0)."""
    return ThreeInputRule(
        pair_choice={p: "major" for p in PAIR_PATTERNS},
        distinct_choice={pat: int(np.argwhere(np.array(pat) == 1)[0, 0]) for pat in DISTINCT_PATTERNS},
        name="median-rule",
    )


@DYNAMICS.register("min-rule")
def min_rule() -> ThreeInputRule:
    """Always adopt the smallest color index: δ=(6,0,0), no clear majority."""
    return ThreeInputRule(
        pair_choice={p: "low" for p in PAIR_PATTERNS},
        distinct_choice={pat: int(np.argwhere(np.array(pat) == 0)[0, 0]) for pat in DISTINCT_PATTERNS},
        name="min-rule",
    )


@DYNAMICS.register("max-rule")
def max_rule() -> ThreeInputRule:
    """Always adopt the largest color index: δ=(0,0,6), no clear majority."""
    return ThreeInputRule(
        pair_choice={p: "high" for p in PAIR_PATTERNS},
        distinct_choice={pat: int(np.argwhere(np.array(pat) == 2)[0, 0]) for pat in DISTINCT_PATTERNS},
        name="max-rule",
    )


@DYNAMICS.register("first-rule")
def first_rule() -> ThreeInputRule:
    """``f(x1,x2,x3) = x1``: the voter model inside D3.

    δ = (2,2,2) — it *has* the uniform property — but it violates the
    clear-majority property on the ``YXX`` pattern, so it is not in M3
    (Lemma 7's half of Theorem 3).
    """
    return ThreeInputRule(
        pair_choice={"XXY": "major", "XYX": "major", "YXX": "minor"},
        distinct_choice={pat: 0 for pat in DISTINCT_PATTERNS},
        name="first-rule",
    )


@DYNAMICS.register("skewed-rule")
def skewed_rule(delta: tuple[int, int, int] = (1, 3, 2)) -> ThreeInputRule:
    """A clear-majority rule with prescribed non-uniform δ-counters.

    The default (1, 3, 2) is the "hardest case" of Lemma 8's proof: the
    rank-low color (the initial plurality in the lemma's configuration)
    wins only one of the six distinct patterns, so the dynamics abandons
    the plurality w.h.p. despite respecting every clear majority.
    """
    if sum(delta) != 6 or any(d < 0 for d in delta):
        raise ValueError(f"delta must be non-negative and sum to 6, got {delta}")
    remaining = list(delta)
    choice: dict[tuple[int, int, int], int] = {}
    for pattern in DISTINCT_PATTERNS:
        # Greedily assign this pattern to the neediest rank present in it.
        ranks_sorted = sorted(range(3), key=lambda r: -remaining[r])
        for r in ranks_sorted:
            if remaining[r] > 0:
                choice[pattern] = pattern.index(r)
                remaining[r] -= 1
                break
    if any(remaining):
        raise ValueError(f"could not realise delta {delta} (leftover {remaining})")
    return ThreeInputRule(
        pair_choice={p: "major" for p in PAIR_PATTERNS},
        distinct_choice=choice,
        name=f"skewed-rule-{delta[0]}{delta[1]}{delta[2]}",
    )


def all_position_rules() -> list[ThreeInputRule]:
    """Enumerate the 3^6 clear-majority, position-based distinct choices.

    Used by the exhaustive E5 sweep: every clear-majority rule in the
    order-based family, classified by δ-counters.
    """
    rules = []
    for assignment in itertools.product((0, 1, 2), repeat=len(DISTINCT_PATTERNS)):
        choice = dict(zip(DISTINCT_PATTERNS, assignment))
        rule = ThreeInputRule(
            pair_choice={p: "major" for p in PAIR_PATTERNS},
            distinct_choice=choice,
            name="cm-rule-" + "".join(map(str, assignment)),
        )
        rules.append(rule)
    return rules


@DYNAMICS.register("three-input-rule")
def three_input_rule(
    pair_choice: Mapping[str, str],
    distinct_choice: Mapping[str, int] | str,
    name: str = "3-input-rule",
    engine: str = "auto",
) -> ThreeInputRule:
    """Arbitrary ``D3(k)`` member from JSON-friendly choice tables.

    Same semantics as constructing :class:`ThreeInputRule` directly, but
    the ``distinct_choice`` rank patterns are keyed by *strings* — e.g.
    ``{"012": 0, "021": 2, ...}`` instead of tuple keys — so the rule is
    expressible in a scenario file.  ``"uniform"`` is accepted unchanged.
    """
    if isinstance(distinct_choice, Mapping):
        converted: dict[tuple[int, int, int], int] = {}
        for key, pos in distinct_choice.items():
            pattern = tuple(int(ch) for ch in key) if isinstance(key, str) else tuple(key)
            if len(pattern) != 3:
                raise ValueError(f"distinct pattern key must have 3 ranks, got {key!r}")
            converted[pattern] = pos  # type: ignore[index]
        return ThreeInputRule(pair_choice, converted, name=name, engine=engine)
    return ThreeInputRule(pair_choice, distinct_choice, name=name, engine=engine)
