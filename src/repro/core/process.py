"""Process runner: trajectories, stopping rules and replica ensembles.

The plurality-consensus *process* couples a :class:`~repro.core.dynamics.Dynamics`
with an initial configuration and (optionally) an F-bounded adversary, using
exactly the round split of Corollary 4's proof::

    C(t)  --dynamics-->  H(t+1)  --adversary-->  C(t+1)

:func:`run_process` produces a single trajectory with full bookkeeping;
:func:`run_ensemble` advances many independent replicas in lock-step through
the batched step kernels — the workhorse of every experiment, giving
empirical success probabilities and convergence-time distributions.

``run_ensemble`` steps its batch in one of two *layouts* (the
``engine=`` keyword): ``"dense"`` keeps the full ``(R, k)`` count matrix;
``"sparse"`` tracks the ensemble's union live support and steps the
``(R, s)`` compacted columns (see :mod:`repro.core.support`),
re-compacting with hysteresis as colors die — O(support) per round
instead of O(k), the difference between impractical and seconds in the
paper's large-``k`` regimes (``k = n^ε``).  ``"auto"`` upgrades to sparse
at large ``k`` whenever the dynamics, adversary and stopping rule are all
sparse-eligible.  Sparse runs are exact (support-closed laws restricted
to the support are the dense laws) but consume randomness differently,
so they are *statistically*, not bit-wise, equivalent to dense at equal
seed — hence the :data:`ENGINE_SCHEMA_VERSION` bump that keys them.

Observation is declarative (see :mod:`repro.core.metrics`): both runners
take ``record=`` — metric names, a :class:`~repro.core.metrics.RecordSpec`
or its serialized dict — and emit a columnar
:class:`~repro.core.metrics.TraceSet` (``result.trace``), computed
vectorized across replicas in the batched path.  Metrics never consume
randomness, so recording cannot perturb a trajectory.  The legacy
``bias_history`` / ``plurality_history`` / ``trajectory`` fields and the
``record_trajectory=`` flag survive as deprecation shims over the trace.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from .adversary import Adversary
from .config import Configuration
from .dynamics import Dynamics
from .metrics import RecordSpec, TraceRecorder, TraceSet, as_record_spec, stack_traces
from .rng import make_rng, spawn_streams
from .support import scatter_counts
from .stopping import (
    BUDGET_EXHAUSTED,
    AnyOfStop,
    PluralityFractionStop,
    StoppingRule,
    stopping_from_dict,
)

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "ENSEMBLE_ENGINES",
    "ProcessResult",
    "EnsembleResult",
    "run_process",
    "run_ensemble",
    "sparse_ineligibility",
]

#: Version of the engine/result contract.  Bump whenever a change makes the
#: runners produce *different results at equal seed* (RNG stream discipline,
#: stepping order, stopping semantics, adversary strategies): cached
#: :class:`EnsembleResult` entries are keyed by this version, so stale
#: results from an older engine are invalidated instead of served.
#: History: 1 = PR 2 contract; 2 = delimited ``derive_seed`` hashing,
#: t=0 stopping-rule evaluation, supported-only ``BalancingAdversary``.
#: (PR 4's metric recording left the contract at 2: metrics never consume
#: randomness, so counts/rounds/winners are unchanged at equal seed.)
#: 3 = the sparse ensemble layout: ``engine="sparse"`` (and the ``"auto"``
#: upgrade at large k) draws its multinomials over the support-compacted
#: columns, consuming randomness differently from dense at equal seed, and
#: the scenario ``engine`` field joined the content address; additionally
#: the agent-level engines batch their per-agent draws across replicas
#: (``samplers.batched_agent_step``), which reorders *their* randomness
#: consumption even on the dense layout (counts-engine dense runs are
#: unchanged).  Cached entries from the two-engine era are invalidated
#: rather than served.
ENGINE_SCHEMA_VERSION = 3

#: Recognised values of :func:`run_ensemble`'s ``engine=`` keyword (the
#: *ensemble layout*, orthogonal to each dynamics' own counts/agent law
#: engine — see the matrix in :mod:`repro.core.dynamics`).
ENSEMBLE_ENGINES = ("auto", "dense", "sparse")

#: ``engine="auto"`` upgrades to the sparse layout at k >= this.  Below
#: it the dense per-round cost is already small and auto keeps the dense
#: layout (bit-stable with previous releases for counts-engine dynamics;
#: agent-level engines reordered their draws in v3 regardless of layout);
#: every existing workload in the repo runs at k <= 100, so the threshold
#: doubles as a compatibility line.
_SPARSE_AUTO_MIN_K = 128

#: Re-compact the sparse working set only when the union support has
#: shrunk to this fraction of the current compacted width — O(log k)
#: total copies over a run instead of one per extinction.
_SPARSE_HYSTERESIS = 0.5

#: ``stopped_by`` label for replicas absorbed in a monochromatic state.
_MONO = "monochromatic"

#: What :func:`run_process` records when no ``record=`` is given — the
#: legacy always-on O(k)-per-round histories, expressed as metrics.
DEFAULT_PROCESS_RECORD = RecordSpec(metrics=("bias", "plurality-count"), every=1)


def _resolve_stopping(
    stopping: StoppingRule | Mapping | None,
    stop_at_plurality_fraction: float | None,
) -> StoppingRule | None:
    """Normalise the ``stopping`` argument and apply the deprecation shim."""
    if isinstance(stopping, Mapping):
        stopping = stopping_from_dict(stopping)
    if stopping is not None and not isinstance(stopping, StoppingRule):
        raise TypeError(f"stopping must be a StoppingRule or dict, got {stopping!r}")
    if stop_at_plurality_fraction is not None:
        warnings.warn(
            "stop_at_plurality_fraction is deprecated; pass "
            "stopping=PluralityFractionStop(fraction) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        shim = PluralityFractionStop(stop_at_plurality_fraction)
        stopping = shim if stopping is None else AnyOfStop([stopping, shim])
    return stopping


def _resolve_record(
    record: RecordSpec | Mapping | Sequence[str] | str | None,
    record_trajectory: bool,
    *,
    default: RecordSpec | None,
) -> RecordSpec | None:
    """Normalise ``record=`` and fold in the deprecated trajectory flag."""
    spec = as_record_spec(record, default=default)
    if record_trajectory:
        warnings.warn(
            "record_trajectory is deprecated; pass record=[\"counts\", ...] and read "
            "result.trace[\"counts\"] instead",
            DeprecationWarning,
            stacklevel=3,
        )
        spec = (spec if spec is not None else RecordSpec()).with_metric("counts")
    return spec


def _deprecated_series(trace: TraceSet | None, name: str, attribute: str) -> np.ndarray:
    if trace is None or name not in trace:
        raise ValueError(
            f"{attribute} needs the {name!r} metric in the result trace; it is only "
            f"available under the default record (or any record= including {name!r})"
        )
    return trace.replica(0, name)


@dataclass
class ProcessResult:
    """Outcome of a single trajectory.

    Attributes
    ----------
    converged:
        True iff a monochromatic configuration was reached within the
        round budget.
    winner:
        The consensus color (None when not converged).
    rounds:
        Rounds executed until absorption (or the budget when not
        converged).
    plurality_color:
        Plurality color of the *initial* configuration — the process
        "succeeds" in the paper's sense iff ``winner == plurality_color``.
    final_counts:
        Configuration at the last executed round (color slots only; any
        extra dynamics state is dropped).
    trace:
        Columnar :class:`~repro.core.metrics.TraceSet` (one replica) with
        the recorded metrics; by default ``bias`` and ``plurality-count``
        every round.
    stopped_by:
        Why the run ended: ``"monochromatic"`` (absorbed), the name of the
        stopping rule that fired, or ``"max-rounds"`` when ``max_rounds``
        expired with neither.
    """

    converged: bool
    winner: int | None
    rounds: int
    plurality_color: int
    final_counts: np.ndarray
    trace: TraceSet | None = None
    stopped_by: str | None = None

    @property
    def plurality_won(self) -> bool:
        """True iff the process converged to the initial plurality color."""
        return self.converged and self.winner == self.plurality_color

    # -- deprecation shims over the trace -------------------------------------

    @property
    def bias_history(self) -> np.ndarray:
        """Deprecated alias for ``trace["bias"]`` (the per-round bias series)."""
        warnings.warn(
            "ProcessResult.bias_history is deprecated; read result.trace[\"bias\"]",
            DeprecationWarning,
            stacklevel=2,
        )
        return _deprecated_series(self.trace, "bias", "bias_history")

    @property
    def plurality_history(self) -> np.ndarray:
        """Deprecated alias for ``trace["plurality-count"]``."""
        warnings.warn(
            "ProcessResult.plurality_history is deprecated; read "
            "result.trace[\"plurality-count\"]",
            DeprecationWarning,
            stacklevel=2,
        )
        return _deprecated_series(self.trace, "plurality-count", "plurality_history")

    @property
    def trajectory(self) -> np.ndarray | None:
        """Deprecated alias for ``trace["counts"]`` (None when not recorded)."""
        warnings.warn(
            "ProcessResult.trajectory is deprecated; record=[\"counts\"] and read "
            "result.trace[\"counts\"]",
            DeprecationWarning,
            stacklevel=2,
        )
        if self.trace is None or "counts" not in self.trace:
            return None
        return self.trace.replica(0, "counts")


@dataclass
class EnsembleResult:
    """Outcome of ``replicas`` independent trajectories.

    All arrays have length ``replicas``; ``winners[i] == -1`` when replica
    ``i`` did not converge within the budget.
    """

    rounds: np.ndarray
    winners: np.ndarray
    converged: np.ndarray
    plurality_color: int
    max_rounds: int
    #: Per-replica final configurations; None when the producer did not
    #: record them (consumers must check before use).
    final_counts: np.ndarray | None = field(repr=False, default=None)
    #: Per-replica stop labels (object array of str, same vocabulary as
    #: ``ProcessResult.stopped_by``); None when the producer predates them.
    stopped_by: np.ndarray | None = field(repr=False, default=None)
    #: Columnar metric traces across all replicas (see
    #: :class:`~repro.core.metrics.TraceSet`); None unless ``record=`` was
    #: passed — the un-recorded hot path allocates nothing.
    trace: TraceSet | None = field(repr=False, default=None)

    @property
    def replicas(self) -> int:
        return int(self.rounds.size)

    def stop_reasons(self) -> dict[str, int]:
        """Histogram of ``stopped_by`` labels over the replicas."""
        if self.stopped_by is None:
            return {}
        labels, counts = np.unique(self.stopped_by.astype(str), return_counts=True)
        return {str(label): int(count) for label, count in zip(labels, counts)}

    @property
    def plurality_wins(self) -> np.ndarray:
        return self.converged & (self.winners == self.plurality_color)

    @property
    def plurality_win_rate(self) -> float:
        return float(self.plurality_wins.mean()) if self.replicas else float("nan")

    @property
    def convergence_rate(self) -> float:
        return float(self.converged.mean()) if self.replicas else float("nan")

    def rounds_summary(self) -> dict[str, float]:
        """Mean/median/quantile summary over *converged* replicas."""
        conv = self.rounds[self.converged]
        if conv.size == 0:
            return {"mean": float("nan"), "median": float("nan"), "p90": float("nan"), "max": float("nan")}
        return {
            "mean": float(conv.mean()),
            "median": float(np.median(conv)),
            "p90": float(np.quantile(conv, 0.9)),
            "max": float(conv.max()),
        }


def _prepare_state(dynamics: Dynamics, initial: Configuration | np.ndarray) -> tuple[np.ndarray, int]:
    """Build the dynamics' state vector and remember the color-slot count."""
    counts = initial.counts if isinstance(initial, Configuration) else np.asarray(initial, dtype=np.int64)
    k = counts.size
    if dynamics.uses_extra_state:
        extend = getattr(dynamics, "extend_counts", None)
        if extend is None:
            raise TypeError(f"{dynamics.name} uses extra state but has no extend_counts()")
        state = extend(counts)
    else:
        state = counts.astype(np.int64, copy=True)
    return state, k


def _is_monochromatic(state: np.ndarray, k: int) -> bool:
    n = int(state.sum())
    colored = state[:k]
    return bool(colored.max() == n)


def run_process(
    dynamics: Dynamics,
    initial: Configuration | np.ndarray,
    *,
    max_rounds: int = 1_000_000,
    adversary: Adversary | None = None,
    record: RecordSpec | Mapping | Sequence[str] | str | None = None,
    record_trajectory: bool = False,
    stopping: StoppingRule | Mapping | None = None,
    stop_at_plurality_fraction: float | None = None,
    rng: int | np.random.Generator | None = None,
) -> ProcessResult:
    """Run one trajectory until consensus (or a stopping rule) is reached.

    Parameters
    ----------
    record:
        Which metrics to observe per round (names, a
        :class:`~repro.core.metrics.RecordSpec`, or its dict form).  The
        default records ``bias`` and ``plurality-count`` every round — the
        legacy histories, now expressed declaratively.  The columnar
        result lands in ``ProcessResult.trace``.
    record_trajectory:
        Deprecated spelling of adding ``"counts"`` to ``record``.
    stopping:
        Optional early-stop rule (a :class:`~repro.core.stopping.StoppingRule`
        or its serialized dict), checked on the color counts after every
        round; monochromatic absorption always ends the run regardless.
        The rule that fired is recorded in ``ProcessResult.stopped_by``.
    stop_at_plurality_fraction:
        Deprecated spelling of
        ``stopping=PluralityFractionStop(fraction)``; kept as a shim.
    """
    stopping = _resolve_stopping(stopping, stop_at_plurality_fraction)
    record = _resolve_record(record, record_trajectory, default=DEFAULT_PROCESS_RECORD)
    generator = make_rng(rng)
    state, k = _prepare_state(dynamics, initial)
    n = int(state.sum())
    if n == 0:
        raise ValueError("cannot run a process with zero agents")
    plurality_color = int(np.argmax(state[:k]))

    recorder = TraceRecorder(record, n=n, k=k, replicas=1)
    recorder.observe(0, state[None, :k])
    rounds = 0
    converged = _is_monochromatic(state, k)
    stopped_by = _MONO if converged else None
    if stopped_by is None and stopping is not None:
        # Stopping rules are evaluated on the *initial* configuration too:
        # a rule already satisfied at t=0 ends the run with rounds=0 instead
        # of silently burning one round.
        stopped_by = stopping.fired(state[:k], n, 0)
    while stopped_by is None and rounds < max_rounds:
        state = dynamics.step(state, generator)
        if adversary is not None:
            if dynamics.uses_extra_state:
                colored = adversary.corrupt(state[:k], generator)
                state = np.concatenate([colored, state[k:]])
            else:
                state = adversary.corrupt(state, generator)
        rounds += 1
        recorder.observe(rounds, state[None, :k])
        converged = _is_monochromatic(state, k)
        if converged:
            stopped_by = _MONO
        elif stopping is not None:
            stopped_by = stopping.fired(state[:k], n, rounds)

    winner = int(np.argmax(state[:k])) if converged else None
    return ProcessResult(
        converged=converged,
        winner=winner,
        rounds=rounds,
        plurality_color=plurality_color,
        final_counts=state[:k].copy(),
        trace=recorder.finish(),
        stopped_by=stopped_by if stopped_by is not None else BUDGET_EXHAUSTED,
    )


def sparse_ineligibility(
    dynamics: Dynamics,
    adversary: Adversary | None = None,
    stopping: StoppingRule | None = None,
) -> str | None:
    """Why this scenario cannot run on the sparse ensemble layout.

    Returns ``None`` when it can, else a human-readable reason: the
    dynamics must be support-closed and carry no extra non-color state,
    the adversary must be support-preserving (never feeds extinct colors),
    and the stopping rule must evaluate identically on support-compacted
    counts.  ``engine="auto"`` consults this to fall back to dense; an
    explicit ``engine="sparse"`` raises with the reason instead.
    """
    if not getattr(dynamics, "support_closed", False):
        return f"dynamics {dynamics.name!r} is not support-closed"
    if dynamics.uses_extra_state:
        return f"dynamics {dynamics.name!r} carries extra non-color state"
    if adversary is not None and not getattr(adversary, "support_preserving", False):
        return f"adversary {type(adversary).__name__} is not support-preserving"
    if stopping is not None and not getattr(stopping, "sparse_invariant", False):
        return f"stopping rule {stopping.rule!r} is not sparse-invariant"
    return None


def run_ensemble(
    dynamics: Dynamics,
    initial: Configuration | np.ndarray,
    replicas: int,
    *,
    max_rounds: int = 1_000_000,
    adversary: Adversary | None = None,
    record: RecordSpec | Mapping | Sequence[str] | str | None = None,
    stopping: StoppingRule | Mapping | None = None,
    rng: int | np.random.Generator | None = None,
    batch: bool = True,
    engine: str = "auto",
) -> EnsembleResult:
    """Run ``replicas`` i.i.d. trajectories and gather their outcomes.

    With ``batch=True`` (default) all live replicas advance together
    through :meth:`Dynamics.step_many`; replicas drop out of the batch as
    they absorb — or as the optional ``stopping`` rule fires for them,
    with the firing rule recorded per replica in
    ``EnsembleResult.stopped_by``.  With ``batch=False`` each replica runs
    on its own spawned stream — bit-identical to independent sequential
    runs, used in tests to validate the batched path.  A passed
    :class:`numpy.random.Generator` spawns the per-replica streams from
    its own seed sequence, so the unbatched path is reproducible for every
    accepted ``rng`` type.

    ``engine`` selects the batched layout: ``"dense"`` steps the full
    ``(R, k)`` matrix (the historical layout; bit-identical to previous
    releases at equal seed for counts-engine dynamics — agent-level
    engines batch their draws differently since schema version 3);
    ``"sparse"`` steps the union-live-support compacted ``(R, s)`` columns
    — O(support) per round, the large-``k`` mode — and requires a
    sparse-eligible scenario (see :func:`sparse_ineligibility`);
    ``"auto"`` upgrades to sparse when ``k >= 128`` and the scenario is
    eligible.  Sparse draws consume randomness differently, so sparse and
    dense agree in distribution, not bit-wise, at equal seed.  The
    unbatched path has a single (dense) layout: ``engine="sparse"`` with
    ``batch=False`` is an error.

    With ``record=``, metric values are computed *vectorized across the
    live replicas* each recorded round and returned as a columnar
    :class:`~repro.core.metrics.TraceSet` in ``EnsembleResult.trace``
    (replicas that retire early keep zero padding past their stop round;
    ``trace.n_recorded`` marks each replica's valid prefix).  Without
    ``record=`` no trace machinery runs at all.
    """
    if replicas <= 0:
        raise ValueError("need at least one replica")
    if engine not in ENSEMBLE_ENGINES:
        raise ValueError(f"unknown ensemble engine {engine!r}; expected one of {ENSEMBLE_ENGINES}")
    stopping = _resolve_stopping(stopping, None)
    record = _resolve_record(record, False, default=None)
    state0, k = _prepare_state(dynamics, initial)
    n = int(state0.sum())
    plurality_color = int(np.argmax(state0[:k]))

    if not batch:
        if engine == "sparse":
            raise ValueError("engine='sparse' needs the batched path (batch=True)")
        streams = spawn_streams(rng, replicas)
        results = [
            run_process(
                dynamics,
                initial,
                max_rounds=max_rounds,
                adversary=adversary,
                # An explicitly empty record skips run_process's default
                # bias/plurality bookkeeping: the per-replica traces are
                # discarded below when no record was requested.
                record=record if record is not None else RecordSpec(),
                stopping=stopping,
                rng=stream,
            )
            for stream in streams
        ]
        return EnsembleResult(
            rounds=np.array([r.rounds for r in results], dtype=np.int64),
            winners=np.array(
                [r.winner if r.winner is not None else -1 for r in results], dtype=np.int64
            ),
            converged=np.array([r.converged for r in results], dtype=bool),
            plurality_color=plurality_color,
            max_rounds=max_rounds,
            final_counts=np.stack([r.final_counts for r in results]),
            stopped_by=np.array([r.stopped_by for r in results], dtype=object),
            trace=stack_traces([r.trace for r in results]) if record is not None else None,
        )

    generator = make_rng(rng)
    reason = sparse_ineligibility(dynamics, adversary, stopping)
    support = None
    if engine == "sparse" or (
        engine == "auto" and k >= _SPARSE_AUTO_MIN_K and n > 0 and reason is None
    ):
        if reason is not None:  # only reachable for an explicit "sparse"
            raise ValueError(f"engine='sparse' unavailable: {reason}")
        if n <= 0:
            raise ValueError("cannot run the sparse engine with zero agents")
        support = np.flatnonzero(state0[:k]).astype(np.int64)
    return _run_ensemble_batched(
        dynamics,
        state0,
        replicas,
        n=n,
        k=k,
        max_rounds=max_rounds,
        adversary=adversary,
        record=record,
        stopping=stopping,
        generator=generator,
        plurality_color=plurality_color,
        support=support,
    )


def _run_ensemble_batched(
    dynamics: Dynamics,
    state0: np.ndarray,
    replicas: int,
    *,
    n: int,
    k: int,
    max_rounds: int,
    adversary: Adversary | None,
    record: RecordSpec | None,
    stopping: StoppingRule | None,
    generator: np.random.Generator,
    plurality_color: int,
    support: np.ndarray | None,
) -> EnsembleResult:
    """The batched replica loop, shared by the dense and sparse layouts.

    With ``support is None`` the working set is the dense ``(R, k [+
    extra])`` state matrix — the historical layout.  With ``support``
    given (the sorted union-live-support map), the working set is the
    compacted ``(R, s)`` columns: per round the dynamics steps the
    compacted batch (its law sees width ``s``, so e.g.
    :class:`~repro.core.majority.HPlurality`'s auto engine sizes its
    composition table by ``s``, not ``k``), the support-preserving
    adversary corrupts the compacted columns, metrics record through the
    compaction-aware :meth:`~repro.core.metrics.TraceRecorder.observe`,
    and winners / final counts scatter back through ``support`` only at
    retirement boundaries.  When the union support has shrunk past the
    hysteresis fraction the working set is re-compacted — the dead
    columns' cost disappears for the rest of the run.

    Support is monotone non-increasing (support-closed dynamics,
    support-preserving adversaries — enforced by
    :func:`sparse_ineligibility`), so ``scatter_counts`` is lossless at
    every round and both layouts report identical dense-``k`` result
    arrays.  Everything else — stepping order, t=0 rule evaluation,
    record-before-retire, stop labelling — is one shared code path, so
    the two layouts cannot drift apart semantically.
    """
    sparse = support is not None
    states = np.tile(state0[support] if sparse else state0, (replicas, 1))
    rounds = np.full(replicas, max_rounds, dtype=np.int64)
    winners = np.full(replicas, -1, dtype=np.int64)
    converged = np.zeros(replicas, dtype=bool)
    final_counts = np.tile(state0[:k], (replicas, 1))
    stopped_by = np.full(replicas, None, dtype=object)
    recorder = (
        TraceRecorder(record, n=n, k=k, replicas=replicas) if record is not None else None
    )
    # Reused per-round scratch: the absorption scan writes its row maxima
    # and boolean verdicts into leading views of these instead of
    # allocating fresh arrays every round.
    scratch_max = np.empty(replicas, dtype=states.dtype)
    scratch_mask = np.empty(replicas, dtype=bool)

    def colored_view(block: np.ndarray) -> np.ndarray:
        """The color columns: compacted batches are all colors; dense
        batches may carry extra state slots past ``k``."""
        return block if sparse else block[:, :k]

    def to_dense(rows: np.ndarray) -> np.ndarray:
        return scatter_counts(rows, support, k) if sparse else rows

    def absorb(live_idx: np.ndarray, live_states: np.ndarray, t: int) -> np.ndarray:
        colored = colored_view(live_states)
        live = colored.shape[0]
        peak = np.max(colored, axis=1, out=scratch_max[:live])
        mono = np.equal(peak, n, out=scratch_mask[:live])
        if mono.any():
            idx = live_idx[mono]
            converged[idx] = True
            rounds[idx] = t
            top = np.argmax(colored[mono], axis=1)
            winners[idx] = support[top] if sparse else top
            final_counts[idx] = to_dense(colored[mono])
            stopped_by[idx] = _MONO
        # The caller consumes the alive mask before the next absorb call,
        # so inverting in place keeps the round allocation-free.
        return np.logical_not(mono, out=mono)

    def cull_stopped(live_idx: np.ndarray, states: np.ndarray, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Retire replicas whose stopping rule fires at round ``t``.

        The cheap boolean ``met_many`` runs every round; the object-array
        label pass (``fired_many``) runs only on the rows that actually
        fired.
        """
        colored = colored_view(states)
        hit = stopping.met_many(colored, n, t)
        if np.any(hit):
            idx = live_idx[hit]
            rounds[idx] = t
            final_counts[idx] = to_dense(colored[hit])
            stopped_by[idx] = stopping.fired_many(colored[hit], n, t)
            live_idx = live_idx[~hit]
            states = states[~hit]
        return live_idx, states

    live_idx = np.arange(replicas)
    # Mirror run_process's t=0 snapshot: every replica records the initial
    # configuration, before absorption/stopping retire any of them.
    if recorder is not None:
        recorder.observe(0, colored_view(states), live_idx, support=support)
    alive = absorb(live_idx, states, 0)
    live_idx = live_idx[alive]
    states = states[alive]
    if stopping is not None and live_idx.size:
        # Mirror run_process: rules see the initial configuration at t=0.
        live_idx, states = cull_stopped(live_idx, states, 0)

    t = 0
    while live_idx.size and t < max_rounds:
        t += 1
        states = dynamics.step_many(states, generator)
        if adversary is not None:
            if sparse:
                states = adversary.corrupt_many(states, generator)
            else:
                states[:, :k] = adversary.corrupt_many(states[:, :k], generator)
        # Record before retiring anyone: a replica absorbing at round t has
        # its round-t configuration in the trace, as in run_process.
        if recorder is not None:
            recorder.observe(t, colored_view(states), live_idx, support=support)
        alive = absorb(live_idx, states, t)
        if not np.all(alive):
            live_idx = live_idx[alive]
            states = states[alive]
        if stopping is not None and live_idx.size:
            live_idx, states = cull_stopped(live_idx, states, t)
        if sparse and live_idx.size and support.size > 1:
            # Hysteresis re-compaction: only pay the column copy once the
            # union support has shrunk enough to matter.
            cols = states.any(axis=0)
            live_cols = int(np.count_nonzero(cols))
            if live_cols <= support.size * _SPARSE_HYSTERESIS:
                support = support[cols]
                states = np.ascontiguousarray(states[:, cols])

    if live_idx.size:
        final_counts[live_idx] = to_dense(colored_view(states))
    stopped_by[np.equal(stopped_by, None)] = BUDGET_EXHAUSTED

    return EnsembleResult(
        rounds=rounds,
        winners=winners,
        converged=converged,
        plurality_color=plurality_color,
        max_rounds=max_rounds,
        final_counts=final_counts,
        stopped_by=stopped_by,
        trace=recorder.finish() if recorder is not None else None,
    )
