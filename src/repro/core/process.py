"""Process runner: trajectories, stopping rules and replica ensembles.

The plurality-consensus *process* couples a :class:`~repro.core.dynamics.Dynamics`
with an initial configuration and (optionally) an F-bounded adversary, using
exactly the round split of Corollary 4's proof::

    C(t)  --dynamics-->  H(t+1)  --adversary-->  C(t+1)

:func:`run_process` produces a single trajectory with full bookkeeping;
:func:`run_ensemble` advances many independent replicas in lock-step through
the batched step kernels — the workhorse of every experiment, giving
empirical success probabilities and convergence-time distributions.

Observation is declarative (see :mod:`repro.core.metrics`): both runners
take ``record=`` — metric names, a :class:`~repro.core.metrics.RecordSpec`
or its serialized dict — and emit a columnar
:class:`~repro.core.metrics.TraceSet` (``result.trace``), computed
vectorized across replicas in the batched path.  Metrics never consume
randomness, so recording cannot perturb a trajectory.  The legacy
``bias_history`` / ``plurality_history`` / ``trajectory`` fields and the
``record_trajectory=`` flag survive as deprecation shims over the trace.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from .adversary import Adversary
from .config import Configuration
from .dynamics import Dynamics
from .metrics import RecordSpec, TraceRecorder, TraceSet, as_record_spec, stack_traces
from .rng import make_rng, spawn_streams
from .stopping import (
    BUDGET_EXHAUSTED,
    AnyOfStop,
    PluralityFractionStop,
    StoppingRule,
    stopping_from_dict,
)

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "ProcessResult",
    "EnsembleResult",
    "run_process",
    "run_ensemble",
]

#: Version of the engine/result contract.  Bump whenever a change makes the
#: runners produce *different results at equal seed* (RNG stream discipline,
#: stepping order, stopping semantics, adversary strategies): cached
#: :class:`EnsembleResult` entries are keyed by this version, so stale
#: results from an older engine are invalidated instead of served.
#: History: 1 = PR 2 contract; 2 = delimited ``derive_seed`` hashing,
#: t=0 stopping-rule evaluation, supported-only ``BalancingAdversary``.
#: (PR 4's metric recording left the contract at 2: metrics never consume
#: randomness, so counts/rounds/winners are unchanged at equal seed.)
ENGINE_SCHEMA_VERSION = 2

#: ``stopped_by`` label for replicas absorbed in a monochromatic state.
_MONO = "monochromatic"

#: What :func:`run_process` records when no ``record=`` is given — the
#: legacy always-on O(k)-per-round histories, expressed as metrics.
DEFAULT_PROCESS_RECORD = RecordSpec(metrics=("bias", "plurality-count"), every=1)


def _resolve_stopping(
    stopping: StoppingRule | Mapping | None,
    stop_at_plurality_fraction: float | None,
) -> StoppingRule | None:
    """Normalise the ``stopping`` argument and apply the deprecation shim."""
    if isinstance(stopping, Mapping):
        stopping = stopping_from_dict(stopping)
    if stopping is not None and not isinstance(stopping, StoppingRule):
        raise TypeError(f"stopping must be a StoppingRule or dict, got {stopping!r}")
    if stop_at_plurality_fraction is not None:
        warnings.warn(
            "stop_at_plurality_fraction is deprecated; pass "
            "stopping=PluralityFractionStop(fraction) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        shim = PluralityFractionStop(stop_at_plurality_fraction)
        stopping = shim if stopping is None else AnyOfStop([stopping, shim])
    return stopping


def _resolve_record(
    record: RecordSpec | Mapping | Sequence[str] | str | None,
    record_trajectory: bool,
    *,
    default: RecordSpec | None,
) -> RecordSpec | None:
    """Normalise ``record=`` and fold in the deprecated trajectory flag."""
    spec = as_record_spec(record, default=default)
    if record_trajectory:
        warnings.warn(
            "record_trajectory is deprecated; pass record=[\"counts\", ...] and read "
            "result.trace[\"counts\"] instead",
            DeprecationWarning,
            stacklevel=3,
        )
        spec = (spec if spec is not None else RecordSpec()).with_metric("counts")
    return spec


def _deprecated_series(trace: TraceSet | None, name: str, attribute: str) -> np.ndarray:
    if trace is None or name not in trace:
        raise ValueError(
            f"{attribute} needs the {name!r} metric in the result trace; it is only "
            f"available under the default record (or any record= including {name!r})"
        )
    return trace.replica(0, name)


@dataclass
class ProcessResult:
    """Outcome of a single trajectory.

    Attributes
    ----------
    converged:
        True iff a monochromatic configuration was reached within the
        round budget.
    winner:
        The consensus color (None when not converged).
    rounds:
        Rounds executed until absorption (or the budget when not
        converged).
    plurality_color:
        Plurality color of the *initial* configuration — the process
        "succeeds" in the paper's sense iff ``winner == plurality_color``.
    final_counts:
        Configuration at the last executed round (color slots only; any
        extra dynamics state is dropped).
    trace:
        Columnar :class:`~repro.core.metrics.TraceSet` (one replica) with
        the recorded metrics; by default ``bias`` and ``plurality-count``
        every round.
    stopped_by:
        Why the run ended: ``"monochromatic"`` (absorbed), the name of the
        stopping rule that fired, or ``"max-rounds"`` when ``max_rounds``
        expired with neither.
    """

    converged: bool
    winner: int | None
    rounds: int
    plurality_color: int
    final_counts: np.ndarray
    trace: TraceSet | None = None
    stopped_by: str | None = None

    @property
    def plurality_won(self) -> bool:
        """True iff the process converged to the initial plurality color."""
        return self.converged and self.winner == self.plurality_color

    # -- deprecation shims over the trace -------------------------------------

    @property
    def bias_history(self) -> np.ndarray:
        """Deprecated alias for ``trace["bias"]`` (the per-round bias series)."""
        warnings.warn(
            "ProcessResult.bias_history is deprecated; read result.trace[\"bias\"]",
            DeprecationWarning,
            stacklevel=2,
        )
        return _deprecated_series(self.trace, "bias", "bias_history")

    @property
    def plurality_history(self) -> np.ndarray:
        """Deprecated alias for ``trace["plurality-count"]``."""
        warnings.warn(
            "ProcessResult.plurality_history is deprecated; read "
            "result.trace[\"plurality-count\"]",
            DeprecationWarning,
            stacklevel=2,
        )
        return _deprecated_series(self.trace, "plurality-count", "plurality_history")

    @property
    def trajectory(self) -> np.ndarray | None:
        """Deprecated alias for ``trace["counts"]`` (None when not recorded)."""
        warnings.warn(
            "ProcessResult.trajectory is deprecated; record=[\"counts\"] and read "
            "result.trace[\"counts\"]",
            DeprecationWarning,
            stacklevel=2,
        )
        if self.trace is None or "counts" not in self.trace:
            return None
        return self.trace.replica(0, "counts")


@dataclass
class EnsembleResult:
    """Outcome of ``replicas`` independent trajectories.

    All arrays have length ``replicas``; ``winners[i] == -1`` when replica
    ``i`` did not converge within the budget.
    """

    rounds: np.ndarray
    winners: np.ndarray
    converged: np.ndarray
    plurality_color: int
    max_rounds: int
    #: Per-replica final configurations; None when the producer did not
    #: record them (consumers must check before use).
    final_counts: np.ndarray | None = field(repr=False, default=None)
    #: Per-replica stop labels (object array of str, same vocabulary as
    #: ``ProcessResult.stopped_by``); None when the producer predates them.
    stopped_by: np.ndarray | None = field(repr=False, default=None)
    #: Columnar metric traces across all replicas (see
    #: :class:`~repro.core.metrics.TraceSet`); None unless ``record=`` was
    #: passed — the un-recorded hot path allocates nothing.
    trace: TraceSet | None = field(repr=False, default=None)

    @property
    def replicas(self) -> int:
        return int(self.rounds.size)

    def stop_reasons(self) -> dict[str, int]:
        """Histogram of ``stopped_by`` labels over the replicas."""
        if self.stopped_by is None:
            return {}
        labels, counts = np.unique(self.stopped_by.astype(str), return_counts=True)
        return {str(label): int(count) for label, count in zip(labels, counts)}

    @property
    def plurality_wins(self) -> np.ndarray:
        return self.converged & (self.winners == self.plurality_color)

    @property
    def plurality_win_rate(self) -> float:
        return float(self.plurality_wins.mean()) if self.replicas else float("nan")

    @property
    def convergence_rate(self) -> float:
        return float(self.converged.mean()) if self.replicas else float("nan")

    def rounds_summary(self) -> dict[str, float]:
        """Mean/median/quantile summary over *converged* replicas."""
        conv = self.rounds[self.converged]
        if conv.size == 0:
            return {"mean": float("nan"), "median": float("nan"), "p90": float("nan"), "max": float("nan")}
        return {
            "mean": float(conv.mean()),
            "median": float(np.median(conv)),
            "p90": float(np.quantile(conv, 0.9)),
            "max": float(conv.max()),
        }


def _prepare_state(dynamics: Dynamics, initial: Configuration | np.ndarray) -> tuple[np.ndarray, int]:
    """Build the dynamics' state vector and remember the color-slot count."""
    counts = initial.counts if isinstance(initial, Configuration) else np.asarray(initial, dtype=np.int64)
    k = counts.size
    if dynamics.uses_extra_state:
        extend = getattr(dynamics, "extend_counts", None)
        if extend is None:
            raise TypeError(f"{dynamics.name} uses extra state but has no extend_counts()")
        state = extend(counts)
    else:
        state = counts.astype(np.int64, copy=True)
    return state, k


def _is_monochromatic(state: np.ndarray, k: int) -> bool:
    n = int(state.sum())
    colored = state[:k]
    return bool(colored.max() == n)


def run_process(
    dynamics: Dynamics,
    initial: Configuration | np.ndarray,
    *,
    max_rounds: int = 1_000_000,
    adversary: Adversary | None = None,
    record: RecordSpec | Mapping | Sequence[str] | str | None = None,
    record_trajectory: bool = False,
    stopping: StoppingRule | Mapping | None = None,
    stop_at_plurality_fraction: float | None = None,
    rng: int | np.random.Generator | None = None,
) -> ProcessResult:
    """Run one trajectory until consensus (or a stopping rule) is reached.

    Parameters
    ----------
    record:
        Which metrics to observe per round (names, a
        :class:`~repro.core.metrics.RecordSpec`, or its dict form).  The
        default records ``bias`` and ``plurality-count`` every round — the
        legacy histories, now expressed declaratively.  The columnar
        result lands in ``ProcessResult.trace``.
    record_trajectory:
        Deprecated spelling of adding ``"counts"`` to ``record``.
    stopping:
        Optional early-stop rule (a :class:`~repro.core.stopping.StoppingRule`
        or its serialized dict), checked on the color counts after every
        round; monochromatic absorption always ends the run regardless.
        The rule that fired is recorded in ``ProcessResult.stopped_by``.
    stop_at_plurality_fraction:
        Deprecated spelling of
        ``stopping=PluralityFractionStop(fraction)``; kept as a shim.
    """
    stopping = _resolve_stopping(stopping, stop_at_plurality_fraction)
    record = _resolve_record(record, record_trajectory, default=DEFAULT_PROCESS_RECORD)
    generator = make_rng(rng)
    state, k = _prepare_state(dynamics, initial)
    n = int(state.sum())
    if n == 0:
        raise ValueError("cannot run a process with zero agents")
    plurality_color = int(np.argmax(state[:k]))

    recorder = TraceRecorder(record, n=n, k=k, replicas=1)
    recorder.observe(0, state[None, :k])
    rounds = 0
    converged = _is_monochromatic(state, k)
    stopped_by = _MONO if converged else None
    if stopped_by is None and stopping is not None:
        # Stopping rules are evaluated on the *initial* configuration too:
        # a rule already satisfied at t=0 ends the run with rounds=0 instead
        # of silently burning one round.
        stopped_by = stopping.fired(state[:k], n, 0)
    while stopped_by is None and rounds < max_rounds:
        state = dynamics.step(state, generator)
        if adversary is not None:
            if dynamics.uses_extra_state:
                colored = adversary.corrupt(state[:k], generator)
                state = np.concatenate([colored, state[k:]])
            else:
                state = adversary.corrupt(state, generator)
        rounds += 1
        recorder.observe(rounds, state[None, :k])
        converged = _is_monochromatic(state, k)
        if converged:
            stopped_by = _MONO
        elif stopping is not None:
            stopped_by = stopping.fired(state[:k], n, rounds)

    winner = int(np.argmax(state[:k])) if converged else None
    return ProcessResult(
        converged=converged,
        winner=winner,
        rounds=rounds,
        plurality_color=plurality_color,
        final_counts=state[:k].copy(),
        trace=recorder.finish(),
        stopped_by=stopped_by if stopped_by is not None else BUDGET_EXHAUSTED,
    )


def run_ensemble(
    dynamics: Dynamics,
    initial: Configuration | np.ndarray,
    replicas: int,
    *,
    max_rounds: int = 1_000_000,
    adversary: Adversary | None = None,
    record: RecordSpec | Mapping | Sequence[str] | str | None = None,
    stopping: StoppingRule | Mapping | None = None,
    rng: int | np.random.Generator | None = None,
    batch: bool = True,
) -> EnsembleResult:
    """Run ``replicas`` i.i.d. trajectories and gather their outcomes.

    With ``batch=True`` (default) all live replicas advance together
    through :meth:`Dynamics.step_many`; replicas drop out of the batch as
    they absorb — or as the optional ``stopping`` rule fires for them,
    with the firing rule recorded per replica in
    ``EnsembleResult.stopped_by``.  With ``batch=False`` each replica runs
    on its own spawned stream — bit-identical to independent sequential
    runs, used in tests to validate the batched path.  A passed
    :class:`numpy.random.Generator` spawns the per-replica streams from
    its own seed sequence, so the unbatched path is reproducible for every
    accepted ``rng`` type.

    With ``record=``, metric values are computed *vectorized across the
    live replicas* each recorded round and returned as a columnar
    :class:`~repro.core.metrics.TraceSet` in ``EnsembleResult.trace``
    (replicas that retire early keep zero padding past their stop round;
    ``trace.n_recorded`` marks each replica's valid prefix).  Without
    ``record=`` no trace machinery runs at all.
    """
    if replicas <= 0:
        raise ValueError("need at least one replica")
    stopping = _resolve_stopping(stopping, None)
    record = _resolve_record(record, False, default=None)
    state0, k = _prepare_state(dynamics, initial)
    n = int(state0.sum())
    plurality_color = int(np.argmax(state0[:k]))

    if not batch:
        streams = spawn_streams(rng, replicas)
        results = [
            run_process(
                dynamics,
                initial,
                max_rounds=max_rounds,
                adversary=adversary,
                # An explicitly empty record skips run_process's default
                # bias/plurality bookkeeping: the per-replica traces are
                # discarded below when no record was requested.
                record=record if record is not None else RecordSpec(),
                stopping=stopping,
                rng=stream,
            )
            for stream in streams
        ]
        return EnsembleResult(
            rounds=np.array([r.rounds for r in results], dtype=np.int64),
            winners=np.array(
                [r.winner if r.winner is not None else -1 for r in results], dtype=np.int64
            ),
            converged=np.array([r.converged for r in results], dtype=bool),
            plurality_color=plurality_color,
            max_rounds=max_rounds,
            final_counts=np.stack([r.final_counts for r in results]),
            stopped_by=np.array([r.stopped_by for r in results], dtype=object),
            trace=stack_traces([r.trace for r in results]) if record is not None else None,
        )

    generator = make_rng(rng)
    states = np.tile(state0, (replicas, 1))
    rounds = np.full(replicas, max_rounds, dtype=np.int64)
    winners = np.full(replicas, -1, dtype=np.int64)
    converged = np.zeros(replicas, dtype=bool)
    final_counts = np.tile(state0[:k], (replicas, 1))
    stopped_by = np.full(replicas, None, dtype=object)
    recorder = (
        TraceRecorder(record, n=n, k=k, replicas=replicas) if record is not None else None
    )

    def absorb(live_idx: np.ndarray, live_states: np.ndarray, t: int) -> np.ndarray:
        colored = live_states[:, :k]
        mono = colored.max(axis=1) == n
        if np.any(mono):
            idx = live_idx[mono]
            converged[idx] = True
            rounds[idx] = t
            winners[idx] = np.argmax(colored[mono], axis=1)
            final_counts[idx] = colored[mono]
            stopped_by[idx] = _MONO
        return ~mono

    def cull_stopped(live_idx: np.ndarray, states: np.ndarray, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Retire replicas whose stopping rule fires at round ``t``."""
        fired = stopping.fired_many(states[:, :k], n, t)
        hit = ~np.equal(fired, None)
        if np.any(hit):
            idx = live_idx[hit]
            rounds[idx] = t
            final_counts[idx] = states[hit, :k]
            stopped_by[idx] = fired[hit]
            live_idx = live_idx[~hit]
            states = states[~hit]
        return live_idx, states

    live_idx = np.arange(replicas)
    # Mirror run_process's t=0 snapshot: every replica records the initial
    # configuration, before absorption/stopping retire any of them.
    if recorder is not None:
        recorder.observe(0, states[:, :k], live_idx)
    alive = absorb(live_idx, states, 0)
    live_idx = live_idx[alive]
    states = states[alive]
    if stopping is not None and live_idx.size:
        # Mirror run_process: rules see the initial configuration at t=0.
        live_idx, states = cull_stopped(live_idx, states, 0)

    t = 0
    while live_idx.size and t < max_rounds:
        t += 1
        states = dynamics.step_many(states, generator)
        if adversary is not None:
            states[:, :k] = adversary.corrupt_many(states[:, :k], generator)
        # Record before retiring anyone: a replica absorbing at round t has
        # its round-t configuration in the trace, as in run_process.
        if recorder is not None:
            recorder.observe(t, states[:, :k], live_idx)
        alive = absorb(live_idx, states, t)
        if not np.all(alive):
            live_idx = live_idx[alive]
            states = states[alive]
        if stopping is not None and live_idx.size:
            live_idx, states = cull_stopped(live_idx, states, t)

    if live_idx.size:
        final_counts[live_idx] = states[:, :k]
    stopped_by[np.equal(stopped_by, None)] = BUDGET_EXHAUSTED

    return EnsembleResult(
        rounds=rounds,
        winners=winners,
        converged=converged,
        plurality_color=plurality_color,
        max_rounds=max_rounds,
        final_counts=final_counts,
        stopped_by=stopped_by,
        trace=recorder.finish() if recorder is not None else None,
    )
