"""Median dynamics of Doerr et al. [SPAA'11] — the paper's main foil.

Each agent keeps its own value and samples two agents u.a.r.; its next
value is the *median* of the three (values are totally ordered; colors are
identified with their indices ``0 < 1 < ... < k-1``).  For ``k = 2`` this
coincides with 3-majority restricted to {own, sample, sample}; for ``k >= 3``
it solves *median* consensus, not plurality — Theorem 3 of the paper shows
it lacks the uniform property, and experiment E5 shows it electing a
non-plurality color.

Exact counts-level law: for an agent with value ``x`` and sample CDF ``F``
(``F(v) = (sum_{u <= v} c_u)/n``),

    ``P(median <= v) = 1 - (1 - F(v))^2``  if ``v >= x``  (needs >= 1 sample <= v)
    ``P(median <= v) = F(v)^2``            if ``v <  x``  (needs both samples <= v)

so each current-value class has a closed-form next-value pmf and the next
configuration is a sum of ``k`` independent multinomials (one per class).
"""

from __future__ import annotations

import numpy as np

from .dynamics import CountsDynamics
from .registry import DYNAMICS

__all__ = ["MedianDynamics"]


@DYNAMICS.register("median", summary="Doerr et al. median rule (the paper's foil)")
class MedianDynamics(CountsDynamics):
    """Doerr et al.'s median rule: own value + two uniform samples."""

    name = "median"
    sample_size = 3  # own value counts as one of the three inputs
    uses_extra_state = False
    support_closed = True  # the median of three values is one of them

    def class_transition_matrix(self, counts: np.ndarray) -> np.ndarray:
        """``M[x, v]``: probability a class-``x`` agent moves to value ``v``.

        Built from the two-branch CDF formula above, vectorised over all
        (x, v) pairs at O(k^2) cost.
        """
        c = np.asarray(counts, dtype=np.float64)
        n = c.sum()
        if n <= 0:
            raise ValueError("empty configuration has no transition matrix")
        k = c.size
        F = np.cumsum(c) / n  # F[v] = P(sample <= v)
        vals = np.arange(k)
        # cdf_next[x, v] = P(median(x, A, B) <= v)
        below = F**2  # row used where v < x
        above = 1.0 - (1.0 - F) ** 2  # row used where v >= x
        cdf_next = np.where(vals[None, :] >= vals[:, None], above[None, :], below[None, :])
        pmf = np.diff(cdf_next, axis=1, prepend=0.0)
        # Clamp tiny negative round-off and renormalise each row.
        pmf = np.clip(pmf, 0.0, None)
        pmf /= pmf.sum(axis=1, keepdims=True)
        return pmf

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        """Marginal next-value law of a uniformly random agent."""
        c = np.asarray(counts, dtype=np.float64)
        n = c.sum()
        if n <= 0:
            raise ValueError("empty configuration has no color law")
        mat = self.class_transition_matrix(counts)
        return (c / n) @ mat

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        k = counts.size
        if counts.sum() == 0:
            return counts.copy()
        mat = self.class_transition_matrix(counts)
        occupied = np.nonzero(counts)[0]
        draws = rng.multinomial(counts[occupied], mat[occupied])
        return draws.sum(axis=0).astype(np.int64)

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k) counts")
        return np.stack([self.step(row, rng) for row in counts])
