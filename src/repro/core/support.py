"""Active-support compaction for the sparse ensemble engine.

The paper's large-``k`` regimes (``k = n^ε``) coalesce fast: after a short
prefix all but a vanishing set of colors are extinct, yet a dense engine
keeps paying O(k) per round for the lifetime of every ensemble.  The
sparse engine in :func:`repro.core.process.run_ensemble` instead tracks
the ensemble's *union live support* — the sorted original color indices
with a nonzero count in **any** replica — and steps the replicas on the
``(R, |support|)`` compacted columns, scattering back to dense ``k`` only
at result and trace boundaries.

Two invariants make this exact rather than approximate:

* the support map is kept **sorted ascending**, so compaction preserves
  the total order of color indices — order-sensitive laws (the
  ``low``/``high`` pair choices and rank patterns of
  :class:`~repro.core.threeinput.ThreeInputRule`, the median dynamics)
  evaluate identically on the compacted axis;
* every dynamics eligible for the sparse engine is **support-closed**
  (:attr:`~repro.core.dynamics.Dynamics.support_closed`): a color with
  count zero is assigned probability zero by the law (and can never be
  sampled by an agent-level engine), so dropped columns would have stayed
  exactly zero — ``scatter_counts(compact_counts(c)) == c`` round-trips
  losslessly at every round, not just at t = 0.

These helpers are deliberately tiny and allocation-transparent; the
compaction *lifecycle* (hysteresis, re-compaction, result scatter) lives
in :mod:`repro.core.process`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["union_support", "compact_counts", "scatter_counts"]


def union_support(counts: np.ndarray) -> np.ndarray:
    """Sorted original color indices with a nonzero count in any row.

    Accepts a single ``(k,)`` configuration or an ``(R, k)`` batch.
    """
    counts = np.asarray(counts)
    if counts.ndim == 1:
        return np.flatnonzero(counts).astype(np.int64)
    if counts.ndim != 2:
        raise ValueError(f"counts must be (k,) or (R, k), got shape {counts.shape}")
    return np.flatnonzero(counts.any(axis=0)).astype(np.int64)


def compact_counts(counts: np.ndarray, support: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Gather the supported columns: ``(R, k)`` → ``((R, s), support)``.

    ``support`` defaults to :func:`union_support` of ``counts``; passing an
    explicit (sorted) map lets callers compact several arrays consistently.
    Returns a fresh contiguous array — the compacted batch is the sparse
    engine's working set, so it must not alias the dense source.
    """
    counts = np.asarray(counts)
    if support is None:
        support = union_support(counts)
    else:
        support = np.asarray(support, dtype=np.int64)
    compacted = np.ascontiguousarray(counts[..., support])
    return compacted, support


def scatter_counts(compacted: np.ndarray, support: np.ndarray, k: int) -> np.ndarray:
    """Scatter compacted columns back to dense ``k``: the inverse of
    :func:`compact_counts` for support-closed processes (dropped columns
    are exactly zero).  Accepts ``(s,)`` or ``(R, s)``; trailing shape
    beyond the color axis is not supported.
    """
    compacted = np.asarray(compacted)
    support = np.asarray(support, dtype=np.int64)
    if compacted.shape[-1] != support.size:
        raise ValueError(
            f"compacted width {compacted.shape[-1]} does not match "
            f"support size {support.size}"
        )
    if support.size and (support[0] < 0 or support[-1] >= k):
        raise ValueError(f"support indices out of range [0, {k})")
    dense = np.zeros(compacted.shape[:-1] + (k,), dtype=compacted.dtype)
    dense[..., support] = compacted
    return dense
