"""Vectorized sampling kernels shared by every dynamics implementation.

Two execution engines are built on these kernels:

* the **exact counts-level engine**: on the clique, agents update i.i.d.
  conditioned on the current configuration, so the next configuration is
  exactly ``Multinomial(n, p)`` for the per-agent color law ``p``
  (:func:`multinomial_step`, batched over replicas via NumPy's broadcasting
  multinomial);

* the **agent-level engine** for rules without a tractable closed-form law
  (h-plurality for general ``h``, arbitrary 3-input rules): draw an
  ``(n, h)`` categorical sample matrix (:func:`categorical_matrix`) and
  reduce each row with :func:`row_plurality` (uniform tie-breaking).

Per the HPC guides the hot paths are loop-free; the only Python-level loop
is row chunking to bound the transient memory of the one-hot count matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "multinomial_step",
    "multinomial_step_batch",
    "categorical_sample",
    "categorical_matrix",
    "categorical_matrix_batch",
    "batched_agent_step",
    "equal_totals",
    "row_plurality",
    "row_counts_dense",
    "top_two",
]

#: cells allowed in a transient (rows x k) one-hot count block (~256 MiB of
#: int64 at the default); chunking keeps peak memory flat for any n.
_DENSE_BLOCK_CELLS = 32 * 1024 * 1024

#: cells per replica-chunk sample block in the batched agent kernels
#: (~32 MiB of int64 per transient — a few live at once across the draw,
#: searchsorted and reduction, so the peak stays within ~100 MiB, the same
#: order as the per-replica path's row_plurality histogram blocks).
_SAMPLE_BLOCK_CELLS = 4 * 1024 * 1024


def top_two(counts: np.ndarray) -> tuple[int, int]:
    """Largest and second-largest entries of a count vector in O(k).

    Replaces the ``np.sort(...)[::-1][:2]`` idiom on per-round snapshot
    paths — two linear scans instead of an O(k log k) sort and a full copy.
    For ``k == 1`` the runner-up is 0 (the bias convention of the paper's
    ``s(c) = c_1 - c_2``).
    """
    c = np.asarray(counts)
    top = int(np.argmax(c))
    first = int(c[top])
    if c.size <= 1:
        return first, 0
    second = max(
        int(c[:top].max(initial=-1)),
        int(c[top + 1 :].max(initial=-1)),
    )
    return first, second


def multinomial_step(n: int, pvals: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw one exact configuration update: ``Multinomial(n, pvals)``.

    ``pvals`` must be a length-k probability vector (validated up to a small
    tolerance, then renormalised so the multinomial sampler never sees a
    sum > 1 from floating-point round-off).
    """
    p = np.asarray(pvals, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"pvals must be 1-D, got shape {p.shape}")
    total = p.sum()
    if not np.isfinite(total) or abs(total - 1.0) > 1e-9 or np.any(p < -1e-12):
        raise ValueError(f"pvals is not a probability vector (sum={total!r})")
    p = np.clip(p, 0.0, None)
    p = p / p.sum()
    return rng.multinomial(n, p).astype(np.int64)


def multinomial_step_batch(
    n: int | np.ndarray, pvals: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Batched exact update: row ``r`` of the result is ``Multinomial(n_r, pvals[r])``.

    ``pvals`` has shape ``(R, k)``; ``n`` is a scalar or length-R vector.
    This is how replica ensembles advance in lock-step with one NumPy call.
    """
    p = np.asarray(pvals, dtype=np.float64)
    if p.ndim != 2:
        raise ValueError(f"pvals must be 2-D, got shape {p.shape}")
    sums = p.sum(axis=1)
    if np.any(~np.isfinite(sums)) or np.any(np.abs(sums - 1.0) > 1e-9) or np.any(p < -1e-12):
        raise ValueError("pvals rows are not probability vectors")
    p = np.clip(p, 0.0, None)
    p = p / p.sum(axis=1, keepdims=True)
    return rng.multinomial(n, p).astype(np.int64)


def categorical_sample(
    counts: np.ndarray, size: int | tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Sample colors i.i.d. with ``P(color j) = counts[j] / sum(counts)``.

    Implemented by inverse-CDF (``searchsorted`` on the cumulative count
    vector over uniform integers in ``[0, n)``), which is exact in integer
    arithmetic — no floating-point probability round-off — and an order of
    magnitude faster than ``Generator.choice`` for large draws.
    """
    c = np.asarray(counts, dtype=np.int64)
    if c.ndim != 1 or np.any(c < 0):
        raise ValueError("counts must be a 1-D non-negative vector")
    n = int(c.sum())
    if n <= 0:
        raise ValueError("counts must sum to a positive total")
    cdf = np.cumsum(c)
    u = rng.integers(0, n, size=size, dtype=np.int64)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def categorical_matrix(
    counts: np.ndarray, rows: int, h: int, rng: np.random.Generator
) -> np.ndarray:
    """An ``(rows, h)`` matrix of i.i.d. color samples from ``counts``."""
    if rows < 0 or h <= 0:
        raise ValueError(f"need rows >= 0 and h >= 1, got rows={rows}, h={h}")
    return categorical_sample(counts, (rows, h), rng)


def equal_totals(counts: np.ndarray) -> bool:
    """True when every replica row carries the same positive agent mass.

    The batched agent-level kernels draw one flattened block per replica
    chunk, which needs a common ``n``.  The ensemble runners satisfy this
    by construction (mass is conserved per replica); direct ``step_many``
    callers with ragged totals fall back to the per-row path.
    """
    totals = np.asarray(counts).sum(axis=1)
    return bool(totals.size) and int(totals[0]) > 0 and bool((totals == totals[0]).all())


def _categorical_block(
    cdf: np.ndarray, n: int, h: int, rng: np.random.Generator
) -> np.ndarray:
    """``(rows, n, h)`` samples for one chunk of per-row CDFs.

    One uniform draw and one ``searchsorted`` over the *offset-flattened*
    CDFs: row ``r``'s CDF and queries are both shifted by ``r·n``, so the
    concatenated CDF stays non-decreasing and every query lands inside its
    own row's segment.  Exact in integer arithmetic, like the single-row
    kernel.
    """
    rows, k = cdf.shape
    offsets = np.arange(rows, dtype=np.int64) * n
    flat_cdf = (cdf + offsets[:, None]).ravel()
    u = rng.integers(0, n, size=(rows, n, h), dtype=np.int64)
    u += offsets[:, None, None]
    idx = np.searchsorted(flat_cdf, u.ravel(), side="right").reshape(rows, n, h)
    idx -= (np.arange(rows, dtype=np.int64) * k)[:, None, None]
    return idx


def _checked_batch_cdf(counts: np.ndarray, h: int) -> tuple[np.ndarray, int]:
    c = np.asarray(counts, dtype=np.int64)
    if c.ndim != 2:
        raise ValueError("counts must be an (R, k) batch")
    if h <= 0:
        raise ValueError(f"need h >= 1, got h={h}")
    if np.any(c < 0):
        raise ValueError("counts must be non-negative")
    if c.shape[0] and not equal_totals(c):
        raise ValueError("all rows must share the same positive total")
    n = int(c[0].sum()) if c.shape[0] else 0
    return np.cumsum(c, axis=1), n


def categorical_matrix_batch(
    counts: np.ndarray, h: int, rng: np.random.Generator
) -> np.ndarray:
    """An ``(R, n, h)`` block of i.i.d. color samples, row ``r`` drawn from
    ``counts[r]`` — the replica-batched sibling of :func:`categorical_matrix`.

    NOTE: this materialises the *whole* ``R·n·h`` block.  Step kernels
    must not call it directly — :func:`batched_agent_step` draws and
    reduces chunk by chunk instead, keeping peak memory at the per-chunk
    budget regardless of the replica count.
    """
    cdf, n = _checked_batch_cdf(counts, h)
    replicas, _ = cdf.shape
    if replicas == 0:
        return np.zeros((0, 0, h), dtype=np.int64)
    out = np.empty((replicas, n, h), dtype=np.int64)
    chunk = max(1, _SAMPLE_BLOCK_CELLS // max(n * h, 1))
    for start in range(0, replicas, chunk):
        stop = min(start + chunk, replicas)
        out[start:stop] = _categorical_block(cdf[start:stop], n, h, rng)
    return out


def batched_agent_step(
    counts: np.ndarray,
    h: int,
    rng: np.random.Generator,
    choose,
) -> np.ndarray:
    """One agent-level round for a whole replica batch, bounded memory.

    For each replica chunk: draw the ``(rows, n, h)`` sample block, reduce
    it with ``choose(samples_2d, rng) -> colors`` (``samples_2d`` is the
    chunk flattened to ``(rows·n, h)``; ``choose`` is the per-agent rule —
    majority, plurality, an arbitrary 3-input ``f``), histogram the chosen
    colors per replica, and discard the block.  Only the ``(R, k)`` result
    and one chunk's transients (:data:`_SAMPLE_BLOCK_CELLS` cells each,
    ~32 MiB) are ever resident, so peak memory stays flat in the replica
    count — the same order as the per-replica loop this replaces — while
    keeping the loop-free draws.  All rows must share the same positive
    total (the ensemble invariant); ragged callers fall back to per-row
    stepping.
    """
    cdf, n = _checked_batch_cdf(counts, h)
    replicas, k = cdf.shape
    out = np.empty((replicas, k), dtype=np.int64)
    chunk = max(1, _SAMPLE_BLOCK_CELLS // max(n * h, 1))
    for start in range(0, replicas, chunk):
        stop = min(start + chunk, replicas)
        samples = _categorical_block(cdf[start:stop], n, h, rng)
        colors = choose(samples.reshape(-1, h), rng)
        out[start:stop] = row_counts_dense(colors.reshape(stop - start, n), k)
    return out


def row_counts_dense(samples: np.ndarray, k: int) -> np.ndarray:
    """Per-row color histogram of an ``(R, h)`` sample matrix → ``(R, k)``.

    Uses the flattened-bincount trick: offset row ``r``'s samples by ``r*k``
    and histogram once.  Caller is responsible for chunking if ``R*k`` is
    large (see :func:`row_plurality`).
    """
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise ValueError("samples must be (rows, h)")
    rows = samples.shape[0]
    if rows == 0:
        return np.zeros((0, k), dtype=np.int64)
    offsets = np.arange(rows, dtype=np.int64)[:, None] * k
    flat = (samples + offsets).ravel()
    return np.bincount(flat, minlength=rows * k).reshape(rows, k)


def _plurality_of_block(block: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Row-wise plurality with uniform tie-breaking for one chunk."""
    counts = row_counts_dense(block, k)
    # A uniform jitter in [0, 0.5) cannot reorder distinct integer counts but
    # picks uniformly at random among the colors sharing the maximum; colors
    # with count 0 can never win because every row has h >= 1 samples.
    jitter = rng.random(counts.shape) * 0.5
    return np.argmax(counts + jitter, axis=1).astype(np.int64)


def row_plurality(samples: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Plurality color of each row of an ``(R, h)`` sample matrix.

    Ties among maximal colors are broken uniformly at random, matching the
    paper's h-plurality rule.  The reduction runs in row chunks so that the
    transient ``(chunk, k)`` histogram stays within a fixed memory budget.
    """
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise ValueError("samples must be (rows, h)")
    rows = samples.shape[0]
    if rows == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(samples < 0) or np.any(samples >= k):
        raise ValueError("sample values out of range [0, k)")
    chunk = max(1, _DENSE_BLOCK_CELLS // max(k, 1))
    if rows <= chunk:
        return _plurality_of_block(samples, k, rng)
    out = np.empty(rows, dtype=np.int64)
    for start in range(0, rows, chunk):
        stop = min(start + chunk, rows)
        out[start:stop] = _plurality_of_block(samples[start:stop], k, rng)
    return out
