"""Vectorized sampling kernels shared by every dynamics implementation.

Two execution engines are built on these kernels:

* the **exact counts-level engine**: on the clique, agents update i.i.d.
  conditioned on the current configuration, so the next configuration is
  exactly ``Multinomial(n, p)`` for the per-agent color law ``p``
  (:func:`multinomial_step`, batched over replicas via NumPy's broadcasting
  multinomial);

* the **agent-level engine** for rules without a tractable closed-form law
  (h-plurality for general ``h``, arbitrary 3-input rules): draw an
  ``(n, h)`` categorical sample matrix (:func:`categorical_matrix`) and
  reduce each row with :func:`row_plurality` (uniform tie-breaking).

Per the HPC guides the hot paths are loop-free; the only Python-level loop
is row chunking to bound the transient memory of the one-hot count matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "multinomial_step",
    "multinomial_step_batch",
    "categorical_sample",
    "categorical_matrix",
    "row_plurality",
    "row_counts_dense",
    "top_two",
]

#: cells allowed in a transient (rows x k) one-hot count block (~256 MiB of
#: int64 at the default); chunking keeps peak memory flat for any n.
_DENSE_BLOCK_CELLS = 32 * 1024 * 1024


def top_two(counts: np.ndarray) -> tuple[int, int]:
    """Largest and second-largest entries of a count vector in O(k).

    Replaces the ``np.sort(...)[::-1][:2]`` idiom on per-round snapshot
    paths — two linear scans instead of an O(k log k) sort and a full copy.
    For ``k == 1`` the runner-up is 0 (the bias convention of the paper's
    ``s(c) = c_1 - c_2``).
    """
    c = np.asarray(counts)
    top = int(np.argmax(c))
    first = int(c[top])
    if c.size <= 1:
        return first, 0
    second = max(
        int(c[:top].max(initial=-1)),
        int(c[top + 1 :].max(initial=-1)),
    )
    return first, second


def multinomial_step(n: int, pvals: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw one exact configuration update: ``Multinomial(n, pvals)``.

    ``pvals`` must be a length-k probability vector (validated up to a small
    tolerance, then renormalised so the multinomial sampler never sees a
    sum > 1 from floating-point round-off).
    """
    p = np.asarray(pvals, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"pvals must be 1-D, got shape {p.shape}")
    total = p.sum()
    if not np.isfinite(total) or abs(total - 1.0) > 1e-9 or np.any(p < -1e-12):
        raise ValueError(f"pvals is not a probability vector (sum={total!r})")
    p = np.clip(p, 0.0, None)
    p = p / p.sum()
    return rng.multinomial(n, p).astype(np.int64)


def multinomial_step_batch(
    n: int | np.ndarray, pvals: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Batched exact update: row ``r`` of the result is ``Multinomial(n_r, pvals[r])``.

    ``pvals`` has shape ``(R, k)``; ``n`` is a scalar or length-R vector.
    This is how replica ensembles advance in lock-step with one NumPy call.
    """
    p = np.asarray(pvals, dtype=np.float64)
    if p.ndim != 2:
        raise ValueError(f"pvals must be 2-D, got shape {p.shape}")
    sums = p.sum(axis=1)
    if np.any(~np.isfinite(sums)) or np.any(np.abs(sums - 1.0) > 1e-9) or np.any(p < -1e-12):
        raise ValueError("pvals rows are not probability vectors")
    p = np.clip(p, 0.0, None)
    p = p / p.sum(axis=1, keepdims=True)
    return rng.multinomial(n, p).astype(np.int64)


def categorical_sample(
    counts: np.ndarray, size: int | tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Sample colors i.i.d. with ``P(color j) = counts[j] / sum(counts)``.

    Implemented by inverse-CDF (``searchsorted`` on the cumulative count
    vector over uniform integers in ``[0, n)``), which is exact in integer
    arithmetic — no floating-point probability round-off — and an order of
    magnitude faster than ``Generator.choice`` for large draws.
    """
    c = np.asarray(counts, dtype=np.int64)
    if c.ndim != 1 or np.any(c < 0):
        raise ValueError("counts must be a 1-D non-negative vector")
    n = int(c.sum())
    if n <= 0:
        raise ValueError("counts must sum to a positive total")
    cdf = np.cumsum(c)
    u = rng.integers(0, n, size=size, dtype=np.int64)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def categorical_matrix(
    counts: np.ndarray, rows: int, h: int, rng: np.random.Generator
) -> np.ndarray:
    """An ``(rows, h)`` matrix of i.i.d. color samples from ``counts``."""
    if rows < 0 or h <= 0:
        raise ValueError(f"need rows >= 0 and h >= 1, got rows={rows}, h={h}")
    return categorical_sample(counts, (rows, h), rng)


def row_counts_dense(samples: np.ndarray, k: int) -> np.ndarray:
    """Per-row color histogram of an ``(R, h)`` sample matrix → ``(R, k)``.

    Uses the flattened-bincount trick: offset row ``r``'s samples by ``r*k``
    and histogram once.  Caller is responsible for chunking if ``R*k`` is
    large (see :func:`row_plurality`).
    """
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise ValueError("samples must be (rows, h)")
    rows = samples.shape[0]
    if rows == 0:
        return np.zeros((0, k), dtype=np.int64)
    offsets = np.arange(rows, dtype=np.int64)[:, None] * k
    flat = (samples + offsets).ravel()
    return np.bincount(flat, minlength=rows * k).reshape(rows, k)


def _plurality_of_block(block: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Row-wise plurality with uniform tie-breaking for one chunk."""
    counts = row_counts_dense(block, k)
    # A uniform jitter in [0, 0.5) cannot reorder distinct integer counts but
    # picks uniformly at random among the colors sharing the maximum; colors
    # with count 0 can never win because every row has h >= 1 samples.
    jitter = rng.random(counts.shape) * 0.5
    return np.argmax(counts + jitter, axis=1).astype(np.int64)


def row_plurality(samples: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Plurality color of each row of an ``(R, h)`` sample matrix.

    Ties among maximal colors are broken uniformly at random, matching the
    paper's h-plurality rule.  The reduction runs in row chunks so that the
    transient ``(chunk, k)`` histogram stays within a fixed memory budget.
    """
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise ValueError("samples must be (rows, h)")
    rows = samples.shape[0]
    if rows == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(samples < 0) or np.any(samples >= k):
        raise ValueError("sample values out of range [0, k)")
    chunk = max(1, _DENSE_BLOCK_CELLS // max(k, 1))
    if rows <= chunk:
        return _plurality_of_block(samples, k, rng)
    out = np.empty(rows, dtype=np.int64)
    for start in range(0, rows, chunk):
        stop = min(start + chunk, rows)
        out[start:stop] = _plurality_of_block(samples[start:stop], k, rng)
    return out
