"""Pluggable observation layer: metrics, record specs and columnar traces.

Every experimental claim of the paper is a statement about *trajectory
statistics* — how the bias drifts, when the plurality fraction crosses a
threshold, how fast minority colors die.  This module makes observation
declarative data, the same move :mod:`repro.scenario` made for scenarios:

* a :class:`Metric` is a pure, vectorized function of the color counts
  (never of the RNG — observing a run cannot perturb it), registered by
  name in :data:`repro.core.registry.METRICS` (``repro metrics`` lists
  them);
* a :class:`RecordSpec` names which metrics to record and at what cadence
  (``every``-round thinning), and round-trips through plain JSON — it is
  the value of the ``record`` field of a
  :class:`~repro.scenario.ScenarioSpec`;
* a :class:`TraceSet` is the columnar result: one ndarray per metric of
  shape ``(replicas, T, *metric shape)``, recorded by both
  :func:`~repro.core.process.run_process` and the batched
  :func:`~repro.core.process.run_ensemble` (vectorized across replicas in
  the counts engine).

Built-in metrics
----------------
==================  =======  ========  =========================================
name                dtype    shape     value per recorded round
==================  =======  ========  =========================================
plurality-count     int64    scalar    ``max_j c_j``
plurality-fraction  float64  scalar    ``max_j c_j / n``
bias                int64    scalar    additive bias ``s(c) = c_(1) - c_(2)``
support-size        int64    scalar    number of colors with ``c_j > 0``
entropy             float64  scalar    Shannon entropy of ``c / n`` (nats)
tv-monochromatic    float64  scalar    TV distance to nearest monochromatic
                                       configuration, ``(n - max_j c_j) / n``
counts              int64    ``(k,)``  full count-vector snapshot
==================  =======  ========  =========================================

Determinism contract: :meth:`Metric.compute` *is* the vectorized
:meth:`Metric.compute_many` applied to a single row, so the batched
counts-engine recording path and a per-replica agent-side loop produce
bit-identical values on the same counts (property-tested in
``tests/test_metrics.py``).
"""

from __future__ import annotations

import abc
import hashlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, replace

import numpy as np

from .registry import METRICS
from .support import scatter_counts

__all__ = [
    "Metric",
    "RecordSpec",
    "TraceSet",
    "TraceRecorder",
    "as_record_spec",
    "stack_traces",
]


class Metric(abc.ABC):
    """A pure, vectorized observable of the color counts.

    Subclasses implement :meth:`compute_many` over an ``(R, k)`` batch;
    the scalar :meth:`compute` is *defined* as the batch path applied to a
    single row, so the two can never drift apart.  Metrics take no
    randomness and must not mutate their input.
    """

    #: Registry name; also the column name inside a :class:`TraceSet`.
    name: str = "metric"

    #: dtype of the recorded values.
    dtype: type = np.float64

    #: True when one round's value is a length-``k`` vector instead of a
    #: scalar (the ``counts`` snapshot).
    vector: bool = False

    #: True when the metric commutes with support compaction: computing it
    #: on the sparse engine's ``(R, s)`` support-compacted counts (and, for
    #: vector metrics, scattering the result back through the sorted
    #: support map) is bit-identical to computing it on the dense ``(R,
    #: k)`` counts.  Every built-in qualifies (dropped columns are exactly
    #: zero and contribute nothing); third-party metrics default to False,
    #: which makes the sparse recorder scatter to dense before evaluating
    #: them — always correct, just O(k) for that metric.
    sparse_invariant: bool = False

    @abc.abstractmethod
    def compute_many(self, counts: np.ndarray, n: int) -> np.ndarray:
        """Values over an ``(R, k)`` batch: shape ``(R,)`` (or ``(R, k)``)."""

    def compute(self, counts: np.ndarray, n: int):
        """Value on one ``(k,)`` configuration — the batch path on one row."""
        return self.compute_many(np.asarray(counts)[None, :], n)[0]

    def shape(self, k: int) -> tuple[int, ...]:
        """Trailing shape of one recorded value (``()`` or ``(k,)``)."""
        return (k,) if self.vector else ()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@METRICS.register("plurality-count")
class PluralityCountMetric(Metric):
    """Agents held by the current plurality color, ``max_j c_j``."""

    name = "plurality-count"
    dtype = np.int64
    sparse_invariant = True

    def compute_many(self, counts: np.ndarray, n: int) -> np.ndarray:
        return np.asarray(counts).max(axis=1).astype(np.int64)


@METRICS.register("plurality-fraction")
class PluralityFractionMetric(Metric):
    """Fraction of agents on the plurality color, ``max_j c_j / n``."""

    name = "plurality-fraction"
    dtype = np.float64
    sparse_invariant = True

    def compute_many(self, counts: np.ndarray, n: int) -> np.ndarray:
        return np.asarray(counts).max(axis=1) / np.float64(n)


@METRICS.register("bias")
class BiasMetric(Metric):
    """Additive bias ``s(c) = c_(1) - c_(2)`` (top count minus runner-up)."""

    name = "bias"
    dtype = np.int64
    #: On a width-1 compacted batch the k == 1 branch returns the single
    #: count — the same value as the dense runner-up-is-zero bias.
    sparse_invariant = True

    def compute_many(self, counts: np.ndarray, n: int) -> np.ndarray:
        counts = np.asarray(counts)
        k = counts.shape[1]
        if k == 1:
            return counts[:, 0].astype(np.int64)
        top2 = np.partition(counts, k - 2, axis=1)[:, -2:]
        return (top2[:, 1] - top2[:, 0]).astype(np.int64)


@METRICS.register("support-size")
class SupportSizeMetric(Metric):
    """Number of colors still alive (``c_j > 0``)."""

    name = "support-size"
    dtype = np.int64
    sparse_invariant = True

    def compute_many(self, counts: np.ndarray, n: int) -> np.ndarray:
        return np.count_nonzero(np.asarray(counts) > 0, axis=1).astype(np.int64)


@METRICS.register("entropy")
class EntropyMetric(Metric):
    """Shannon entropy (nats) of the empirical color distribution ``c / n``."""

    name = "entropy"
    dtype = np.float64
    sparse_invariant = True

    def compute_many(self, counts: np.ndarray, n: int) -> np.ndarray:
        p = np.asarray(counts, dtype=np.float64) / np.float64(n)
        terms = np.where(p > 0.0, p * np.log(np.where(p > 0.0, p, 1.0)), 0.0)
        return -terms.sum(axis=1)


@METRICS.register("tv-monochromatic")
class TVMonochromaticMetric(Metric):
    """Total-variation distance to the nearest monochromatic configuration.

    For counts ``c`` the closest consensus state puts all ``n`` agents on
    the current plurality color, so the distance is ``(n - max_j c_j)/n``
    — 0 exactly at absorption, and the natural "how far from done" gauge.
    """

    name = "tv-monochromatic"
    dtype = np.float64
    sparse_invariant = True

    def compute_many(self, counts: np.ndarray, n: int) -> np.ndarray:
        counts = np.asarray(counts)
        return (np.float64(n) - counts.max(axis=1)) / np.float64(n)


@METRICS.register("counts")
class CountsMetric(Metric):
    """Full count-vector snapshot (the trajectory itself)."""

    name = "counts"
    dtype = np.int64
    vector = True
    #: Compacted values scattered through the support map ARE the dense
    #: snapshot (dropped columns are exactly zero).
    sparse_invariant = True

    def compute_many(self, counts: np.ndarray, n: int) -> np.ndarray:
        return np.asarray(counts, dtype=np.int64).copy()


# ---------------------------------------------------------------------------
# Record specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecordSpec:
    """What to observe: metric names plus an ``every``-round cadence.

    ``metrics`` are :data:`~repro.core.registry.METRICS` names (validated
    when the spec is resolved); ``every = m`` records rounds
    ``0, m, 2m, ...`` while a replica is alive.  Serializes to
    ``{"metrics": [...], "every": m}`` — the JSON value of
    ``ScenarioSpec.record``.
    """

    metrics: tuple[str, ...] = ()
    every: int = 1

    def __post_init__(self):
        metrics = tuple(self.metrics)
        if not all(isinstance(name, str) and name for name in metrics):
            raise ValueError(f"record metrics must be non-empty strings, got {metrics!r}")
        if len(set(metrics)) != len(metrics):
            raise ValueError(f"record metrics contain duplicates: {metrics!r}")
        object.__setattr__(self, "metrics", metrics)
        if isinstance(self.every, bool) or not isinstance(self.every, (int, np.integer)):
            raise ValueError(f"record every must be an integer >= 1, got {self.every!r}")
        if int(self.every) < 1:
            raise ValueError(f"record every must be >= 1, got {self.every}")
        object.__setattr__(self, "every", int(self.every))

    def resolve(self) -> list[Metric]:
        """Build every named metric (raises on unknown names)."""
        built = []
        for name in self.metrics:
            metric = METRICS.build(name)
            assert isinstance(metric, Metric)
            built.append(metric)
        return built

    def with_metric(self, name: str) -> "RecordSpec":
        """A copy that also records ``name`` (no-op when already present)."""
        if name in self.metrics:
            return self
        return replace(self, metrics=self.metrics + (name,))

    def to_dict(self) -> dict[str, object]:
        return {"metrics": list(self.metrics), "every": self.every}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RecordSpec":
        """Strict inverse of :meth:`to_dict` (unknown keys rejected)."""
        if not isinstance(data, Mapping):
            raise ValueError(f"record must be a mapping, got {type(data).__name__}")
        unknown = sorted(set(data) - {"metrics", "every"})
        if unknown:
            raise ValueError(
                f"unknown record keys: {', '.join(unknown)} (known: every, metrics)"
            )
        metrics = data.get("metrics", ())
        if isinstance(metrics, str) or not isinstance(metrics, Sequence):
            raise ValueError(f"record metrics must be a list of names, got {metrics!r}")
        return cls(metrics=tuple(metrics), every=data.get("every", 1))


def as_record_spec(record, *, default: RecordSpec | None = None) -> RecordSpec | None:
    """Normalise any accepted ``record=`` spelling to a :class:`RecordSpec`.

    Accepts ``None`` (→ ``default``), a :class:`RecordSpec`, a single
    metric name, a sequence of names, or the serialized dict form.
    """
    if record is None:
        return default
    if isinstance(record, RecordSpec):
        return record
    if isinstance(record, str):
        return RecordSpec(metrics=(record,))
    if isinstance(record, Mapping):
        return RecordSpec.from_dict(record)
    if isinstance(record, Sequence):
        return RecordSpec(metrics=tuple(record))
    raise ValueError(
        f"record must be a RecordSpec, metric name(s) or a record dict, got {record!r}"
    )


# ---------------------------------------------------------------------------
# Columnar traces
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class TraceSet:
    """Columnar per-round metric traces over a replica ensemble.

    Attributes
    ----------
    n:
        Number of agents (metrics are normalized by it).
    every:
        Recording cadence the trace was produced with.
    rounds:
        Recorded round indices, shape ``(T,)`` — ``0, every, 2·every, ...``.
    n_recorded:
        Per-replica count of valid leading slots, shape ``(R,)``: replica
        ``i``'s values are meaningful in ``data[name][i, :n_recorded[i]]``
        and zero-padded past its stopping round.
    data:
        One column per metric, insertion-ordered as recorded: shape
        ``(R, T)`` for scalar metrics, ``(R, T, k)`` for vector ones.
    """

    n: int
    every: int
    rounds: np.ndarray
    n_recorded: np.ndarray
    data: dict[str, np.ndarray]

    @property
    def metrics(self) -> tuple[str, ...]:
        return tuple(self.data)

    @property
    def replicas(self) -> int:
        return int(self.n_recorded.size)

    @property
    def n_rounds(self) -> int:
        """Number of recorded slots ``T`` (the longest replica's)."""
        return int(self.rounds.size)

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self.data[name]
        except KeyError:
            known = ", ".join(self.metrics) or "<none>"
            raise KeyError(f"metric {name!r} was not recorded (recorded: {known})") from None

    def __contains__(self, name: object) -> bool:
        return name in self.data

    def replica(self, index: int, name: str) -> np.ndarray:
        """Replica ``index``'s valid (un-padded) series for one metric."""
        return self[name][index, : int(self.n_recorded[index])]

    def valid_mask(self) -> np.ndarray:
        """Boolean ``(R, T)`` mask of slots actually recorded."""
        return np.arange(self.n_rounds)[None, :] < self.n_recorded[:, None]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceSet):
            return NotImplemented
        if (self.n, self.every, self.metrics) != (other.n, other.every, other.metrics):
            return False
        if not np.array_equal(self.rounds, other.rounds):
            return False
        if not np.array_equal(self.n_recorded, other.n_recorded):
            return False
        return all(
            self.data[name].dtype == other.data[name].dtype
            and np.array_equal(self.data[name], other.data[name])
            for name in self.metrics
        )

    def __hash__(self):  # arrays are mutable; identity hash like ndarray
        return id(self)

    def digest(self) -> str:
        """sha256 over the trace's canonical bytes (bit-identity fingerprint).

        Covers metadata, dtypes, shapes and raw array contents, so two
        traces share a digest iff they are bit-identical — what the CI
        cold/warm cache smoke compares.  Every field is hashed with a
        length prefix (the ``derive_seed`` discipline): metric names are
        arbitrary registry strings, so delimiter-joined concatenation
        could otherwise let differently-shaped traces collide.
        """
        hasher = hashlib.sha256()

        def feed(blob: bytes) -> None:
            hasher.update(len(blob).to_bytes(8, "little"))
            hasher.update(blob)

        feed(str(self.n).encode())
        feed(str(self.every).encode())

        def feed_array(name: str, array: np.ndarray) -> None:
            feed(name.encode())
            feed(array.dtype.str.encode())
            feed(str(array.shape).encode())
            feed(np.ascontiguousarray(array).tobytes())

        feed_array("rounds", self.rounds)
        feed_array("n_recorded", self.n_recorded)
        for name in self.metrics:
            feed_array(name, self.data[name])
        return hasher.hexdigest()

    def copy(self) -> "TraceSet":
        """Deep copy (defensive, mirrors the serve cache's result copies)."""
        return TraceSet(
            n=self.n,
            every=self.every,
            rounds=self.rounds.copy(),
            n_recorded=self.n_recorded.copy(),
            data={name: array.copy() for name, array in self.data.items()},
        )

    def __repr__(self) -> str:
        return (
            f"TraceSet(replicas={self.replicas}, n_rounds={self.n_rounds}, "
            f"every={self.every}, metrics={list(self.metrics)})"
        )


def stack_traces(traces: Sequence[TraceSet]) -> TraceSet:
    """Stack single-replica traces into one padded multi-replica TraceSet.

    The unbatched :func:`~repro.core.process.run_ensemble` path assembles
    its per-replica :func:`~repro.core.process.run_process` traces with
    this, producing the same columnar layout as the batched recorder
    (shorter replicas zero-padded on the right).
    """
    if not traces:
        raise ValueError("need at least one trace to stack")
    first = traces[0]
    for trace in traces[1:]:
        if (trace.n, trace.every, trace.metrics) != (first.n, first.every, first.metrics):
            raise ValueError("can only stack traces with identical n/every/metrics")
    T = max(trace.n_rounds for trace in traces)
    rounds = np.arange(T, dtype=np.int64) * first.every
    n_recorded = np.concatenate([trace.n_recorded for trace in traces])
    data: dict[str, np.ndarray] = {}
    for name in first.metrics:
        columns = []
        for trace in traces:
            block = trace.data[name]
            pad = T - block.shape[1]
            if pad:
                widths = [(0, 0), (0, pad)] + [(0, 0)] * (block.ndim - 2)
                block = np.pad(block, widths)
            columns.append(block)
        data[name] = np.concatenate(columns, axis=0)
    return TraceSet(
        n=first.n, every=first.every, rounds=rounds, n_recorded=n_recorded, data=data
    )


class TraceRecorder:
    """Incremental TraceSet builder shared by both process runners.

    ``observe(t, counts, live)`` is called once per round with the
    ``(L, k)`` counts of the replicas still running and their global
    indices; rounds off the ``every`` cadence are skipped, retired
    replicas keep zero padding, and :meth:`finish` assembles the columnar
    arrays.  Metrics never see the RNG, so recording cannot perturb a
    trajectory — only observe it.
    """

    def __init__(self, spec: RecordSpec, *, n: int, k: int, replicas: int):
        self.spec = spec
        self.n = int(n)
        self.k = int(k)
        self.replicas = int(replicas)
        self._metrics = spec.resolve()
        self._rounds: list[int] = []
        self._slabs: list[list[np.ndarray]] = [[] for _ in self._metrics]
        self._all = np.arange(self.replicas)
        #: Per recorded round, the live replica indices.  Callers hand over
        #: index arrays they never mutate in place (the runners only ever
        #: *rebuild* their live sets), so holding references is safe and
        #: keeps the per-round cost of an idle recorder at two list appends
        #: — the bookkeeping reduction happens once, in :meth:`finish`.
        self._live: list[np.ndarray] = []

    def observe(
        self,
        t: int,
        counts: np.ndarray,
        live: np.ndarray | None = None,
        *,
        support: np.ndarray | None = None,
    ) -> None:
        """Record round ``t`` for the live replicas (no-op off-cadence).

        With ``support`` given, ``counts`` are the sparse engine's
        support-compacted ``(L, s)`` columns: metrics flagged
        :attr:`Metric.sparse_invariant` evaluate directly on them (vector
        metrics scatter their values through the sorted support map into
        the dense-``k`` slab), while unflagged metrics see a scattered
        dense copy — so the recorded trace is bit-identical to a dense-run
        trace either way.
        """
        if t % self.spec.every != 0:
            return
        if live is None:
            live = self._all
        self._rounds.append(t)
        self._live.append(live)
        dense = counts if support is None else None
        for metric, slabs in zip(self._metrics, self._slabs):
            slab = np.zeros((self.replicas,) + metric.shape(self.k), dtype=metric.dtype)
            if support is not None and metric.sparse_invariant:
                values = metric.compute_many(counts, self.n)
                if metric.vector:
                    slab[np.ix_(live, support)] = values
                else:
                    slab[live] = values
            else:
                if dense is None:
                    dense = scatter_counts(counts, support, self.k)
                slab[live] = metric.compute_many(dense, self.n)
            slabs.append(slab)

    def finish(self) -> TraceSet:
        data: dict[str, np.ndarray] = {}
        for metric, slabs in zip(self._metrics, self._slabs):
            if slabs:
                data[metric.name] = np.stack(slabs, axis=1)
            else:
                data[metric.name] = np.zeros(
                    (self.replicas, 0) + metric.shape(self.k), dtype=metric.dtype
                )
        if self._live:
            n_recorded = np.bincount(
                np.concatenate(self._live), minlength=self.replicas
            ).astype(np.int64)
        else:
            n_recorded = np.zeros(self.replicas, dtype=np.int64)
        return TraceSet(
            n=self.n,
            every=self.spec.every,
            rounds=np.asarray(self._rounds, dtype=np.int64),
            n_recorded=n_recorded,
            data=data,
        )
