"""The undecided-state dynamics (Angluin et al.; parallel version SODA'15).

The one extra state the paper's Definition 1 *forbids*: besides the ``k``
colors, agents may be *undecided*.  Every round each agent pulls the state
of one agent chosen u.a.r. (with replacement, possibly itself):

* a colored agent that pulls a *different* color becomes undecided; pulling
  its own color or an undecided agent leaves it unchanged;
* an undecided agent adopts the pulled color; pulling another undecided
  agent leaves it undecided.

Becchetti et al. [SODA'15] show its convergence time is linear in the
monochromatic distance ``md(c)`` — exponentially faster than 3-majority on
some configurations, but able to *lose the plurality* when k = ω(√n).
Experiment E9 reproduces both sides of this comparison.

State convention: a length ``k+1`` vector, entries ``0..k-1`` the color
counts and entry ``k`` the undecided count.  The exact engine is O(k) per
round: each colored class survives by an independent binomial and the
undecided mass recolors by one multinomial.
"""

from __future__ import annotations

import numpy as np

from .dynamics import Dynamics
from .registry import DYNAMICS
from .samplers import multinomial_step

__all__ = ["UndecidedState"]


@DYNAMICS.register("undecided-state", summary="undecided-state protocol (SODA'15 comparison)")
class UndecidedState(Dynamics):
    """Undecided-state plurality protocol (synchronous pull model)."""

    name = "undecided-state"
    sample_size = 1
    uses_extra_state = True

    # -- state helpers ---------------------------------------------------

    @staticmethod
    def extend_counts(counts: np.ndarray, undecided: int = 0) -> np.ndarray:
        """Embed a k-color count vector into the (k+1)-slot state."""
        counts = np.asarray(counts, dtype=np.int64)
        if undecided < 0:
            raise ValueError("undecided count must be non-negative")
        return np.concatenate([counts, [undecided]])

    @staticmethod
    def colored_view(state: np.ndarray) -> np.ndarray:
        """Color counts (drop the trailing undecided slot)."""
        state = np.asarray(state)
        return state[..., :-1]

    @staticmethod
    def undecided_count(state: np.ndarray) -> np.ndarray:
        state = np.asarray(state)
        return state[..., -1]

    # -- dynamics ----------------------------------------------------------

    def step(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One synchronous round on a (k+1)-slot state vector."""
        state = np.asarray(counts, dtype=np.int64)
        if state.ndim != 1 or state.size < 2:
            raise ValueError("undecided-state expects a (k+1)-slot state vector")
        c = state[:-1]
        q = int(state[-1])
        n = int(state.sum())
        if n == 0:
            return state.copy()
        # Colored class j survives with probability (c_j + q) / n.
        survive_p = (c + q) / n
        survivors = rng.binomial(c, survive_p)
        # Undecided agents recolor by one pull each.
        if q > 0:
            pull_law = state / n  # entry k = stay undecided
            recolored = multinomial_step(q, pull_law, rng)
        else:
            recolored = np.zeros(state.size, dtype=np.int64)
        new_c = survivors + recolored[:-1]
        new_q = int(n - new_c.sum())
        return np.concatenate([new_c, [new_q]]).astype(np.int64)

    def step_many(self, counts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError("step_many expects (R, k+1) states")
        return np.stack([self.step(row, rng) for row in counts])

    def class_transition_matrix(self, state: np.ndarray) -> np.ndarray:
        """``M[i, j]`` over the k+1 slots (undecided = last row/column)."""
        state = np.asarray(state, dtype=np.float64)
        n = state.sum()
        if n <= 0:
            raise ValueError("empty state has no transition matrix")
        kp1 = state.size
        c = state[:-1]
        q = state[-1]
        mat = np.zeros((kp1, kp1))
        # colored classes
        for i in range(kp1 - 1):
            stay = (c[i] + q) / n
            mat[i, i] = stay
            mat[i, -1] = 1.0 - stay
        # undecided class
        mat[-1, :-1] = c / n
        mat[-1, -1] = q / n
        return mat

    def color_law(self, counts: np.ndarray) -> np.ndarray:
        """Marginal next-state law of a uniformly random agent."""
        state = np.asarray(counts, dtype=np.float64)
        n = state.sum()
        if n <= 0:
            raise ValueError("empty state has no color law")
        return (state / n) @ self.class_transition_matrix(state)
