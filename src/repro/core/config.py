"""Color configurations: the state space of clique plurality dynamics.

On the clique, every dynamics studied by the paper is *anonymous*: its law
depends on the current coloring only through the vector of color counts
``c = (c_1, ..., c_k)`` with ``sum(c) = n``.  :class:`Configuration` wraps
that vector with the paper's derived quantities — the plurality color, the
additive bias ``s(c) = c_(1) - c_(2)`` (difference between the two largest
counts), monochromaticity — plus the factory functions used by the
experiment workloads.

The class is immutable; dynamics return new count vectors.  The raw counts
are exposed as a read-only ``numpy.ndarray`` so the hot path never copies.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Configuration"]

_COUNT_DTYPE = np.int64


def _as_counts(values: Sequence[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"configuration counts must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("configuration needs at least one color")
    if not np.issubdtype(arr.dtype, np.integer):
        rounded = np.rint(arr)
        if not np.allclose(arr, rounded, atol=1e-9):
            raise ValueError("configuration counts must be integers")
        arr = rounded
    arr = arr.astype(_COUNT_DTYPE, copy=True)
    if np.any(arr < 0):
        raise ValueError("configuration counts must be non-negative")
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class Configuration:
    """An immutable k-color configuration (``k-cd`` in the paper).

    Parameters
    ----------
    counts:
        Length-``k`` vector of non-negative integers; ``counts[j]`` is the
        number of agents currently supporting color ``j``.

    Notes
    -----
    Unlike the paper's convention, colors are *not* assumed sorted; the
    plurality color is whichever entry is largest (ties resolved to the
    smallest index, purely for reporting).  All derived quantities
    (:attr:`bias`, :attr:`plurality_color`, ...) handle the unsorted case.
    """

    counts: np.ndarray = field()

    def __init__(self, counts: Sequence[int] | np.ndarray):
        object.__setattr__(self, "counts", _as_counts(counts))

    # -- basic structure ---------------------------------------------------

    @property
    def n(self) -> int:
        """Total number of agents."""
        return int(self.counts.sum())

    @property
    def k(self) -> int:
        """Number of color slots (including extinct colors)."""
        return int(self.counts.size)

    @property
    def support_size(self) -> int:
        """Number of colors with at least one supporter."""
        return int(np.count_nonzero(self.counts))

    def sorted_counts(self) -> np.ndarray:
        """Counts in non-increasing order (the paper's canonical form)."""
        return np.sort(self.counts)[::-1].copy()

    # -- paper quantities ---------------------------------------------------

    @property
    def plurality_color(self) -> int:
        """Index of the (a) largest color; smallest index on ties."""
        return int(np.argmax(self.counts))

    @property
    def plurality_count(self) -> int:
        """``c_(1)``: the largest count."""
        return int(self.counts.max())

    @property
    def runner_up_count(self) -> int:
        """``c_(2)``: the second-largest count (0 when k == 1)."""
        if self.k == 1:
            return 0
        top = np.partition(self.counts, self.k - 2)
        return int(top[self.k - 2])

    @property
    def bias(self) -> int:
        """Additive bias ``s(c) = c_(1) - c_(2)`` of the paper."""
        return self.plurality_count - self.runner_up_count

    @property
    def is_monochromatic(self) -> bool:
        """True iff some color is supported by every agent."""
        return self.plurality_count == self.n

    def has_unique_plurality(self) -> bool:
        """True iff exactly one color attains the maximum count."""
        return int(np.count_nonzero(self.counts == self.counts.max())) == 1

    def minority_mass(self) -> int:
        """Number of agents *not* supporting the plurality color."""
        return self.n - self.plurality_count

    def fractions(self) -> np.ndarray:
        """Counts normalised to a probability vector ``c / n``."""
        return self.counts / self.n

    def sum_of_squares(self) -> int:
        """``sum_h c_h^2`` — the quadratic term of Lemma 1."""
        c = self.counts
        return int(np.dot(c, c))

    def monochromatic_distance(self) -> float:
        """``md(c) = sum_i (c_i / c_max)^2`` (Becchetti et al., SODA'15).

        Governs the convergence time of the undecided-state dynamics; used
        by experiment E9 to build the exponential-gap workloads.
        """
        cmax = self.plurality_count
        if cmax == 0:
            raise ValueError("monochromatic distance undefined for empty configuration")
        f = self.counts / cmax
        return float(np.dot(f, f))

    # -- manipulation --------------------------------------------------------

    def with_counts(self, counts: np.ndarray) -> "Configuration":
        """Return a new configuration with the same k and new counts."""
        cfg = Configuration(counts)
        if cfg.k != self.k:
            raise ValueError(f"expected {self.k} colors, got {cfg.k}")
        return cfg

    def relabel_sorted(self) -> "Configuration":
        """Canonical copy with counts sorted non-increasingly."""
        return Configuration(self.sorted_counts())

    def permuted(self, perm: Sequence[int] | np.ndarray) -> "Configuration":
        """Apply a color permutation: ``new[j] = old[perm[j]]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if sorted(perm.tolist()) != list(range(self.k)):
            raise ValueError("perm must be a permutation of range(k)")
        return Configuration(self.counts[perm])

    # -- factories ------------------------------------------------------------

    @staticmethod
    def monochromatic(n: int, k: int, color: int = 0) -> "Configuration":
        """All ``n`` agents on one color."""
        if not 0 <= color < k:
            raise ValueError(f"color {color} out of range for k={k}")
        counts = np.zeros(k, dtype=_COUNT_DTYPE)
        counts[color] = n
        return Configuration(counts)

    @staticmethod
    def balanced(n: int, k: int) -> "Configuration":
        """As even a split of ``n`` agents over ``k`` colors as possible.

        The first ``n mod k`` colors receive one extra agent.
        """
        if k <= 0 or n < 0:
            raise ValueError("need k >= 1 and n >= 0")
        base, extra = divmod(n, k)
        counts = np.full(k, base, dtype=_COUNT_DTYPE)
        counts[:extra] += 1
        return Configuration(counts)

    @staticmethod
    def biased(n: int, k: int, bias: int, plurality: int = 0) -> "Configuration":
        """Balanced split of ``n - bias`` plus ``bias`` extra on one color.

        This is the paper's canonical ``s``-biased initial configuration:
        rivals get at most ``x = ceil((n - s)/k)`` agents, the strongest
        rival exactly ``x``, and the plurality ``x + s``.  The resulting
        ``s(c)`` equals ``bias`` exactly whenever that is arithmetically
        possible (for ``k = 2``, parity forces ``s ≡ n (mod 2)``; an
        infeasible request is rounded up to the next achievable bias).
        """
        if not 0 <= bias <= n:
            raise ValueError(f"bias must be in [0, n], got {bias}")
        if not 0 <= plurality < k:
            raise ValueError(f"plurality {plurality} out of range for k={k}")
        if k == 1:
            return Configuration.monochromatic(n, 1)
        x = -((-(n - bias)) // k)  # ceil((n - bias) / k)
        c1 = min(x + bias, n)
        rest = n - c1
        rivals = np.zeros(k - 1, dtype=_COUNT_DTYPE)
        for i in range(k - 1):
            take = min(x, rest)
            rivals[i] = take
            rest -= take
        counts = np.empty(k, dtype=_COUNT_DTYPE)
        counts[plurality] = c1
        counts[[j for j in range(k) if j != plurality]] = rivals
        return Configuration(counts)

    @staticmethod
    def two_color(n: int, majority_fraction: float = 0.5, bias: int | None = None) -> "Configuration":
        """Binary configuration, by fraction or by additive bias."""
        if bias is not None:
            if (n + bias) % 2 != 0:
                bias += 1
            c1 = (n + bias) // 2
        else:
            c1 = int(round(n * majority_fraction))
        c1 = min(max(c1, 0), n)
        return Configuration(np.array([c1, n - c1], dtype=_COUNT_DTYPE))

    @staticmethod
    def from_fractions(n: int, fractions: Sequence[float]) -> "Configuration":
        """Largest-remainder rounding of a fraction vector to counts."""
        f = np.asarray(fractions, dtype=float)
        if np.any(f < 0):
            raise ValueError("fractions must be non-negative")
        total = f.sum()
        if total <= 0:
            raise ValueError("fractions must not all be zero")
        raw = f / total * n
        counts = np.floor(raw).astype(_COUNT_DTYPE)
        remainder = int(n - counts.sum())
        if remainder > 0:
            frac_part = raw - counts
            top = np.argsort(frac_part)[::-1][:remainder]
            counts[top] += 1
        return Configuration(counts)

    @staticmethod
    def random(n: int, k: int, rng: np.random.Generator) -> "Configuration":
        """Uniform multinomial split of ``n`` agents over ``k`` colors."""
        counts = rng.multinomial(n, np.full(k, 1.0 / k))
        return Configuration(counts)

    # -- dunder -----------------------------------------------------------------

    def __iter__(self):
        return iter(self.counts.tolist())

    def __len__(self) -> int:
        return self.k

    def __getitem__(self, j: int) -> int:
        return int(self.counts[j])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self.counts.shape == other.counts.shape and bool(
            np.array_equal(self.counts, other.counts)
        )

    def __hash__(self) -> int:
        return hash(self.counts.tobytes())

    def __repr__(self) -> str:
        inner = ", ".join(str(int(x)) for x in self.counts[:12])
        if self.k > 12:
            inner += f", ... ({self.k} colors)"
        return f"Configuration([{inner}], n={self.n}, bias={self.bias})"
