"""Random-stream discipline for reproducible parallel experiments.

All stochastic code in :mod:`repro` receives a :class:`numpy.random.Generator`
explicitly; nothing reads global NumPy state.  Experiments that fan out over
replicas or parameter points obtain *statistically independent* child streams
via :func:`spawn_streams`, which wraps NumPy's ``SeedSequence.spawn``
machinery.  This is the standard HPC practice: one root seed per experiment,
one spawned stream per unit of work, so results are reproducible regardless
of execution order or batching.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator, Sequence

import numpy as np

__all__ = [
    "make_rng",
    "spawn_streams",
    "stream_iter",
    "derive_seed",
]


def make_rng(seed: int | np.random.Generator | np.random.SeedSequence | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned unchanged so
    callers can thread one stream through a pipeline), a
    :class:`~numpy.random.SeedSequence`, or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_streams(
    seed: int | np.random.Generator | np.random.SeedSequence | None, n: int
) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from a single root seed.

    The children are derived through ``SeedSequence.spawn`` so they are
    independent of each other *and* of the parent stream; spawning the same
    root twice yields identical children.  An existing
    :class:`~numpy.random.Generator` spawns children from its own seed
    sequence (advancing its spawn counter), so threading one generator
    through a pipeline stays deterministic end to end.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} streams")
    if isinstance(seed, np.random.Generator):
        try:
            return list(seed.spawn(n))
        except AttributeError as exc:  # pragma: no cover — numpy < 1.25
            raise TypeError(
                "spawning child streams from a Generator needs numpy >= 1.25; "
                "pass an int seed or a SeedSequence instead"
            ) from exc
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def stream_iter(seed: int | np.random.SeedSequence | None) -> Iterator[np.random.Generator]:
    """Yield an unbounded sequence of independent generators.

    Useful when the number of work units is not known up front (e.g. an
    adaptive sweep).  Each ``next()`` spawns one fresh child stream.
    """
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    while True:
        (child,) = root.spawn(1)
        yield np.random.default_rng(child)


def derive_seed(root_seed: int | None, *path: int | str) -> np.random.SeedSequence:
    """Derive a named sub-seed deterministically from a root seed.

    ``path`` components (experiment id, sweep index, replica index, ...) are
    hashed into the entropy pool, so distinct paths give independent streams
    and re-running with the same path reproduces the stream exactly.

    Each component is fed to the hash with a type tag and a length prefix,
    so the encoding is injective: ``("ab",)`` vs ``("a", "b")``, ``("a",)``
    vs ``(97,)`` and ``-1`` vs ``0xFFFFFFFF`` all map to distinct entropy
    (the undelimited concatenation used previously collided on all three).
    """
    hasher = hashlib.sha256()
    for part in path:
        if isinstance(part, str):
            tag, data = b"s", part.encode("utf-8")
        elif isinstance(part, (int, np.integer)) and not isinstance(part, bool):
            tag, data = b"i", str(int(part)).encode("ascii")
        else:
            raise TypeError(f"path components must be int or str, got {part!r}")
        hasher.update(tag)
        hasher.update(len(data).to_bytes(8, "big"))
        hasher.update(data)
    digest = hasher.digest()
    words = [int.from_bytes(digest[i : i + 4], "big") for i in range(0, len(digest), 4)]
    entropy: Sequence[int] = [root_seed if root_seed is not None else 0, *words]
    return np.random.SeedSequence(entropy)
