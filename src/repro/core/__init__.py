"""Core substrate: configurations, dynamics zoo, adversaries, process runner."""

from .adversary import (
    Adversary,
    BalancingAdversary,
    RandomAdversary,
    ReviveAdversary,
    TargetedAdversary,
)
from .config import Configuration
from .dynamics import CountsDynamics, Dynamics
from .majority import HPlurality, ThreeMajority, TwoSampleUniform, three_majority_law
from .median import MedianDynamics
from .population import (
    PairwiseProtocol,
    PairwiseVoter,
    PopulationProcess,
    PopulationResult,
    UndecidedPopulation,
)
from .process import EnsembleResult, ProcessResult, run_ensemble, run_process
from .rng import derive_seed, make_rng, spawn_streams, stream_iter
from .threeinput import (
    DISTINCT_PATTERNS,
    PAIR_PATTERNS,
    ThreeInputRule,
    all_position_rules,
    first_rule,
    majority_rule,
    majority_uniform_rule,
    max_rule,
    median_rule,
    min_rule,
    skewed_rule,
)
from .undecided import UndecidedState
from .voter import TwoChoices, Voter

__all__ = [
    "Adversary",
    "BalancingAdversary",
    "Configuration",
    "CountsDynamics",
    "DISTINCT_PATTERNS",
    "Dynamics",
    "EnsembleResult",
    "HPlurality",
    "MedianDynamics",
    "PairwiseProtocol",
    "PairwiseVoter",
    "PopulationProcess",
    "PopulationResult",
    "PAIR_PATTERNS",
    "ProcessResult",
    "RandomAdversary",
    "ReviveAdversary",
    "TargetedAdversary",
    "ThreeInputRule",
    "ThreeMajority",
    "TwoChoices",
    "TwoSampleUniform",
    "UndecidedPopulation",
    "UndecidedState",
    "Voter",
    "all_position_rules",
    "derive_seed",
    "first_rule",
    "majority_rule",
    "majority_uniform_rule",
    "make_rng",
    "max_rule",
    "median_rule",
    "min_rule",
    "run_ensemble",
    "run_process",
    "skewed_rule",
    "spawn_streams",
    "stream_iter",
    "three_majority_law",
]
