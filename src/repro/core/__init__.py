"""Core substrate: configurations, dynamics zoo, adversaries, process runner."""

from .adversary import (
    Adversary,
    BalancingAdversary,
    RandomAdversary,
    ReviveAdversary,
    TargetedAdversary,
)
from .config import Configuration
from .dynamics import CountsDynamics, Dynamics
from .majority import HPlurality, ThreeMajority, TwoSampleUniform, three_majority_law
from .median import MedianDynamics
from .metrics import Metric, RecordSpec, TraceSet, as_record_spec, stack_traces
from .population import (
    PairwiseProtocol,
    PairwiseVoter,
    PopulationProcess,
    PopulationResult,
    UndecidedPopulation,
)
from .process import (
    ENGINE_SCHEMA_VERSION,
    ENSEMBLE_ENGINES,
    EnsembleResult,
    ProcessResult,
    run_ensemble,
    run_process,
    sparse_ineligibility,
)
from .registry import ADVERSARIES, DYNAMICS, METRICS, STOPPING, TOPOLOGIES, WORKLOADS, Registry
from .rng import derive_seed, make_rng, spawn_streams, stream_iter
from .stopping import (
    AnyOfStop,
    BiasThresholdStop,
    MetricThresholdStop,
    MonochromaticStop,
    PluralityFractionStop,
    RoundBudgetStop,
    StoppingRule,
    stopping_from_dict,
)
from .support import compact_counts, scatter_counts, union_support
from .threeinput import (
    DISTINCT_PATTERNS,
    PAIR_PATTERNS,
    ThreeInputRule,
    all_position_rules,
    first_rule,
    majority_rule,
    majority_uniform_rule,
    max_rule,
    median_rule,
    min_rule,
    skewed_rule,
    three_input_rule,
)
from .undecided import UndecidedState
from .voter import TwoChoices, Voter

__all__ = [
    "ADVERSARIES",
    "Adversary",
    "AnyOfStop",
    "BalancingAdversary",
    "BiasThresholdStop",
    "Configuration",
    "CountsDynamics",
    "DISTINCT_PATTERNS",
    "DYNAMICS",
    "Dynamics",
    "ENGINE_SCHEMA_VERSION",
    "ENSEMBLE_ENGINES",
    "EnsembleResult",
    "HPlurality",
    "METRICS",
    "TOPOLOGIES",
    "MedianDynamics",
    "Metric",
    "MetricThresholdStop",
    "MonochromaticStop",
    "PairwiseProtocol",
    "PairwiseVoter",
    "PopulationProcess",
    "PopulationResult",
    "PAIR_PATTERNS",
    "PluralityFractionStop",
    "ProcessResult",
    "RandomAdversary",
    "RecordSpec",
    "Registry",
    "ReviveAdversary",
    "RoundBudgetStop",
    "STOPPING",
    "StoppingRule",
    "TraceSet",
    "TargetedAdversary",
    "ThreeInputRule",
    "ThreeMajority",
    "WORKLOADS",
    "TwoChoices",
    "TwoSampleUniform",
    "UndecidedPopulation",
    "UndecidedState",
    "Voter",
    "all_position_rules",
    "as_record_spec",
    "compact_counts",
    "derive_seed",
    "first_rule",
    "majority_rule",
    "majority_uniform_rule",
    "make_rng",
    "max_rule",
    "median_rule",
    "min_rule",
    "run_ensemble",
    "run_process",
    "scatter_counts",
    "skewed_rule",
    "sparse_ineligibility",
    "spawn_streams",
    "stack_traces",
    "stopping_from_dict",
    "stream_iter",
    "union_support",
    "three_input_rule",
    "three_majority_law",
]
