"""Agent-level simulation of plurality dynamics on arbitrary topologies.

On a general graph the configuration counts are no longer a Markov chain —
*where* each color sits matters — so the simulator tracks the full color
vector (one entry per agent).  The update per round is fully vectorized:

1. every agent draws ``h`` uniform picks from its CSR neighborhood
   (:meth:`~repro.graphs.topology.Topology.sample_neighbors`);
2. the picks are gathered into colors and reduced row-wise (plurality with
   uniform tie-break, or any :class:`~repro.core.threeinput.ThreeInputRule`).

On the clique-with-self-loops topology this reproduces the paper's process
exactly, which the test suite uses to cross-validate the counts-level
engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import Configuration
from ..core.metrics import RecordSpec
from ..core.rng import make_rng
from ..core.samplers import row_plurality
from ..core.threeinput import ThreeInputRule
from .ensemble import GraphKernel, run_graph_colors
from .topology import Topology

__all__ = ["GraphState", "GraphPluralityProcess", "random_coloring"]


def random_coloring(
    topology: Topology, configuration: Configuration, rng: np.random.Generator
) -> np.ndarray:
    """Assign the configuration's counts to uniformly random agents."""
    if configuration.n != topology.n:
        raise ValueError(
            f"configuration has {configuration.n} agents, topology has {topology.n}"
        )
    colors = np.repeat(
        np.arange(configuration.k, dtype=np.int64), configuration.counts
    )
    rng.shuffle(colors)
    return colors


@dataclass
class GraphState:
    """A snapshot of the per-agent colors plus derived counts."""

    colors: np.ndarray
    k: int

    def counts(self) -> np.ndarray:
        return np.bincount(self.colors, minlength=self.k).astype(np.int64)

    def configuration(self) -> Configuration:
        return Configuration(self.counts())

    @property
    def is_monochromatic(self) -> bool:
        return bool((self.colors == self.colors[0]).all())


class GraphPluralityProcess:
    """h-plurality (or a 3-input rule) on an arbitrary topology.

    Parameters
    ----------
    topology:
        Sampling pools per agent (include self-loops for the paper's model).
    h:
        Neighbor samples per agent per round.  Ignored when ``rule`` is
        given (3-input rules always draw 3 samples).
    rule:
        Optional :class:`ThreeInputRule` applied to the 3-sample columns
        instead of the plurality reduction.
    """

    def __init__(self, topology: Topology, h: int = 3, rule: ThreeInputRule | None = None):
        if rule is not None:
            h = 3
        if h < 1:
            raise ValueError("h must be >= 1")
        self.topology = topology
        self.h = int(h)
        self.rule = rule

    def step(self, colors: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        """One synchronous round; returns the new per-agent color vector."""
        colors = np.asarray(colors, dtype=np.int64)
        if colors.size != self.topology.n:
            raise ValueError("color vector does not match topology size")
        picks = self.topology.sample_neighbors(self.h, rng)
        seen = colors[picks]
        if self.rule is not None:
            return self.rule.apply(seen[:, 0], seen[:, 1], seen[:, 2], rng)
        if self.h == 1:
            return seen[:, 0]
        return row_plurality(seen, k, rng)

    def kernel(self, k: int) -> GraphKernel:
        """This process's per-agent rule as a shared-engine kernel."""
        if self.rule is not None:
            rule = self.rule
            return GraphKernel(
                h=3,
                reduce=lambda own, seen, rng: rule.apply(
                    seen[:, 0], seen[:, 1], seen[:, 2], rng
                ),
                consumes_rng=rule.distinct_choice == "uniform",
            )
        if self.h == 1:
            return GraphKernel(h=1, reduce=lambda own, seen, rng: seen[:, 0], consumes_rng=False)
        return GraphKernel(
            h=self.h,
            reduce=lambda own, seen, rng: row_plurality(seen, k, rng),
            consumes_rng=True,
        )

    def run(
        self,
        initial: GraphState | np.ndarray,
        *,
        k: int | None = None,
        max_rounds: int = 100_000,
        rng: int | np.random.Generator | None = None,
        record_counts: bool = False,
    ) -> "GraphProcessResult":
        """Run to consensus or the round budget.

        .. deprecated::
            Thin shim over the shared engine
            (:func:`~repro.graphs.ensemble.run_graph_colors`): prefer a
            :class:`~repro.scenario.ScenarioSpec` with a ``topology``
            field, or :func:`~repro.graphs.ensemble.run_graph_process`,
            which return the standard result/trace types.  Kept because
            it accepts an explicit color vector.
        """
        generator = make_rng(rng)
        if isinstance(initial, GraphState):
            colors = initial.colors.copy()
            k = initial.k
        else:
            colors = np.asarray(initial, dtype=np.int64).copy()
            if k is None:
                k = int(colors.max()) + 1
        record = RecordSpec(metrics=("counts",), every=1) if record_counts else None
        result, final_colors = run_graph_colors(
            colors,
            k,
            self.kernel(k),
            self.topology,
            max_rounds=max_rounds,
            stopping=None,
            record=record,
            generator=generator,
        )
        return GraphProcessResult(
            converged=result.converged,
            winner=result.winner,
            rounds=result.rounds,
            plurality_color=result.plurality_color,
            final_state=GraphState(final_colors, k),
            counts_history=result.trace.replica(0, "counts") if record_counts else None,
        )


@dataclass
class GraphProcessResult:
    """Outcome of a graph-level run (mirrors :class:`ProcessResult`)."""

    converged: bool
    winner: int | None
    rounds: int
    plurality_color: int
    final_state: GraphState
    counts_history: np.ndarray | None = None

    @property
    def plurality_won(self) -> bool:
        return self.converged and self.winner == self.plurality_color
