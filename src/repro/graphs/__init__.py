"""General-graph substrate (extension beyond the paper's clique).

Topologies are CSR-packed (:mod:`~repro.graphs.topology`, registered in
:data:`~repro.core.registry.TOPOLOGIES`); the replica-batched engine
(:mod:`~repro.graphs.ensemble`) runs them through the same
spec → engine → trace → cache stack as the clique runners.
"""

from .agentsim import GraphPluralityProcess, GraphProcessResult, GraphState, random_coloring
from .ensemble import (
    GraphKernel,
    graph_ineligibility,
    graph_kernel,
    run_graph_ensemble,
    run_graph_process,
)
from .topology import (
    Topology,
    barbell,
    clique,
    complete_bipartite,
    cycle,
    erdos_renyi,
    random_regular,
    torus,
)

__all__ = [
    "GraphKernel",
    "GraphPluralityProcess",
    "GraphProcessResult",
    "GraphState",
    "Topology",
    "barbell",
    "clique",
    "complete_bipartite",
    "cycle",
    "erdos_renyi",
    "graph_ineligibility",
    "graph_kernel",
    "random_coloring",
    "random_regular",
    "run_graph_ensemble",
    "run_graph_process",
    "torus",
]
