"""General-graph agent-level substrate (extension beyond the paper's clique)."""

from .agentsim import GraphPluralityProcess, GraphProcessResult, GraphState, random_coloring
from .topology import (
    Topology,
    barbell,
    clique,
    complete_bipartite,
    cycle,
    erdos_renyi,
    random_regular,
    torus,
)

__all__ = [
    "GraphPluralityProcess",
    "GraphProcessResult",
    "GraphState",
    "Topology",
    "barbell",
    "clique",
    "complete_bipartite",
    "cycle",
    "erdos_renyi",
    "random_coloring",
    "random_regular",
    "torus",
]
