"""Replica-batched graph engine: the general-graph analogue of the runners.

On a general graph the counts are not a Markov chain — *where* each color
sits matters — so the state of a replica is its full ``(n,)`` color vector
and an ensemble is an ``(R, n)`` color matrix.  This module steps that
matrix in lock-step, mirroring the counts-level
:func:`~repro.core.process._run_ensemble_batched` contract exactly:

* **one vectorized CSR gather per round** — per-replica neighbor draws are
  cheap bounded-integer calls on each replica's own stream, but the color
  gather, the per-agent reduction (for rules that consume no tie-break
  randomness), the per-replica histograms and the absorption scan all run
  batched across the live replicas;
* **per-replica randomness** — every replica consumes its spawned stream
  in exactly the order the sequential single-replica run does (coloring,
  then per round: neighbor picks, then any tie-break draws), so
  ``batch=True`` and ``batch=False`` are **bit-identical** at equal seed;
* **shared observation/stopping machinery** — per-replica color histograms
  feed :meth:`StoppingRule.met_many` / ``fired_many`` and the
  :class:`~repro.core.metrics.TraceRecorder`, with run_process's t=0
  evaluation, record-before-retire ordering and ``stopped_by`` vocabulary,
  so a graph run returns a standard :class:`~repro.core.process.EnsembleResult`
  that serializes through the serve cache unchanged.

A dynamics participates through a :class:`GraphKernel` — its per-agent
decision rule ``f(own, seen) -> color`` lifted to aligned arrays.  Rules
whose clique engines already are per-agent laws (3-majority, the 3-input
family, h-plurality, voter, two-choices, median, 2-sample-uniform) map
directly; dynamics carrying non-color state (undecided-state) have no
graph kernel and are rejected with a reason (:func:`graph_ineligibility`).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.config import Configuration
from ..core.dynamics import Dynamics
from ..core.majority import HPlurality, ThreeMajority, TwoSampleUniform
from ..core.median import MedianDynamics
from ..core.metrics import RecordSpec, TraceRecorder, stack_traces
from ..core.process import (
    DEFAULT_PROCESS_RECORD,
    _MONO,
    _resolve_record,
    _resolve_stopping,
    EnsembleResult,
    ProcessResult,
)
from ..core.rng import make_rng, spawn_streams
from ..core.samplers import row_counts_dense, row_plurality
from ..core.stopping import BUDGET_EXHAUSTED, StoppingRule
from ..core.threeinput import ThreeInputRule
from ..core.voter import TwoChoices, Voter
from .topology import Topology

__all__ = [
    "GraphKernel",
    "graph_kernel",
    "graph_ineligibility",
    "run_graph_process",
    "run_graph_ensemble",
]


@dataclass(frozen=True)
class GraphKernel:
    """A dynamics' per-agent decision rule, lifted to aligned arrays.

    ``reduce(own, seen, rng)`` maps the agents' current colors ``(rows,)``
    and their gathered neighbor samples ``(rows, h)`` to the next colors.
    ``consumes_rng`` marks rules whose tie-breaking draws from the stream
    (with data-dependent draw sizes): those reduce replica-by-replica on
    the replica's own stream so batched and sequential runs stay
    bit-identical; rng-free rules reduce the whole flattened batch in one
    elementwise call.
    """

    h: int
    reduce: Callable[[np.ndarray, np.ndarray, np.random.Generator | None], np.ndarray]
    consumes_rng: bool


def _copy_first(own: np.ndarray, seen: np.ndarray, rng) -> np.ndarray:
    return seen[:, 0]


def graph_ineligibility(dynamics: Dynamics) -> str | None:
    """Why this dynamics cannot run on the graph engine (None when it can).

    The engine needs a pure per-agent color rule over (own color, sampled
    neighbor colors); dynamics carrying extra non-color state, or without
    a known per-agent form, are rejected with a human-readable reason.
    """
    if getattr(dynamics, "uses_extra_state", False):
        return f"dynamics {dynamics.name!r} carries extra non-color state"
    if isinstance(
        dynamics,
        (
            ThreeMajority,
            ThreeInputRule,
            HPlurality,
            TwoSampleUniform,
            Voter,
            TwoChoices,
            MedianDynamics,
        ),
    ):
        return None
    return f"dynamics {dynamics.name!r} has no per-agent graph kernel"


def graph_kernel(dynamics: Dynamics, k: int) -> GraphKernel:
    """Build the :class:`GraphKernel` for ``dynamics`` (ValueError if none).

    The kernels reuse the dynamics' own agent-level reductions
    (:meth:`ThreeMajority._reduce_triples`, :meth:`ThreeInputRule.apply`,
    :func:`~repro.core.samplers.row_plurality`), so the graph engine on
    the clique topology is the clique agent engine modulo sampling pools —
    the property the cross-validation tests pin down.
    """
    reason = graph_ineligibility(dynamics)
    if reason is not None:
        raise ValueError(f"graph engine unavailable: {reason}")
    if isinstance(dynamics, ThreeMajority):
        if dynamics.tie_break == "uniform":
            return GraphKernel(
                h=3,
                reduce=lambda own, seen, rng: dynamics._reduce_triples(seen, rng),
                consumes_rng=True,
            )
        # First-sample tie-break collapses to a single select: if the b/c
        # pair agrees it wins; any pair involving a elects a, as does the
        # all-distinct default — elementwise identical to _reduce_triples.
        return GraphKernel(
            h=3,
            reduce=lambda own, seen, rng: np.where(
                seen[:, 1] == seen[:, 2], seen[:, 1], seen[:, 0]
            ),
            consumes_rng=False,
        )
    if isinstance(dynamics, ThreeInputRule):
        return GraphKernel(
            h=3,
            reduce=lambda own, seen, rng: dynamics.apply(
                seen[:, 0], seen[:, 1], seen[:, 2], rng
            ),
            consumes_rng=dynamics.distinct_choice == "uniform",
        )
    if isinstance(dynamics, HPlurality):
        if dynamics.h == 1:
            return GraphKernel(h=1, reduce=_copy_first, consumes_rng=False)
        return GraphKernel(
            h=dynamics.h,
            reduce=lambda own, seen, rng: row_plurality(seen, k, rng),
            consumes_rng=True,
        )
    if isinstance(dynamics, TwoSampleUniform):
        return GraphKernel(
            h=2,
            reduce=lambda own, seen, rng: row_plurality(seen, k, rng),
            consumes_rng=True,
        )
    if isinstance(dynamics, Voter):
        return GraphKernel(h=1, reduce=_copy_first, consumes_rng=False)
    if isinstance(dynamics, TwoChoices):
        return GraphKernel(
            h=2,
            reduce=lambda own, seen, rng: np.where(seen[:, 0] == seen[:, 1], seen[:, 0], own),
            consumes_rng=False,
        )
    # MedianDynamics: own value + two samples; the median of three is the
    # middle order statistic, computed branch-free.
    def _median(own: np.ndarray, seen: np.ndarray, rng) -> np.ndarray:
        a, b, c = own, seen[:, 0], seen[:, 1]
        return np.maximum(np.minimum(a, b), np.minimum(np.maximum(a, b), c))

    return GraphKernel(h=2, reduce=_median, consumes_rng=False)


def _initial_colors(
    topology: Topology, initial: Configuration, generator: np.random.Generator
) -> np.ndarray:
    from .agentsim import random_coloring  # local: agentsim imports this module

    return random_coloring(topology, initial, generator)


def run_graph_colors(
    colors: np.ndarray,
    k: int,
    kernel: GraphKernel,
    topology: Topology,
    *,
    max_rounds: int,
    stopping: StoppingRule | None,
    record: RecordSpec | None,
    generator: np.random.Generator,
) -> tuple[ProcessResult, np.ndarray]:
    """One sequential graph trajectory from an explicit color vector.

    Shares run_process's exact control flow (t=0 evaluation, stop-label
    vocabulary, record cadence) and consumes the stream in the same
    per-round order as one row of the batched engine — the bit-identity
    contract.  Returns the result plus the final color vector (the
    deprecation shim still exposes per-agent state).
    """
    colors = np.asarray(colors, dtype=np.int64)
    n = topology.n
    if colors.size != n:
        raise ValueError("color vector does not match topology size")
    counts = np.bincount(colors, minlength=k).astype(np.int64)
    plurality_color = int(np.argmax(counts))
    recorder = TraceRecorder(record, n=n, k=k, replicas=1) if record is not None else None
    if recorder is not None:
        recorder.observe(0, counts[None, :])
    rounds = 0
    converged = bool(counts.max() == n)
    stopped_by = _MONO if converged else None
    if stopped_by is None and stopping is not None:
        stopped_by = stopping.fired(counts, n, 0)
    while stopped_by is None and rounds < max_rounds:
        picks = topology.sample_neighbors(kernel.h, generator)
        seen = colors[picks]
        colors = kernel.reduce(colors, seen, generator)
        counts = np.bincount(colors, minlength=k).astype(np.int64)
        rounds += 1
        if recorder is not None:
            recorder.observe(rounds, counts[None, :])
        converged = bool(counts.max() == n)
        if converged:
            stopped_by = _MONO
        elif stopping is not None:
            stopped_by = stopping.fired(counts, n, rounds)
    result = ProcessResult(
        converged=converged,
        winner=int(colors[0]) if converged else None,
        rounds=rounds,
        plurality_color=plurality_color,
        final_counts=counts,
        trace=recorder.finish() if recorder is not None else None,
        stopped_by=stopped_by if stopped_by is not None else BUDGET_EXHAUSTED,
    )
    return result, colors


def run_graph_process(
    dynamics: Dynamics,
    topology: Topology,
    initial: Configuration,
    *,
    max_rounds: int = 1_000_000,
    record: RecordSpec | Mapping | Sequence[str] | str | None = None,
    record_trajectory: bool = False,
    stopping: StoppingRule | Mapping | None = None,
    rng: int | np.random.Generator | None = None,
) -> ProcessResult:
    """Run one graph trajectory; the general-graph analogue of run_process.

    The initial counts are scattered onto uniformly random agents
    (:func:`~repro.graphs.agentsim.random_coloring`) on the same stream the
    rounds then consume.  Defaults mirror run_process, including the
    default bias/plurality record.
    """
    stopping = _resolve_stopping(stopping, None)
    record = _resolve_record(record, record_trajectory, default=DEFAULT_PROCESS_RECORD)
    kernel = graph_kernel(dynamics, initial.k)
    generator = make_rng(rng)
    colors = _initial_colors(topology, initial, generator)
    result, _ = run_graph_colors(
        colors,
        initial.k,
        kernel,
        topology,
        max_rounds=max_rounds,
        stopping=stopping,
        record=record,
        generator=generator,
    )
    return result


def run_graph_ensemble(
    dynamics: Dynamics,
    topology: Topology,
    initial: Configuration,
    replicas: int,
    *,
    max_rounds: int = 1_000_000,
    record: RecordSpec | Mapping | Sequence[str] | str | None = None,
    stopping: StoppingRule | Mapping | None = None,
    rng: int | np.random.Generator | None = None,
    batch: bool = True,
) -> EnsembleResult:
    """Run ``replicas`` independent graph trajectories in lock-step.

    With ``batch=True`` the ``(R, n)`` color matrix advances through one
    batched gather/reduce per round, replicas retiring as they absorb or
    as ``stopping`` fires (labels in ``EnsembleResult.stopped_by``, same
    vocabulary as the counts engines).  With ``batch=False`` each replica
    runs sequentially on its own spawned stream — bit-identical to the
    batched path at equal seed, which the tests assert.
    """
    if replicas <= 0:
        raise ValueError("need at least one replica")
    k = initial.k
    n = topology.n
    if initial.n != n:
        raise ValueError(f"configuration has {initial.n} agents, topology has {n}")
    stopping = _resolve_stopping(stopping, None)
    record = _resolve_record(record, False, default=None)
    kernel = graph_kernel(dynamics, k)
    plurality_color = int(np.argmax(initial.counts))
    gens = spawn_streams(rng, replicas)

    if not batch:
        outcomes = []
        for gen in gens:
            colors0 = _initial_colors(topology, initial, gen)
            result, _ = run_graph_colors(
                colors0,
                k,
                kernel,
                topology,
                max_rounds=max_rounds,
                stopping=stopping,
                # An explicitly empty record skips the default bookkeeping;
                # the traces are only kept when a record was requested.
                record=record if record is not None else RecordSpec(),
                generator=gen,
            )
            outcomes.append(result)
        return EnsembleResult(
            rounds=np.array([r.rounds for r in outcomes], dtype=np.int64),
            winners=np.array(
                [r.winner if r.winner is not None else -1 for r in outcomes], dtype=np.int64
            ),
            converged=np.array([r.converged for r in outcomes], dtype=bool),
            plurality_color=plurality_color,
            max_rounds=max_rounds,
            final_counts=np.stack([r.final_counts for r in outcomes]),
            stopped_by=np.array([r.stopped_by for r in outcomes], dtype=object),
            trace=stack_traces([r.trace for r in outcomes]) if record is not None else None,
        )

    colors = np.empty((replicas, n), dtype=np.int64)
    for row, gen in enumerate(gens):
        colors[row] = _initial_colors(topology, initial, gen)

    rounds = np.full(replicas, max_rounds, dtype=np.int64)
    winners = np.full(replicas, -1, dtype=np.int64)
    converged = np.zeros(replicas, dtype=bool)
    final_counts = np.tile(initial.counts, (replicas, 1))
    stopped_by = np.full(replicas, None, dtype=object)
    recorder = (
        TraceRecorder(record, n=n, k=k, replicas=replicas) if record is not None else None
    )

    def absorb(live_idx: np.ndarray, counts: np.ndarray, t: int) -> np.ndarray:
        peak = counts.max(axis=1)
        mono = peak == n
        if mono.any():
            idx = live_idx[mono]
            converged[idx] = True
            rounds[idx] = t
            winners[idx] = np.argmax(counts[mono], axis=1)
            final_counts[idx] = counts[mono]
            stopped_by[idx] = _MONO
        return ~mono

    def cull_stopped(
        live_idx: np.ndarray, colors: np.ndarray, counts: np.ndarray, t: int
    ) -> tuple[np.ndarray, np.ndarray]:
        hit = stopping.met_many(counts, n, t)
        if np.any(hit):
            idx = live_idx[hit]
            rounds[idx] = t
            final_counts[idx] = counts[hit]
            stopped_by[idx] = stopping.fired_many(counts[hit], n, t)
            live_idx = live_idx[~hit]
            colors = colors[~hit]
        return live_idx, colors

    live_idx = np.arange(replicas)
    counts = row_counts_dense(colors, k)
    if recorder is not None:
        recorder.observe(0, counts, live_idx)
    alive = absorb(live_idx, counts, 0)
    live_idx = live_idx[alive]
    colors = colors[alive]
    if stopping is not None and live_idx.size:
        live_idx, colors = cull_stopped(live_idx, colors, counts[alive], 0)

    h = kernel.h
    t = 0
    while live_idx.size and t < max_rounds:
        t += 1
        live = live_idx.size
        # Per-replica draws on each replica's own stream (the bit-identity
        # contract); everything after is batched across live replicas.
        # Picks are stored pre-offset into the flattened (live * n,) color
        # matrix so the gather is one ``take`` instead of a fancy triple
        # index (~3x cheaper at this shape).
        picks = np.empty((live, n, h), dtype=np.int64)
        for row, replica in enumerate(live_idx):
            np.add(topology.sample_neighbors(h, gens[replica]), row * n, out=picks[row])
        seen = colors.reshape(-1).take(picks)
        if kernel.consumes_rng:
            new_colors = np.empty_like(colors)
            for row, replica in enumerate(live_idx):
                new_colors[row] = kernel.reduce(colors[row], seen[row], gens[replica])
            colors = new_colors
        else:
            colors = kernel.reduce(
                colors.reshape(-1), seen.reshape(-1, h), None
            ).reshape(live, n)
        counts = row_counts_dense(colors, k)
        # Record before retiring anyone, as in the counts engines.
        if recorder is not None:
            recorder.observe(t, counts, live_idx)
        alive = absorb(live_idx, counts, t)
        if not np.all(alive):
            live_idx = live_idx[alive]
            colors = colors[alive]
            counts = counts[alive]
        if stopping is not None and live_idx.size:
            live_idx, colors = cull_stopped(live_idx, colors, counts, t)

    if live_idx.size:
        final_counts[live_idx] = row_counts_dense(colors, k)
    stopped_by[np.equal(stopped_by, None)] = BUDGET_EXHAUSTED

    return EnsembleResult(
        rounds=rounds,
        winners=winners,
        converged=converged,
        plurality_color=plurality_color,
        max_rounds=max_rounds,
        final_counts=final_counts,
        stopped_by=stopped_by,
        trace=recorder.finish() if recorder is not None else None,
    )
