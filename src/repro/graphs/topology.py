"""Network topologies packed for vectorized neighbor sampling.

The paper's model is the clique, where anonymous counts suffice.  On a
general graph each agent samples among *its own* neighbors, so the
simulator needs per-agent neighborhoods.  :class:`Topology` stores them in
CSR form (``offsets``/``neighbors`` arrays) so that drawing ``h`` uniform
neighbor samples for *all* agents is two vectorized gathers — no Python
loop over nodes.

Per the paper's convention the sampling pool of an agent *includes the
agent itself*; :func:`Topology.from_networkx` therefore adds a self-loop to
every node by default (``include_self=True``).

Every generator is also registered in
:data:`~repro.core.registry.TOPOLOGIES` under the uniform scenario-facing
signature ``fn(n, **params) -> Topology`` (``repro topologies`` lists
them), which is how a :class:`~repro.scenario.ScenarioSpec`'s ``topology``
/ ``topology_params`` fields resolve.  The randomised generators take an
explicit ``seed`` parameter (default 0) so a spec's topology is a pure
function of its parameters — the property the content-addressed result
cache relies on.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core.registry import TOPOLOGIES

__all__ = [
    "Topology",
    "clique",
    "cycle",
    "torus",
    "random_regular",
    "erdos_renyi",
    "complete_bipartite",
    "barbell",
]


class Topology:
    """CSR-packed undirected graph with per-node sampling pools."""

    def __init__(self, offsets: np.ndarray, neighbors: np.ndarray, name: str = "graph"):
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.neighbors = np.asarray(neighbors, dtype=np.int64)
        self.name = name
        if self.offsets.ndim != 1 or self.offsets[0] != 0:
            raise ValueError("offsets must be 1-D and start at 0")
        if self.offsets[-1] != self.neighbors.size:
            raise ValueError("offsets[-1] must equal len(neighbors)")
        if np.any(np.diff(self.offsets) <= 0):
            raise ValueError("every node needs a non-empty sampling pool")
        self.degrees = np.diff(self.offsets)
        self._regular = bool(np.all(self.degrees == self.degrees[0]))

    @property
    def n(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def is_regular(self) -> bool:
        return self._regular

    @classmethod
    def from_networkx(cls, graph: nx.Graph, include_self: bool = True, name: str | None = None) -> "Topology":
        """Pack a networkx graph; nodes must be 0..n-1 or are relabelled.

        The CSR build is a sorted-COO pass over the edge arrays (both
        directions of every undirected edge, plus the self-loops): degrees
        via ``bincount``, offsets via its cumulative sum, neighbors sorted
        by ``(node, neighbor)`` — each node's pool comes out ascending,
        the same ordering contract as the historical per-node loop.
        """
        if graph.number_of_nodes() == 0:
            raise ValueError("empty graph")
        graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
        n = graph.number_of_nodes()
        edges = np.asarray(list(graph.edges()), dtype=np.int64).reshape(-1, 2)
        loop = edges[:, 0] == edges[:, 1]
        plain = edges[~loop]
        src_parts = [plain[:, 0], plain[:, 1], edges[loop, 0]]
        dst_parts = [plain[:, 1], plain[:, 0], edges[loop, 1]]
        if include_self:
            has_loop = np.zeros(n, dtype=bool)
            has_loop[edges[loop, 0]] = True
            missing = np.flatnonzero(~has_loop)
            src_parts.append(missing)
            dst_parts.append(missing)
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        degrees = np.bincount(src, minlength=n) if src.size else np.zeros(n, dtype=np.int64)
        if src.size == 0 or degrees.min() == 0:
            empty = int(np.flatnonzero(degrees == 0)[0]) if n else 0
            raise ValueError(f"node {empty} has an empty sampling pool")
        order = np.lexsort((dst, src))
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        return cls(offsets, dst[order], name=name or f"nx-{type(graph).__name__}")

    def sample_neighbors(self, h: int, rng: np.random.Generator) -> np.ndarray:
        """``(n, h)`` matrix: ``h`` uniform (with-replacement) neighbor picks per node.

        Draws are bounded-integer (`Generator.integers`, exclusive high),
        so each pick is exactly uniform over the node's pool and the pool
        index can never reach the row degree — unlike the float-scaling
        ``(u * deg).astype(int64)`` idiom this replaced, which was both
        slightly biased and able to round up to ``deg``.
        """
        if h < 1:
            raise ValueError("h must be >= 1")
        start = self.offsets[:-1]
        if self._regular:
            # Scalar bound: one Lemire rejection stream instead of the
            # slower per-element broadcast-bound path.
            idx = rng.integers(0, int(self.degrees[0]), size=(self.n, h), dtype=np.int64)
        else:
            idx = rng.integers(0, self.degrees[:, None], size=(self.n, h), dtype=np.int64)
        np.add(idx, start[:, None], out=idx)
        return self.neighbors.take(idx)

    def __repr__(self) -> str:
        return f"Topology(name={self.name!r}, n={self.n}, edges~{self.neighbors.size // 2})"


def clique(n: int) -> Topology:
    """Complete graph with self-loops — the paper's model."""
    if n < 1:
        raise ValueError("clique needs n >= 1")
    offsets = np.arange(n + 1, dtype=np.int64) * n
    neighbors = np.tile(np.arange(n, dtype=np.int64), n)
    return Topology(offsets, neighbors, name=f"clique-{n}")


def cycle(n: int) -> Topology:
    return Topology.from_networkx(nx.cycle_graph(n), name=f"cycle-{n}")


def torus(rows: int, cols: int) -> Topology:
    g = nx.grid_2d_graph(rows, cols, periodic=True)
    return Topology.from_networkx(g, name=f"torus-{rows}x{cols}")


def random_regular(n: int, d: int, seed: int | None = None) -> Topology:
    g = nx.random_regular_graph(d, n, seed=seed)
    return Topology.from_networkx(g, name=f"rr-{d}-{n}")


def erdos_renyi(n: int, p: float, seed: int | None = None) -> Topology:
    """G(n, p); isolated nodes keep a self-loop-only pool."""
    g = nx.fast_gnp_random_graph(n, p, seed=seed)
    return Topology.from_networkx(g, name=f"gnp-{n}-{p}")


def complete_bipartite(a: int, b: int) -> Topology:
    return Topology.from_networkx(nx.complete_bipartite_graph(a, b), name=f"kbb-{a}x{b}")


def barbell(m: int, path: int = 0) -> Topology:
    return Topology.from_networkx(nx.barbell_graph(m, path), name=f"barbell-{m}-{path}")


# -- scenario-facing registrations ------------------------------------------
#
# Uniform signature fn(n, **params) -> Topology, with n supplied by the
# spec.  Parameter defaults are chosen so that `topology_params={}` is
# always valid, and randomised generators key their graph on an explicit
# integer `seed` parameter — part of the spec, hence of the cache key.


def _near_square(n: int) -> tuple[int, int]:
    """Largest divisor pair (rows, cols) with rows <= cols, rows maximal."""
    rows = int(np.sqrt(n))
    while rows > 1 and n % rows:
        rows -= 1
    return rows, n // rows


@TOPOLOGIES.register("clique", summary="complete graph with self-loops (the paper's model)")
def _topology_clique(n: int) -> Topology:
    return clique(n)


@TOPOLOGIES.register("cycle", summary="ring of n nodes (diameter n/2)")
def _topology_cycle(n: int) -> Topology:
    return cycle(n)


@TOPOLOGIES.register("torus", summary="periodic rows x cols grid (near-square by default)")
def _topology_torus(n: int, rows: int | None = None, cols: int | None = None) -> Topology:
    if rows is None and cols is None:
        rows, cols = _near_square(n)
    elif rows is None:
        rows = n // int(cols)
    elif cols is None:
        cols = n // int(rows)
    rows, cols = int(rows), int(cols)
    if rows < 1 or cols < 1 or rows * cols != n:
        raise ValueError(f"torus needs rows*cols == n, got {rows}x{cols} != {n}")
    return torus(rows, cols)


@TOPOLOGIES.register("random-regular", summary="uniform random d-regular graph (expander w.h.p.)")
def _topology_random_regular(n: int, d: int = 8, seed: int = 0) -> Topology:
    return random_regular(n, int(d), seed=int(seed))


@TOPOLOGIES.register("erdos-renyi", summary="G(n, p); p defaults to 2 ln(n)/n, near the connectivity threshold")
def _topology_erdos_renyi(n: int, p: float | None = None, seed: int = 0) -> Topology:
    if p is None:
        p = min(1.0, 2.0 * np.log(max(n, 2)) / n)
    return erdos_renyi(n, float(p), seed=int(seed))


@TOPOLOGIES.register("complete-bipartite", summary="complete bipartite K_{a,n-a} (a = n//2 by default)")
def _topology_complete_bipartite(n: int, a: int | None = None) -> Topology:
    a = n // 2 if a is None else int(a)
    if not 0 < a < n:
        raise ValueError(f"complete-bipartite needs 0 < a < n, got a={a}, n={n}")
    return complete_bipartite(a, n - a)


@TOPOLOGIES.register("barbell", summary="two m-cliques joined by a path (worst-case bottleneck)")
def _topology_barbell(n: int, path: int = 0) -> Topology:
    path = int(path)
    body = n - path
    if path < 0 or body < 6 or body % 2:
        raise ValueError(
            f"barbell needs n - path even and >= 6 (two cliques of >= 3), got n={n}, path={path}"
        )
    return barbell(body // 2, path)
