"""Network topologies packed for vectorized neighbor sampling.

The paper's model is the clique, where anonymous counts suffice.  On a
general graph each agent samples among *its own* neighbors, so the
simulator needs per-agent neighborhoods.  :class:`Topology` stores them in
CSR form (``offsets``/``neighbors`` arrays) so that drawing ``h`` uniform
neighbor samples for *all* agents is two vectorized gathers — no Python
loop over nodes.

Per the paper's convention the sampling pool of an agent *includes the
agent itself*; :func:`Topology.from_networkx` therefore adds a self-loop to
every node by default (``include_self=True``).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = [
    "Topology",
    "clique",
    "cycle",
    "torus",
    "random_regular",
    "erdos_renyi",
    "complete_bipartite",
    "barbell",
]


class Topology:
    """CSR-packed undirected graph with per-node sampling pools."""

    def __init__(self, offsets: np.ndarray, neighbors: np.ndarray, name: str = "graph"):
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.neighbors = np.asarray(neighbors, dtype=np.int64)
        self.name = name
        if self.offsets.ndim != 1 or self.offsets[0] != 0:
            raise ValueError("offsets must be 1-D and start at 0")
        if self.offsets[-1] != self.neighbors.size:
            raise ValueError("offsets[-1] must equal len(neighbors)")
        if np.any(np.diff(self.offsets) <= 0):
            raise ValueError("every node needs a non-empty sampling pool")
        self.degrees = np.diff(self.offsets)

    @property
    def n(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def is_regular(self) -> bool:
        return bool(np.all(self.degrees == self.degrees[0]))

    @classmethod
    def from_networkx(cls, graph: nx.Graph, include_self: bool = True, name: str | None = None) -> "Topology":
        """Pack a networkx graph; nodes must be 0..n-1 or are relabelled."""
        if graph.number_of_nodes() == 0:
            raise ValueError("empty graph")
        graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
        n = graph.number_of_nodes()
        adj: list[np.ndarray] = []
        for u in range(n):
            nbrs = sorted(graph.neighbors(u))
            if include_self and not graph.has_edge(u, u):
                nbrs = sorted([*nbrs, u])
            if not nbrs:
                raise ValueError(f"node {u} has an empty sampling pool")
            adj.append(np.asarray(nbrs, dtype=np.int64))
        offsets = np.zeros(n + 1, dtype=np.int64)
        offsets[1:] = np.cumsum([a.size for a in adj])
        neighbors = np.concatenate(adj)
        return cls(offsets, neighbors, name=name or f"nx-{type(graph).__name__}")

    def sample_neighbors(self, h: int, rng: np.random.Generator) -> np.ndarray:
        """``(n, h)`` matrix: ``h`` uniform (with-replacement) neighbor picks per node."""
        if h < 1:
            raise ValueError("h must be >= 1")
        deg = self.degrees
        start = self.offsets[:-1]
        u = rng.random((self.n, h))
        idx = start[:, None] + (u * deg[:, None]).astype(np.int64)
        return self.neighbors[idx]

    def __repr__(self) -> str:
        return f"Topology(name={self.name!r}, n={self.n}, edges~{self.neighbors.size // 2})"


def clique(n: int) -> Topology:
    """Complete graph with self-loops — the paper's model."""
    if n < 1:
        raise ValueError("clique needs n >= 1")
    offsets = np.arange(n + 1, dtype=np.int64) * n
    neighbors = np.tile(np.arange(n, dtype=np.int64), n)
    return Topology(offsets, neighbors, name=f"clique-{n}")


def cycle(n: int) -> Topology:
    return Topology.from_networkx(nx.cycle_graph(n), name=f"cycle-{n}")


def torus(rows: int, cols: int) -> Topology:
    g = nx.grid_2d_graph(rows, cols, periodic=True)
    return Topology.from_networkx(g, name=f"torus-{rows}x{cols}")


def random_regular(n: int, d: int, seed: int | None = None) -> Topology:
    g = nx.random_regular_graph(d, n, seed=seed)
    return Topology.from_networkx(g, name=f"rr-{d}-{n}")


def erdos_renyi(n: int, p: float, seed: int | None = None) -> Topology:
    """G(n, p); isolated nodes keep a self-loop-only pool."""
    g = nx.fast_gnp_random_graph(n, p, seed=seed)
    return Topology.from_networkx(g, name=f"gnp-{n}-{p}")


def complete_bipartite(a: int, b: int) -> Topology:
    return Topology.from_networkx(nx.complete_bipartite_graph(a, b), name=f"kbb-{a}x{b}")


def barbell(m: int, path: int = 0) -> Topology:
    return Topology.from_networkx(nx.barbell_graph(m, path), name=f"barbell-{m}-{path}")
