"""Experiment suite: one module per paper claim (see DESIGN.md §4)."""

from .harness import SCALES, ExperimentSpec, SweepPoint, ensemble_at, grid, sweep
from .figures import FIGURES, figure_ids, render_figure
from .parallel import parallel_sweep
from .plotting import ascii_plot
from .registry import ALL_EXPERIMENTS, experiment_ids, get_experiment
from .results import ResultTable
from .workloads import (
    corollary3_start,
    geometric_tail,
    lemma8_start,
    lemma10_start,
    paper_biased,
    soda15_gap,
    theorem1_bias,
    theorem2_start,
    theorem4_start,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentSpec",
    "FIGURES",
    "ResultTable",
    "SCALES",
    "SweepPoint",
    "ascii_plot",
    "corollary3_start",
    "ensemble_at",
    "experiment_ids",
    "figure_ids",
    "geometric_tail",
    "get_experiment",
    "grid",
    "lemma10_start",
    "lemma8_start",
    "parallel_sweep",
    "render_figure",
    "paper_biased",
    "soda15_gap",
    "sweep",
    "theorem1_bias",
    "theorem2_start",
    "theorem4_start",
]
