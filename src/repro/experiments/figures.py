"""ASCII figures: the plots a paper would print, from experiment tables.

The original paper has no figures (pure theory); these render the shapes
its theorems describe, so a reader can *see* the scalings.  Each figure
function runs the underlying experiment(s) at the requested scale and
returns a monospace plot.

Figures:

* ``F1`` — E2: 3-majority convergence time vs k, with the λ·log n guide;
* ``F2`` — E4: doubling/consensus time vs k from balanced starts;
* ``F3`` — E6: h-plurality time vs h (log-log) with an h^-2 guide;
* ``F4`` — E7: one-round bias-decrease probability vs α = s/s_crit;
* ``F5`` — E9(c): 3-majority vs undecided-state on gap configurations;
* ``F6`` — a single-run bias trajectory through the three proof phases.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.majority import ThreeMajority
from ..core.process import run_process
from .plotting import ascii_plot
from .registry import get_experiment
from .workloads import paper_biased

__all__ = ["FIGURES", "figure_ids", "render_figure"]


def _f1_upper_bound(scale: str, seed: int) -> str:
    table = get_experiment("E2")(scale=scale, seed=seed)
    rows = [r for r in table.rows if r["sweep"] == "k"]
    ks = [float(r["k"]) for r in rows]
    measured = [float(r["median_rounds"]) for r in rows]
    predicted = [float(r["lambda_logn"]) * measured[0] / float(rows[0]["lambda_logn"]) for r in rows]
    return ascii_plot(
        {"measured": (ks, measured), "~λ·log n (scaled)": (ks, predicted)},
        logx=True,
        logy=True,
        title="F1 (Theorem 1): 3-majority rounds vs k",
        xlabel="k",
        ylabel="median rounds",
    )


def _f2_lower_bound(scale: str, seed: int) -> str:
    table = get_experiment("E4")(scale=scale, seed=seed)
    ks = [float(r["k"]) for r in table.rows]
    doubling = [float(r["median_doubling_rounds"]) for r in table.rows]
    consensus = [float(r["median_consensus_rounds"]) for r in table.rows]
    floor = [float(r["lemma6_rounds"]) for r in table.rows]
    return ascii_plot(
        {"consensus": (ks, consensus), "doubling": (ks, doubling), "Lemma6 floor": (ks, floor)},
        title="F2 (Theorem 2): rounds vs k from balanced starts",
        xlabel="k",
        ylabel="rounds",
    )


def _f3_hplurality(scale: str, seed: int) -> str:
    table = get_experiment("E6")(scale=scale, seed=seed)
    hs = [float(r["h"]) for r in table.rows]
    measured = [float(r["median_rounds"]) for r in table.rows]
    guide = [measured[0] * (hs[0] / h) ** 2 for h in hs]
    return ascii_plot(
        {"measured": (hs, measured), "h^-2 guide": (hs, guide)},
        logx=True,
        logy=True,
        title="F3 (Theorem 4): h-plurality rounds vs h (speed-up capped at h²)",
        xlabel="h",
        ylabel="median rounds",
    )


def _f4_bias_threshold(scale: str, seed: int) -> str:
    table = get_experiment("E7")(scale=scale, seed=seed)
    series: dict[str, tuple[list[float], list[float]]] = {}
    for row in table.rows:
        key = f"k={row['k']}"
        xs, ys = series.setdefault(key, ([], []))
        xs.append(float(row["alpha"]))
        ys.append(float(row["p_decrease"]))
    return ascii_plot(
        series,
        title="F4 (Lemma 10): P(one-round bias decrease) vs α = s / (√(kn)/6)",
        xlabel="alpha",
        ylabel="P(decrease)",
    )


def _f5_gap(scale: str, seed: int) -> str:
    table = get_experiment("E9")(scale=scale, seed=seed)
    series: dict[str, tuple[list[float], list[float]]] = {}
    for row in table.rows:
        if row["panel"] != "c-gap":
            continue
        n = float(str(row["params"]).split(",")[0].split("=")[1])
        xs, ys = series.setdefault(str(row["dynamics"]), ([], []))
        xs.append(n)
        ys.append(float(row["value"]))
    return ascii_plot(
        series,
        logx=True,
        title="F5 (SODA'15 gap): rounds on two-heavy + thin-tail configurations",
        xlabel="n",
        ylabel="median rounds",
    )


_F6_PARAMS = {"smoke": (20_000, 8), "small": (200_000, 16), "paper": (2_000_000, 32)}


def _f6_trajectory(scale: str, seed: int) -> str:
    n, k = _F6_PARAMS[scale]
    result = run_process(ThreeMajority(), paper_biased(n, k), rng=seed)
    bias_series = result.trace.replica(0, "bias")
    plurality_series = result.trace.replica(0, "plurality-count")
    rounds = list(range(bias_series.size))
    # Clamp to 0.5 so the log axis survives the final extinction round.
    minority = [max(float(n - p), 0.5) for p in plurality_series]
    bias = [max(float(b), 0.5) for b in bias_series]
    return ascii_plot(
        {"bias s(c)": (rounds, bias), "minority mass": (rounds, minority)},
        logy=True,
        title=f"F6 (Lemmas 3-5): one 3-majority run, n={n}, k={k}",
        xlabel="round",
        ylabel="agents",
    )


FIGURES: dict[str, tuple[str, Callable[[str, int], str]]] = {
    "F1": ("Theorem 1 scaling: rounds vs k", _f1_upper_bound),
    "F2": ("Theorem 2 scaling: rounds vs k from balanced starts", _f2_lower_bound),
    "F3": ("Theorem 4 scaling: rounds vs h", _f3_hplurality),
    "F4": ("Lemma 10 threshold: P(bias decrease) vs alpha", _f4_bias_threshold),
    "F5": ("SODA'15 gap: 3-majority vs undecided-state", _f5_gap),
    "F6": ("Single-run bias/minority trajectory", _f6_trajectory),
}


def figure_ids() -> list[str]:
    return list(FIGURES)


def render_figure(figure_id: str, scale: str = "small", seed: int = 0) -> str:
    key = figure_id.upper()
    if key not in FIGURES:
        raise KeyError(f"unknown figure {figure_id!r}; known: {', '.join(FIGURES)}")
    _, fn = FIGURES[key]
    return fn(scale, seed)
