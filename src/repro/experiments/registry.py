"""Registry mapping experiment ids to their specs (the E-index of DESIGN.md)."""

from __future__ import annotations

from .e01_drift import SPEC as E1
from .e02_upper_bound import SPEC as E2
from .e03_polylog import SPEC as E3
from .e04_lower_bound import SPEC as E4
from .e05_uniqueness import SPEC as E5
from .e06_hplurality import SPEC as E6
from .e07_bias_tightness import SPEC as E7
from .e08_adversary import SPEC as E8
from .e09_landscape import SPEC as E9
from .e10_phases import SPEC as E10
from .e11_crossmodel import SPEC as E11
from .e12_meanfield import SPEC as E12
from .e13_topology import SPEC as E13
from .harness import ExperimentSpec

__all__ = ["ALL_EXPERIMENTS", "get_experiment", "experiment_ids"]

ALL_EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.id: spec for spec in (E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13)
}


def experiment_ids() -> list[str]:
    return list(ALL_EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentSpec:
    key = experiment_id.upper()
    if key not in ALL_EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(ALL_EXPERIMENTS)}"
        )
    return ALL_EXPERIMENTS[key]
