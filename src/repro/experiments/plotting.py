"""Dependency-free ASCII plots for experiment series.

The offline environment has no matplotlib; experiments instead render
series as monospace scatter/line plots, which is enough to eyeball the
shapes the paper predicts (straight lines on the right axes, plateaus,
crossovers).  Each distinct series gets its own glyph; overlapping points
show the later series' glyph.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

__all__ = ["ascii_plot"]

_GLYPHS = "*o+x#@%&"


def _transform(values: Sequence[float], log: bool) -> list[float]:
    out = []
    for v in values:
        if log:
            if v <= 0:
                raise ValueError("log-scale axis requires positive values")
            out.append(math.log10(v))
        else:
            out.append(float(v))
    return out


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render named (xs, ys) series on one canvas.

    Parameters mirror a minimal matplotlib: axis log flags, labels, title.
    Returns the multi-line string (caller prints it).
    """
    if not series:
        raise ValueError("nothing to plot")
    pts: dict[str, tuple[list[float], list[float]]] = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r} has mismatched lengths")
        if len(xs) == 0:
            continue
        pts[name] = (_transform(xs, logx), _transform(ys, logy))
    if not pts:
        raise ValueError("all series empty")

    all_x = [v for xs, _ in pts.values() for v in xs]
    all_y = [v for _, ys in pts.values() for v in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(pts.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = glyph

    def fmt(v: float, log: bool) -> str:
        if log:
            return f"1e{v:.2g}"
        return f"{v:.4g}"

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} (top={fmt(y_hi, logy)}, bottom={fmt(y_lo, logy)})")
    border = "+" + "-" * width + "+"
    lines.append(border)
    for row in canvas:
        lines.append("|" + "".join(row) + "|")
    lines.append(border)
    lines.append(f"{xlabel}: left={fmt(x_lo, logx)}, right={fmt(x_hi, logx)}")
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(pts)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
