"""Experiment harness: scales, specs, and the sweep runner.

Every experiment module exposes an :class:`ExperimentSpec` whose ``run``
callable maps ``(scale, seed)`` to a :class:`ResultTable`.  Scales keep a
single code path honest at three budgets:

* ``smoke`` — seconds; exercised by the integration tests;
* ``small`` — default CLI scale, tens of seconds;
* ``paper`` — the scale whose numbers EXPERIMENTS.md records.

:func:`sweep` is the shared inner loop: a cartesian or explicit list of
parameter points, each measured over a replica ensemble with an
independent derived seed, returning per-point summaries.  A point's
``build`` callable may return either the classic ``(dynamics, initial)``
pair or a declarative :class:`~repro.scenario.ScenarioSpec` — specs are
resolved through the registries and run via
:func:`~repro.scenario.simulate_ensemble`, with the sweep's
``replicas``/``max_rounds``/derived-seed discipline overriding the
spec's own run knobs so scale presets stay authoritative.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.adversary import Adversary
from ..core.config import Configuration
from ..core.dynamics import Dynamics
from ..core.process import EnsembleResult, run_ensemble
from ..core.rng import derive_seed, make_rng
from ..scenario import ScenarioSpec, simulate_ensemble
from .results import ResultTable

if TYPE_CHECKING:  # keep experiments → serve a type-only dependency
    from ..serve.cache import ResultCache

__all__ = [
    "SCALES",
    "ExperimentSpec",
    "SweepPoint",
    "sweep",
    "ensemble_at",
    "grid",
    "run_sweep_point",
]

#: Recognised scale presets, ordered by budget.
SCALES = ("smoke", "small", "paper")


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata + entry point of one experiment (one paper claim)."""

    id: str
    title: str
    claim: str
    run: Callable[[str, int], ResultTable]
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __call__(self, scale: str = "small", seed: int = 0) -> ResultTable:
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
        return self.run(scale, seed)


@dataclass
class SweepPoint:
    """One measured parameter point of a sweep."""

    params: dict[str, object]
    ensemble: EnsembleResult
    wall_seconds: float


def ensemble_at(
    dynamics: Dynamics,
    initial: Configuration,
    *,
    replicas: int,
    max_rounds: int,
    seed,
    adversary: Adversary | None = None,
) -> EnsembleResult:
    """Run one replica ensemble on its own derived stream."""
    rng = make_rng(seed)
    return run_ensemble(
        dynamics,
        initial,
        replicas,
        max_rounds=max_rounds,
        adversary=adversary,
        rng=rng,
    )


def run_sweep_point(
    built: ScenarioSpec | tuple[Dynamics, Configuration],
    *,
    replicas: int,
    max_rounds: int,
    stream_seed,
    adversary: Adversary | None = None,
    cache: ResultCache | None = None,
) -> EnsembleResult:
    """Measure one built sweep point (spec or classic pair) on one stream.

    Shared by the sequential and multiprocess sweeps so both accept the
    same two ``build`` contracts and stay result-identical.  With a
    ``cache``, spec-built points are served through
    :meth:`~repro.serve.cache.ResultCache.fetch_or_run` keyed on the derived
    stream seed — bit-identical to the uncached path, so repeated sweeps run
    warm.  Classic ``(dynamics, initial)`` pairs have no content address and
    always execute.
    """
    if isinstance(built, ScenarioSpec):
        if adversary is not None:
            raise ValueError(
                "adversary_for cannot be combined with ScenarioSpec builds; "
                "declare the adversary inside the spec"
            )
        spec = built.with_overrides(replicas=replicas, max_rounds=max_rounds)
        if cache is not None:
            return cache.fetch_or_run(spec, seed=stream_seed)
        return simulate_ensemble(spec, rng=make_rng(stream_seed))
    dynamics, initial = built
    return ensemble_at(
        dynamics,
        initial,
        replicas=replicas,
        max_rounds=max_rounds,
        seed=stream_seed,
        adversary=adversary,
    )


def sweep(
    points: Iterable[Mapping[str, object]],
    build: Callable[[Mapping[str, object]], ScenarioSpec | tuple[Dynamics, Configuration]],
    *,
    replicas: int,
    max_rounds: int,
    seed: int,
    experiment_id: str,
    adversary_for: Callable[[Mapping[str, object]], Adversary | None] | None = None,
    cache: ResultCache | None = None,
) -> list[SweepPoint]:
    """Measure an ensemble at every parameter point.

    Parameters
    ----------
    points:
        The sweep grid: a sequence of parameter dicts.
    build:
        Maps a parameter point to ``(dynamics, initial_configuration)``
        or to a :class:`~repro.scenario.ScenarioSpec` (whose
        replicas/max_rounds/seed are overridden by the sweep's own).
    adversary_for:
        Optional per-point adversary factory (classic builds only; spec
        builds carry their adversary in the spec).
    seed / experiment_id:
        Combined through :func:`~repro.core.rng.derive_seed` with the point
        index, so each point gets an independent, reproducible stream.
    cache:
        Optional :class:`~repro.serve.cache.ResultCache`: spec-built points
        are keyed by (spec, derived stream seed) and served warm on repeat
        sweeps, bit-identical to a cold run.
    """
    out: list[SweepPoint] = []
    for idx, params in enumerate(points):
        built = build(params)
        adversary = adversary_for(params) if adversary_for is not None else None
        stream_seed = derive_seed(seed, experiment_id, idx)
        start = time.perf_counter()
        ens = run_sweep_point(
            built,
            replicas=replicas,
            max_rounds=max_rounds,
            stream_seed=stream_seed,
            adversary=adversary,
            cache=cache,
        )
        out.append(
            SweepPoint(
                params=dict(params),
                ensemble=ens,
                wall_seconds=time.perf_counter() - start,
            )
        )
    return out


def grid(**axes: Sequence[object]) -> list[dict[str, object]]:
    """Cartesian product of named axes, in row-major order."""
    names = list(axes)
    points: list[dict[str, object]] = [{}]
    for name in names:
        points = [{**p, name: v} for p in points for v in axes[name]]
    return points
