"""E8 — Corollary 4: self-stabilisation against F-bounded adversaries.

Paper claim
-----------
With ``c1 >= n/λ`` and bias ``s >= c sqrt(2 λ n log n)``, the 3-majority
dynamics achieves ``O(s/λ)``-plurality consensus in ``O(λ log n)`` rounds
against *any* F-bounded dynamic adversary with ``F = o(s/λ)`` — i.e. all
but ``O(s/λ)`` agents adopt the plurality and stay there for poly(n)
rounds.  With ``F >= M`` no M-plurality consensus is possible.

Measurement
-----------
Against the worst-case :class:`TargetedAdversary` (moves F plurality
supporters to the runner-up each round — exactly the strategy the
corollary's proof has to beat) we sweep ``F`` as a multiple of ``s/λ``.
All replicas of a sweep point advance in lock-step through the exact
counts-level engine (one batched multinomial per round) and one batched
``corrupt_many`` call — no Python-level loop over replicas.  Each replica
runs for a ``C·λ log n`` budget plus a holding window; we record whether
the initial plurality survived as the top color, the minority mass at the
end of the budget (the achieved M), and whether the almost-stable phase
held through the window.  The reproduced shape: for ``F`` well below
``s/λ`` the process stabilises with minority mass O(F); as ``F``
approaches and passes ``s/λ`` stabilisation degrades and fails.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.bounds import lambda_for
from ..core.adversary import TargetedAdversary
from ..core.majority import ThreeMajority
from ..core.rng import derive_seed
from .harness import ExperimentSpec
from .results import ResultTable
from .workloads import paper_biased, theorem1_bias

_SCALE = {
    "smoke": dict(n=10_000, k=8, fractions=[0.0, 0.2, 1.0], replicas=4, budget_mult=4.0, hold=30),
    "small": dict(
        n=100_000,
        k=8,
        fractions=[0.0, 0.05, 0.2, 0.5, 1.0, 2.0],
        replicas=8,
        budget_mult=4.0,
        hold=100,
    ),
    "paper": dict(
        n=1_000_000,
        k=16,
        fractions=[0.0, 0.05, 0.2, 0.5, 1.0, 2.0, 4.0],
        replicas=16,
        budget_mult=4.0,
        hold=300,
    ),
}


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    n, k = cfg["n"], cfg["k"]
    lam = lambda_for(n, k)
    s = theorem1_bias(n, k)
    s_over_lambda = s / lam
    budget_rounds = int(cfg["budget_mult"] * lam * math.log(n))
    config = paper_biased(n, k)

    table = ResultTable(
        title="E8: 3-majority vs F-bounded dynamic adversary (Corollary 4)",
        columns=[
            "n",
            "k",
            "F",
            "F_over_s_lambda",
            "replicas",
            "plurality_survived_rate",
            "median_final_minority",
            "minority_over_s_lambda",
            "held_window_rate",
            "budget_rounds",
        ],
    )
    dyn = ThreeMajority()
    replicas = cfg["replicas"]
    plurality_color = int(np.argmax(config.counts))
    total_rounds = budget_rounds + cfg["hold"]
    for frac in cfg["fractions"]:
        F = int(round(frac * s_over_lambda))
        rng = np.random.default_rng(derive_seed(seed, "E8", F))
        adversary = TargetedAdversary(F) if F > 0 else None
        # All replicas advance in lock-step: one batched multinomial step and
        # one batched corruption per round, with an O(R) top-count snapshot.
        states = np.tile(config.counts, (replicas, 1))
        top_hist = np.empty((total_rounds + 1, replicas), dtype=np.int64)
        top_hist[0] = states.max(axis=1)
        for t in range(1, total_rounds + 1):
            states = dyn.step_many(states, rng)
            if adversary is not None:
                states = adversary.corrupt_many(states, rng)
            top_hist[t] = states.max(axis=1)
        # Per-replica outcomes over the holding window after the budget.
        window = top_hist[min(budget_rounds, total_rounds) :]  # (W, R)
        minorities = (n - window[-1]).astype(np.int64)
        survived = int(np.sum(np.argmax(states, axis=1) == plurality_color))
        # Held: every round of the window keeps minority mass <= max(4F, s/λ).
        threshold = max(4 * F, s_over_lambda)
        held = int(np.sum(np.all(n - window <= threshold, axis=0)))
        table.add_row(
            n=n,
            k=k,
            F=F,
            F_over_s_lambda=frac,
            replicas=replicas,
            plurality_survived_rate=survived / replicas,
            median_final_minority=float(np.median(minorities)),
            minority_over_s_lambda=float(np.median(minorities)) / s_over_lambda,
            held_window_rate=held / replicas,
            budget_rounds=budget_rounds,
        )
    table.add_note(
        f"s = {s}, λ = {lam:.1f}, s/λ = {s_over_lambda:.0f}; Corollary 4 needs F = o(s/λ) "
        "and promises minority mass O(s/λ) held for poly(n) rounds"
    )
    return table


SPEC = ExperimentSpec(
    id="E8",
    title="Self-stabilising plurality consensus under adversarial corruption (Corollary 4)",
    claim=(
        "Against any F-bounded dynamic adversary with F = o(s/λ), 3-majority reaches and "
        "holds O(s/λ)-plurality consensus within O(λ log n) rounds."
    ),
    run=run,
    tags=("adversary", "self-stabilisation"),
)
