"""E8 — Corollary 4: self-stabilisation against F-bounded adversaries.

Paper claim
-----------
With ``c1 >= n/λ`` and bias ``s >= c sqrt(2 λ n log n)``, the 3-majority
dynamics achieves ``O(s/λ)``-plurality consensus in ``O(λ log n)`` rounds
against *any* F-bounded dynamic adversary with ``F = o(s/λ)`` — i.e. all
but ``O(s/λ)`` agents adopt the plurality and stay there for poly(n)
rounds.  With ``F >= M`` no M-plurality consensus is possible.

Measurement
-----------
Against the worst-case :class:`TargetedAdversary` (moves F plurality
supporters to the runner-up each round — exactly the strategy the
corollary's proof has to beat) we sweep ``F`` as a multiple of ``s/λ``.
Each replica runs for a ``C·λ log n`` budget plus a holding window; we
record whether the initial plurality survived as the top color, the
minority mass at the end of the budget (the achieved M), and whether the
almost-stable phase held through the window.  The reproduced shape: for
``F`` well below ``s/λ`` the process stabilises with minority mass O(F);
as ``F`` approaches and passes ``s/λ`` stabilisation degrades and fails.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.bounds import lambda_for
from ..core.adversary import TargetedAdversary
from ..core.majority import ThreeMajority
from ..core.process import run_process
from ..core.rng import derive_seed
from .harness import ExperimentSpec
from .results import ResultTable
from .workloads import paper_biased, theorem1_bias

_SCALE = {
    "smoke": dict(n=10_000, k=8, fractions=[0.0, 0.2, 1.0], replicas=4, budget_mult=4.0, hold=30),
    "small": dict(
        n=100_000,
        k=8,
        fractions=[0.0, 0.05, 0.2, 0.5, 1.0, 2.0],
        replicas=8,
        budget_mult=4.0,
        hold=100,
    ),
    "paper": dict(
        n=1_000_000,
        k=16,
        fractions=[0.0, 0.05, 0.2, 0.5, 1.0, 2.0, 4.0],
        replicas=16,
        budget_mult=4.0,
        hold=300,
    ),
}


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    n, k = cfg["n"], cfg["k"]
    lam = lambda_for(n, k)
    s = theorem1_bias(n, k)
    s_over_lambda = s / lam
    budget_rounds = int(cfg["budget_mult"] * lam * math.log(n))
    config = paper_biased(n, k)

    table = ResultTable(
        title="E8: 3-majority vs F-bounded dynamic adversary (Corollary 4)",
        columns=[
            "n",
            "k",
            "F",
            "F_over_s_lambda",
            "replicas",
            "plurality_survived_rate",
            "median_final_minority",
            "minority_over_s_lambda",
            "held_window_rate",
            "budget_rounds",
        ],
    )
    dyn = ThreeMajority()
    for frac in cfg["fractions"]:
        F = int(round(frac * s_over_lambda))
        survived = 0
        held = 0
        minorities: list[int] = []
        for rep in range(cfg["replicas"]):
            rng = np.random.default_rng(derive_seed(seed, "E8", F, rep))
            adversary = TargetedAdversary(F) if F > 0 else None
            res = run_process(
                dyn,
                config,
                max_rounds=budget_rounds + cfg["hold"],
                adversary=adversary,
                rng=rng,
            )
            # plurality history over the holding window after the budget
            hist = res.plurality_history
            window = hist[min(budget_rounds, hist.size - 1) :]
            final_minority = int(n - window[-1])
            minorities.append(final_minority)
            top_is_plurality = bool(np.argmax(res.final_counts) == res.plurality_color)
            survived += int(top_is_plurality)
            # Held: every round of the window keeps minority mass <= max(4F, s/λ).
            threshold = max(4 * F, s_over_lambda)
            held += int(bool(np.all(n - window <= threshold)))
        table.add_row(
            n=n,
            k=k,
            F=F,
            F_over_s_lambda=frac,
            replicas=cfg["replicas"],
            plurality_survived_rate=survived / cfg["replicas"],
            median_final_minority=float(np.median(minorities)),
            minority_over_s_lambda=float(np.median(minorities)) / s_over_lambda,
            held_window_rate=held / cfg["replicas"],
            budget_rounds=budget_rounds,
        )
    table.add_note(
        f"s = {s}, λ = {lam:.1f}, s/λ = {s_over_lambda:.0f}; Corollary 4 needs F = o(s/λ) "
        "and promises minority mass O(s/λ) held for poly(n) rounds"
    )
    return table


SPEC = ExperimentSpec(
    id="E8",
    title="Self-stabilising plurality consensus under adversarial corruption (Corollary 4)",
    claim=(
        "Against any F-bounded dynamic adversary with F = o(s/λ), 3-majority reaches and "
        "holds O(s/λ)-plurality consensus within O(λ log n) rounds."
    ),
    run=run,
    tags=("adversary", "self-stabilisation"),
)
