"""E3 — Corollaries 2 & 3: logarithmic time under a constant-fraction plurality.

Paper claim
-----------
Corollary 3: if ``c1 >= n/β`` for a constant β > 1 and
``s >= 72 sqrt(2 β n log n)``, 3-majority converges in ``O(log n)`` rounds
w.h.p. (Corollary 2 generalises β to polylog(n) with a matching extra log
factor.)

Measurement
-----------
Fix β and sweep ``n`` over decades with the corollary-shaped bias
(constant 1).  The initial configuration gives the plurality ``n/β`` agents
and splits the rest evenly over ``k-1`` rivals.  We fit
``rounds ≈ a log n`` and report per-point ratios; the reproduced shape is
a flat ratio column (time ∝ log n) with win rate 1.0, independent of k.
"""

from __future__ import annotations

import math

from ..analysis.fitting import linear_fit_through_predictor
from ..scenario import ScenarioSpec
from .harness import ExperimentSpec, sweep
from .results import ResultTable
from .workloads import corollary3_start

_SCALE = {
    "smoke": dict(ns=[5_000, 20_000], beta=3.0, k=20, replicas=8, max_rounds=2_000),
    "small": dict(
        ns=[10_000, 30_000, 100_000, 300_000], beta=3.0, k=50, replicas=16, max_rounds=5_000
    ),
    "paper": dict(
        ns=[10_000, 100_000, 1_000_000, 10_000_000], beta=3.0, k=100, replicas=32, max_rounds=10_000
    ),
}


# The configuration builder moved to the registered "corollary3" workload;
# this alias keeps the experiment's historical import path working.
corollary3_config = corollary3_start


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    table = ResultTable(
        title="E3: logarithmic convergence under c1 >= n/β (Corollary 3)",
        columns=[
            "n",
            "k",
            "beta",
            "c1_fraction",
            "bias",
            "replicas",
            "win_rate",
            "median_rounds",
            "log_n",
            "rounds_per_logn",
        ],
    )
    def build(params):
        return ScenarioSpec(
            dynamics="3-majority",
            initial="corollary3",
            initial_params={"beta": cfg["beta"]},
            n=params["n"],
            k=cfg["k"],
        )

    points = [{"n": n} for n in cfg["ns"]]
    medians: list[float] = []
    logs: list[float] = []
    for point in sweep(
        points,
        build,
        replicas=cfg["replicas"],
        max_rounds=cfg["max_rounds"],
        seed=seed,
        experiment_id="E3",
    ):
        n = int(point.params["n"])
        config = corollary3_config(n, cfg["k"], cfg["beta"])
        summary = point.ensemble.rounds_summary()
        log_n = math.log(n)
        table.add_row(
            n=n,
            k=cfg["k"],
            beta=cfg["beta"],
            c1_fraction=config.plurality_count / n,
            bias=config.bias,
            replicas=point.ensemble.replicas,
            win_rate=point.ensemble.plurality_win_rate,
            median_rounds=summary["median"],
            log_n=round(log_n, 2),
            rounds_per_logn=summary["median"] / log_n,
        )
        if not math.isnan(summary["median"]):
            medians.append(summary["median"])
            logs.append(log_n)

    if len(medians) >= 2:
        fit = linear_fit_through_predictor(logs, medians)
        table.add_note(
            f"rounds ≈ {fit.coefficient:.3f}·log(n) (R²={fit.r_squared:.3f}) — "
            "Corollary 3 predicts a flat rounds_per_logn column"
        )
    return table


SPEC = ExperimentSpec(
    id="E3",
    title="Logarithmic time for constant-fraction plurality (Corollaries 2-3)",
    claim=(
        "When c1 >= n/β for constant β and s >= c·sqrt(2β n log n), 3-majority "
        "converges in O(log n) rounds w.h.p., for any k."
    ),
    run=run,
    tags=("upper-bound", "polylog"),
)
