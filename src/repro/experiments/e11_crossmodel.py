"""E11 — Parallel rounds vs the sequential population model.

Paper claim (related work, Sections 1-2)
----------------------------------------
The paper's model is the *discrete-time synchronous parallel* one; much of
the prior art ([2] Angluin et al., [21] Perron et al., [8], [3]) lives in
the *sequential population model* (one random pairwise interaction per
tick).  The paper emphasises that results do not transfer mechanically:
the undecided-state protocol's O(n log n)-tick analyses hold in
expectation, for k = Θ(1) and s = Θ(n) only, and sequential polling keeps
the voter martingale's constant failure probability.

Measurement
-----------
With tick counts normalised by n (≈ one parallel round of interactions):

* (a) sequential pairwise voter vs parallel voter on a biased binary
  configuration: both elect the minority at the martingale rate — the
  failure mode is model-independent;
* (b) sequential undecided-state (Angluin-style one-way protocol) vs the
  parallel undecided-state dynamics on binary Θ(n)-bias configurations:
  both converge reliably, with normalised times within a small constant
  factor — the O(n log n) tick bound matches O(log n) parallel rounds;
* (c) the same protocol at growing k with only √-order bias: the
  sequential version's reliability degrades (the paper's point that the
  k = Θ(1), s = Θ(n) restrictions are real).
"""

from __future__ import annotations

import numpy as np

from ..core.config import Configuration
from ..core.population import PairwiseVoter, PopulationProcess, UndecidedPopulation
from ..core.process import run_ensemble
from ..core.rng import derive_seed
from ..core.undecided import UndecidedState
from ..core.voter import Voter
from .harness import ExperimentSpec
from .results import ResultTable

_SCALE = {
    "smoke": dict(n=200, reps=30, ks=[2, 6], bias_fraction=0.4),
    "small": dict(n=500, reps=60, ks=[2, 4, 8, 16], bias_fraction=0.4),
    "paper": dict(n=2_000, reps=200, ks=[2, 4, 8, 16, 32], bias_fraction=0.4),
}


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    n = cfg["n"]
    table = ResultTable(
        title="E11: parallel model vs sequential population model",
        columns=[
            "panel",
            "model",
            "protocol",
            "n",
            "k",
            "bias",
            "replicas",
            "plurality_win_rate",
            "median_parallel_rounds",
        ],
    )

    # (a) voter martingale in both models.
    config = Configuration.two_color(n, bias=int(cfg["bias_fraction"] * n))
    reps = cfg["reps"]
    seq = PopulationProcess(PairwiseVoter())
    seq_wins, seq_rounds = [], []
    for rep in range(reps):
        rng = np.random.default_rng(derive_seed(seed, "E11a", rep))
        res = seq.run(config.counts, rng=rng)
        seq_wins.append(res.plurality_won)
        seq_rounds.append(res.parallel_rounds(n))
    table.add_row(
        panel="a-voter",
        model="sequential",
        protocol="pairwise-voter",
        n=n,
        k=2,
        bias=config.bias,
        replicas=reps,
        plurality_win_rate=float(np.mean(seq_wins)),
        median_parallel_rounds=float(np.median(seq_rounds)),
    )
    ens = run_ensemble(
        Voter(), config, reps, max_rounds=10_000_000,
        rng=np.random.default_rng(derive_seed(seed, "E11a-par")),
    )
    table.add_row(
        panel="a-voter",
        model="parallel",
        protocol="voter",
        n=n,
        k=2,
        bias=config.bias,
        replicas=reps,
        plurality_win_rate=ens.plurality_win_rate,
        median_parallel_rounds=ens.rounds_summary()["median"],
    )

    # (b)+(c) undecided-state across k.
    for k in cfg["ks"]:
        if k == 2:
            cfg_k = Configuration.two_color(n, bias=int(cfg["bias_fraction"] * n))
        else:
            s = max(2, int(np.sqrt(n * k) / 2))
            cfg_k = Configuration.biased(n, k, s)
        seq = PopulationProcess(UndecidedPopulation())
        wins, rounds = [], []
        for rep in range(reps):
            rng = np.random.default_rng(derive_seed(seed, "E11b", k, rep))
            res = seq.run(cfg_k.counts, rng=rng, max_ticks=4_000 * n)
            wins.append(res.plurality_won)
            rounds.append(res.parallel_rounds(n))
        table.add_row(
            panel="b-undecided" if k == 2 else "c-undecided-k",
            model="sequential",
            protocol="undecided-population",
            n=n,
            k=k,
            bias=cfg_k.bias,
            replicas=reps,
            plurality_win_rate=float(np.mean(wins)),
            median_parallel_rounds=float(np.median(rounds)),
        )
        ens = run_ensemble(
            UndecidedState(), cfg_k, reps, max_rounds=100_000,
            rng=np.random.default_rng(derive_seed(seed, "E11b-par", k)),
        )
        table.add_row(
            panel="b-undecided" if k == 2 else "c-undecided-k",
            model="parallel",
            protocol="undecided-state",
            n=n,
            k=k,
            bias=cfg_k.bias,
            replicas=reps,
            plurality_win_rate=ens.plurality_win_rate,
            median_parallel_rounds=ens.rounds_summary()["median"],
        )
    table.add_note(
        "panel a: both models fail at the martingale rate ≈ c1/n; panel b: tick/n time "
        "within a constant of parallel rounds; panel c: reliability at √-bias degrades "
        "as k grows (the k=Θ(1), s=Θ(n) premises of the sequential analyses are real)"
    )
    return table


SPEC = ExperimentSpec(
    id="E11",
    title="Cross-model: synchronous parallel vs sequential population",
    claim=(
        "Sequential pairwise polling inherits the voter martingale's constant failure "
        "probability; the sequential undecided-state protocol matches its parallel "
        "counterpart at k=Θ(1), s=Θ(n) after tick/n normalisation, and degrades outside "
        "that regime."
    ),
    run=run,
    tags=("cross-model", "related-work"),
)
