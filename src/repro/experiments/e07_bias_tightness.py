"""E7 — Lemma 10: below ≈√(kn) bias, one round can *shrink* the bias.

Paper claim
-----------
For any ``s <= sqrt(kn)/6`` there are initial configurations
(``c = (x+s, x, ..., x)`` with ``x = (n-s)/k``) from which, for any fixed
rival color, ``P(C1 - Cj < s after one round) >= 1/(16e)``.  So the
monotone-bias argument behind the upper bounds genuinely needs bias of
order √(kn): the requirement is (almost) tight.

Measurement
-----------
At Lemma 10's configuration we run large one-round replica ensembles
through the standard runner with a ``record=["counts"]`` trace (no
bespoke stepping loop) and measure the empirical probability that the
bias towards a *fixed* rival decreases, sweeping (a) ``k`` at the
critical bias and (b) a multiplier α on the critical bias.  The
reproduced shape: at α <= 1 the decrease probability is a clear constant
above the 1/(16e) ≈ 0.023 floor; as α grows past ~2-4 it collapses
towards 0, exhibiting the sharp threshold the paper's open question
discusses.
"""

from __future__ import annotations

import numpy as np

from ..analysis.bounds import lemma10_critical_bias, lemma10_probability_floor
from ..analysis.fitting import wilson_interval
from ..core.majority import ThreeMajority
from ..core.process import run_ensemble
from ..core.rng import derive_seed
from .harness import ExperimentSpec
from .results import ResultTable
from .workloads import lemma10_start

_SCALE = {
    "smoke": dict(n=10_000, ks=[4, 16], alphas=[1.0, 4.0], replicas=2_000),
    "small": dict(n=100_000, ks=[4, 8, 16, 32], alphas=[0.5, 1.0, 2.0, 4.0], replicas=5_000),
    "paper": dict(
        n=1_000_000, ks=[4, 8, 16, 32, 64], alphas=[0.25, 0.5, 1.0, 2.0, 4.0, 8.0], replicas=20_000
    ),
}


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    n = cfg["n"]
    floor = lemma10_probability_floor()
    table = ResultTable(
        title="E7: one-round bias decrease near s = √(kn)/6 (Lemma 10)",
        columns=[
            "n",
            "k",
            "alpha",
            "bias",
            "critical_bias",
            "replicas",
            "p_decrease",
            "ci_low",
            "ci_high",
            "floor_1_16e",
            "above_floor",
        ],
    )
    dyn = ThreeMajority()
    for k in cfg["ks"]:
        s_crit = lemma10_critical_bias(n, k)
        for alpha in cfg["alphas"]:
            s = max(1, int(alpha * s_crit))
            config = lemma10_start(n, k, s=s)
            rng = np.random.default_rng(derive_seed(seed, "E7", k, int(alpha * 100)))
            R = cfg["replicas"]
            # One recorded round per replica (bit-identical to the old
            # bespoke step_many batch at equal seed).
            ens = run_ensemble(
                dyn, config, R, max_rounds=1, record=["counts"], rng=rng
            )
            nxt = ens.trace["counts"][:, 1, :]
            # Lemma 10 fixes one rival color j != 1; every rival is
            # exchangeable in this configuration, so use color 1.
            decreases = (nxt[:, 0] - nxt[:, 1]) < s
            hits = int(decreases.sum())
            p = hits / R
            lo, hi = wilson_interval(hits, R)
            table.add_row(
                n=n,
                k=k,
                alpha=alpha,
                bias=s,
                critical_bias=round(s_crit, 1),
                replicas=R,
                p_decrease=p,
                ci_low=lo,
                ci_high=hi,
                floor_1_16e=round(floor, 4),
                above_floor=lo >= floor if alpha <= 1.0 else p >= 0.0,
            )
    table.add_note(
        "Lemma 10 guarantees p_decrease >= 1/(16e) ≈ 0.023 at alpha <= 1; the collapse at "
        "large alpha shows why the upper bounds demand s = Ω(√(λ n log n))"
    )
    return table


SPEC = ExperimentSpec(
    id="E7",
    title="Near-tightness of the bias requirement (Lemma 10)",
    claim=(
        "At s <= sqrt(kn)/6 there are configurations where the bias towards a fixed rival "
        "decreases in one round with probability >= 1/(16e)."
    ),
    run=run,
    tags=("tightness", "bias"),
)
