"""Multiprocess sweep execution for the experiment harness.

The counts-level engine already saturates one core with vectorized NumPy;
parameter sweeps, however, are embarrassingly parallel across points, so
:func:`parallel_sweep` fans the points of :func:`repro.experiments.harness.sweep`
out over a process pool.  Seeds are derived per point exactly as in the
sequential path, so the two produce *identical* results — asserted in the
test suite — and the pool size only changes wall-clock time.

Implementation notes (per the mpi4py/HPC guidance of keeping workers
stateless and communication coarse): each worker receives one
pickle-friendly task description (builder + params + derived seed), runs a
full replica ensemble, and returns only the small result arrays.
"""

from __future__ import annotations

import multiprocessing as mp
from collections.abc import Callable, Iterable, Mapping

from ..core.adversary import Adversary
from ..core.rng import derive_seed
from .harness import SweepPoint, run_sweep_point

__all__ = ["parallel_sweep"]


def _run_point(task) -> tuple[int, SweepPoint]:
    (idx, params, build, adversary_for, replicas, max_rounds, seed, experiment_id) = task
    import time

    built = build(params)
    adversary = adversary_for(params) if adversary_for is not None else None
    stream_seed = derive_seed(seed, experiment_id, idx)
    start = time.perf_counter()
    ens = run_sweep_point(
        built,
        replicas=replicas,
        max_rounds=max_rounds,
        stream_seed=stream_seed,
        adversary=adversary,
    )
    return idx, SweepPoint(
        params=dict(params), ensemble=ens, wall_seconds=time.perf_counter() - start
    )


def parallel_sweep(
    points: Iterable[Mapping[str, object]],
    build: Callable[[Mapping[str, object]], object],  # ScenarioSpec | (Dynamics, Configuration)
    *,
    replicas: int,
    max_rounds: int,
    seed: int,
    experiment_id: str,
    adversary_for: Callable[[Mapping[str, object]], Adversary | None] | None = None,
    processes: int | None = None,
) -> list[SweepPoint]:
    """Drop-in parallel variant of :func:`repro.experiments.harness.sweep`.

    ``build`` (and ``adversary_for``) must be picklable (module-level
    functions, not closures).  With ``processes=1`` the pool is skipped
    entirely, giving a no-dependency fallback path.
    """
    point_list = [dict(p) for p in points]
    tasks = [
        (idx, params, build, adversary_for, replicas, max_rounds, seed, experiment_id)
        for idx, params in enumerate(point_list)
    ]
    if processes == 1 or len(tasks) <= 1:
        results = [_run_point(t) for t in tasks]
    else:
        ctx = mp.get_context("spawn")  # fork-safety with BLAS threads
        with ctx.Pool(processes=processes) as pool:
            results = pool.map(_run_point, tasks)
    results.sort(key=lambda pair: pair[0])
    return [point for _, point in results]
