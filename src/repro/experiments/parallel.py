"""Multiprocess sweep execution for the experiment harness.

The counts-level engine already saturates one core with vectorized NumPy;
parameter sweeps, however, are embarrassingly parallel across points, so
:func:`parallel_sweep` fans the points of :func:`repro.experiments.harness.sweep`
out over a process pool.  Seeds are derived per point exactly as in the
sequential path, so the two produce *identical* results — asserted in the
test suite — and the pool size only changes wall-clock time.

Implementation notes (per the mpi4py/HPC guidance of keeping workers
stateless and communication coarse): each worker receives one
pickle-friendly task description (builder + params + derived seed), runs a
full replica ensemble, and returns only the small result arrays.

With a :class:`~repro.serve.cache.ResultCache`, the parent probes the cache
before dispatch — spec-built points that hit skip the pool entirely, and
fresh results are stored back on return — so a repeated parallel sweep
runs warm without any cross-process cache coordination.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections.abc import Callable, Iterable, Mapping
from typing import TYPE_CHECKING

from ..core.adversary import Adversary
from ..core.rng import derive_seed
from ..scenario import ScenarioSpec
from .harness import SweepPoint, run_sweep_point

if TYPE_CHECKING:  # keep experiments → serve a type-only dependency
    from ..serve.cache import ResultCache

__all__ = ["parallel_sweep"]


def _run_point(task) -> tuple[int, SweepPoint]:
    (idx, params, build, adversary_for, replicas, max_rounds, seed, experiment_id) = task
    built = build(params)
    adversary = adversary_for(params) if adversary_for is not None else None
    stream_seed = derive_seed(seed, experiment_id, idx)
    start = time.perf_counter()
    ens = run_sweep_point(
        built,
        replicas=replicas,
        max_rounds=max_rounds,
        stream_seed=stream_seed,
        adversary=adversary,
    )
    return idx, SweepPoint(
        params=dict(params), ensemble=ens, wall_seconds=time.perf_counter() - start
    )


def parallel_sweep(
    points: Iterable[Mapping[str, object]],
    build: Callable[[Mapping[str, object]], object],  # ScenarioSpec | (Dynamics, Configuration)
    *,
    replicas: int,
    max_rounds: int,
    seed: int,
    experiment_id: str,
    adversary_for: Callable[[Mapping[str, object]], Adversary | None] | None = None,
    processes: int | None = None,
    cache: "ResultCache | None" = None,
) -> list[SweepPoint]:
    """Drop-in parallel variant of :func:`repro.experiments.harness.sweep`.

    ``build`` (and ``adversary_for``) must be picklable (module-level
    functions, not closures).  With ``processes=1`` the pool is skipped
    entirely, giving a no-dependency fallback path.  ``cache`` works as in
    the sequential sweep (spec builds only): hits are resolved in the
    parent, misses go to the pool, and results stay bit-identical to an
    uncached run.  The parent's cache probe calls ``build`` once per point
    (workers build again for the misses), so builders must stay cheap and
    deterministic — which picklability already demands.
    """
    point_list = [dict(p) for p in points]
    tasks = [
        (idx, params, build, adversary_for, replicas, max_rounds, seed, experiment_id)
        for idx, params in enumerate(point_list)
    ]

    cached_points: dict[int, SweepPoint] = {}
    point_keys: dict[int, str] = {}
    if cache is not None:
        for idx, params in enumerate(point_list):
            built = build(params)
            if not isinstance(built, ScenarioSpec):
                continue
            if adversary_for is not None and adversary_for(params) is not None:
                # Same contract run_sweep_point enforces; check it here too
                # so a cache hit can't silently skip the guard.
                raise ValueError(
                    "adversary_for cannot be combined with ScenarioSpec builds; "
                    "declare the adversary inside the spec"
                )
            spec = built.with_overrides(replicas=replicas, max_rounds=max_rounds)
            key = cache.key_for(spec, seed=derive_seed(seed, experiment_id, idx))
            point_keys[idx] = key
            start = time.perf_counter()
            hit = cache.get(key)
            if hit is not None:
                cached_points[idx] = SweepPoint(
                    params=dict(params),
                    ensemble=hit,
                    wall_seconds=time.perf_counter() - start,
                )
        tasks = [task for task in tasks if task[0] not in cached_points]

    if processes == 1 or len(tasks) <= 1:
        results = [_run_point(t) for t in tasks]
    else:
        ctx = mp.get_context("spawn")  # fork-safety with BLAS threads
        with ctx.Pool(processes=processes) as pool:
            results = pool.map(_run_point, tasks)
    if cache is not None:
        for idx, point in results:
            key = point_keys.get(idx)
            if key is not None:
                cache.put(key, point.ensemble)
    merged = dict(results)
    merged.update(cached_points)
    return [merged[idx] for idx in sorted(merged)]
