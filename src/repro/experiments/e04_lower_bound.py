"""E4 — Theorem 2: the Ω(k log n) lower bound from near-balanced starts.

Paper claim
-----------
For ``k <= (n/log n)^{1/4}`` and an initial configuration with
``max_j c_j <= n/k + (n/k)^{1-ε}``, the 3-majority dynamics needs
``Ω(k log n)`` rounds w.h.p. to reach a monochromatic configuration.  The
proof's engine (Lemma 6): the positive imbalance of any color multiplies by
at most ``(1 + 3/k)`` per round, so even *doubling* the plurality from
``n/k`` to ``2n/k`` takes Ω(k log n) rounds.

Measurement
-----------
Sweep ``k`` within Theorem 2's range at fixed ``n``, starting from the
theorem's ε-imbalanced configuration.  For each point we measure (a) the
rounds until the top color first reaches ``2n/k`` (the doubling time the
proof actually bounds) and (b) the full consensus time, and we fit both
against ``k log n``.  The reproduced shape: both grow linearly in
``k log n`` (power-law exponent in k near 1, flat ratio columns).
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.bounds import theorem2_k_range, theorem2_lower_rounds
from ..analysis.fitting import power_law_fit
from ..core.majority import ThreeMajority
from ..core.process import run_process
from ..core.rng import derive_seed
from .harness import ExperimentSpec
from .results import ResultTable
from .workloads import theorem2_start

_SCALE = {
    "smoke": dict(n=20_000, ks=[3, 5, 8], replicas=4, eps=0.25, max_rounds=20_000),
    "small": dict(n=100_000, ks=[3, 4, 6, 8, 12], replicas=8, eps=0.25, max_rounds=100_000),
    "paper": dict(n=1_000_000, ks=[4, 6, 8, 12, 16], replicas=16, eps=0.25, max_rounds=500_000),
}


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    n = cfg["n"]
    table = ResultTable(
        title="E4: Ω(k log n) lower bound from ε-balanced starts (Theorem 2)",
        columns=[
            "n",
            "k",
            "in_theorem_range",
            "start_imbalance",
            "replicas",
            "median_doubling_rounds",
            "median_consensus_rounds",
            "k_logn",
            "doubling_ratio",
            "consensus_ratio",
            "lemma6_rounds",
            "lemma6_ratio",
        ],
    )
    dyn = ThreeMajority()
    k_max = theorem2_k_range(n)
    doubling_meds: list[float] = []
    consensus_meds: list[float] = []
    ks_fit: list[int] = []

    for k in cfg["ks"]:
        config = theorem2_start(n, k, eps=cfg["eps"])
        doubling: list[int] = []
        consensus: list[int] = []
        for rep in range(cfg["replicas"]):
            rng = np.random.default_rng(derive_seed(seed, "E4", k, rep))
            res = run_process(
                dyn,
                config,
                max_rounds=cfg["max_rounds"],
                record=["plurality-count"],
                rng=rng,
            )
            consensus.append(res.rounds if res.converged else cfg["max_rounds"])
            target = 2 * n / k
            # Doubling time straight off the recorded plurality-count trace
            # (the proof's quantity), instead of the legacy history field.
            plurality = res.trace.replica(0, "plurality-count")
            above = np.nonzero(plurality >= target)[0]
            doubling.append(int(above[0]) if above.size else cfg["max_rounds"])
        med_d = float(np.median(doubling))
        med_c = float(np.median(consensus))
        pred = theorem2_lower_rounds(n, k)
        # Lemma 6's engine: imbalance grows by at most (1 + 3/k) per round,
        # so doubling from the start imbalance to n/k needs at least
        # (k/3) * ln(target / start) rounds — the sharp per-point floor.
        imbalance0 = config.plurality_count - n // k
        lemma6 = (k / 3.0) * math.log((n / k) / max(imbalance0, 1))
        table.add_row(
            n=n,
            k=k,
            in_theorem_range=k <= k_max,
            start_imbalance=imbalance0,
            replicas=cfg["replicas"],
            median_doubling_rounds=med_d,
            median_consensus_rounds=med_c,
            k_logn=round(pred, 1),
            doubling_ratio=med_d / pred,
            consensus_ratio=med_c / pred,
            lemma6_rounds=round(lemma6, 1),
            lemma6_ratio=med_d / lemma6 if lemma6 > 0 else float("nan"),
        )
        doubling_meds.append(med_d)
        consensus_meds.append(med_c)
        ks_fit.append(k)

    if len(ks_fit) >= 3:
        fit_d = power_law_fit(ks_fit, doubling_meds)
        fit_c = power_law_fit(ks_fit, consensus_meds)
        table.add_note(
            f"doubling time ~ k^{fit_d.exponent:.2f}, consensus time ~ k^{fit_c.exponent:.2f} "
            "(Theorem 2 predicts exponent >= 1 in its range)"
        )
    table.add_note(f"theorem range: k <= (n/log n)^(1/4) = {k_max:.1f}")
    table.add_note(
        "lower-bound check: lemma6_ratio (measured doubling / Lemma 6 floor) must stay >= 1"
    )
    return table


SPEC = ExperimentSpec(
    id="E4",
    title="Lower bound Ω(k log n) (Theorem 2 / Lemma 6)",
    claim=(
        "From a configuration with max_j c_j <= n/k + (n/k)^{1-ε}, 3-majority needs "
        "Ω(k log n) rounds to converge — and already Ω(k log n) rounds to double the "
        "plurality from n/k to 2n/k."
    ),
    run=run,
    tags=("lower-bound", "scaling"),
)
