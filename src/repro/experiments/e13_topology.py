"""E13 — Consensus time across graph topologies (extension).

Beyond-the-paper claim
----------------------
The paper analyses 3-majority on the complete graph, where anonymous
counts are a Markov chain.  On general graphs the *placement* of colors
matters: expanders behave like the clique up to constants, while poorly
connected graphs (tori with large diameter, barbells with an O(1)-width
bottleneck) slow or stall consensus — the standard picture from the
voter/majority literature (cf. Cooper et al., PAPERS.md).

Measurement
-----------
3-majority from a *weakly* biased start (additive bias of a few agents,
well under the Theorem 1 threshold — enough to define a plurality winner
without forcing every region of the graph towards it) on a family of
topologies at equal (n, k, bias), all through the declarative spec
facade (the same path ``repro simulate --topology`` takes):

* ``clique`` — the paper's model (graph engine, not the counts engine,
  so any gap is attributable to topology alone);
* ``random-regular`` — constant-degree expander; expected near-clique
  rounds despite degree 8 vs degree n;
* ``torus`` — Θ(√n) diameter; slower, but consensus still reliable;
* ``erdos-renyi`` — G(n, p) at p = 2 ln(n)/n, near the connectivity
  threshold; mostly expander-like with a thin tail of slow replicas;
* ``barbell`` — two cliques joined at a single edge; the bottleneck
  keeps disagreeing halves stable, so many replicas exhaust the round
  budget (reported via ``convergence_rate``, not dropped).
"""

from __future__ import annotations

from ..scenario import ScenarioSpec, simulate_ensemble
from .harness import ExperimentSpec
from .results import ResultTable

_SCALE = {
    "smoke": dict(n=100, k=3, replicas=6, max_rounds=2_000, bias=4),
    "small": dict(n=400, k=4, replicas=16, max_rounds=8_000, bias=4),
    "paper": dict(n=2_500, k=5, replicas=48, max_rounds=40_000, bias=8),
}

#: (label, registry name, params) — params must keep every generator valid
#: at each _SCALE n (torus needs a divisor pair; barbell an even body).
_TOPOLOGIES = (
    ("clique", "clique", {}),
    ("random-regular", "random-regular", {"d": 8, "seed": 0}),
    ("torus", "torus", {}),
    ("erdos-renyi", "erdos-renyi", {"seed": 0}),
    ("barbell", "barbell", {}),
)


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    table = ResultTable(
        title="E13: 3-majority consensus time vs topology",
        columns=[
            "topology",
            "n",
            "k",
            "replicas",
            "convergence_rate",
            "plurality_win_rate",
            "median_rounds",
            "p90_rounds",
        ],
    )
    for label, name, params in _TOPOLOGIES:
        spec = ScenarioSpec(
            dynamics="3-majority",
            initial="biased",
            initial_params={"bias": cfg["bias"]},
            n=cfg["n"],
            k=cfg["k"],
            topology=name,
            topology_params=dict(params),
            replicas=cfg["replicas"],
            max_rounds=cfg["max_rounds"],
            seed=seed,
        )
        ens = simulate_ensemble(spec)
        summary = ens.rounds_summary()
        table.add_row(
            topology=label,
            n=cfg["n"],
            k=cfg["k"],
            replicas=cfg["replicas"],
            convergence_rate=ens.convergence_rate,
            plurality_win_rate=ens.plurality_win_rate,
            median_rounds=summary["median"],
            p90_rounds=summary["p90"],
        )
    table.add_note(
        "rounds are conditional on convergence (non-converged replicas exhaust the "
        f"max_rounds={cfg['max_rounds']} budget and only lower convergence_rate); "
        "expander ≈ clique up to a constant, torus pays its diameter, barbell's "
        "bottleneck shows up as convergence_rate well below 1"
    )
    return table


SPEC = ExperimentSpec(
    id="E13",
    title="Topology family: consensus time beyond the clique",
    claim=(
        "3-majority run agent-level through the spec facade from a weakly biased "
        "start: random-regular expanders track the clique's consensus time up to a "
        "constant, the torus pays a diameter-driven slowdown, G(n, 2 ln n / n) is "
        "expander-like, and the barbell's bottleneck stalls most replicas within "
        "the round budget (halves lock onto different colors)."
    ),
    run=run,
    tags=("extension", "topology", "graphs"),
)
