"""E12 — Where mean-field (ODE) reasoning breaks: the paper's methodology point.

Paper claim (related work + Lemma 10)
-------------------------------------
The paper dismisses real-valued differential-equation analyses ([21, 8, 3])
for its model: they "do not work for the discrete-time parallel model",
because w.h.p. guarantees live or die on fluctuations the ODE throws away.
The regime that makes this concrete is Lemma 10's: at bias s = O(√(kn))
the *deterministic* mean field always elects the plurality (any positive
bias grows monotonically under Lemma 2's drift), while the *stochastic*
process fails with constant probability.

Measurement
-----------
Sweep the initial bias s as a multiple of √n on Lemma 10-style
configurations.  For each s:

* integrate the discrete mean field — it predicts plurality victory
  whenever s > 0 (reported as the deterministic verdict and its
  time-to-90%);
* measure the stochastic plurality-win rate over a replica ensemble.

The reproduced shape: the stochastic win rate climbs from ~1/k (no
information) to 1.0 only once s passes the √(n·polylog) scale, while the
mean field says "win" everywhere — quantifying exactly how misleading the
ODE is below the fluctuation scale.  As a control, at large bias the
mean-field time-to-90% matches the measured median rounds.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.meanfield import discrete_mean_field
from ..core.config import Configuration
from ..core.majority import ThreeMajority
from ..core.process import run_ensemble
from ..core.rng import derive_seed
from .harness import ExperimentSpec
from .results import ResultTable

_SCALE = {
    "smoke": dict(n=10_000, k=8, multipliers=[0.0, 1.0, 8.0], reps=64),
    "small": dict(n=100_000, k=8, multipliers=[0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0], reps=128),
    "paper": dict(
        n=1_000_000, k=16, multipliers=[0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0], reps=512
    ),
}


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    n, k = cfg["n"], cfg["k"]
    table = ResultTable(
        title="E12: stochastic process vs mean-field ODE near the critical bias",
        columns=[
            "n",
            "k",
            "bias_over_sqrt_n",
            "bias",
            "replicas",
            "stochastic_win_rate",
            "meanfield_verdict",
            "meanfield_rounds_to_90",
            "measured_median_rounds",
            "ode_is_faithful",
        ],
    )
    dyn = ThreeMajority()
    for mult in cfg["multipliers"]:
        s = int(mult * math.sqrt(n))
        config = Configuration.biased(n, k, s)
        # Deterministic mean field from the same fractions.
        mf = discrete_mean_field(dyn, config.fractions(), rounds=max(200, 30 * k))
        mf_winner = mf.winner(atol=1e-3)
        mf_says_win = mf_winner == config.plurality_color if s > 0 else False
        mf_t90 = mf.rounds_to_fraction(0.9)
        # Stochastic truth.
        ens = run_ensemble(
            dyn,
            config,
            cfg["reps"],
            max_rounds=200_000,
            rng=np.random.default_rng(derive_seed(seed, "E12", int(mult * 10))),
        )
        win = ens.plurality_win_rate
        measured = ens.rounds_summary()["median"]
        faithful = (
            mf_says_win
            and win > 0.95
            and mf_t90 is not None
            and measured == measured  # not NaN
            and abs(measured - mf_t90) <= max(5.0, 0.5 * mf_t90)
        )
        table.add_row(
            n=n,
            k=k,
            bias_over_sqrt_n=mult,
            bias=config.bias,
            replicas=ens.replicas,
            stochastic_win_rate=win,
            meanfield_verdict="plurality wins" if mf_says_win else "tie/none",
            meanfield_rounds_to_90=mf_t90 if mf_t90 is not None else float("nan"),
            measured_median_rounds=measured,
            ode_is_faithful=faithful,
        )
    table.add_note(
        "the ODE declares victory for ANY positive bias; the stochastic win rate only "
        "reaches 1.0 well past the √n fluctuation scale (Lemma 10's regime) — the paper's "
        "reason to reject differential-equation arguments for w.h.p. bounds"
    )
    return table


SPEC = ExperimentSpec(
    id="E12",
    title="Mean-field breakdown below the fluctuation scale (methodology of Lemma 10)",
    claim=(
        "Deterministic mean-field dynamics predict plurality victory for any positive "
        "bias, but the stochastic parallel process fails with constant probability until "
        "the bias clears the √(kn)-order fluctuation scale."
    ),
    run=run,
    tags=("methodology", "mean-field"),
)
