"""E6 — Theorem 4 / Lemma 9: larger samples buy at most an h² speed-up.

Paper claim
-----------
Under the h-plurality dynamics, from any configuration with
``max_j c_j <= 3n/(2k)`` the process needs ``Ω(k/h²)`` rounds w.h.p.
(for ``k/h = O(n^{1/4-ε})``).  Lemma 9's engine: a color below ``2n/k``
grows by at most a ``(1 + 2h²/k)`` factor per round.  Consequently
polylog-size samples — the only scalable regime — give at most a polylog
speed-up over 3-majority.

Measurement
-----------
Fix ``(n, k)`` with a balanced-start configuration in the theorem's range
and sweep ``h``.  For each ``h`` we measure the consensus time and the
time to grow the plurality from ``3n/(2k)`` to ``2n/k`` (what Lemma 9
bounds), and report ``rounds · h²/k`` — the theorem predicts this stays
bounded below by a constant (flat-ish column), i.e. time shrinks no faster
than ``1/h²``.  A power-law fit of rounds vs h checks the exponent ≈ -2.
"""

from __future__ import annotations

import numpy as np

from ..analysis.bounds import theorem4_lower_rounds
from ..analysis.fitting import power_law_fit
from ..core.majority import HPlurality
from ..core.process import run_process
from ..core.rng import derive_seed
from .harness import ExperimentSpec
from .results import ResultTable
from .workloads import theorem4_start

_SCALE = {
    "smoke": dict(n=4_000, k=16, hs=[3, 5, 8], replicas=4, max_rounds=4_000),
    "small": dict(n=20_000, k=32, hs=[3, 4, 6, 8, 12, 16], replicas=8, max_rounds=20_000),
    "paper": dict(n=100_000, k=64, hs=[3, 4, 6, 8, 12, 16, 24, 32], replicas=16, max_rounds=100_000),
}


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    n, k = cfg["n"], cfg["k"]
    config = theorem4_start(n, k)
    table = ResultTable(
        title="E6: h-plurality speed-up is bounded by h² (Theorem 4)",
        columns=[
            "n",
            "k",
            "h",
            "engine",
            "replicas",
            "win_rate",
            "median_rounds",
            "median_growth_rounds",
            "k_over_h2",
            "rounds_x_h2_over_k",
            "speedup_vs_h3",
        ],
    )
    rows: list[tuple[int, float]] = []
    base_rounds: float | None = None
    for h in cfg["hs"]:
        dyn = HPlurality(h)
        rounds: list[int] = []
        growth: list[int] = []
        wins = 0
        for rep in range(cfg["replicas"]):
            rng = np.random.default_rng(derive_seed(seed, "E6", h, rep))
            res = run_process(
                dyn,
                config,
                max_rounds=cfg["max_rounds"],
                record=["plurality-count"],
                rng=rng,
            )
            rounds.append(res.rounds if res.converged else cfg["max_rounds"])
            wins += int(res.plurality_won)
            target = 2 * n / k
            above = np.nonzero(res.trace.replica(0, "plurality-count") >= target)[0]
            growth.append(int(above[0]) if above.size else cfg["max_rounds"])
        med = float(np.median(rounds))
        med_growth = float(np.median(growth))
        if base_rounds is None:
            base_rounds = med
        pred = theorem4_lower_rounds(k, h)
        table.add_row(
            n=n,
            k=k,
            h=h,
            engine=dyn.resolved_engine(k),
            replicas=cfg["replicas"],
            win_rate=wins / cfg["replicas"],
            median_rounds=med,
            median_growth_rounds=med_growth,
            k_over_h2=round(pred, 2),
            rounds_x_h2_over_k=med * h * h / k,
            speedup_vs_h3=base_rounds / med if med > 0 else float("inf"),
        )
        rows.append((h, med))

    hs = [r[0] for r in rows]
    meds = [r[1] for r in rows]
    if len(rows) >= 3 and min(meds) > 0:
        fit = power_law_fit(hs, meds)
        table.add_note(
            f"rounds ~ h^{fit.exponent:.2f} (theorem allows no decay faster than h^-2; "
            f"95% CI {fit.exponent_ci()[0]:.2f}..{fit.exponent_ci()[1]:.2f})"
        )
    table.add_note("rounds_x_h2_over_k should stay bounded away from 0 (Ω(k/h²) floor)")
    table.add_note(
        "engine column: 'counts' rows step through the exact composition-enumeration "
        "law (h <= 5, small table); 'agent' rows pay O(n·h) per round"
    )
    return table


SPEC = ExperimentSpec(
    id="E6",
    title="h-plurality lower bound Ω(k/h²) (Theorem 4 / Lemma 9)",
    claim=(
        "From max_j c_j <= 3n/(2k), the h-plurality dynamics needs Ω(k/h²) rounds; "
        "polylogarithmic samples give at most polylogarithmic speed-up."
    ),
    run=run,
    tags=("lower-bound", "h-plurality"),
)
