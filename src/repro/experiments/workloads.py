"""Initial-configuration generators for the experiment suite.

Each generator builds the exact family of configurations a theorem or
lemma of the paper quantifies over:

* :func:`paper_biased` — the canonical ``s``-biased start of Theorem 1;
* :func:`theorem2_start` — balanced up to ``(n/k)^(1-eps)`` (Theorem 2);
* :func:`corollary3_start` — ``c1 = n/β`` plus Corollary 3's bias (E3);
* :func:`theorem4_start` — balanced with max count 3n/(2k) (Theorem 4/E6);
* :func:`lemma10_start` — ``(x+s, x, ..., x)`` with ``x=(n-s)/k``
  (Lemma 10's near-critical bias);
* :func:`lemma8_start` — ``(n/3+s, n/3, n/3-s)`` (Lemma 8's 3-color
  configuration for the uniform-property lower bound);
* :func:`soda15_gap` — "almost all mass on few colors": low monochromatic
  distance but tiny relative bias, where the undecided-state dynamics is
  exponentially faster than 3-majority (E9);
* :func:`geometric_tail` — plurality plus geometrically decaying rivals,
  a realistic skewed workload for the examples.

Every generator — plus thin adapters over the plain
:class:`~repro.core.config.Configuration` factories (``balanced``,
``biased``, ``monochromatic``, ``two-color``, ``random``) — is registered
in :data:`repro.core.registry.WORKLOADS` under the kebab-case name shown
by ``repro scenarios``, with the uniform signature
``fn(n, k, **params) -> Configuration`` required by the declarative
:class:`~repro.scenario.ScenarioSpec` API.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.config import Configuration
from ..core.registry import WORKLOADS
from ..core.rng import make_rng

__all__ = [
    "paper_biased",
    "theorem1_bias",
    "theorem2_start",
    "corollary3_start",
    "theorem4_start",
    "lemma10_start",
    "lemma8_start",
    "soda15_gap",
    "geometric_tail",
]


def theorem1_bias(n: int, k: int, constant: float = 1.0) -> int:
    """Bias ``constant * sqrt(2 min(2k, (n/log n)^{1/3}) n log n)``.

    ``constant=1`` is the *shape* of Corollary 1's requirement (its 72 is a
    proof artifact; empirically a small constant suffices, which E7/E2
    demonstrate).  Clipped into ``[1, n - n//k]`` so the configuration is
    feasible at small scales.
    """
    lam = min(2.0 * k, (n / math.log(n)) ** (1.0 / 3.0))
    s = int(round(constant * math.sqrt(2.0 * lam * n * math.log(n))))
    return max(1, min(s, n - n // k if k > 1 else n - 1))


@WORKLOADS.register("paper-biased")
def paper_biased(n: int, k: int, constant: float = 1.0) -> Configuration:
    """Theorem 1-style start: balanced rivals, bias from :func:`theorem1_bias`."""
    return Configuration.biased(n, k, theorem1_bias(n, k, constant))


@WORKLOADS.register("theorem2")
def theorem2_start(n: int, k: int, eps: float = 0.25) -> Configuration:
    """Theorem 2's near-balanced start: max color at ``n/k + (n/k)^(1-eps)``."""
    if k < 2:
        raise ValueError("Theorem 2 needs k >= 2")
    imbalance = int(max(1, round((n / k) ** (1.0 - eps))))
    imbalance = min(imbalance, n - n // k)
    return Configuration.biased(n, k, imbalance)


@WORKLOADS.register("lemma10")
def lemma10_start(n: int, k: int, s: int | None = None) -> Configuration:
    """Lemma 10's configuration: ``c = (x + s, x, ..., x)``, ``x = (n-s)/k``.

    Defaults to the critical bias ``s = floor(sqrt(kn)/6)``.  Integer parts
    are balanced with largest-remainder so the plurality advantage over
    every rival is at least ``s`` (the lemma neglects integer parts).
    """
    if k < 2:
        raise ValueError("Lemma 10 needs k >= 2 (the paper assumes k >= 4)")
    if s is None:
        s = int(math.sqrt(k * n) / 6.0)
    s = max(1, min(s, n - 1))
    return Configuration.biased(n, k, s)


def lemma8_start(n: int, s: int | None = None) -> Configuration:
    """Lemma 8's 3-color start ``(n/3 + s, n/3, n/3 - s)``."""
    if s is None:
        s = int(round(math.sqrt(n * math.log(max(n, 3)))))
    third = n // 3
    s = max(1, min(s, third))
    counts = np.array([third + s, third, third - s], dtype=np.int64)
    counts[1] += n - counts.sum()  # absorb rounding into the middle color
    return Configuration(counts)


@WORKLOADS.register("soda15-gap")
def soda15_gap(n: int, k: int, heavy_colors: int = 2, heavy_fraction: float = 0.96) -> Configuration:
    """Low monochromatic-distance, low relative-bias configuration.

    ``heavy_colors`` colors share ``heavy_fraction`` of the agents almost
    evenly (plurality slightly ahead); the remaining mass spreads over the
    other ``k - heavy_colors`` colors.  ``md(c)`` stays O(heavy_colors)
    while 3-majority's clock ``n / c_max ≈ heavy_colors / heavy_fraction``
    is small — but under a *large* k-tail (heavy_fraction near the
    undecided-state's danger zone) the comparison flips; E9 sweeps this.
    """
    if not 1 <= heavy_colors < k:
        raise ValueError("need 1 <= heavy_colors < k")
    if not 0.0 < heavy_fraction <= 1.0:
        raise ValueError("heavy_fraction must be in (0, 1]")
    heavy_total = int(round(n * heavy_fraction))
    light_total = n - heavy_total
    heavy = Configuration.balanced(heavy_total, heavy_colors).counts.copy()
    heavy[0] += 0  # already +1 remainder-biased towards color 0
    if heavy_colors > 1 and heavy[0] == heavy[1]:
        # guarantee a strict plurality among the heavy block
        if heavy[1] > 0:
            heavy[1] -= 1
            heavy[0] += 1
    light = Configuration.balanced(light_total, k - heavy_colors).counts
    return Configuration(np.concatenate([heavy, light]))


@WORKLOADS.register("geometric-tail")
def geometric_tail(n: int, k: int, ratio: float = 0.7) -> Configuration:
    """Plurality plus geometrically decaying rivals: ``c_j ∝ ratio^j``."""
    if not 0.0 < ratio < 1.0:
        raise ValueError("ratio must be in (0, 1)")
    weights = ratio ** np.arange(k, dtype=float)
    return Configuration.from_fractions(n, weights)


@WORKLOADS.register("corollary3")
def corollary3_start(n: int, k: int, beta: float = 3.0, constant: float = 1.0) -> Configuration:
    """Corollary 3's start: ``c1 = n/β`` and bias ``c·sqrt(2 β n log n)``.

    Rivals split the rest evenly; if the requested bias exceeds the gap to
    the strongest rival, the plurality is topped up until it holds.
    """
    c1 = int(n / beta)
    s = int(constant * math.sqrt(2.0 * beta * n * math.log(n)))
    rivals = Configuration.balanced(n - c1, k - 1).counts
    top_rival = int(rivals.max())
    if c1 - top_rival < s:
        deficit = s - (c1 - top_rival)
        c1 += deficit
        rivals = Configuration.balanced(n - c1, k - 1).counts
    return Configuration(np.concatenate([[c1], rivals]))


@WORKLOADS.register("theorem4")
def theorem4_start(n: int, k: int) -> Configuration:
    """Theorem 4's balanced start with the max count at ``3n/(2k)``."""
    top = int(3 * n / (2 * k))
    rest = Configuration.balanced(n - top, k - 1).counts
    return Configuration(np.concatenate([[top], rest]))


# -- registry adapters -------------------------------------------------------
#
# Thin wrappers giving Configuration factories (and the k-fixed lemma-8
# family) the uniform ``fn(n, k, **params)`` workload signature.


@WORKLOADS.register("lemma8", summary="Lemma 8's 3-color start (n/3+s, n/3, n/3-s)")
def _lemma8_workload(n: int, k: int, s: int | None = None) -> Configuration:
    if k != 3:
        raise ValueError(f"the lemma8 workload is defined for k = 3, got k={k}")
    return lemma8_start(n, s)


@WORKLOADS.register("balanced", summary="as even a split of n agents over k colors as possible")
def _balanced_workload(n: int, k: int) -> Configuration:
    return Configuration.balanced(n, k)


@WORKLOADS.register("biased", summary="balanced rivals plus an explicit additive bias")
def _biased_workload(n: int, k: int, bias: int, plurality: int = 0) -> Configuration:
    return Configuration.biased(n, k, bias, plurality)


@WORKLOADS.register("monochromatic", summary="all n agents on one color")
def _monochromatic_workload(n: int, k: int, color: int = 0) -> Configuration:
    return Configuration.monochromatic(n, k, color)


@WORKLOADS.register("two-color", summary="binary configuration by fraction or additive bias")
def _two_color_workload(
    n: int, k: int, majority_fraction: float = 0.5, bias: int | None = None
) -> Configuration:
    if k != 2:
        raise ValueError(f"the two-color workload is defined for k = 2, got k={k}")
    return Configuration.two_color(n, majority_fraction, bias)


@WORKLOADS.register("random", summary="uniform multinomial split from a dedicated seed")
def _random_workload(n: int, k: int, seed: int = 0) -> Configuration:
    return Configuration.random(n, k, make_rng(seed))
