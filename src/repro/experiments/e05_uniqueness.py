"""E5 — Theorem 3: 3-majority is the *only* 3-input plurality solver.

Paper claim
-----------
Within the class D3 of 3-input dynamics (no extra state), any
``(n/4, 1/4)``-solver must have the clear-majority property (Lemma 7) and
any ``(ηn, 1/4)``-solver must have the uniform property (Lemma 8).  Hence
every rule outside M3 fails: starting from an Ω(n)-biased configuration it
elects a non-plurality color with probability > 1/4.

Measurement
-----------
For a panel of rules spanning the classification —

* 3-majority, first and uniform tie-break (in M3: the control),
* the median rule (clear-majority, δ=(0,6,0): violates uniformity),
* skewed clear-majority rules with δ=(1,3,2) and δ=(0,4,2) (Lemma 8's cases),
* the first/voter rule (uniform but violates clear-majority — Lemma 7),
* min and max rules (violate both),

we run replica ensembles from the lemmas' own configurations (Lemma 8's
3-color ``(n/3+s, n/3, n/3-s)`` and Lemma 7's 2-color ``(5n/8, 3n/8)``)
and report δ-counters, property flags and plurality-win rates with Wilson
CIs.  The reproduced shape: win rate ≈ 1 for M3 members, well below 3/4
for every non-member — and for the deterministic-drift rules (median,
skewed) near 0.
"""

from __future__ import annotations

from ..analysis.fitting import wilson_interval
from ..core.config import Configuration
from ..core.threeinput import (
    ThreeInputRule,
    first_rule,
    majority_rule,
    majority_uniform_rule,
    max_rule,
    median_rule,
    min_rule,
    skewed_rule,
)
from .harness import ExperimentSpec, sweep
from .results import ResultTable
from .workloads import lemma8_start

_SCALE = {
    "smoke": dict(n=3_000, replicas=24, max_rounds=3_000),
    "small": dict(n=10_000, replicas=64, max_rounds=10_000),
    "paper": dict(n=100_000, replicas=200, max_rounds=50_000),
}


def _panel() -> list[ThreeInputRule]:
    return [
        majority_rule(),
        majority_uniform_rule(),
        median_rule(),
        skewed_rule((1, 3, 2)),
        skewed_rule((0, 4, 2)),
        first_rule(),
        min_rule(),
        max_rule(),
    ]


def _workload_for(rule: ThreeInputRule, n: int) -> Configuration:
    """Lemma 7's 2-color start for clear-majority violators; Lemma 8's
    3-color start otherwise.

    For the min rule Lemma 8's plurality (color 0 = lowest index) is also
    the rule's attractor, which would mask the failure; we flip the
    configuration so the plurality sits on the *highest* index (the
    color-symmetric case the lemma invokes).  Symmetrically for max.
    """
    if not rule.has_clear_majority_property() and rule.name == "first-rule":
        return Configuration.two_color(n, bias=n // 4)
    cfg = lemma8_start(n)
    if rule.name == "min-rule":
        return cfg.permuted([2, 1, 0])
    return cfg


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    n = cfg["n"]
    table = ResultTable(
        title="E5: only M3 members solve plurality consensus (Theorem 3)",
        columns=[
            "rule",
            "engine",
            "delta",
            "clear_majority",
            "uniform",
            "in_M3",
            "workload_bias",
            "replicas",
            "win_rate",
            "win_ci_low",
            "win_ci_high",
            "solver_threshold",
            "is_solver_here",
        ],
    )
    rules = _panel()

    def build(params):
        rule = rules[params["idx"]]
        return rule, _workload_for(rule, n)

    points = [{"idx": i} for i in range(len(rules))]
    for point, rule in zip(
        sweep(
            points,
            build,
            replicas=cfg["replicas"],
            max_rounds=cfg["max_rounds"],
            seed=seed,
            experiment_id="E5",
        ),
        rules,
    ):
        ens = point.ensemble
        wins = int(ens.plurality_wins.sum())
        lo, hi = wilson_interval(wins, ens.replicas)
        workload = _workload_for(rule, n)
        table.add_row(
            rule=rule.name,
            engine=rule.resolved_engine(),
            delta="/".join(f"{d:g}" for d in rule.delta_counters()),
            clear_majority=rule.has_clear_majority_property(),
            uniform=rule.has_uniform_property(),
            in_M3=rule.is_three_majority(),
            workload_bias=workload.bias,
            replicas=ens.replicas,
            win_rate=ens.plurality_win_rate,
            win_ci_low=lo,
            win_ci_high=hi,
            solver_threshold=0.75,
            is_solver_here=lo > 0.75,
        )
    table.add_note(
        "Theorem 3: rules outside M3 fail with probability > 1/4 from Ω(n)-biased starts; "
        "M3 members should show win_rate ≈ 1"
    )
    table.add_note(
        "all rules run on the exact counts-level engine (O(k) pattern-decomposed law); "
        "cross-validated against agent-level stepping in tests/test_counts_engines.py"
    )
    return table


SPEC = ExperimentSpec(
    id="E5",
    title="Uniqueness of 3-majority in D3 (Theorem 3 / Lemmas 7-8)",
    claim=(
        "Any 3-input dynamics lacking the clear-majority or the uniform property elects "
        "a non-plurality color with probability > 1/4 even from Ω(n)-biased configurations."
    ),
    run=run,
    tags=("negative-result", "classification"),
)
