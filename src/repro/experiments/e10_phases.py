"""E10 — The three-phase structure of the Theorem 1 proof (Lemmas 3-5).

Paper claim
-----------
The upper-bound proof decomposes a 3-majority run into three phases:

* **Lemma 3** (``n/λ <= c1 <= 2n/3``): the bias multiplies by at least
  ``1 + c1/(4n)`` per round w.h.p.;
* **Lemma 4** (``2n/3 <= c1 <= n - ω(log n)``): the total minority mass
  shrinks by a factor <= 8/9 per round w.h.p.;
* **Lemma 5** (``c1 >= n - polylog(n)``): all minorities vanish in one
  round with probability ``1 - O(polylog(n)/n)``.

Measurement
-----------
Record full trajectories at several (n, k) via the declarative
``record=["counts"]`` metric trace, segment them with
:func:`repro.analysis.distance.phase_segments`, and report per phase: the
rounds spent, the observed per-round bias growth factor vs Lemma 3's
``1 + c1/(4n)``, the observed minority decay ratio vs 8/9, and the length
of the last-step phase (should be O(1) rounds).
"""

from __future__ import annotations

import numpy as np

from ..analysis.distance import (
    PHASE_LAST_STEP,
    PHASE_MAJORITY,
    PHASE_PLURALITY,
    bias_series,
    phase_segments,
)
from ..core.majority import ThreeMajority
from ..core.process import run_process
from ..core.rng import derive_seed
from .harness import ExperimentSpec
from .results import ResultTable
from .workloads import paper_biased

_SCALE = {
    "smoke": dict(points=[(20_000, 8)], replicas=3, max_rounds=5_000),
    "small": dict(points=[(100_000, 8), (100_000, 32)], replicas=8, max_rounds=20_000),
    "paper": dict(
        points=[(1_000_000, 8), (1_000_000, 32), (1_000_000, 128)], replicas=16, max_rounds=100_000
    ),
}


def _phase_stats(trajectory: np.ndarray) -> dict[str, dict[str, float]]:
    """Per-phase rounds, bias growth factors and minority decay ratios."""
    segments = phase_segments(trajectory)
    biases = bias_series(trajectory).astype(float)
    n = float(trajectory[0].sum())
    minority = n - trajectory.max(axis=1).astype(float)
    stats: dict[str, dict[str, float]] = {}
    for seg in segments:
        if seg.phase not in (PHASE_PLURALITY, PHASE_MAJORITY, PHASE_LAST_STEP):
            continue
        entry = stats.setdefault(
            seg.phase, {"rounds": 0.0, "growth": [], "decay": [], "lemma3_pred": []}  # type: ignore[dict-item]
        )
        entry["rounds"] += seg.length if seg.phase != PHASE_LAST_STEP else seg.length
        for t in range(seg.start_round, min(seg.end_round, trajectory.shape[0] - 2) + 1):
            if seg.phase == PHASE_PLURALITY and biases[t] > 0:
                entry["growth"].append(biases[t + 1] / biases[t])  # type: ignore[union-attr]
                c1 = float(trajectory[t].max())
                entry["lemma3_pred"].append(1.0 + c1 / (4.0 * n))  # type: ignore[union-attr]
            if seg.phase == PHASE_MAJORITY and minority[t] > 0:
                entry["decay"].append(minority[t + 1] / minority[t])  # type: ignore[union-attr]
    return stats


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    table = ResultTable(
        title="E10: three-phase decomposition of 3-majority runs (Lemmas 3-5)",
        columns=[
            "n",
            "k",
            "phase",
            "mean_rounds",
            "mean_growth_factor",
            "lemma3_prediction",
            "mean_decay_ratio",
            "lemma4_bound",
        ],
    )
    dyn = ThreeMajority()
    for n, k in cfg["points"]:
        config = paper_biased(n, k)
        agg: dict[str, dict[str, list[float]]] = {}
        for rep in range(cfg["replicas"]):
            rng = np.random.default_rng(derive_seed(seed, "E10", n, k, rep))
            res = run_process(
                dyn, config, max_rounds=cfg["max_rounds"], rng=rng, record=["counts"]
            )
            trajectory = res.trace.replica(0, "counts")
            for phase, st in _phase_stats(trajectory).items():
                entry = agg.setdefault(
                    phase, {"rounds": [], "growth": [], "decay": [], "lemma3_pred": []}
                )
                entry["rounds"].append(st["rounds"])
                entry["growth"].extend(st["growth"])  # type: ignore[arg-type]
                entry["decay"].extend(st["decay"])  # type: ignore[arg-type]
                entry["lemma3_pred"].extend(st["lemma3_pred"])  # type: ignore[arg-type]
        for phase in (PHASE_PLURALITY, PHASE_MAJORITY, PHASE_LAST_STEP):
            if phase not in agg:
                continue
            entry = agg[phase]
            table.add_row(
                n=n,
                k=k,
                phase=phase,
                mean_rounds=float(np.mean(entry["rounds"])),
                mean_growth_factor=(
                    float(np.mean(entry["growth"])) if entry["growth"] else float("nan")
                ),
                lemma3_prediction=(
                    float(np.mean(entry["lemma3_pred"])) if entry["lemma3_pred"] else float("nan")
                ),
                mean_decay_ratio=(
                    float(np.mean(entry["decay"])) if entry["decay"] else float("nan")
                ),
                lemma4_bound=8.0 / 9.0 if phase == PHASE_MAJORITY else float("nan"),
            )
    table.add_note(
        "phase 1: mean_growth_factor should exceed lemma3_prediction; phase 2: "
        "mean_decay_ratio should sit below 8/9; phase 3 should last ~1 round"
    )
    return table


SPEC = ExperimentSpec(
    id="E10",
    title="Three-phase trajectory structure (Lemmas 3-5)",
    claim=(
        "Below 2n/3 the bias multiplies by >= 1 + c1/(4n) per round; between 2n/3 and "
        "n - polylog the minority mass decays by <= 8/9 per round; above n - polylog all "
        "minorities die in one round."
    ),
    run=run,
    tags=("phases", "trajectory"),
)
