"""E9 — The related-work landscape: voter, two-choices, undecided-state.

Paper claims (Sections 1-2 and related work)
--------------------------------------------
1. Polling (1-majority / voter) — and two samples with uniform tie-break —
   converge to a *minority* color with constant probability even for k=2
   and bias Θ(n) [Hassin-Peleg]: the consensus color is j with probability
   exactly ``c_j/n``.
2. The two-choices rule (adopt iff both samples agree) slows down as k
   grows from balanced-ish starts: per-round progress is Θ(1/k).
3. The undecided-state dynamics converges in time ~ monochromatic distance
   ``md(c)`` [SODA'15]: on configurations with almost all mass on O(1)
   colors plus a long thin tail it is dramatically faster than 3-majority
   (whose clock is λ = n/c1)... but for k = ω(√n) it can *lose the
   plurality* (the paper's Section 1 caveat), while 3-majority does not.

Measurement
-----------
(a) voter minority-win rate vs the exact ``c2/n`` martingale value;
(b) two-choices consensus time vs k at matched relative bias;
(c) undecided-state vs 3-majority round counts on SODA'15 gap
    configurations of growing n (two heavy colors ~ n^{2/3}, thin tail);
(d) plurality-win rates of both dynamics at k ≈ 2√n (the undecided-state
    danger zone).
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.distance import monochromatic_distance
from ..analysis.fitting import wilson_interval
from ..core.config import Configuration
from ..core.majority import ThreeMajority
from ..core.process import run_ensemble
from ..core.rng import derive_seed
from ..core.undecided import UndecidedState
from ..core.voter import TwoChoices, Voter
from .harness import ExperimentSpec
from .results import ResultTable

_SCALE = {
    "smoke": dict(
        voter_n=300, voter_reps=200, tc_ks=[2, 8], tc_n=2_000, tc_reps=8,
        gap_ns=[3_000], gap_reps=6, danger_n=900, danger_reps=500, max_rounds=400_000,
    ),
    "small": dict(
        voter_n=500, voter_reps=500, tc_ks=[2, 4, 8, 16], tc_n=10_000, tc_reps=16,
        gap_ns=[3_000, 10_000, 30_000], gap_reps=10, danger_n=2_500, danger_reps=2_000,
        max_rounds=2_000_000,
    ),
    "paper": dict(
        voter_n=1_000, voter_reps=2_000, tc_ks=[2, 4, 8, 16, 32], tc_n=100_000, tc_reps=32,
        gap_ns=[10_000, 30_000, 100_000, 300_000], gap_reps=16, danger_n=10_000,
        danger_reps=10_000, max_rounds=5_000_000,
    ),
}


def gap_config(n: int) -> Configuration:
    """Two heavy colors ≈ n^{2/3} (plurality slightly ahead), unit tail.

    ``md(c)`` stays ≈ 2 + o(1) while 3-majority's clock λ = n/c1 ≈ n^{1/3}:
    the SODA'15 regime where undecided-state wins by an unbounded factor.
    """
    heavy = int(round(n ** (2 / 3)))
    gap = max(2, int(2 * math.sqrt(heavy)))
    tail_n = n - 2 * heavy - gap  # one agent per tail color
    counts = np.concatenate(
        [[heavy + gap, heavy], np.ones(tail_n, dtype=np.int64)]
    )
    return Configuration(counts)


def danger_config(n: int) -> Configuration:
    """k ≈ 2√n near-balanced with a √-order bias: undecided-state risk zone."""
    k = max(4, int(2 * math.sqrt(n)))
    s = max(2, int(math.sqrt(n) / 2))
    return Configuration.biased(n, k, s)


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    table = ResultTable(
        title="E9: dynamics landscape — voter / two-choices / undecided-state",
        columns=["panel", "params", "dynamics", "replicas", "metric", "value", "reference"],
    )

    # (a) voter martingale: minority wins with prob exactly c2/n.
    n = cfg["voter_n"]
    config = Configuration.two_color(n, bias=max(2, n // 5))
    ens = run_ensemble(
        Voter(),
        config,
        cfg["voter_reps"],
        max_rounds=cfg["max_rounds"],
        rng=np.random.default_rng(derive_seed(seed, "E9a")),
    )
    minority_rate = float((ens.winners == 1).mean())
    lo, hi = wilson_interval(int((ens.winners == 1).sum()), ens.replicas)
    table.add_row(
        panel="a-voter",
        params=f"n={n}, c=({config[0]},{config[1]})",
        dynamics="voter",
        replicas=ens.replicas,
        metric="minority_win_rate",
        value=minority_rate,
        reference=f"c2/n = {config[1] / n:.3f} (CI {lo:.3f}..{hi:.3f})",
    )

    # (b) two-choices stall in k.
    for k in cfg["tc_ks"]:
        n = cfg["tc_n"]
        config = Configuration.biased(n, k, max(4, int(3 * math.sqrt(n * math.log(n)))))
        ens = run_ensemble(
            TwoChoices(),
            config,
            cfg["tc_reps"],
            max_rounds=cfg["max_rounds"],
            rng=np.random.default_rng(derive_seed(seed, "E9b", k)),
        )
        table.add_row(
            panel="b-two-choices",
            params=f"n={n}, k={k}",
            dynamics="two-choices",
            replicas=ens.replicas,
            metric="median_rounds",
            value=ens.rounds_summary()["median"],
            reference="grows with k (Θ(1/k) per-round agreement mass)",
        )

    # (c) the SODA'15 exponential gap.
    for n in cfg["gap_ns"]:
        config = gap_config(n)
        md = monochromatic_distance(config.counts)
        for name, dyn in (("3-majority", ThreeMajority()), ("undecided", UndecidedState())):
            ens = run_ensemble(
                dyn,
                config,
                cfg["gap_reps"],
                max_rounds=cfg["max_rounds"],
                rng=np.random.default_rng(derive_seed(seed, "E9c", n, name)),
            )
            table.add_row(
                panel="c-gap",
                params=f"n={n}, md={md:.2f}, n^1/3={n ** (1 / 3):.0f}",
                dynamics=name,
                replicas=ens.replicas,
                metric="median_rounds",
                value=ens.rounds_summary()["median"],
                reference="undecided ~ md(c) log n;  3-majority ~ (n/c1) log n",
            )

    # (d) the undecided-state danger zone k = ω(√n): SODA'15 §3 exhibits
    # configurations where the plurality color *disappears in one round*
    # with constant probability — 3-majority never does this.
    n = cfg["danger_n"]
    config = danger_config(n)
    for name, dyn in (("3-majority", ThreeMajority()), ("undecided", UndecidedState())):
        rng = np.random.default_rng(derive_seed(seed, "E9d", name))
        reps = cfg["danger_reps"]
        if dyn.uses_extra_state:
            batch = np.tile(UndecidedState.extend_counts(config.counts), (reps, 1))
            nxt = dyn.step_many(batch, rng)[:, : config.k]
        else:
            batch = np.tile(config.counts, (reps, 1))
            nxt = dyn.step_many(batch, rng)
        died = float((nxt[:, config.plurality_color] == 0).mean())
        table.add_row(
            panel="d-danger",
            params=f"n={n}, k={config.k}, s={config.bias}",
            dynamics=name,
            replicas=reps,
            metric="plurality_died_round1",
            value=died,
            reference="undecided-state kills the plurality in one round w/ const prob at k=ω(√n)",
        )
    return table


SPEC = ExperimentSpec(
    id="E9",
    title="Dynamics landscape: voter, two-choices, undecided-state",
    claim=(
        "Voter elects color j with probability c_j/n (minority wins at constant rate); "
        "two-choices stalls as k grows; the undecided-state dynamics beats 3-majority on "
        "low-md(c) configurations but can lose the plurality at k = ω(√n)."
    ),
    run=run,
    tags=("baselines", "related-work"),
)
