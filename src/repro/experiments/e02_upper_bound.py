"""E2 — Theorem 1 / Corollary 1: convergence in O(min{2k,(n/log n)^{1/3}} log n).

Paper claim
-----------
From any configuration with bias ``s >= c sqrt(2 λ n log n)`` where
``λ = min(2k, (n/log n)^{1/3})``, the 3-majority dynamics reaches plurality
consensus in ``O(λ log n)`` rounds w.h.p.

Measurement
-----------
Two sweeps with the theorem's own bias (shape constant 1; the paper's 72
is a proof artifact):

* fixed ``n``, growing ``k`` — in this regime λ = 2k, so the paper predicts
  time linear in ``k log n``; we fit ``rounds ≈ a · λ log n`` and report
  the per-point ratio, a power-law exponent of rounds vs k, and the
  plurality-win rate (should be 1.0 throughout);
* fixed ``k``, growing ``n`` — λ saturates at 2k, so time should grow like
  ``log n`` only.

The reproduced shape: ratios roughly flat, exponent near 1 in the k-sweep,
and win rate 1.0.
"""

from __future__ import annotations

import math

from ..analysis.bounds import lambda_for, theorem1_rounds
from ..analysis.fitting import linear_fit_through_predictor, power_law_fit
from ..scenario import ScenarioSpec
from .harness import ExperimentSpec, sweep
from .results import ResultTable
from .workloads import paper_biased

_SCALE = {
    "smoke": dict(n_fixed=20_000, ks=[2, 4, 8], k_fixed=4, ns=[10_000, 40_000], replicas=8, max_rounds=4_000),
    "small": dict(
        n_fixed=100_000,
        ks=[2, 4, 8, 16, 32],
        k_fixed=8,
        ns=[10_000, 30_000, 100_000, 300_000],
        replicas=16,
        max_rounds=20_000,
    ),
    "paper": dict(
        n_fixed=1_000_000,
        ks=[2, 4, 8, 16, 32, 64],
        k_fixed=8,
        ns=[10_000, 100_000, 1_000_000, 10_000_000],
        replicas=32,
        max_rounds=100_000,
    ),
}


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    table = ResultTable(
        title="E2: 3-majority convergence time vs Theorem 1's λ log n",
        columns=[
            "sweep",
            "n",
            "k",
            "lambda",
            "bias",
            "replicas",
            "win_rate",
            "median_rounds",
            "p90_rounds",
            "lambda_logn",
            "ratio",
        ],
    )
    def build(params):
        # Declarative build: the sweep resolves the names through the
        # registries and overrides replicas/max_rounds/seed itself.
        return ScenarioSpec(
            dynamics="3-majority",
            initial="paper-biased",
            n=params["n"],
            k=params["k"],
        )

    # Sweep 1: k at fixed n.
    points_k = [{"n": cfg["n_fixed"], "k": k, "sweep": "k"} for k in cfg["ks"]]
    # Sweep 2: n at fixed k.
    points_n = [{"n": n, "k": cfg["k_fixed"], "sweep": "n"} for n in cfg["ns"]]

    medians_k: list[float] = []
    predictors_k: list[float] = []
    for point in sweep(
        points_k + points_n,
        build,
        replicas=cfg["replicas"],
        max_rounds=cfg["max_rounds"],
        seed=seed,
        experiment_id="E2",
    ):
        n, k = int(point.params["n"]), int(point.params["k"])
        lam = lambda_for(n, k)
        pred = theorem1_rounds(n, lam)
        summary = point.ensemble.rounds_summary()
        table.add_row(
            sweep=point.params["sweep"],
            n=n,
            k=k,
            **{"lambda": round(lam, 2)},
            bias=paper_biased(n, k).bias,
            replicas=point.ensemble.replicas,
            win_rate=point.ensemble.plurality_win_rate,
            median_rounds=summary["median"],
            p90_rounds=summary["p90"],
            lambda_logn=round(pred, 1),
            ratio=summary["median"] / pred if pred > 0 else float("nan"),
        )
        if point.params["sweep"] == "k" and not math.isnan(summary["median"]):
            medians_k.append(summary["median"])
            predictors_k.append(pred)

    if len(medians_k) >= 3:
        fit = linear_fit_through_predictor(predictors_k, medians_k)
        pk = power_law_fit([p["k"] for p in points_k][: len(medians_k)], medians_k)
        table.add_note(
            f"k-sweep: rounds ≈ {fit.coefficient:.3f}·λ·log(n) (R²={fit.r_squared:.3f}); "
            f"rounds ~ k^{pk.exponent:.2f} (95% CI {pk.exponent_ci()[0]:.2f}..{pk.exponent_ci()[1]:.2f})"
        )
    table.add_note(
        "Theorem 1 is an upper bound: the `ratio` column must stay bounded above by a "
        "modest constant (measured/predicted <= O(1)) with win_rate = 1.0"
    )
    return table


SPEC = ExperimentSpec(
    id="E2",
    title="Upper bound O(min{2k,(n/log n)^{1/3}} log n) (Theorem 1 / Corollary 1)",
    claim=(
        "With bias >= c·sqrt(2λ n log n), 3-majority converges to the plurality in "
        "O(λ log n) rounds w.h.p., λ = min(2k, (n/log n)^{1/3})."
    ),
    run=run,
    tags=("upper-bound", "scaling"),
)
