"""Result tables: the uniform output format of every experiment.

A :class:`ResultTable` is an ordered list of homogeneous rows (dicts) with
helpers for aggregation, ASCII rendering (the offline stand-in for the
figures a paper would plot) and CSV export.  Experiments also attach
`paper_expectation` strings so EXPERIMENTS.md can show claim vs measured
side by side.
"""

from __future__ import annotations

import csv
import io
import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ResultTable"]


def _format_cell(value: object, precision: int = 4) -> str:
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class ResultTable:
    """An ordered, column-typed table of experiment measurements."""

    title: str
    columns: Sequence[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append a row; keys must exactly match the declared columns."""
        missing = set(self.columns) - set(values)
        extra = set(values) - set(self.columns)
        if missing or extra:
            raise ValueError(
                f"row keys mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
            )
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[object]:
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    def filtered(self, predicate) -> "ResultTable":
        """New table containing only rows for which ``predicate(row)``."""
        out = ResultTable(title=self.title, columns=list(self.columns), notes=list(self.notes))
        out.rows = [dict(r) for r in self.rows if predicate(r)]
        return out

    # -- rendering ---------------------------------------------------------

    def render(self, precision: int = 4) -> str:
        """Fixed-width ASCII rendering (monospace terminal friendly)."""
        header = list(self.columns)
        body = [[_format_cell(row[c], precision) for c in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), 1)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append(sep)
        for r in body:
            lines.append(" | ".join(cell.rjust(w) for cell, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=list(self.columns))
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buf.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            fh.write(self.to_csv())

    @classmethod
    def from_rows(
        cls, title: str, rows: Iterable[Mapping[str, object]], columns: Sequence[str] | None = None
    ) -> "ResultTable":
        rows = [dict(r) for r in rows]
        if columns is None:
            if not rows:
                raise ValueError("cannot infer columns from no rows")
            columns = list(rows[0].keys())
        table = cls(title=title, columns=list(columns))
        for row in rows:
            table.add_row(**row)
        return table

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return self.render()
