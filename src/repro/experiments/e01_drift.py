"""E1 — Lemma 1 & Lemma 2: exact one-round expectations and bias drift.

Paper claim
-----------
Lemma 1: after one 3-majority round the expected count of color ``j`` is
``mu_j(c) = c_j (1 + (n c_j - sum_h c_h^2)/n^2)`` exactly.  Lemma 2: the
expected bias satisfies ``mu_1 - mu_j >= s (1 + (c1/n)(1 - c1/n))`` for
every non-plurality color.

Measurement
-----------
For a family of configurations (paper-biased, geometric-tail, random,
near-balanced) we run one-round replica ensembles through the standard
runner with a declarative ``record=["counts"]`` trace (the metric layer
of :mod:`repro.core.metrics` — no bespoke stepping loop), compare the
empirical mean count vector against Lemma 1 (reporting the max deviation
in units of the per-color CLT standard error) and the empirical mean bias
against Lemma 2's lower bound.  Agreement within a few standard errors at
every point reproduces both lemmas.
"""

from __future__ import annotations

import numpy as np

from ..analysis.expectations import expected_next_bias_lower_bound, expected_next_counts
from ..analysis.streaming import trace_moments
from ..core.config import Configuration
from ..core.majority import ThreeMajority
from ..core.process import run_ensemble
from ..core.rng import derive_seed
from .harness import ExperimentSpec
from .results import ResultTable
from .workloads import geometric_tail, paper_biased

_SCALE = {
    "smoke": dict(ns=[2_000], replicas=400),
    "small": dict(ns=[2_000, 20_000], replicas=2_000),
    "paper": dict(ns=[2_000, 20_000, 200_000], replicas=10_000),
}


def _workloads(n: int, rng: np.random.Generator) -> list[tuple[str, Configuration]]:
    return [
        ("paper-biased", paper_biased(n, 8)),
        ("geometric", geometric_tail(n, 12, ratio=0.75)),
        ("random", Configuration.random(n, 10, rng)),
        ("near-balanced", Configuration.biased(n, 6, max(2, n // 100))),
    ]


def run(scale: str, seed: int) -> ResultTable:
    cfg = _SCALE[scale]
    table = ResultTable(
        title="E1: one-round drift vs Lemma 1 / Lemma 2",
        columns=[
            "n",
            "workload",
            "k",
            "replicas",
            "max_dev_stderr",  # max_j |mean_j - mu_j| / stderr_j
            "mean_bias_next",
            "lemma2_bound",
            "drift_ok",
        ],
    )
    dyn = ThreeMajority()
    for n in cfg["ns"]:
        setup_rng = np.random.default_rng(derive_seed(seed, "e01-setup", n))
        for name, config in _workloads(n, setup_rng):
            rng = np.random.default_rng(derive_seed(seed, "e01", n, name))
            counts = config.counts
            R = cfg["replicas"]
            # One recorded round per replica: the ensemble runner draws the
            # same batched multinomial the old bespoke step_many loop did
            # (bit-identical at equal seed), and the counts trace is the
            # one-round sample.
            ens = run_ensemble(
                dyn, config, R, max_rounds=1, record=["counts"], rng=rng
            )
            nxt = ens.trace["counts"][:, 1, :]

            mu = expected_next_counts(counts)
            law = mu / n
            stderr = np.sqrt(np.maximum(n * law * (1 - law), 1e-9) / R)
            mean_counts = trace_moments(ens.trace, "counts", round_index=1).mean
            max_dev = float(np.max(np.abs(mean_counts - mu) / stderr))

            # Bias drift: empirical mean of (top-initial-color minus each
            # rival), compared against Lemma 2's bound on mu_1 - mu_j.
            plur = int(np.argmax(counts))
            rivals = [j for j in range(counts.size) if j != plur]
            per_rival = nxt[:, plur][:, None] - nxt[:, rivals]
            mean_bias_next = float(per_rival.mean(axis=0).min())
            bound = expected_next_bias_lower_bound(counts)
            # CLT slack: three stderr units of the bias difference.
            slack = 3.0 * float(np.sqrt((nxt[:, plur].var() + nxt[:, rivals].var(axis=0).max()) / R))
            table.add_row(
                n=n,
                workload=name,
                k=config.k,
                replicas=R,
                max_dev_stderr=max_dev,
                mean_bias_next=mean_bias_next,
                lemma2_bound=bound,
                drift_ok=mean_bias_next >= bound - slack,
            )
    table.add_note("max_dev_stderr ~ N(0,1) order statistics; values < ~5 confirm Lemma 1")
    table.add_note("drift_ok: empirical E[C1 - Cj] >= Lemma 2 bound (minus 3 CLT stderr)")
    return table


SPEC = ExperimentSpec(
    id="E1",
    title="One-round drift (Lemma 1 & Lemma 2)",
    claim=(
        "The expected next configuration follows mu_j = c_j(1 + (n c_j - sum c_h^2)/n^2) "
        "exactly, and the expected bias grows by at least the factor 1 + (c1/n)(1 - c1/n)."
    ),
    run=run,
    tags=("expectation", "drift"),
)
