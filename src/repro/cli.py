"""Command-line interface: experiments, figures and declarative scenarios.

Usage (installed as ``repro`` or via ``python -m repro.cli``)::

    repro list
    repro describe E5
    repro run E2 --scale small --seed 0
    repro run all --scale smoke --csv-dir out/
    repro scenarios
    repro metrics
    repro topologies
    repro simulate scenario.json --json
    repro simulate --dynamics 3-majority --initial paper-biased \\
        --n 100000 --k 8 --replicas 32 --seed 0 \\
        --record bias,plurality-fraction --record-every 1
    repro simulate --dynamics 3-majority --topology torus \\
        --n 10000 --k 4 --replicas 16 --seed 0
    repro batch specs.json --json
    repro cache stats
    repro cache clear
    repro serve --port 8321 --workers 2
    repro load --smoke --json

Each run prints the experiment's ResultTable; ``--csv-dir`` additionally
writes one CSV per experiment for downstream plotting.  ``simulate``
executes one declarative :class:`~repro.scenario.ScenarioSpec` — from a
JSON file or assembled from inline flags — and ``scenarios`` lists every
registered dynamics/workload/adversary/stopping-rule name a spec may
reference; ``metrics`` lists the per-round observables a spec's
``record`` field (or ``--record``) may name; ``topologies`` lists the
graph generators a spec's ``topology`` field (or ``--topology``) may
name.  ``batch`` pushes a JSON
array of scenarios through the :mod:`repro.serve` substrate
(content-addressed result cache + sharded executor, recorded TraceSets
included) — invalid items are reported per item, they never abort the
valid ones; ``cache`` inspects or clears that cache.  ``serve`` runs the
network-facing scenario service of :mod:`repro.service` in the
foreground, and ``load`` replays the seeded scenario corpus against a
service (spawning a fresh cold one by default) with per-endpoint
latency percentiles and an optional p95 budget.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .experiments.registry import ALL_EXPERIMENTS, get_experiment

__all__ = ["main", "build_parser"]


def _json_flag(text: str) -> dict:
    try:
        value = json.loads(text)
    except json.JSONDecodeError as exc:
        raise argparse.ArgumentTypeError(f"not valid JSON: {exc}") from exc
    if not isinstance(value, dict):
        raise argparse.ArgumentTypeError(f"expected a JSON object, got {type(value).__name__}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction suite for 'Simple Dynamics for Plurality Consensus' (SPAA'14)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments")

    describe = sub.add_parser("describe", help="show an experiment's paper claim")
    describe.add_argument("experiment", help="experiment id, e.g. E3")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    run.add_argument("--scale", default="small", choices=("smoke", "small", "paper"))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--csv-dir", default=None, help="directory for CSV exports")

    plot = sub.add_parser("plot", help="render an ASCII figure (or 'all')")
    plot.add_argument("figure", help="figure id, e.g. F3, or 'all'")
    plot.add_argument("--scale", default="small", choices=("smoke", "small", "paper"))
    plot.add_argument("--seed", type=int, default=0)

    scenarios = sub.add_parser(
        "scenarios", help="list registered dynamics/workloads/adversaries/stopping rules"
    )
    scenarios.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    metrics = sub.add_parser(
        "metrics", help="list registered per-round metrics a spec may record"
    )
    metrics.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    topologies = sub.add_parser(
        "topologies", help="list registered graph topologies a spec may name"
    )
    topologies.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    sim = sub.add_parser(
        "simulate", help="run a declarative scenario (JSON file or inline flags)"
    )
    sim.add_argument("scenario", nargs="?", default=None, help="path to a scenario JSON file")
    sim.add_argument("--dynamics", default=None, help="registered dynamics name")
    sim.add_argument("--initial", default=None, help="registered workload name")
    sim.add_argument("--adversary", default=None, help="registered adversary name")
    sim.add_argument(
        "--topology",
        default=None,
        help="registered graph topology name (see `repro topologies`; default: clique counts engine)",
    )
    sim.add_argument("--n", type=int, default=None, help="number of agents")
    sim.add_argument("--k", type=int, default=None, help="number of colors")
    sim.add_argument("--replicas", type=int, default=None)
    sim.add_argument("--max-rounds", type=int, default=None)
    sim.add_argument("--seed", type=int, default=None)
    sim.add_argument(
        "--engine",
        choices=("auto", "dense", "sparse"),
        default=None,
        help=(
            "ensemble batch layout: dense (R, k) stepping, sparse O(support) "
            "stepping for large k, or auto (default; sparse at k >= 128 when "
            "the scenario is sparse-eligible)"
        ),
    )
    sim.add_argument(
        "--dynamics-params", type=_json_flag, default=None, help='JSON object, e.g. \'{"h": 5}\''
    )
    sim.add_argument("--initial-params", type=_json_flag, default=None, help="JSON object")
    sim.add_argument("--adversary-params", type=_json_flag, default=None, help="JSON object")
    sim.add_argument(
        "--topology-params",
        type=_json_flag,
        default=None,
        help='JSON object, e.g. \'{"rows": 50, "cols": 200}\' (needs --topology)',
    )
    sim.add_argument(
        "--stopping",
        type=_json_flag,
        default=None,
        help='stopping-rule JSON, e.g. \'{"rule": "plurality-fraction", "fraction": 0.9}\'',
    )
    sim.add_argument(
        "--record",
        default=None,
        help="comma-separated metric names to trace per round (see `repro metrics`)",
    )
    sim.add_argument(
        "--record-every",
        type=int,
        default=None,
        help="record every m-th round (default 1; needs --record or a file record)",
    )
    sim.add_argument(
        "--counts-table-cap",
        type=int,
        default=None,
        help=(
            "override the h-plurality auto-engine composition-table row cap "
            "(default 100000; merged into dynamics_params)"
        ),
    )
    sim.add_argument("--json", action="store_true", help="emit machine-readable result JSON")
    sim.add_argument("--save-spec", default=None, help="also write the resolved spec JSON here")

    batch = sub.add_parser(
        "batch",
        help="execute a JSON batch of scenarios through the cache + sharded executor",
    )
    batch.add_argument(
        "specs",
        help="JSON file: an array of scenario objects (or {\"scenarios\": [...]})",
    )
    batch.add_argument("--json", action="store_true", help="emit machine-readable result JSON")
    batch.add_argument("--processes", type=int, default=None, help="pool width for cache misses")
    batch.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    batch.add_argument("--no-cache", action="store_true", help="execute without any result cache")

    cache = sub.add_parser("cache", help="inspect or clear the scenario result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="show entry counts and sizes")
    cache_stats.add_argument("--cache-dir", default=None)
    cache_stats.add_argument("--json", action="store_true")
    cache_clear = cache_sub.add_parser("clear", help="remove every cached result")
    cache_clear.add_argument("--cache-dir", default=None)
    cache_purge = cache_sub.add_parser(
        "purge", help="remove only entries from other engine schema versions"
    )
    cache_purge.add_argument("--cache-dir", default=None)

    serve = sub.add_parser(
        "serve", help="run the HTTP/JSON scenario service in the foreground"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321, help="0 picks a free port")
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--no-cache", action="store_true")
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool width for cache misses (0: in-process threads)",
    )
    serve.add_argument(
        "--shards", default=None, help="comma-separated consistent-hash node names"
    )
    serve.add_argument("--shard-self", default="local")
    serve.add_argument(
        "--memory-entries",
        type=int,
        default=None,
        help="in-memory LRU capacity of the result cache (entries)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline for work endpoints (504 past it)",
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=0,
        help="shed work requests with 429 past this many in flight (0: unbounded)",
    )
    serve.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        help="seconds before a worker attempt counts as stalled and retries",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds SIGTERM waits for in-flight work before closing",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        help="arm a repro.faults plan: inline JSON or @path/to/plan.json",
    )

    load = sub.add_parser(
        "load", help="replay the seeded scenario corpus against a service"
    )
    load.add_argument(
        "--corpus",
        default="benchmarks/load/corpus.json",
        help="corpus file (a JSON array of scenario objects)",
    )
    load.add_argument("--concurrency", type=int, default=4)
    load.add_argument(
        "--smoke",
        action="store_true",
        help="smoke tier: first 8 corpus entries, concurrency 2, 2000 ms p95 budget",
    )
    load.add_argument(
        "--p95-budget-ms",
        type=float,
        default=None,
        help="fail (exit 1) when the warm /v1/simulate p95 exceeds this",
    )
    load.add_argument(
        "--server",
        default=None,
        help="host:port of a running service (default: spawn a fresh cold one)",
    )
    load.add_argument(
        "--service-workers",
        type=int,
        default=0,
        help="worker-pool width for the spawned service",
    )
    load.add_argument(
        "--fault-plan",
        default=None,
        help=(
            "arm a repro.faults plan in the spawned service: inline JSON or "
            "@path/to/plan.json (the chaos smoke's switch)"
        ),
    )
    load.add_argument(
        "--service-deadline-ms",
        type=float,
        default=None,
        help="per-request deadline for the spawned service's work endpoints",
    )
    load.add_argument(
        "--service-max-in-flight",
        type=int,
        default=0,
        help="in-flight cap for the spawned service (429 sheds past it)",
    )
    load.add_argument(
        "--service-memory-entries",
        type=int,
        default=None,
        help=(
            "in-memory LRU capacity of the spawned service's cache; 1 forces "
            "disk reads so cache fault points can fire"
        ),
    )
    load.add_argument("--report", default=None, help="write the full JSON report here")
    load.add_argument("--json", action="store_true", help="print the full JSON report")
    load.add_argument(
        "--generate",
        action="store_true",
        help="deterministically (re)generate the corpus file and exit",
    )
    load.add_argument("--seed", type=int, default=0, help="corpus generation seed")
    load.add_argument(
        "--unique", type=int, default=24, help="unique specs when generating"
    )
    return parser


def _run_one(experiment_id: str, scale: str, seed: int, csv_dir: str | None) -> None:
    spec = get_experiment(experiment_id)
    start = time.perf_counter()
    table = spec(scale=scale, seed=seed)
    elapsed = time.perf_counter() - start
    print(table.render())
    print(f"[{spec.id}] completed in {elapsed:.1f}s at scale={scale!r}, seed={seed}")
    if csv_dir is not None:
        os.makedirs(csv_dir, exist_ok=True)
        path = os.path.join(csv_dir, f"{spec.id.lower()}_{scale}.csv")
        table.write_csv(path)
        print(f"[{spec.id}] wrote {path}")
    print()


def _apply_observation_flags(spec, args: argparse.Namespace):
    """Fold --record/--record-every/--counts-table-cap into the spec.

    These are run-shaping overrides (like --seed), accepted both inline
    and on top of a scenario file.
    """
    if args.record is not None:
        names = [name.strip() for name in args.record.split(",") if name.strip()]
        if not names:
            raise SystemExit("--record needs at least one metric name (see `repro metrics`)")
        every = args.record_every if args.record_every is not None else 1
        spec = spec.with_overrides(record={"metrics": names, "every": every})
    elif args.record_every is not None:
        if spec.record is None:
            raise SystemExit("--record-every needs --record or a record in the scenario file")
        spec = spec.with_overrides(record={**spec.record, "every": args.record_every})
    if args.counts_table_cap is not None:
        spec = spec.with_overrides(
            dynamics_params={**spec.dynamics_params, "counts_table_cap": args.counts_table_cap}
        )
    return spec


def _spec_from_args(args: argparse.Namespace):
    from .scenario import ScenarioSpec

    overrides = {
        key: value
        for key, value in (
            ("replicas", args.replicas),
            ("max_rounds", args.max_rounds),
            ("engine", args.engine),
            ("seed", args.seed),
        )
        if value is not None
    }
    if args.scenario is not None:
        spec = ScenarioSpec.from_file(args.scenario)
        inline_only = (
            "dynamics",
            "initial",
            "adversary",
            "topology",
            "n",
            "k",
            "dynamics_params",
            "initial_params",
            "adversary_params",
            "topology_params",
            "stopping",
        )
        clashes = [name for name in inline_only if getattr(args, name) is not None]
        if clashes:
            flags = ", ".join("--" + name.replace("_", "-") for name in clashes)
            raise SystemExit(
                f"{flags} cannot be combined with a scenario file; "
                "edit the file or drop the flags (only --replicas/--max-rounds/--seed/"
                "--engine/--record/--record-every/--counts-table-cap override a file)"
            )
        spec = spec.with_overrides(**overrides) if overrides else spec
        return _apply_observation_flags(spec, args)
    if args.dynamics is None or args.n is None or args.k is None:
        raise SystemExit("inline scenarios need at least --dynamics, --n and --k")
    fields = dict(
        dynamics=args.dynamics,
        n=args.n,
        k=args.k,
        dynamics_params=args.dynamics_params or {},
        initial_params=args.initial_params or {},
        adversary=args.adversary,
        adversary_params=args.adversary_params or {},
        topology=args.topology,
        topology_params=args.topology_params or {},
        stopping=args.stopping,
        **overrides,
    )
    if args.initial is not None:
        fields["initial"] = args.initial
    return _apply_observation_flags(ScenarioSpec(**fields), args)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .scenario import simulate_ensemble

    spec = _spec_from_args(args).validate()
    if args.save_spec:
        spec.save(args.save_spec)
    start = time.perf_counter()
    ens = simulate_ensemble(spec)
    elapsed = time.perf_counter() - start
    summary = ens.rounds_summary()
    record = {
        "spec": spec.to_dict(),
        "replicas": ens.replicas,
        "plurality_color": ens.plurality_color,
        "plurality_win_rate": ens.plurality_win_rate,
        "convergence_rate": ens.convergence_rate,
        "rounds": summary,
        "stop_reasons": ens.stop_reasons(),
        "trace": _trace_summary(ens.trace),
        "wall_seconds": elapsed,
    }
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    engine_note = "" if spec.engine == "auto" else f", engine={spec.engine}"
    print(
        f"scenario: {spec.dynamics} on {spec.initial} "
        f"(n={spec.n}, k={spec.k}, replicas={spec.replicas}, seed={spec.seed}{engine_note})"
    )
    if spec.topology:
        params = f" {spec.topology_params}" if spec.topology_params else ""
        print(f"topology: {spec.topology}{params}")
    if spec.adversary:
        print(f"adversary: {spec.adversary} {spec.adversary_params}")
    if spec.stopping:
        print(f"stopping: {spec.stopping}")
    print(
        f"plurality win rate {ens.plurality_win_rate:.3f}, "
        f"convergence rate {ens.convergence_rate:.3f}"
    )
    print(
        "rounds: "
        + ", ".join(f"{key}={value:.1f}" for key, value in summary.items())
    )
    reasons = ", ".join(f"{name}×{count}" for name, count in sorted(ens.stop_reasons().items()))
    print(f"stopped by: {reasons}")
    if ens.trace is not None:
        trace = ens.trace
        print(
            f"recorded: {', '.join(trace.metrics)} "
            f"({trace.n_rounds} rounds, every={trace.every}, "
            f"digest {trace.digest()[:12]})"
        )
    print(f"completed in {elapsed:.2f}s")
    return 0


def _trace_summary(trace) -> dict | None:
    """JSON-able TraceSet summary (metrics, shape, bit-identity digest)."""
    if trace is None:
        return None
    return {
        "metrics": list(trace.metrics),
        "every": trace.every,
        "rounds_recorded": trace.n_rounds,
        "replicas": trace.replicas,
        "digest": trace.digest(),
    }


def _open_cache(cache_dir: str | None):
    from .serve.cache import ResultCache, default_cache_dir

    return ResultCache(cache_dir if cache_dir is not None else default_cache_dir())


def _finite_or_none(value: float) -> float | None:
    """NaN/inf → None so ``--json`` output stays strict JSON."""
    import math

    return value if math.isfinite(value) else None


def _cmd_batch(args: argparse.Namespace) -> int:
    from .serve.envelope import prepare_specs
    from .serve.executor import run_batch

    with open(args.specs, encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "scenarios" in payload:
        payload = payload["scenarios"]
    if not isinstance(payload, list) or not payload:
        raise SystemExit(
            f"{args.specs} must hold a non-empty JSON array of scenario objects "
            '(or {"scenarios": [...]})'
        )
    # Validate every item up front: a malformed spec gets a per-item error
    # envelope (same shape the service wire format uses) instead of
    # aborting the batch before any valid item runs.
    prepared = prepare_specs(payload)
    valid = [(position, spec) for position, (spec, error) in enumerate(prepared) if spec]
    cache = None if args.no_cache else _open_cache(args.cache_dir)
    if valid:
        report = run_batch(
            [spec for _, spec in valid], cache=cache, processes=args.processes
        )
        by_position = {
            position: (result, key, source, run_error)
            for (position, _), result, key, source, run_error in zip(
                valid, report.results, report.keys, report.sources, report.errors
            )
        }
        summary = report.summary()
    else:
        by_position = {}
        summary = {
            "requests": 0, "unique": 0, "hits": 0, "misses": 0,
            "deduped": 0, "failed": 0, "retries": 0, "wall_seconds": 0.0,
        }

    items = []
    errors = 0
    for position, (spec, error) in enumerate(prepared):
        if error is not None:
            errors += 1
            items.append({"key": None, "source": "error", "error": error})
            continue
        result, key, source, run_error = by_position[position]
        if run_error is not None:
            # The spec validated but failed inside a worker: same envelope
            # shape, but keyed — siblings in the batch were unaffected.
            errors += 1
            items.append({"key": key, "source": source, "error": run_error})
            continue
        items.append(
            {
                "key": key,
                "source": source,
                "error": None,
                "dynamics": spec.dynamics,
                "n": spec.n,
                "k": spec.k,
                "replicas": result.replicas,
                "plurality_win_rate": _finite_or_none(result.plurality_win_rate),
                "convergence_rate": _finite_or_none(result.convergence_rate),
                "rounds": {
                    name: _finite_or_none(value)
                    for name, value in result.rounds_summary().items()
                },
                "stop_reasons": result.stop_reasons(),
                "trace": _trace_summary(result.trace),
            }
        )
    summary = {**summary, "requests": len(items), "errors": errors}
    exit_code = 0 if errors == 0 else 1
    if args.json:
        print(json.dumps({**summary, "items": items}, indent=2, sort_keys=True))
        return exit_code
    for item in items:
        if item["error"] is not None:
            print(f"[error] {item['error']['type']}: {item['error']['message']}")
            continue
        mean = item["rounds"]["mean"]
        print(
            f"[{item['source']:5s}] {item['key'][:12]}  "
            f"{item['dynamics']} n={item['n']} k={item['k']} "
            f"win={item['plurality_win_rate']:.3f} "
            f"rounds_mean={'n/a' if mean is None else format(mean, '.1f')}"
        )
    retries = summary.get("retries", 0)
    retry_note = f", {retries} worker retries" if retries else ""
    print(
        f"{summary['requests']} requests ({summary['unique']} unique): "
        f"{summary['hits']} cache hits, {summary['misses']} executed, "
        f"{summary['deduped']} deduped, {summary['errors']} failed{retry_note} "
        f"in {summary['wall_seconds']:.2f}s"
    )
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.__main__ import main as service_main

    forward = ["--host", args.host, "--port", str(args.port), "--workers", str(args.workers)]
    if args.cache_dir:
        forward += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        forward += ["--no-cache"]
    if args.shards:
        forward += ["--shards", args.shards, "--shard-self", args.shard_self]
    if args.memory_entries is not None:
        forward += ["--memory-entries", str(args.memory_entries)]
    if args.deadline_ms is not None:
        forward += ["--deadline-ms", str(args.deadline_ms)]
    if args.max_in_flight:
        forward += ["--max-in-flight", str(args.max_in_flight)]
    if args.worker_timeout is not None:
        forward += ["--worker-timeout", str(args.worker_timeout)]
    forward += ["--drain-grace", str(args.drain_grace)]
    if args.fault_plan:
        forward += ["--fault-plan", args.fault_plan]
    return service_main(forward)


def _parse_server(server: str) -> tuple[str, int]:
    """Accept ``host:port`` or ``http://host:port`` for ``repro load --server``."""
    text = server
    if "//" in text:
        text = text.split("//", 1)[1]
    host, sep, port = text.rstrip("/").rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"--server must be host:port or http://host:port, got {server!r}")
    return host, int(port)


def _cmd_load(args: argparse.Namespace) -> int:
    from .service.load import SMOKE_CONCURRENCY, SMOKE_ENTRIES, drive, write_corpus

    if args.generate:
        entries = write_corpus(args.corpus, seed=args.seed, unique=args.unique)
        print(f"wrote {entries} scenarios to {args.corpus} (seed={args.seed})")
        return 0
    with open(args.corpus, encoding="utf-8") as handle:
        specs = json.load(handle)
    if not isinstance(specs, list) or not specs:
        raise SystemExit(f"{args.corpus} must hold a non-empty JSON array of scenarios")
    concurrency = args.concurrency
    budget = args.p95_budget_ms
    if args.smoke:
        specs = specs[:SMOKE_ENTRIES]
        concurrency = min(concurrency, SMOKE_CONCURRENCY)
        if budget is None:
            budget = 2000.0
    report = drive(
        specs,
        concurrency=concurrency,
        server=None if args.server is None else _parse_server(args.server),
        service_workers=args.service_workers,
        p95_budget_ms=budget,
        fault_plan=args.fault_plan,
        deadline_ms=args.service_deadline_ms,
        max_in_flight=args.service_max_in_flight,
        memory_entries=args.service_memory_entries,
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    degraded = report.get("degraded", {})
    ok = (
        report["replay_identical"]
        and report.get("budget", {}).get("within_budget", True)
        and degraded.get("ok", True)
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if ok else 1
    for phase in ("cold", "warm", "lookup"):
        summary = report["phases"][phase]
        latency = summary["latency_ms"]
        sources = ", ".join(f"{k}×{v}" for k, v in sorted(summary["sources"].items()))
        print(
            f"{phase:6s} {summary['requests']:4d} requests in {summary['wall_seconds']:.2f}s "
            f"({summary['rps']:.1f} req/s)  p50={latency['p50']:.1f}ms "
            f"p95={latency['p95']:.1f}ms p99={latency['p99']:.1f}ms  [{sources}]"
        )
    print(
        f"replay identical: {report['replay_identical']}  "
        f"cache hit rate: {report['server_stats']['cache_hit_rate']}  "
        f"coalesced: {report['server_stats']['coalesced']}"
    )
    if degraded:
        statuses = ", ".join(f"{k}×{v}" for k, v in sorted(degraded["statuses"].items()))
        print(
            f"degraded ok: {degraded['ok']}  retried: {degraded['retried']}  "
            f"shed: {degraded['shed']}  deadline hits: {degraded['deadline_hits']}  "
            f"worker retries: {degraded['worker_retries']}  "
            f"quarantined: {degraded['cache_quarantined']}  [{statuses}]"
        )
    if "budget" in report:
        verdict = "within" if report["budget"]["within_budget"] else "OVER"
        print(
            f"warm p95 {report['budget']['warm_p95_ms']:.1f}ms is {verdict} the "
            f"{report['budget']['p95_budget_ms']:.0f}ms budget"
        )
    return 0 if ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = _open_cache(args.cache_dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    if args.cache_command == "purge":
        removed = cache.purge_stale()
        print(
            f"removed {removed} stale results (schema != {cache.schema_version}) "
            f"from {cache.root}"
        )
        return 0
    stats = cache.stats()
    if getattr(args, "json", False):
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"cache root:     {stats['root']}")
    print(f"schema version: {stats['schema_version']}")
    print(f"disk entries:   {stats['disk_entries']} ({stats['disk_bytes']} bytes)")
    return 0


def _cmd_metrics(as_json: bool) -> int:
    from .core.registry import METRICS

    import repro.core.metrics  # noqa: F401 — import registers METRICS

    if as_json:
        import numpy as np

        payload = {}
        for name, entry in METRICS.items():
            metric = entry.factory()
            payload[name] = {
                "summary": entry.summary,
                "dtype": np.dtype(metric.dtype).name,
                "vector": bool(metric.vector),
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("metrics (usable in ScenarioSpec record= / repro simulate --record):")
    for name, entry in METRICS.items():
        metric = entry.factory()
        shape = "(k,)" if metric.vector else "scalar"
        print(f"  {name:20s} {shape:7s} {entry.summary}")
    return 0


def _cmd_topologies(as_json: bool) -> int:
    from .core.registry import TOPOLOGIES
    from .scenario import ScenarioSpec

    ScenarioSpec.registries()  # force registration of every component
    if as_json:
        payload = {
            name: {
                "summary": entry.summary,
                "params": [p for p in entry.parameter_names() if p != "n"],
            }
            for name, entry in TOPOLOGIES.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("topologies (usable in ScenarioSpec topology= / repro simulate --topology):")
    for name, entry in TOPOLOGIES.items():
        params = ", ".join(p for p in entry.parameter_names() if p != "n")
        suffix = f"  [{params}]" if params else ""
        print(f"  {name:20s} {entry.summary}{suffix}")
    return 0


def _cmd_scenarios(as_json: bool) -> int:
    from .core.registry import ADVERSARIES, DYNAMICS, METRICS, STOPPING, TOPOLOGIES, WORKLOADS
    from .scenario import ScenarioSpec

    ScenarioSpec.registries()  # force registration of every component
    if as_json:
        print(json.dumps(ScenarioSpec.registries(), indent=2, sort_keys=True))
        return 0
    for title, registry in (
        ("dynamics", DYNAMICS),
        ("workloads (initial)", WORKLOADS),
        ("adversaries", ADVERSARIES),
        ("topologies", TOPOLOGIES),
        ("stopping rules", STOPPING),
        ("metrics (record)", METRICS),
    ):
        print(f"{title}:")
        for name, entry in registry.items():
            params = ", ".join(p for p in entry.parameter_names() if p not in ("n", "k"))
            suffix = f"  [{params}]" if params else ""
            print(f"  {name:22s} {entry.summary}{suffix}")
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for spec in ALL_EXPERIMENTS.values():
            print(f"{spec.id:4s} {spec.title}")
        return 0
    if args.command == "describe":
        spec = get_experiment(args.experiment)
        print(f"{spec.id}: {spec.title}")
        print(f"tags: {', '.join(spec.tags)}")
        print()
        print(spec.claim)
        return 0
    if args.command == "run":
        targets = (
            list(ALL_EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
        )
        for experiment_id in targets:
            _run_one(experiment_id, args.scale, args.seed, args.csv_dir)
        return 0
    if args.command == "plot":
        from .experiments.figures import FIGURES, render_figure

        targets = list(FIGURES) if args.figure.lower() == "all" else [args.figure]
        for figure_id in targets:
            print(render_figure(figure_id, scale=args.scale, seed=args.seed))
            print()
        return 0
    if args.command == "scenarios":
        return _cmd_scenarios(args.json)
    if args.command == "metrics":
        return _cmd_metrics(args.json)
    if args.command == "topologies":
        return _cmd_topologies(args.json)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "load":
        return _cmd_load(args)
    return 2  # pragma: no cover — argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
