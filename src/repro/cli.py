"""Command-line interface: list, describe and run the experiment suite.

Usage (installed as ``repro`` or via ``python -m repro.cli``)::

    repro list
    repro describe E5
    repro run E2 --scale small --seed 0
    repro run all --scale smoke --csv-dir out/

Each run prints the experiment's ResultTable; ``--csv-dir`` additionally
writes one CSV per experiment for downstream plotting.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .experiments.registry import ALL_EXPERIMENTS, get_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction suite for 'Simple Dynamics for Plurality Consensus' (SPAA'14)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments")

    describe = sub.add_parser("describe", help="show an experiment's paper claim")
    describe.add_argument("experiment", help="experiment id, e.g. E3")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    run.add_argument("--scale", default="small", choices=("smoke", "small", "paper"))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--csv-dir", default=None, help="directory for CSV exports")

    plot = sub.add_parser("plot", help="render an ASCII figure (or 'all')")
    plot.add_argument("figure", help="figure id, e.g. F3, or 'all'")
    plot.add_argument("--scale", default="small", choices=("smoke", "small", "paper"))
    plot.add_argument("--seed", type=int, default=0)
    return parser


def _run_one(experiment_id: str, scale: str, seed: int, csv_dir: str | None) -> None:
    spec = get_experiment(experiment_id)
    start = time.perf_counter()
    table = spec(scale=scale, seed=seed)
    elapsed = time.perf_counter() - start
    print(table.render())
    print(f"[{spec.id}] completed in {elapsed:.1f}s at scale={scale!r}, seed={seed}")
    if csv_dir is not None:
        os.makedirs(csv_dir, exist_ok=True)
        path = os.path.join(csv_dir, f"{spec.id.lower()}_{scale}.csv")
        table.write_csv(path)
        print(f"[{spec.id}] wrote {path}")
    print()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for spec in ALL_EXPERIMENTS.values():
            print(f"{spec.id:4s} {spec.title}")
        return 0
    if args.command == "describe":
        spec = get_experiment(args.experiment)
        print(f"{spec.id}: {spec.title}")
        print(f"tags: {', '.join(spec.tags)}")
        print()
        print(spec.claim)
        return 0
    if args.command == "run":
        targets = (
            list(ALL_EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
        )
        for experiment_id in targets:
            _run_one(experiment_id, args.scale, args.seed, args.csv_dir)
        return 0
    if args.command == "plot":
        from .experiments.figures import FIGURES, render_figure

        targets = list(FIGURES) if args.figure.lower() == "all" else [args.figure]
        for figure_id in targets:
            print(render_figure(figure_id, scale=args.scale, seed=args.seed))
            print()
        return 0
    return 2  # pragma: no cover — argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
