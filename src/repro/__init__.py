"""repro — a reproduction of *Simple Dynamics for Plurality Consensus*.

Becchetti, Clementi, Natale, Pasquale, Silvestri, Trevisan (SPAA 2014;
Distributed Computing 30(4), 2017).

The package simulates and analyses anonymous plurality-consensus dynamics
on the clique (and, as an extension, on general graphs):

* :mod:`repro.core` — configurations, the dynamics zoo (3-majority,
  h-plurality, median, undecided-state, voter, two-choices, the full
  3-input class of Theorem 3), F-bounded adversaries, process runners;
* :mod:`repro.analysis` — the paper's exact expectation formulas, Chernoff
  machinery, exact Markov-chain ground truth, scaling-law fitting;
* :mod:`repro.graphs` — replica-batched simulation on arbitrary topologies
  (named generators in :data:`repro.core.registry.TOPOLOGIES`, reachable
  from a :class:`~repro.scenario.ScenarioSpec` via its ``topology`` field);
* :mod:`repro.experiments` — the E1–E12 experiment suite reproducing each
  theorem/lemma of the paper, plus the beyond-the-paper topology family
  E13 (see DESIGN.md for the index).

Quickstart
----------
>>> from repro import Configuration, ThreeMajority, run_process
>>> cfg = Configuration.biased(n=100_000, k=10, bias=6_000)
>>> result = run_process(ThreeMajority(), cfg, rng=0)
>>> result.plurality_won, result.rounds  # doctest: +SKIP
(True, 23)
"""

from .core import (
    ADVERSARIES,
    DYNAMICS,
    METRICS,
    STOPPING,
    TOPOLOGIES,
    WORKLOADS,
    Adversary,
    AnyOfStop,
    BalancingAdversary,
    BiasThresholdStop,
    Configuration,
    CountsDynamics,
    Dynamics,
    EnsembleResult,
    HPlurality,
    MedianDynamics,
    Metric,
    MetricThresholdStop,
    MonochromaticStop,
    PluralityFractionStop,
    RecordSpec,
    TraceSet,
    PairwiseProtocol,
    PairwiseVoter,
    PopulationProcess,
    PopulationResult,
    ProcessResult,
    RandomAdversary,
    ReviveAdversary,
    RoundBudgetStop,
    StoppingRule,
    TargetedAdversary,
    ThreeInputRule,
    ThreeMajority,
    TwoChoices,
    TwoSampleUniform,
    UndecidedPopulation,
    UndecidedState,
    Voter,
    all_position_rules,
    first_rule,
    majority_rule,
    majority_uniform_rule,
    make_rng,
    max_rule,
    median_rule,
    min_rule,
    run_ensemble,
    run_process,
    skewed_rule,
    sparse_ineligibility,
    spawn_streams,
    stopping_from_dict,
    three_input_rule,
    three_majority_law,
)
from .faults import FaultPlan, FaultRule
from .scenario import ResolvedScenario, ScenarioSpec, simulate, simulate_ensemble
from .serve import BatchReport, ResultCache, cache_key, run_batch

__version__ = "1.7.0"

_SERVICE_EXPORTS = ("BackgroundServer", "ScenarioService", "ServiceClient", "ShardMap")


def __getattr__(name: str):
    # The network service (repro.service) is reached lazily so that plain
    # `import repro` never pays for the serving machinery it doesn't use.
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ADVERSARIES",
    "Adversary",
    "AnyOfStop",
    "BackgroundServer",
    "BalancingAdversary",
    "BatchReport",
    "BiasThresholdStop",
    "Configuration",
    "CountsDynamics",
    "DYNAMICS",
    "Dynamics",
    "EnsembleResult",
    "FaultPlan",
    "FaultRule",
    "HPlurality",
    "MedianDynamics",
    "MonochromaticStop",
    "PairwiseProtocol",
    "PairwiseVoter",
    "PopulationProcess",
    "PopulationResult",
    "PluralityFractionStop",
    "ProcessResult",
    "RandomAdversary",
    "ResolvedScenario",
    "ResultCache",
    "ReviveAdversary",
    "RoundBudgetStop",
    "STOPPING",
    "ScenarioService",
    "ScenarioSpec",
    "ServiceClient",
    "ShardMap",
    "TOPOLOGIES",
    "StoppingRule",
    "TargetedAdversary",
    "ThreeInputRule",
    "ThreeMajority",
    "TwoChoices",
    "TwoSampleUniform",
    "UndecidedPopulation",
    "WORKLOADS",
    "UndecidedState",
    "Voter",
    "__version__",
    "all_position_rules",
    "cache_key",
    "first_rule",
    "majority_rule",
    "majority_uniform_rule",
    "make_rng",
    "max_rule",
    "median_rule",
    "min_rule",
    "run_batch",
    "run_ensemble",
    "run_process",
    "simulate",
    "simulate_ensemble",
    "skewed_rule",
    "sparse_ineligibility",
    "spawn_streams",
    "stopping_from_dict",
    "three_input_rule",
    "three_majority_law",
]
