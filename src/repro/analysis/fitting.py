"""Scaling-law estimation for the convergence-time experiments.

The paper's bounds are asymptotic shapes — ``O(λ log n)``, ``Θ(k log n)``,
``Ω(k/h²)`` — so the experiments need to *fit* measured times against
candidate predictors and report how well each shape explains the data:

* :func:`power_law_fit` — log-log OLS slope (exponent) with a normal-theory
  confidence interval; used to confirm, e.g., time ~ k^1 in E2/E4 and
  speedup ~ h^2 in E6;
* :func:`linear_fit_through_predictor` — least-squares constant ``a`` in
  ``time ≈ a · predictor`` plus R², for predictors like ``k log n``;
* :func:`bootstrap_ci` — percentile bootstrap for medians/means of round
  counts (convergence-time distributions are skewed);
* :func:`wilson_interval` — CI for empirical success probabilities
  (plurality-win rates, Lemma 10 decrease frequencies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "PowerLawFit",
    "LinearFit",
    "power_law_fit",
    "linear_fit_through_predictor",
    "bootstrap_ci",
    "wilson_interval",
]


@dataclass
class PowerLawFit:
    """Result of fitting ``y ≈ C · x^exponent`` by log-log OLS."""

    exponent: float
    exponent_stderr: float
    log_prefactor: float
    r_squared: float

    @property
    def prefactor(self) -> float:
        return float(np.exp(self.log_prefactor))

    def exponent_ci(self, z: float = 1.96) -> tuple[float, float]:
        return (self.exponent - z * self.exponent_stderr, self.exponent + z * self.exponent_stderr)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.prefactor * np.asarray(x, dtype=float) ** self.exponent


def power_law_fit(x: np.ndarray, y: np.ndarray) -> PowerLawFit:
    """Fit ``y = C x^a`` via OLS on ``log y`` vs ``log x``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size < 3:
        raise ValueError("need matched 1-D arrays with at least 3 points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    res = stats.linregress(np.log(x), np.log(y))
    return PowerLawFit(
        exponent=float(res.slope),
        exponent_stderr=float(res.stderr),
        log_prefactor=float(res.intercept),
        r_squared=float(res.rvalue**2),
    )


@dataclass
class LinearFit:
    """Result of fitting ``y ≈ a · predictor`` (no intercept)."""

    coefficient: float
    r_squared: float

    def predict(self, predictor: np.ndarray) -> np.ndarray:
        return self.coefficient * np.asarray(predictor, dtype=float)


def linear_fit_through_predictor(predictor: np.ndarray, y: np.ndarray) -> LinearFit:
    """Least-squares ``a`` minimising ``||y - a · predictor||``; R² vs mean."""
    p = np.asarray(predictor, dtype=float)
    y = np.asarray(y, dtype=float)
    if p.shape != y.shape or p.ndim != 1 or p.size < 2:
        raise ValueError("need matched 1-D arrays with at least 2 points")
    denom = float(np.dot(p, p))
    if denom == 0:
        raise ValueError("predictor is identically zero")
    a = float(np.dot(p, y)) / denom
    resid = y - a * p
    ss_res = float(np.dot(resid, resid))
    centered = y - y.mean()
    ss_tot = float(np.dot(centered, centered))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else (1.0 if ss_res == 0 else 0.0)
    return LinearFit(coefficient=a, r_squared=r2)


def bootstrap_ci(
    values: np.ndarray,
    statistic=np.median,
    n_boot: int = 2000,
    alpha: float = 0.05,
    rng: np.random.Generator | int | None = None,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for an arbitrary statistic of a sample."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("empty sample")
    generator = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    idx = generator.integers(0, v.size, size=(n_boot, v.size))
    boots = np.apply_along_axis(statistic, 1, v[idx])
    lo, hi = np.quantile(boots, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    half = z * np.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials)) / denom
    lo = 0.0 if successes == 0 else max(0.0, center - half)
    hi = 1.0 if successes == trials else min(1.0, center + half)
    return lo, hi
