"""The paper's exact expectation formulas (Lemmas 1, 2, 4, 6, 9, 10).

These closed forms are the analytical spine of the paper; the library uses
them three ways:

* the exact counts-level engine samples ``Multinomial(n, mu/n)`` directly
  from Lemma 1's law;
* the test suite checks simulated one-round means against them;
* experiment E1 reports formula-vs-measured agreement, and E10 uses the
  drift factors to segment trajectories into the proof's three phases.

All functions take raw count vectors (any order; the bias helpers sort
internally where the paper assumes ``c1 >= c2 >= ...``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expected_next_counts",
    "expected_next_bias_lower_bound",
    "bias_growth_factor",
    "minority_mass_decay_factor",
    "expected_minority_mass",
    "lemma6_growth_cap",
    "lemma9_growth_cap",
    "expected_last_step_extinction_prob",
]


def expected_next_counts(counts: np.ndarray) -> np.ndarray:
    """Lemma 1: ``mu_j(c) = c_j (1 + (n c_j - sum_h c_h^2) / n^2)``.

    The exact expected configuration after one 3-majority round.
    """
    c = np.asarray(counts, dtype=np.float64)
    n = c.sum()
    if n <= 0:
        raise ValueError("empty configuration")
    sq = float(np.dot(c, c))
    return c * (1.0 + (n * c - sq) / n**2)


def expected_next_bias_lower_bound(counts: np.ndarray) -> float:
    """Lemma 2's bound: ``mu_1 - mu_j >= s (1 + (c1/n)(1 - c1/n))``.

    Returns the right-hand side for the sorted configuration; Lemma 2
    guarantees ``mu_(1) - mu_(j) >=`` this for every non-plurality j.
    """
    c = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    n = c.sum()
    if n <= 0:
        raise ValueError("empty configuration")
    s = c[0] - (c[1] if c.size > 1 else 0.0)
    f1 = c[0] / n
    return float(s * (1.0 + f1 * (1.0 - f1)))


def bias_growth_factor(counts: np.ndarray) -> float:
    """The per-round multiplicative drift ``1 + (c1/n)(1 - c1/n)`` of Lemma 2."""
    c = np.asarray(counts, dtype=np.float64)
    n = c.sum()
    if n <= 0:
        raise ValueError("empty configuration")
    f1 = c.max() / n
    return float(1.0 + f1 * (1.0 - f1))


def expected_minority_mass(counts: np.ndarray) -> float:
    """Exact ``mu_{-1} = sum_{j != plurality} mu_j`` after one round."""
    c = np.asarray(counts, dtype=np.float64)
    mu = expected_next_counts(c)
    return float(mu.sum() - mu[int(np.argmax(c))])


def minority_mass_decay_factor(counts: np.ndarray) -> float:
    """Lemma 4's bound on the minority-mass ratio when ``c1 >= 2n/3``.

    The proof shows ``mu_{-1} <= (1 - c1/n)(1 - (c1/n)(c1/n - c2/n)) * n``
    which is at most ``(7/9) * sum_{i != 1} c_i`` in the lemma's range; we
    return the exact expected ratio ``mu_{-1} / (n - c1)``.
    """
    c = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    n = c.sum()
    minority = n - c[0]
    if minority <= 0:
        return 0.0
    return expected_minority_mass(c) / minority


def lemma6_growth_cap(n: int, k: int, b: float) -> float:
    """Lemma 6: a color at ``n/k + a`` (a <= b <= n/k) stays below
    ``n/k + (1 + 3/k) b`` at the next round w.h.p.  Returns that cap."""
    if k <= 0:
        raise ValueError("k must be positive")
    return n / k + (1.0 + 3.0 / k) * b


def lemma9_growth_cap(k: int, h: int, cj: float) -> float:
    """Lemma 9: under h-plurality a color with ``n/k <= c_j <= 2n/k`` grows
    to at most ``(1 + 2 h^2 / k) c_j`` w.h.p.  Returns that cap."""
    if k <= 0 or h <= 0:
        raise ValueError("k and h must be positive")
    return (1.0 + 2.0 * h * h / k) * cj


def expected_last_step_extinction_prob(counts: np.ndarray) -> float:
    """Lemma 5: when ``c1 >= n - polylog``, all minorities die in one round.

    Returns the Markov bound ``1 - mu_{-1}`` clipped to [0, 1]: the lemma's
    lower bound on P(next round is monochromatic) via
    ``P(sum_{i != 1} C_i >= 1) <= mu_{-1}``.
    """
    mu_minus = expected_minority_mass(counts)
    return float(np.clip(1.0 - mu_minus, 0.0, 1.0))
