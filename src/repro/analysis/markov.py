"""Exact Markov-chain analysis of dynamics on small configuration spaces.

Conditioned on the current configuration, every agent updates
independently, so each dynamics induces an exact Markov chain on the set
of configurations (compositions of ``n`` into ``k`` parts — size
``C(n+k-1, k-1)``).  For small ``(n, k)`` we build the full transition
matrix and compute, via the absorbing-chain fundamental matrix:

* absorption (consensus) probabilities per color,
* expected rounds to absorption from any start.

This is the library's ground truth: the simulators are validated against
it, and it yields exact versions of the paper's qualitative claims at toy
scale (e.g. the voter model's ``P(win) = c_j / n`` martingale identity, or
the median dynamics absorbing at the median rather than the plurality).

Transition construction supports two dynamics shapes:

* *product-form* rules exposing :meth:`color_law` — the next configuration
  is ``Multinomial(n, law)``;
* *class-wise* rules exposing :meth:`class_transition_matrix` (median,
  two-choices, undecided-state) — the next configuration is the
  convolution of one multinomial per current-color class.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..core.dynamics import Dynamics

__all__ = ["enumerate_configurations", "transition_matrix", "MarkovAnalysis", "analyze"]


def enumerate_configurations(n: int, k: int) -> list[tuple[int, ...]]:
    """All compositions of ``n`` into ``k`` non-negative parts, lex order."""
    if n < 0 or k < 1:
        raise ValueError("need n >= 0 and k >= 1")

    def rec(remaining: int, slots: int):
        if slots == 1:
            yield (remaining,)
            return
        for first in range(remaining + 1):
            for rest in rec(remaining - first, slots - 1):
                yield (first, *rest)

    return list(rec(n, k))


def _log_multinomial_pmf(outcome: np.ndarray, total: int, p: np.ndarray) -> float:
    """Log-pmf of a multinomial outcome, tolerating zero-probability cells."""
    if outcome.sum() != total:
        return -math.inf
    log_p = np.full(p.size, -math.inf)
    pos = p > 0
    log_p[pos] = np.log(p[pos])
    if np.any((outcome > 0) & ~pos):
        return -math.inf
    coef = math.lgamma(total + 1) - sum(math.lgamma(x + 1) for x in outcome)
    return coef + float(np.sum(outcome[pos] * log_p[pos]))


def _multinomial_vector(total: int, p: np.ndarray, states: list[tuple[int, ...]]) -> np.ndarray:
    """Probability of each state in ``states`` under ``Multinomial(total, p)``."""
    out = np.zeros(len(states))
    for i, st in enumerate(states):
        out[i] = math.exp(_log_multinomial_pmf(np.asarray(st), total, p))
    return out


def _classwise_distribution(
    counts: np.ndarray, mat: np.ndarray, k: int
) -> dict[tuple[int, ...], float]:
    """Distribution of the summed outcome of one multinomial per class.

    ``mat[i]`` is the per-agent law for the ``counts[i]`` agents of class
    ``i``; the result is the exact convolution over classes, as a dict from
    outcome tuple to probability.
    """
    dist: dict[tuple[int, ...], float] = {tuple([0] * k): 1.0}
    for i, ci in enumerate(counts):
        ci = int(ci)
        if ci == 0:
            continue
        p = mat[i]
        outcomes = enumerate_configurations(ci, k)
        probs = _multinomial_vector(ci, p, outcomes)
        new: dict[tuple[int, ...], float] = {}
        for acc, pa in dist.items():
            if pa == 0.0:
                continue
            for outcome, po in zip(outcomes, probs):
                if po == 0.0:
                    continue
                key = tuple(a + o for a, o in zip(acc, outcome))
                new[key] = new.get(key, 0.0) + pa * po
        dist = new
    return dist


def transition_matrix(dynamics: Dynamics, n: int, k: int) -> tuple[np.ndarray, list[tuple[int, ...]]]:
    """Exact transition matrix of ``dynamics`` on configurations of (n, k).

    For dynamics with extra state (undecided-state) the state space is the
    compositions over ``k+1`` slots; callers should pass the *slot* count
    as ``k`` (i.e. colors + 1).
    """
    states = enumerate_configurations(n, k)
    index = {s: i for i, s in enumerate(states)}
    m = len(states)
    P = np.zeros((m, m))
    has_classwise = hasattr(dynamics, "class_transition_matrix")
    for i, state in enumerate(states):
        counts = np.asarray(state, dtype=np.int64)
        if counts.sum() == 0:
            P[i, i] = 1.0
            continue
        if has_classwise:
            mat = dynamics.class_transition_matrix(counts)  # type: ignore[attr-defined]
            dist = _classwise_distribution(counts, mat, k)
            for outcome, prob in dist.items():
                P[i, index[outcome]] += prob
        else:
            law = np.asarray(dynamics.color_law(counts), dtype=np.float64)
            P[i] = _multinomial_vector(n, law, states)
    # Normalise away accumulated round-off.
    P /= P.sum(axis=1, keepdims=True)
    return P, states


@dataclass
class MarkovAnalysis:
    """Absorbing-chain analysis results for one dynamics at one (n, k)."""

    states: list[tuple[int, ...]]
    transition: np.ndarray
    absorbing_states: list[int]
    absorption_probability: np.ndarray  # (num_states, num_absorbing)
    expected_absorption_time: np.ndarray  # (num_states,)

    def state_index(self, state: tuple[int, ...] | np.ndarray) -> int:
        key = tuple(int(x) for x in state)
        return self.states.index(key)

    def win_probability(self, start: tuple[int, ...] | np.ndarray, color: int) -> float:
        """P(absorb in the all-``color`` configuration | start)."""
        i = self.state_index(start)
        n = sum(self.states[0]) if self.states else 0
        for a, si in enumerate(self.absorbing_states):
            st = self.states[si]
            if st[color] == sum(st):
                return float(self.absorption_probability[i, a])
        raise ValueError(f"no absorbing state for color {color}")

    def expected_rounds(self, start: tuple[int, ...] | np.ndarray) -> float:
        return float(self.expected_absorption_time[self.state_index(start)])


def analyze(dynamics: Dynamics, n: int, k: int) -> MarkovAnalysis:
    """Full absorbing-chain analysis (suitable for small n, k).

    The monochromatic configurations are absorbing for every dynamics in
    the library (a property the paper notes for all h-dynamics); states
    from which absorption is unreachable would make the fundamental matrix
    singular — none of the implemented dynamics has such states.
    """
    P, states = transition_matrix(dynamics, n, k)
    total = n
    absorbing = [i for i, s in enumerate(states) if max(s) == total]
    transient = [i for i in range(len(states)) if i not in absorbing]

    m_t = len(transient)
    Q = P[np.ix_(transient, transient)]
    R = P[np.ix_(transient, absorbing)]
    fundamental = np.linalg.solve(np.eye(m_t) - Q, np.eye(m_t))
    B = fundamental @ R  # absorption probabilities from transient states
    t = fundamental @ np.ones(m_t)  # expected absorption times

    num_abs = len(absorbing)
    absorption_probability = np.zeros((len(states), num_abs))
    expected_time = np.zeros(len(states))
    for a, si in enumerate(absorbing):
        absorption_probability[si, a] = 1.0
    for row, si in enumerate(transient):
        absorption_probability[si] = B[row]
        expected_time[si] = t[row]
    return MarkovAnalysis(
        states=states,
        transition=P,
        absorbing_states=absorbing,
        absorption_probability=absorption_probability,
        expected_absorption_time=expected_time,
    )
