"""Mean-field (ODE) approximation of the dynamics.

The continuous-time analyses the paper's related work relies on
([21, 8, 3]) replace the stochastic process with its mean-field limit:
the color-fraction vector ``f = c/n`` evolves by

    ``df/dt = law(f) - f``,

where ``law`` is the per-agent next-color distribution.  The paper
explicitly notes such real-valued differential-equation arguments do *not*
establish w.h.p. bounds for the discrete parallel model — this module
exists to make that comparison quantitative: integrate the ODE, compare
with stochastic trajectories, and measure where the approximation breaks
(small biases, where fluctuations of order √n dominate — exactly Lemma
10's regime).

Also provides the deterministic *discrete* mean-field iteration
``f_{t+1} = law(f_t)`` (one synchronous round in expectation), which is the
natural object for the paper's round-based statements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from ..core.dynamics import Dynamics

__all__ = ["MeanFieldResult", "discrete_mean_field", "integrate_mean_field", "mean_field_drift"]


def _law_of_fractions(dynamics: Dynamics, fractions: np.ndarray, scale_n: int) -> np.ndarray:
    """Evaluate the dynamics' color law on a fraction vector.

    The laws are exposed on integer counts; they are scale-free (depend on
    ``c/n`` only), so we evaluate on a large virtual population and accept
    the O(1/scale_n) rounding error.
    """
    f = np.clip(np.asarray(fractions, dtype=np.float64), 0.0, None)
    total = f.sum()
    if total <= 0:
        raise ValueError("fraction vector is empty")
    counts = np.rint(f / total * scale_n).astype(np.int64)
    if counts.sum() == 0:
        counts[int(np.argmax(f))] = scale_n
    return np.asarray(dynamics.color_law(counts), dtype=np.float64)


def mean_field_drift(dynamics: Dynamics, scale_n: int = 10_000_000):
    """Return the drift field ``F(f) = law(f) - f`` as a callable."""

    def drift(_t: float, f: np.ndarray) -> np.ndarray:
        law = _law_of_fractions(dynamics, f, scale_n)
        return law - f / max(f.sum(), 1e-12)

    return drift


@dataclass
class MeanFieldResult:
    """Trajectory of the mean-field system."""

    times: np.ndarray
    fractions: np.ndarray  # (T, k)

    @property
    def final(self) -> np.ndarray:
        return self.fractions[-1]

    def winner(self, atol: float = 1e-3) -> int | None:
        """Consensus color if the final state is (nearly) monochromatic."""
        f = self.final
        if f.max() >= 1.0 - atol:
            return int(np.argmax(f))
        return None

    def rounds_to_fraction(self, fraction: float) -> float | None:
        """First time the leading color reaches ``fraction`` (None if never)."""
        lead = self.fractions.max(axis=1)
        idx = np.nonzero(lead >= fraction)[0]
        if idx.size == 0:
            return None
        return float(self.times[idx[0]])


def discrete_mean_field(
    dynamics: Dynamics,
    fractions: np.ndarray,
    rounds: int,
    scale_n: int = 10_000_000,
) -> MeanFieldResult:
    """Iterate the expected synchronous round ``f <- law(f)``.

    This is the deterministic skeleton of the parallel model: for
    3-majority it reproduces Lemma 1's drift exactly (modulo the 1/scale_n
    discretisation), so the bias grows by the factor of Lemma 2 each step.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    f = np.asarray(fractions, dtype=np.float64)
    f = f / f.sum()
    out = [f.copy()]
    for _ in range(rounds):
        f = _law_of_fractions(dynamics, f, scale_n)
        f = f / f.sum()
        out.append(f.copy())
    traj = np.asarray(out)
    return MeanFieldResult(times=np.arange(rounds + 1, dtype=float), fractions=traj)


def integrate_mean_field(
    dynamics: Dynamics,
    fractions: np.ndarray,
    t_max: float,
    *,
    num_points: int = 200,
    scale_n: int = 10_000_000,
    rtol: float = 1e-8,
) -> MeanFieldResult:
    """Integrate the continuous mean-field ODE ``df/dt = law(f) - f``.

    Continuous time `t` is comparable to parallel rounds (each agent
    updates at unit rate).
    """
    if t_max <= 0:
        raise ValueError("t_max must be positive")
    f0 = np.asarray(fractions, dtype=np.float64)
    f0 = f0 / f0.sum()
    drift = mean_field_drift(dynamics, scale_n)
    times = np.linspace(0.0, t_max, num_points)
    sol = solve_ivp(drift, (0.0, t_max), f0, t_eval=times, rtol=rtol, atol=1e-10)
    if not sol.success:
        raise RuntimeError(f"mean-field integration failed: {sol.message}")
    fractions_t = np.clip(sol.y.T, 0.0, None)
    fractions_t /= fractions_t.sum(axis=1, keepdims=True)
    return MeanFieldResult(times=sol.t, fractions=fractions_t)
