"""Concentration bounds and theorem-side predictions.

Appendix A of the paper (Chernoff forms 1-3, the reverse Chernoff bound of
Greenberg-Mohri / Mousavi, Jensen) plus calculators for the quantities the
theorems promise: the required initial bias, the λ parameter, and the
predicted round counts for Theorem 1, Corollaries 1-3 and the lower bounds
of Theorems 2 and 4.  The experiment modules print these side by side with
measurements.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "chernoff_upper_mult",
    "chernoff_upper_additive",
    "reverse_chernoff",
    "jensen_mean_square",
    "lambda_for",
    "required_bias",
    "required_bias_general",
    "theorem1_rounds",
    "corollary1_rounds",
    "theorem2_lower_rounds",
    "theorem2_k_range",
    "theorem4_lower_rounds",
    "lemma10_critical_bias",
    "lemma10_probability_floor",
]


# -- Appendix A -------------------------------------------------------------


def chernoff_upper_mult(mu: float, delta: float) -> float:
    """Lemma 11(1)/(2): ``P(X >= (1+delta) mu)`` upper bound.

    Form 1 (``exp(-delta^2 mu / 4)``) for ``0 < delta <= 4``; form 2
    (``exp(-delta mu)``) for ``delta > 4``.
    """
    if mu < 0 or delta <= 0:
        raise ValueError("need mu >= 0 and delta > 0")
    if delta <= 4:
        return math.exp(-delta * delta * mu / 4.0)
    return math.exp(-delta * mu)


def chernoff_upper_additive(n: int, lam: float) -> float:
    """Lemma 11(3): ``P(X >= mu + lam) <= exp(-2 lam^2 / n)``."""
    if n <= 0 or lam < 0:
        raise ValueError("need n > 0 and lam >= 0")
    return math.exp(-2.0 * lam * lam / n)


def reverse_chernoff(mu: float, t: float) -> float:
    """Theorem 5 (reverse Chernoff): ``P(X - mu >= t) >= exp(-2t^2/mu)/4``.

    Valid for a sum of independent Bernoullis with success probability
    <= 1/4 and ``0 < t < m - mu``; returns the lower bound.
    """
    if mu <= 0 or t <= 0:
        raise ValueError("need mu > 0 and t > 0")
    return 0.25 * math.exp(-2.0 * t * t / mu)


def jensen_mean_square(values: np.ndarray) -> tuple[float, float]:
    """Lemma 12 instance used by Lemma 6: ``mean(v)^2 <= mean(v^2)``.

    Returns ``(lhs, rhs)`` so callers (and tests) can assert the inequality.
    """
    v = np.asarray(values, dtype=np.float64)
    return float(v.mean() ** 2), float((v * v).mean())


# -- theorem-side calculators ------------------------------------------------


def lambda_for(n: int, k: int) -> float:
    """Corollary 1's λ: ``min(2k, (n / log n)^(1/3))``."""
    if n < 2 or k < 1:
        raise ValueError("need n >= 2 and k >= 1")
    return min(2.0 * k, (n / math.log(n)) ** (1.0 / 3.0))


def required_bias_general(n: int, lam: float, constant: float = 72.0) -> float:
    """Theorem 1's bias requirement ``constant * sqrt(2 λ n log n)``.

    The paper's constant 72 is an artifact of the proof; experiments may
    pass a smaller empirical constant (the bound's *shape* is what we
    reproduce).
    """
    if n < 2 or lam <= 0:
        raise ValueError("need n >= 2 and lam > 0")
    return constant * math.sqrt(2.0 * lam * n * math.log(n))


def required_bias(n: int, k: int, constant: float = 72.0) -> float:
    """Corollary 1's bias requirement with λ = min(2k, (n/log n)^{1/3})."""
    return required_bias_general(n, lambda_for(n, k), constant)


def theorem1_rounds(n: int, lam: float) -> float:
    """Theorem 1's convergence-time scale ``λ log n`` (no hidden constant)."""
    if n < 2 or lam <= 0:
        raise ValueError("need n >= 2 and lam > 0")
    return lam * math.log(n)


def corollary1_rounds(n: int, k: int) -> float:
    """Corollary 1's scale ``min(2k, (n/log n)^{1/3}) log n``."""
    return theorem1_rounds(n, lambda_for(n, k))


def theorem2_lower_rounds(n: int, k: int) -> float:
    """Theorem 2's lower-bound scale ``k log n`` (valid for k <= (n/log n)^{1/4})."""
    if n < 2 or k < 1:
        raise ValueError("need n >= 2 and k >= 1")
    return k * math.log(n)


def theorem2_k_range(n: int) -> float:
    """Largest k for which Theorem 2 applies: ``(n / log n)^{1/4}``."""
    return (n / math.log(n)) ** 0.25


def theorem4_lower_rounds(k: int, h: int) -> float:
    """Theorem 4's lower-bound scale ``k / h^2``."""
    if k < 1 or h < 1:
        raise ValueError("need k >= 1 and h >= 1")
    return k / (h * h)


def lemma10_critical_bias(n: int, k: int) -> float:
    """Lemma 10's critical bias ``sqrt(k n) / 6``."""
    if n < 1 or k < 1:
        raise ValueError("need n >= 1 and k >= 1")
    return math.sqrt(k * n) / 6.0


def lemma10_probability_floor() -> float:
    """Lemma 10's constant: bias decreases with probability >= 1/(16 e)."""
    return 1.0 / (16.0 * math.e)
