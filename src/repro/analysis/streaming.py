"""Streaming statistics for huge replica ensembles.

At paper scale some experiments draw 10⁴–10⁵ one-round replicas; holding
every outcome wastes memory when only summary statistics are reported.
:class:`StreamingMoments` implements Welford/Chan parallel-merge updates
(numerically stable single-pass mean/variance, vector-valued), and
:class:`StreamingQuantiles` keeps a bounded uniform reservoir for
approximate quantiles — both mergeable, so chunked or multiprocess
producers combine exactly.

The module also consumes the columnar
:class:`~repro.core.metrics.TraceSet` traces the runners emit:
:func:`trace_moments` accumulates one recorded round across replicas and
:func:`trace_round_means` reduces a whole trace to per-round mean/stderr
series, honouring each replica's valid prefix (``n_recorded``) so
early-stopped replicas never contribute padding.
"""

from __future__ import annotations

import numpy as np

from ..core.metrics import TraceSet

__all__ = [
    "StreamingMoments",
    "StreamingQuantiles",
    "trace_moments",
    "trace_round_means",
]


class StreamingMoments:
    """Single-pass vector mean/variance (Welford, with Chan merging)."""

    def __init__(self, dim: int):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self.count = 0
        self._mean = np.zeros(dim)
        self._m2 = np.zeros(dim)

    def push(self, sample: np.ndarray) -> None:
        """Add one length-``dim`` observation."""
        x = np.asarray(sample, dtype=np.float64)
        if x.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {x.shape}")
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    def push_batch(self, samples: np.ndarray) -> None:
        """Add a ``(rows, dim)`` block (merged via Chan's formula)."""
        block = np.asarray(samples, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != self.dim:
            raise ValueError(f"expected (rows, {self.dim}), got {block.shape}")
        rows = block.shape[0]
        if rows == 0:
            return
        other = StreamingMoments(self.dim)
        other.count = rows
        other._mean = block.mean(axis=0)
        other._m2 = ((block - other._mean) ** 2).sum(axis=0)
        self.merge(other)

    def merge(self, other: "StreamingMoments") -> None:
        """Combine with another accumulator (exact, order-independent)."""
        if other.dim != self.dim:
            raise ValueError("dimension mismatch")
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean.copy()
            self._m2 = other._m2.copy()
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean = self._mean + delta * (other.count / total)
        self._m2 = self._m2 + other._m2 + delta**2 * (self.count * other.count / total)
        self.count = total

    @property
    def mean(self) -> np.ndarray:
        if self.count == 0:
            raise ValueError("no observations")
        return self._mean.copy()

    def variance(self, ddof: int = 1) -> np.ndarray:
        if self.count <= ddof:
            raise ValueError(f"need more than {ddof} observations")
        return self._m2 / (self.count - ddof)

    def stderr(self) -> np.ndarray:
        """Standard error of the mean."""
        return np.sqrt(self.variance() / self.count)


class StreamingQuantiles:
    """Bounded uniform-reservoir quantile sketch (Vitter's algorithm R)."""

    def __init__(self, capacity: int = 4096, rng: np.random.Generator | int | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._reservoir = np.empty(capacity)
        self._seen = 0
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    def push(self, value: float) -> None:
        if self._seen < self.capacity:
            self._reservoir[self._seen] = value
        else:
            j = int(self._rng.integers(0, self._seen + 1))
            if j < self.capacity:
                self._reservoir[j] = value
        self._seen += 1

    def push_batch(self, values: np.ndarray) -> None:
        for v in np.asarray(values, dtype=np.float64).ravel():
            self.push(float(v))

    @property
    def seen(self) -> int:
        return self._seen

    def quantile(self, q: float) -> float:
        if self._seen == 0:
            raise ValueError("no observations")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        data = self._reservoir[: min(self._seen, self.capacity)]
        return float(np.quantile(data, q))

    def median(self) -> float:
        return self.quantile(0.5)


def _resolve_round_index(trace: TraceSet, round_index: int) -> int:
    T = trace.n_rounds
    index = round_index + T if round_index < 0 else round_index
    if not 0 <= index < T:
        raise IndexError(f"round_index {round_index} out of range for {T} recorded rounds")
    return index


def trace_moments(trace: TraceSet, name: str, round_index: int = -1) -> StreamingMoments:
    """Cross-replica moments of one recorded metric at one recorded round.

    Only replicas whose valid prefix covers ``round_index`` contribute
    (``trace.n_recorded`` — zero padding past a replica's stopping round
    never enters the accumulator).  Scalar metrics accumulate as
    dimension 1, vector metrics as dimension ``k``; the batch is pushed in
    one Chan merge, so the mean of a full-column slice is bit-identical to
    ``values.mean(axis=0)``.
    """
    index = _resolve_round_index(trace, round_index)
    values = trace[name][:, index]
    valid = trace.n_recorded > index
    block = values[valid].astype(np.float64)
    if block.ndim == 1:
        block = block[:, None]
    moments = StreamingMoments(block.shape[1])
    moments.push_batch(block)
    return moments


def trace_round_means(trace: TraceSet, name: str) -> dict[str, np.ndarray]:
    """Per-round mean/stderr series of a scalar metric across replicas.

    Returns ``{"rounds", "mean", "stderr", "replicas"}`` arrays of length
    ``T`` (``stderr`` is NaN where fewer than two replicas were still
    recording).  The masked reduction is exactly what every experiment's
    bespoke "average the curves, drop finished replicas" loop used to do.
    """
    values = trace[name]
    if values.ndim != 2:
        raise ValueError(f"trace_round_means needs a scalar metric, {name!r} is vector")
    mask = trace.valid_mask()
    counts = mask.sum(axis=0)
    floats = values.astype(np.float64)
    safe = np.maximum(counts, 1)
    mean = np.where(counts > 0, (floats * mask).sum(axis=0) / safe, np.nan)
    dev = np.where(mask, floats - mean[None, :], 0.0)
    var = np.where(counts > 1, (dev**2).sum(axis=0) / np.maximum(counts - 1, 1), np.nan)
    stderr = np.sqrt(var / safe)
    return {
        "rounds": trace.rounds.copy(),
        "mean": mean,
        "stderr": stderr,
        "replicas": counts.astype(np.int64),
    }
