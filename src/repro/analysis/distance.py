"""Configuration distances and trajectory phase analysis.

* :func:`monochromatic_distance` — the SODA'15 quantity ``md(c)`` that
  governs the undecided-state dynamics (experiment E9's gap workloads);
* :func:`total_variation` — TV distance between configurations viewed as
  distributions over colors;
* :func:`classify_phase` / :func:`phase_segments` — decompose a 3-majority
  trajectory into the three phases of the upper-bound proof
  (Lemma 3: growth to 2n/3; Lemma 4: exponential minority decay to
  ``n - polylog``; Lemma 5: one-shot extinction), used by E10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "monochromatic_distance",
    "total_variation",
    "bias_series",
    "classify_phase",
    "phase_segments",
    "PhaseSegment",
    "PHASE_PLURALITY",
    "PHASE_MAJORITY",
    "PHASE_LAST_STEP",
    "PHASE_DONE",
]

PHASE_PLURALITY = "plurality-to-majority"  # c1 <= 2n/3       (Lemma 3)
PHASE_MAJORITY = "majority-to-almost-all"  # 2n/3 < c1 <= n-L (Lemma 4)
PHASE_LAST_STEP = "last-step"  # c1 > n - L                    (Lemma 5)
PHASE_DONE = "monochromatic"


def monochromatic_distance(counts: np.ndarray) -> float:
    """``md(c) = sum_i (c_i / c_max)^2`` (Becchetti et al., SODA'15).

    Ranges from 1 (monochromatic) to k (perfectly balanced); the
    undecided-state dynamics converges in time ~ md(c) while 3-majority
    needs ~ c_max-relative time — the source of the exponential gap.
    """
    c = np.asarray(counts, dtype=np.float64)
    cmax = c.max()
    if cmax <= 0:
        raise ValueError("monochromatic distance undefined for empty configuration")
    f = c / cmax
    return float(np.dot(f, f))


def total_variation(counts_a: np.ndarray, counts_b: np.ndarray) -> float:
    """TV distance between the color distributions of two configurations."""
    a = np.asarray(counts_a, dtype=np.float64)
    b = np.asarray(counts_b, dtype=np.float64)
    if a.sum() <= 0 or b.sum() <= 0:
        raise ValueError("empty configuration")
    pa = a / a.sum()
    pb = b / b.sum()
    if pa.size != pb.size:
        raise ValueError("configurations must have the same number of colors")
    return 0.5 * float(np.abs(pa - pb).sum())


def bias_series(trajectory: np.ndarray) -> np.ndarray:
    """Per-round bias ``s(c) = c_(1) - c_(2)`` of a ``(T, k)`` trajectory."""
    traj = np.asarray(trajectory, dtype=np.int64)
    if traj.ndim != 2:
        raise ValueError("trajectory must be (rounds, k)")
    if traj.shape[1] == 1:
        return traj[:, 0].astype(np.int64)
    part = np.partition(traj, traj.shape[1] - 2, axis=1)
    return (part[:, -1] - part[:, -2]).astype(np.int64)


def classify_phase(counts: np.ndarray, last_step_threshold: float | None = None) -> str:
    """Which phase of the Theorem 1 proof a configuration is in.

    ``last_step_threshold`` defaults to ``log(n)^2`` (the paper's
    polylog(n); any fixed power works for the classification).
    """
    c = np.asarray(counts, dtype=np.int64)
    n = int(c.sum())
    if n <= 0:
        raise ValueError("empty configuration")
    c1 = int(c.max())
    if c1 == n:
        return PHASE_DONE
    if last_step_threshold is None:
        last_step_threshold = np.log(max(n, 3)) ** 2
    if c1 <= 2 * n / 3:
        return PHASE_PLURALITY
    if c1 > n - last_step_threshold:
        return PHASE_LAST_STEP
    return PHASE_MAJORITY


@dataclass
class PhaseSegment:
    """A maximal run of consecutive rounds spent in one phase."""

    phase: str
    start_round: int
    end_round: int  # inclusive

    @property
    def length(self) -> int:
        return self.end_round - self.start_round + 1


def phase_segments(trajectory: np.ndarray, last_step_threshold: float | None = None) -> list[PhaseSegment]:
    """Segment a ``(T, k)`` trajectory into its proof phases, in order."""
    traj = np.asarray(trajectory, dtype=np.int64)
    if traj.ndim != 2 or traj.shape[0] == 0:
        raise ValueError("trajectory must be a non-empty (rounds, k) array")
    segments: list[PhaseSegment] = []
    for t in range(traj.shape[0]):
        phase = classify_phase(traj[t], last_step_threshold)
        if segments and segments[-1].phase == phase:
            segments[-1].end_round = t
        else:
            segments.append(PhaseSegment(phase=phase, start_round=t, end_round=t))
    return segments
