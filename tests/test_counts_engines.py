"""Cross-validation of the exact counts-level engines against agent-level stepping.

Two layers of evidence that the closed-form laws are the true per-agent
marginals:

* **exactness** — the O(k) pattern-decomposed :meth:`ThreeInputRule.color_law`
  must match the brute-force O(k³) sum over all ordered triples
  (:meth:`~repro.core.threeinput.ThreeInputRule.color_law_reference`) to
  floating-point precision, and the h-plurality composition law must
  reproduce Lemma 1 exactly at ``h = 3`` and the voter law at ``h ∈ {1, 2}``;

* **statistics** — aggregated agent-level steps must be consistent with the
  law under a chi-square goodness-of-fit test and a total-variation
  tolerance, for 3-majority, median, min/max, skewed and uniform-distinct
  rules across k ∈ {2, 3, 5, 8}, and for h-plurality with h ∈ {2, 4, 5}.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro import (
    BalancingAdversary,
    Configuration,
    HPlurality,
    RandomAdversary,
    ReviveAdversary,
    TargetedAdversary,
    ThreeInputRule,
    ThreeMajority,
    majority_rule,
    majority_uniform_rule,
    max_rule,
    median_rule,
    min_rule,
    run_ensemble,
    skewed_rule,
    three_majority_law,
)
from repro.core.majority import _CompositionTable
from repro.core.threeinput import DISTINCT_PATTERNS, PAIR_PATTERNS

KS = (2, 3, 5, 8)

#: Fixed configurations per k — all colors well supported so chi-square
#: expected counts stay comfortably large.
COUNTS = {
    2: np.array([60, 40]),
    3: np.array([45, 33, 22]),
    5: np.array([30, 25, 20, 15, 10]),
    8: np.array([22, 18, 15, 13, 11, 9, 7, 5]),
}


def _rule_panel():
    return [
        majority_rule(),
        majority_uniform_rule(),
        median_rule(),
        min_rule(),
        max_rule(),
        skewed_rule((1, 3, 2)),
    ]


def _agent_variant(rule: ThreeInputRule) -> ThreeInputRule:
    return ThreeInputRule(rule.pair_choice, rule.distinct_choice, rule.name, engine="agent")


def _chi_square_ok(observed: np.ndarray, law: np.ndarray, total: int) -> None:
    """Assert aggregated one-hot draws are consistent with ``law``."""
    expected = law * total
    # Pool ultra-rare cells into the largest one to keep the chi-square
    # approximation honest; none of the fixtures should trigger this.
    assert expected.min() > 1.0, "fixture produced a degenerate expected cell"
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    crit = float(stats.chi2.isf(1e-6, df=law.size - 1))
    assert chi2 < crit, f"chi2={chi2:.1f} crit={crit:.1f} obs={observed} exp={expected}"
    tv = 0.5 * float(np.abs(observed / total - law).sum())
    assert tv < 0.02, f"TV distance {tv:.4f} too large"


class TestThreeInputLawExactness:
    @pytest.mark.parametrize("k", KS)
    def test_fast_law_matches_brute_force(self, k):
        for rule in _rule_panel():
            fast = rule.color_law(COUNTS[k])
            ref = rule.color_law_reference(COUNTS[k])
            assert np.allclose(fast, ref, atol=1e-12), (rule.name, k)
            assert fast.sum() == pytest.approx(1.0)
            assert (fast >= 0).all()

    def test_fast_law_matches_brute_force_random_rules(self, rng):
        # Random members of the position-based family, including non-major
        # pair choices, at a k beyond the test grid.
        for i in range(10):
            pair = {p: ["major", "minor", "low", "high"][rng.integers(4)] for p in PAIR_PATTERNS}
            distinct = {pat: int(rng.integers(3)) for pat in DISTINCT_PATTERNS}
            rule = ThreeInputRule(pair, distinct, name=f"random-{i}")
            counts = rng.integers(1, 40, size=11)
            assert np.allclose(
                rule.color_law(counts), rule.color_law_reference(counts), atol=1e-12
            )

    def test_majority_law_is_lemma1(self):
        for k in KS:
            assert np.allclose(
                majority_rule().color_law(COUNTS[k]), three_majority_law(COUNTS[k])
            )

    def test_batch_law_matches_per_row(self, rng):
        rule = skewed_rule((0, 4, 2))
        batch = rng.integers(1, 50, size=(9, 6))
        assert np.allclose(
            rule.color_law_batch(batch), np.stack([rule.color_law(row) for row in batch])
        )


class TestThreeInputStatistical:
    @pytest.mark.parametrize("k", KS)
    def test_agent_engine_matches_counts_law(self, k):
        counts = COUNTS[k]
        n = int(counts.sum())
        steps = 400
        for rule in _rule_panel():
            agent = _agent_variant(rule)
            rng = np.random.default_rng(abs(hash((rule.name, k))) % 2**32)
            acc = np.zeros(k)
            for _ in range(steps):
                acc += agent.step(counts, rng)
            _chi_square_ok(acc, rule.color_law(counts), n * steps)

    def test_counts_engine_matches_law_too(self):
        # The multinomial engine itself, same aggregation, closes the loop.
        counts = COUNTS[5]
        rule = median_rule()
        rng = np.random.default_rng(7)
        acc = np.zeros(5)
        steps = 400
        for _ in range(steps):
            acc += rule.step(counts, rng)
        _chi_square_ok(acc, rule.color_law(counts), int(counts.sum()) * steps)

    def test_ensembles_statistically_equivalent(self):
        cfg = Configuration([600, 300, 100])
        fast = run_ensemble(majority_rule(), cfg, 32, rng=1, max_rounds=2_000)
        slow = run_ensemble(_agent_variant(majority_rule()), cfg, 32, rng=2, max_rounds=2_000)
        assert fast.plurality_win_rate == slow.plurality_win_rate == 1.0
        assert abs(fast.rounds_summary()["median"] - slow.rounds_summary()["median"]) < 3.0


class TestHPluralityExactness:
    @pytest.mark.parametrize("k", KS)
    def test_h3_composition_table_is_lemma1(self, k):
        p = COUNTS[k] / COUNTS[k].sum()
        table = _CompositionTable(3, k)
        assert np.allclose(table.law(p), three_majority_law(COUNTS[k]), atol=1e-12)

    @pytest.mark.parametrize("h", (1, 2))
    def test_small_h_collapses_to_voter(self, h):
        counts = COUNTS[5]
        assert np.allclose(HPlurality(h).color_law(counts), counts / counts.sum())
        assert np.allclose(_CompositionTable(h, 5).law(counts / counts.sum()),
                           counts / counts.sum(), atol=1e-12)

    @pytest.mark.parametrize("h", (4, 5))
    @pytest.mark.parametrize("k", KS)
    def test_law_is_distribution(self, h, k):
        law = HPlurality(h).color_law(COUNTS[k])
        assert law.sum() == pytest.approx(1.0)
        assert (law >= 0).all()

    def test_law_handles_zero_counts(self):
        law = HPlurality(5).color_law(np.array([30, 0, 20, 0]))
        assert law.sum() == pytest.approx(1.0)
        assert law[1] == 0.0 and law[3] == 0.0

    def test_batch_law_matches_per_row(self, rng):
        dyn = HPlurality(5)
        batch = rng.integers(1, 50, size=(7, 4))
        assert np.allclose(
            dyn.color_law_batch(batch), np.stack([dyn.color_law(row) for row in batch])
        )

    def test_batch_law_chunked_paths_match(self, rng):
        # Shrinking the cell budget forces the replica-block and streamed
        # paths; both must agree with the unchunked evaluation exactly.
        batch = rng.integers(1, 50, size=(13, 5))
        reference = HPlurality(5).color_law_batch(batch)
        replica_blocked = HPlurality(5)
        replica_blocked._MAX_TABLE_CELLS = HPlurality.composition_count(5, 5) * 5  # table ok, batch not
        streamed = HPlurality(5)
        streamed._MAX_TABLE_CELLS = 32  # even the table must stream
        for dyn in (replica_blocked, streamed):
            assert np.allclose(dyn.color_law_batch(batch), reference, atol=1e-12)


class TestHPluralityStatistical:
    @pytest.mark.parametrize("h", (2, 4, 5))
    @pytest.mark.parametrize("k", KS)
    def test_agent_engine_matches_composition_law(self, h, k):
        counts = COUNTS[k]
        n = int(counts.sum())
        law = HPlurality(h).color_law(counts)
        agent = HPlurality(h, engine="agent")
        rng = np.random.default_rng(h * 1000 + k)
        steps = 400
        acc = np.zeros(k)
        for _ in range(steps):
            acc += agent.step(counts, rng)
        _chi_square_ok(acc, law, n * steps)

    def test_counts_step_many_matches_law(self):
        dyn = HPlurality(5)
        counts = COUNTS[5]
        rng = np.random.default_rng(11)
        batch = np.tile(counts, (300, 1))
        out = dyn.step_many(batch, rng)
        assert (out.sum(axis=1) == counts.sum()).all()
        _chi_square_ok(out.sum(axis=0).astype(float), dyn.color_law(counts),
                       int(counts.sum()) * 300)


class TestEngineSelection:
    def test_three_input_engines(self):
        assert majority_rule().resolved_engine() == "counts"
        assert _agent_variant(majority_rule()).resolved_engine() == "agent"
        with pytest.raises(ValueError, match="unknown engine"):
            ThreeInputRule({p: "major" for p in PAIR_PATTERNS}, "uniform", engine="fast")

    def test_hplurality_auto_resolution(self):
        assert HPlurality(3).resolved_engine(1_000) == "counts"  # closed form, any k
        assert HPlurality(5).resolved_engine(16) == "counts"  # small table
        assert HPlurality(5).resolved_engine(64) == "agent"  # table too large for auto
        assert HPlurality(8).resolved_engine(4) == "agent"  # no law beyond h=5

    def test_hplurality_forced_counts_validates(self):
        assert HPlurality(5, engine="counts").resolved_engine(8) == "counts"
        with pytest.raises(ValueError, match="unavailable"):
            HPlurality(8, engine="counts").resolved_engine(4)

    def test_three_majority_engine_kwarg(self):
        assert ThreeMajority(engine="agent").agent_level
        assert ThreeMajority(engine="counts").engine == "counts"
        with pytest.raises(ValueError, match="conflicts"):
            ThreeMajority(agent_level=True, engine="counts")

    def test_three_majority_agent_engine_covers_batch_path(self, rng):
        # engine="agent" must hold on step_many too, not just step —
        # otherwise ensemble cross-validation would compare the law to itself.
        from repro import CountsDynamics

        assert ThreeMajority.step_many is not CountsDynamics.step_many
        dyn = ThreeMajority(engine="agent")
        out = dyn.step_many(np.tile([50, 30, 20], (6, 1)), rng)
        assert out.shape == (6, 3)
        assert (out.sum(axis=1) == 100).all()

    def test_hplurality_streamed_law_matches_table(self):
        # Force the streaming path by shrinking the cache cap; the law must
        # be identical to the whole-table evaluation.
        dyn = HPlurality(5)
        counts = np.array([22, 18, 15, 13, 11, 9, 7, 5])
        whole = dyn.color_law(counts)
        small_cap = HPlurality(5)
        small_cap._MAX_TABLE_CELLS = 64  # instance override: stream in tiny blocks
        streamed = small_cap.color_law(counts)
        assert np.allclose(streamed, whole, atol=1e-12)
        assert streamed.sum() == pytest.approx(1.0)

    def test_empty_batches_round_trip(self, rng):
        # (0, k) batches must come back as (0, k) on every engine path.
        empty = np.zeros((0, 3), dtype=np.int64)
        for dyn in (
            ThreeMajority(),
            ThreeMajority(engine="agent"),
            HPlurality(5),
            HPlurality(5, engine="agent"),
            majority_rule(),
            _agent_variant(majority_rule()),
        ):
            out = dyn.step_many(empty, rng)
            assert out.shape == (0, 3), dyn.name

    def test_hplurality_law_exists_whenever_supported(self):
        # supports_exact_law() == True must guarantee color_law computes,
        # even at a k where the composition table exceeds the cache cap.
        dyn = HPlurality(4)
        assert dyn.supports_exact_law()
        k = 70  # C(73, 4) * 70 cells > _MAX_TABLE_CELLS
        assert dyn.composition_count(4, k) * k > dyn._MAX_TABLE_CELLS
        law = dyn.color_law(np.arange(1, k + 1))
        assert law.sum() == pytest.approx(1.0)
        assert (law >= 0).all()

    def test_supports_exact_law_is_cached_and_structural(self):
        dyn = ThreeMajority()
        assert dyn.supports_exact_law()
        assert dyn._supports_exact_law is True  # cached, no throwaway call
        from repro.core.dynamics import Dynamics

        class NoLaw(Dynamics):
            def step(self, counts, rng):
                return counts

        class RaisingLaw(NoLaw):
            def color_law(self, counts):
                raise RuntimeError("arbitrary failure must not mean 'supported'")

        assert not NoLaw().supports_exact_law()
        # Overriding color_law means "has a law"; incidental exceptions from a
        # probe can no longer be misread because no probe is ever made.
        assert RaisingLaw().supports_exact_law()
        assert not HPlurality(6).supports_exact_law()
        assert HPlurality(4).supports_exact_law()


class TestSparseEnsembleCrossValidation:
    """Sparse vs dense vs agent engines agree with the exact law.

    The sparse layout consumes randomness differently, so equality is
    statistical: the fixture support is embedded at scattered positions
    inside a large dead color space, one-round ensembles are aggregated,
    and the observed counts are chi-square/TV-tested against the dense
    law restricted to the support — for the sparse engine, the dense
    engine and the agent engine alike, closing the three-way loop.
    """

    BIG_K = 4096

    def _embed(self, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        k = counts.size
        positions = np.linspace(17, self.BIG_K - 19, k).astype(np.int64)
        dense = np.zeros(self.BIG_K, dtype=np.int64)
        dense[positions] = counts * 40  # scale so expected cells stay large
        return dense, positions

    def _one_round_counts(self, dynamics, dense0, engine, seed, replicas=150):
        ens = run_ensemble(
            dynamics, Configuration(dense0), replicas, rng=seed, max_rounds=1, engine=engine
        )
        assert ens.final_counts is not None
        assert (ens.final_counts.sum(axis=1) == dense0.sum()).all()
        return ens.final_counts.sum(axis=0).astype(float), replicas

    @pytest.mark.parametrize("k", (3, 5, 8))
    def test_three_majority_engines_match_law(self, k):
        dense0, positions = self._embed(COUNTS[k])
        law = ThreeMajority().color_law(dense0)[positions]
        n = int(dense0.sum())
        for engine, dynamics, seed in (
            ("sparse", ThreeMajority(), 11),
            ("dense", ThreeMajority(), 12),
            ("sparse", ThreeMajority(engine="agent"), 13),
        ):
            observed, replicas = self._one_round_counts(dynamics, dense0, engine, seed)
            # All mass stays on the embedded support in every engine.
            assert observed.sum() == n * replicas
            _chi_square_ok(observed[positions], law, n * replicas)

    def test_three_input_rule_sparse_matches_law(self):
        dense0, positions = self._embed(COUNTS[5])
        n = int(dense0.sum())
        for rule in (median_rule(), skewed_rule((1, 3, 2))):
            law = rule.color_law(dense0)[positions]
            observed, replicas = self._one_round_counts(rule, dense0, "sparse", 17)
            _chi_square_ok(observed[positions], law, n * replicas)

    def test_hplurality_sparse_reenables_exact_law_and_matches_it(self):
        # Dense auto at k = 4096 would step agent-level (table too large);
        # compacted to s = 5 the composition law is back — and must still
        # agree with the law computed on the dense embedding.
        dyn = HPlurality(5)
        dense0, positions = self._embed(COUNTS[5])
        assert dyn.resolved_engine(self.BIG_K) == "agent"
        assert dyn.resolved_engine(COUNTS[5].size) == "counts"
        law = dyn.color_law(COUNTS[5] * 40)  # compacted-axis law == dense restricted
        observed, replicas = self._one_round_counts(dyn, dense0, "sparse", 19)
        _chi_square_ok(observed[positions], law, int(dense0.sum()) * replicas)

    def test_sparse_and_dense_full_runs_statistically_equivalent(self):
        dense0, positions = self._embed(np.array([15, 8, 2]))
        sparse = run_ensemble(ThreeMajority(), Configuration(dense0), 64, rng=1, max_rounds=2_000, engine="sparse")
        dense = run_ensemble(ThreeMajority(), Configuration(dense0), 64, rng=2, max_rounds=2_000, engine="dense")
        assert sparse.convergence_rate == dense.convergence_rate == 1.0
        assert abs(sparse.plurality_win_rate - dense.plurality_win_rate) < 0.25
        assert abs(sparse.rounds_summary()["median"] - dense.rounds_summary()["median"]) < 3.0


class TestBatchedAgentEngines:
    """The replica-batched agent ``step_many`` draws from the same law.

    The batched path replaces a per-replica Python loop with one
    offset-flattened categorical block; bit streams differ, so the checks
    are distributional — aggregated batched steps against the exact law
    (the per-replica path is validated against the same law above, which
    closes the batched ≡ per-replica loop).
    """

    def _aggregate(self, dynamics, counts, seed, batches=30, replicas=20):
        rng = np.random.default_rng(seed)
        batch = np.tile(counts, (replicas, 1))
        acc = np.zeros(counts.size)
        for _ in range(batches):
            out = dynamics.step_many(batch, rng)
            assert out.shape == batch.shape
            assert (out.sum(axis=1) == counts.sum()).all()
            acc += out.sum(axis=0)
        return acc, int(counts.sum()) * batches * replicas

    def test_three_majority_agent_batch_matches_law(self):
        observed, total = self._aggregate(ThreeMajority(engine="agent"), COUNTS[5], 23)
        _chi_square_ok(observed, three_majority_law(COUNTS[5]), total)

    def test_three_majority_uniform_tiebreak_batch_matches_law(self):
        dyn = ThreeMajority(engine="agent", tie_break="uniform")
        observed, total = self._aggregate(dyn, COUNTS[5], 29)
        _chi_square_ok(observed, three_majority_law(COUNTS[5]), total)

    def test_three_input_rule_agent_batch_matches_law(self):
        for rule in (median_rule(), min_rule(), skewed_rule((1, 3, 2))):
            agent = _agent_variant(rule)
            observed, total = self._aggregate(agent, COUNTS[5], 31)
            _chi_square_ok(observed, rule.color_law(COUNTS[5]), total)

    @pytest.mark.parametrize("h", (4, 5))
    def test_hplurality_agent_batch_matches_composition_law(self, h):
        observed, total = self._aggregate(HPlurality(h, engine="agent"), COUNTS[5], 37 + h)
        _chi_square_ok(observed, HPlurality(h).color_law(COUNTS[5]), total)

    def test_ragged_totals_fall_back_to_per_row_path(self, rng):
        ragged = np.array([[50, 30, 20], [10, 5, 5], [2, 1, 0]])
        for dyn in (
            ThreeMajority(engine="agent"),
            HPlurality(6),
            _agent_variant(majority_rule()),
        ):
            out = dyn.step_many(ragged, rng)
            assert (out.sum(axis=1) == ragged.sum(axis=1)).all(), dyn.name

    def test_batched_categorical_distribution(self, rng):
        from repro.core.samplers import categorical_matrix_batch

        counts = np.tile([50, 30, 20], (40, 1))
        samples = categorical_matrix_batch(counts, 4, rng)
        assert samples.shape == (40, 100, 4)
        freq = np.bincount(samples.ravel(), minlength=3) / samples.size
        assert np.abs(freq - np.array([0.5, 0.3, 0.2])).max() < 0.02

    def test_batched_categorical_rejects_bad_input(self, rng):
        from repro.core.samplers import categorical_matrix_batch

        with pytest.raises(ValueError, match="same positive total"):
            categorical_matrix_batch(np.array([[2, 1], [1, 1]]), 3, rng)
        with pytest.raises(ValueError, match="batch"):
            categorical_matrix_batch(np.array([2, 1]), 3, rng)
        with pytest.raises(ValueError, match="h >= 1"):
            categorical_matrix_batch(np.array([[2, 1]]), 0, rng)
        assert categorical_matrix_batch(np.zeros((0, 3), dtype=np.int64), 2, rng).shape == (0, 0, 2)


class TestGraphCliqueCrossValidation:
    """The clique-topology graph engine draws from the counts-engine law.

    On the complete graph with self-loops every agent's sampling pool is
    the whole population, so each agent's next color is marginally the
    exact counts-level law.  Aggregated one-round graph-ensemble steps
    must therefore pass the same chi-square/TV gate the counts engines
    pass — closing the loop between the per-agent CSR substrate and the
    anonymous (R, k) engines at equal (n, k, rounds).
    """

    def _one_round_graph_counts(self, dynamics, counts, seed, replicas=150):
        from repro.graphs import clique, run_graph_ensemble

        n = int(counts.sum())
        ens = run_graph_ensemble(
            dynamics, clique(n), Configuration(counts), replicas, max_rounds=1, rng=seed
        )
        assert ens.final_counts is not None
        assert (ens.final_counts.sum(axis=1) == n).all()
        return ens.final_counts.sum(axis=0).astype(float), n * replicas

    @pytest.mark.parametrize("k", (3, 5, 8))
    def test_three_majority_clique_matches_law(self, k):
        observed, total = self._one_round_graph_counts(ThreeMajority(), COUNTS[k], 41 + k)
        _chi_square_ok(observed, three_majority_law(COUNTS[k]), total)

    def test_three_input_rules_clique_match_law(self):
        for rule in (median_rule(), skewed_rule((1, 3, 2))):
            observed, total = self._one_round_graph_counts(rule, COUNTS[5], 43)
            _chi_square_ok(observed, rule.color_law(COUNTS[5]), total)

    @pytest.mark.parametrize("h", (2, 4))
    def test_hplurality_clique_matches_composition_law(self, h):
        observed, total = self._one_round_graph_counts(HPlurality(h), COUNTS[5], 47 + h)
        _chi_square_ok(observed, HPlurality(h).color_law(COUNTS[5]), total)


class TestCorruptMany:
    def _batch(self, rng, rows=12, k=5, n=200):
        batch = np.stack(
            [np.asarray(rng.multinomial(n, np.full(k, 1 / k)), dtype=np.int64) for _ in range(rows)]
        )
        return batch

    @pytest.mark.parametrize(
        "adv_cls", [TargetedAdversary, BalancingAdversary, RandomAdversary, ReviveAdversary]
    )
    def test_contract_held_on_batch(self, adv_cls, rng):
        batch = self._batch(rng)
        out = adv_cls(9).corrupt_many(batch, rng)
        assert out.shape == batch.shape
        assert (out.sum(axis=1) == batch.sum(axis=1)).all()
        assert (out >= 0).all()
        assert (np.abs(out - batch).sum(axis=1) // 2 <= 9).all()

    @pytest.mark.parametrize("adv_cls", [TargetedAdversary, ReviveAdversary, BalancingAdversary])
    def test_deterministic_batch_equals_per_row(self, adv_cls, rng):
        batch = self._batch(rng)
        adv = adv_cls(7)
        out = adv.corrupt_many(batch, rng)
        rows = np.stack([adv.corrupt(row, rng) for row in batch])
        assert (out == rows).all()

    def test_rejects_non_batch_input(self, rng):
        with pytest.raises(ValueError, match="corrupt_many"):
            TargetedAdversary(3).corrupt_many(np.array([5, 5]), rng)

    def test_cheating_batch_adversary_caught(self, rng):
        class Cheater(TargetedAdversary):
            def _act_many(self, counts, rng):
                counts[:, 0] += 1  # creates agents
                return counts

        with pytest.raises(RuntimeError, match="number of agents"):
            Cheater(5).corrupt_many(self._batch(rng), rng)

    def test_ensemble_with_adversary_uses_batched_path(self):
        # The adversary keeps peeling 2 agents off the top each round, so the
        # process never registers monochromatic — but the plurality must
        # dominate every replica's final configuration.
        cfg = Configuration.biased(2_000, 3, 600)
        ens = run_ensemble(
            majority_rule(), cfg, 8, rng=3, max_rounds=300, adversary=TargetedAdversary(2)
        )
        assert ens.replicas == 8
        assert ens.final_counts is not None
        assert (ens.final_counts.sum(axis=1) == 2_000).all()
        assert (np.argmax(ens.final_counts, axis=1) == ens.plurality_color).all()
        assert (ens.final_counts[:, ens.plurality_color] >= 1_900).all()
