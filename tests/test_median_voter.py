"""Tests for the median, voter and two-choices dynamics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Configuration, MedianDynamics, ThreeMajority, TwoChoices, Voter, run_process

counts_strategy = st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=6).filter(
    lambda xs: sum(xs) > 0
)


class TestMedianDynamics:
    def test_class_matrix_rows_are_distributions(self):
        mat = MedianDynamics().class_transition_matrix(np.array([3, 5, 2]))
        assert np.allclose(mat.sum(axis=1), 1.0)
        assert (mat >= 0).all()

    def test_class_matrix_hand_case_k2(self):
        # k=2, c=(6,4): F = (0.6, 1.0).
        # Class 0 (x=0): P(median<=0) = 1-(1-0.6)^2 = 0.84 -> stays 0 w.p. 0.84.
        # Class 1 (x=1): P(median<=0) = 0.6^2 = 0.36 -> moves to 0 w.p. 0.36.
        mat = MedianDynamics().class_transition_matrix(np.array([6, 4]))
        assert mat[0, 0] == pytest.approx(0.84)
        assert mat[1, 0] == pytest.approx(0.36)

    def test_binary_case_equals_three_majority_marginal(self):
        # For k = 2 the median of {own, two samples} is the majority of
        # the three, so the marginal laws coincide.
        counts = np.array([60, 40])
        med = MedianDynamics().color_law(counts)
        maj = ThreeMajority().color_law(counts)
        assert np.allclose(med, maj)

    def test_median_attracts_to_median_value(self, rng):
        # Plurality on color 0, but the median of the value distribution is
        # color 1: the dynamics must drift to 1 in expectation.
        counts = np.array([400, 350, 250])
        law = MedianDynamics().color_law(counts)
        mu = law * 1000
        assert mu[1] > counts[1]  # median color grows

    def test_step_conserves_mass(self, rng):
        out = MedianDynamics().step(np.array([10, 20, 30]), rng)
        assert out.sum() == 60

    def test_monochromatic_absorbing(self, rng):
        out = MedianDynamics().step(np.array([0, 40, 0]), rng)
        assert out.tolist() == [0, 40, 0]

    def test_converges_to_median_not_plurality(self, rng):
        # Lemma 8-style configuration: plurality at 0, median at 1.
        cfg = Configuration([380, 330, 290])
        wins = {0: 0, 1: 0, 2: 0}
        for seed in range(12):
            res = run_process(MedianDynamics(), cfg, rng=seed, max_rounds=10_000)
            assert res.converged
            wins[res.winner] += 1
        assert wins[1] > wins[0]

    @given(counts_strategy)
    def test_step_mass_and_support(self, counts):
        rng = np.random.default_rng(3)
        counts = np.array(counts)
        out = MedianDynamics().step(counts, rng)
        assert out.sum() == counts.sum()
        # Median of supported values stays within [min support, max support].
        support = np.nonzero(counts)[0]
        assert (out[: support.min()] == 0).all()
        assert (out[support.max() + 1 :] == 0).all()


class TestVoter:
    def test_law_is_fractions(self):
        assert np.allclose(Voter().color_law(np.array([2, 3, 5])), [0.2, 0.3, 0.5])

    def test_martingale_mean(self, rng):
        counts = np.array([700, 300])
        reps = 4000
        out = Voter().step_many(np.tile(counts, (reps, 1)), rng)
        stderr = np.sqrt(1000 * 0.21 / reps)
        assert abs(out[:, 0].mean() - 700) < 5 * stderr

    def test_minority_wins_at_martingale_rate(self, rng):
        # The defining failure: P(consensus = j) = c_j / n.
        from repro import run_ensemble

        cfg = Configuration([30, 20])
        ens = run_ensemble(Voter(), cfg, 300, max_rounds=100_000, rng=rng)
        assert ens.convergence_rate == 1.0
        minority_rate = float((ens.winners == 1).mean())
        assert abs(minority_rate - 0.4) < 0.1


class TestTwoChoices:
    def test_class_matrix_rows_are_distributions(self):
        mat = TwoChoices().class_transition_matrix(np.array([5, 3, 2]))
        assert np.allclose(mat.sum(axis=1), 1.0)
        assert (mat >= 0).all()

    def test_class_matrix_hand_case(self):
        # c = (6, 4), n = 10. Class 0 moves to 1 w.p. (0.4)^2 = 0.16.
        mat = TwoChoices().class_transition_matrix(np.array([6, 4]))
        assert mat[0, 1] == pytest.approx(0.16)
        assert mat[0, 0] == pytest.approx(0.84)

    def test_marginal_law_equals_three_majority(self):
        # Known identity: the two-choices *marginal* coincides with the
        # 3-majority law (the joint processes differ).
        counts = np.array([50, 30, 20])
        assert np.allclose(TwoChoices().color_law(counts), ThreeMajority().color_law(counts))

    def test_step_conserves_mass(self, rng):
        out = TwoChoices().step(np.array([5, 3, 2]), rng)
        assert out.sum() == 10

    def test_monochromatic_absorbing(self, rng):
        out = TwoChoices().step(np.array([10, 0]), rng)
        assert out.tolist() == [10, 0]

    def test_extinct_colors_stay_extinct(self, rng):
        out = TwoChoices().step(np.array([5, 0, 5]), rng)
        assert out[1] == 0

    def test_step_many(self, rng):
        out = TwoChoices().step_many(np.tile([6, 4], (4, 1)), rng)
        assert out.shape == (4, 2)
        assert (out.sum(axis=1) == 10).all()
