"""The fault-injection registry: plans, triggers, determinism, inheritance."""

import json

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no plan armed."""
    faults.disarm()
    yield
    faults.disarm()


def plan_dict(**overrides):
    base = {
        "seed": 7,
        "rules": [{"point": "executor.worker-crash", "probability": 0.5}],
    }
    base.update(overrides)
    return base


class TestFaultRule:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            faults.FaultRule(point="executor.nope", probability=0.5)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError, match="exactly one trigger"):
            faults.FaultRule(point="executor.worker-crash")
        with pytest.raises(ValueError, match="exactly one trigger"):
            faults.FaultRule(point="executor.worker-crash", probability=0.5, nth=2)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match=r"probability must be in \[0, 1\]"):
            faults.FaultRule(point="executor.worker-crash", probability=1.5)

    def test_nth_and_times_bounds(self):
        with pytest.raises(ValueError, match="nth must be >= 1"):
            faults.FaultRule(point="executor.worker-crash", nth=0)
        with pytest.raises(ValueError, match="times must be >= 1"):
            faults.FaultRule(point="executor.worker-crash", nth=1, times=0)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-rule keys"):
            faults.FaultRule.from_dict({"point": "executor.worker-crash", "prob": 0.5})

    def test_round_trip(self):
        rule = faults.FaultRule(
            point="executor.worker-stall", nth=5, times=1, params={"seconds": 3.0}
        )
        assert faults.FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule"):
            faults.FaultPlan(
                rules=(
                    faults.FaultRule(point="cache.read-error", nth=1),
                    faults.FaultRule(point="cache.read-error", nth=2),
                )
            )

    def test_json_round_trip(self):
        plan = faults.FaultPlan.from_dict(plan_dict())
        assert faults.FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_plan_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            faults.FaultPlan.from_dict(plan_dict(extra=1))

    def test_committed_chaos_plan_parses(self):
        plan = faults.FaultPlan.from_file("benchmarks/load/chaos_plan.json")
        points = {rule.point for rule in plan.rules}
        assert "executor.worker-crash" in points
        assert "cache.corrupt-payload" in points


class TestFiring:
    def test_disarmed_fire_is_none(self):
        assert faults.fire("executor.worker-crash") is None
        assert faults.active_plan() is None
        assert faults.describe() is None

    def test_nth_trigger_fires_exactly_once_with_times(self):
        faults.arm({"rules": [{"point": "cache.read-error", "nth": 3, "times": 1}]})
        fired = [faults.fire("cache.read-error") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_nth_without_times_fires_only_on_the_nth_hit(self):
        faults.arm({"rules": [{"point": "cache.read-error", "nth": 2}]})
        fired = [faults.fire("cache.read-error") is not None for _ in range(4)]
        assert fired == [False, True, False, False]

    def test_probability_stream_is_deterministic_across_rearm(self):
        plan = plan_dict()
        faults.arm(plan)
        first = [faults.fire("executor.worker-crash") is not None for _ in range(50)]
        faults.arm(plan)  # re-arm resets counters AND streams
        second = [faults.fire("executor.worker-crash") is not None for _ in range(50)]
        assert first == second
        assert any(first) and not all(first)  # p=0.5 over 50 draws

    def test_different_seeds_give_different_schedules(self):
        faults.arm(plan_dict(seed=1))
        one = [faults.fire("executor.worker-crash") is not None for _ in range(64)]
        faults.arm(plan_dict(seed=2))
        two = [faults.fire("executor.worker-crash") is not None for _ in range(64)]
        assert one != two

    def test_points_draw_independent_streams(self):
        faults.arm(
            {
                "seed": 3,
                "rules": [
                    {"point": "executor.worker-crash", "probability": 0.5},
                    {"point": "cache.read-error", "probability": 0.5},
                ],
            }
        )
        crash = [faults.fire("executor.worker-crash") is not None for _ in range(64)]
        faults.arm(
            {"seed": 3, "rules": [{"point": "executor.worker-crash", "probability": 0.5}]}
        )
        crash_alone = [
            faults.fire("executor.worker-crash") is not None for _ in range(64)
        ]
        # Removing the other point's rule must not shift this point's draws.
        assert crash == crash_alone

    def test_times_caps_probability_rules(self):
        faults.arm(
            {"rules": [{"point": "cache.read-error", "probability": 1.0, "times": 2}]}
        )
        fired = sum(faults.fire("cache.read-error") is not None for _ in range(10))
        assert fired == 2

    def test_fire_returns_the_rule_with_params(self):
        faults.arm(
            {
                "rules": [
                    {
                        "point": "executor.worker-stall",
                        "nth": 1,
                        "params": {"seconds": 0.25},
                    }
                ]
            }
        )
        rule = faults.fire("executor.worker-stall")
        assert rule is not None
        assert rule.params["seconds"] == 0.25

    def test_describe_reports_hits_and_fired(self):
        faults.arm({"rules": [{"point": "cache.read-error", "nth": 2}]})
        for _ in range(3):
            faults.fire("cache.read-error")
        state = faults.describe()
        assert state["points"]["cache.read-error"] == {"hits": 3, "fired": 1}
        json.dumps(state)  # must be JSON-able for /v1/stats


class TestEnvInheritance:
    def test_inline_json(self):
        plan = faults.arm_from_env({faults.ENV_VAR: json.dumps(plan_dict())})
        assert plan is not None
        assert faults.active_plan() == plan

    def test_at_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan_dict()), encoding="utf-8")
        plan = faults.arm_from_env({faults.ENV_VAR: f"@{path}"})
        assert plan is not None
        assert plan.seed == 7

    def test_unset_is_noop(self):
        faults.arm(plan_dict())
        assert faults.arm_from_env({}) is None
        assert faults.active_plan() is not None  # arm_from_env without var leaves state

    def test_exceptions_are_typed(self):
        assert issubclass(faults.InjectedWorkerCrash, faults.InjectedFault)
        assert issubclass(faults.InjectedFault, Exception)
