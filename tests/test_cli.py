"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import ScenarioSpec
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.scale == "small"
        assert args.seed == 0
        assert args.csv_dir is None

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--scale", "galactic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_describe(self, capsys):
        assert main(["describe", "e4"]) == 0
        out = capsys.readouterr().out
        assert "E4" in out and "Ω(k log n)" in out

    def test_describe_unknown(self):
        with pytest.raises(KeyError):
            main(["describe", "E77"])

    def test_run_smoke_with_csv(self, capsys, tmp_path):
        assert main(["run", "E1", "--scale", "smoke", "--csv-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "completed" in out
        assert (tmp_path / "e1_smoke.csv").exists()


class TestScenarioCommands:
    def test_scenarios_lists_registries(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("3-majority", "h-plurality", "paper-biased", "targeted", "any-of"):
            assert name in out

    def test_scenarios_json(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {
            "dynamics", "workloads", "adversaries", "topologies", "stopping", "metrics"
        }
        assert "3-majority" in data["dynamics"]
        assert "plurality-fraction" in data["metrics"]
        assert "torus" in data["topologies"]

    def test_simulate_inline(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--dynamics", "3-majority",
                    "--initial", "paper-biased",
                    "--n", "5000",
                    "--k", "3",
                    "--replicas", "4",
                    "--seed", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "plurality win rate" in out
        assert "monochromatic" in out

    def test_simulate_from_file_with_json_output(self, capsys, tmp_path):
        spec = ScenarioSpec(
            dynamics="3-majority", initial="paper-biased", n=5_000, k=3, replicas=4, seed=0
        )
        path = tmp_path / "scenario.json"
        spec.save(path)
        assert main(["simulate", str(path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["spec"] == spec.to_dict()
        assert record["plurality_win_rate"] == 1.0
        assert record["stop_reasons"] == {"monochromatic": 4}

    def test_simulate_file_overrides(self, capsys, tmp_path):
        spec = ScenarioSpec(dynamics="3-majority", initial="paper-biased", n=5_000, k=3)
        path = tmp_path / "scenario.json"
        spec.save(path)
        assert main(["simulate", str(path), "--replicas", "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["replicas"] == 2

    def test_simulate_file_plus_inline_names_clash(self, tmp_path):
        spec = ScenarioSpec(dynamics="3-majority", n=100, k=2)
        path = tmp_path / "scenario.json"
        spec.save(path)
        with pytest.raises(SystemExit, match="cannot be combined"):
            main(["simulate", str(path), "--dynamics", "voter"])
        with pytest.raises(SystemExit, match="--stopping cannot be combined"):
            main(["simulate", str(path), "--stopping", '{"rule": "round-budget", "rounds": 5}'])

    def test_simulate_inline_requires_core_fields(self):
        with pytest.raises(SystemExit, match="--dynamics"):
            main(["simulate", "--n", "100", "--k", "2"])

    def test_simulate_rejects_bad_stopping_json(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--stopping", "not json"])

    def test_simulate_save_spec(self, capsys, tmp_path):
        out_path = tmp_path / "saved.json"
        assert (
            main(
                [
                    "simulate",
                    "--dynamics", "voter",
                    "--n", "500",
                    "--k", "2",
                    "--initial", "two-color",
                    "--initial-params", '{"bias": 100}',
                    "--stopping", '{"rule": "round-budget", "rounds": 5}',
                    "--max-rounds", "50",
                    "--save-spec", str(out_path),
                ]
            )
            == 0
        )
        saved = ScenarioSpec.from_file(out_path)
        assert saved.dynamics == "voter"
        assert saved.stopping == {"rule": "round-budget", "rounds": 5}
        out = capsys.readouterr().out
        assert "stopped by" in out


class TestMetricsCommands:
    def test_metrics_lists_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        for name in ("bias", "counts", "entropy", "plurality-fraction", "tv-monochromatic"):
            assert name in out

    def test_metrics_json(self, capsys):
        assert main(["metrics", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["vector"] is True
        assert data["bias"]["dtype"] == "int64"
        assert data["plurality-fraction"]["vector"] is False

    def test_simulate_record_flags(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--dynamics", "3-majority",
                    "--initial", "paper-biased",
                    "--n", "5000",
                    "--k", "3",
                    "--replicas", "4",
                    "--seed", "0",
                    "--record", "bias,entropy",
                    "--record-every", "2",
                    "--json",
                ]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["record"] == {"metrics": ["bias", "entropy"], "every": 2}
        trace = record["trace"]
        assert trace["metrics"] == ["bias", "entropy"]
        assert trace["every"] == 2 and trace["replicas"] == 4
        assert len(trace["digest"]) == 64

    def test_record_flags_override_file(self, capsys, tmp_path):
        spec = ScenarioSpec(
            dynamics="3-majority", initial="paper-biased", n=5_000, k=3, replicas=2
        )
        path = tmp_path / "scenario.json"
        spec.save(path)
        assert main(["simulate", str(path), "--record", "plurality-fraction", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["trace"]["metrics"] == ["plurality-fraction"]

    def test_record_every_without_record_rejected(self, tmp_path):
        spec = ScenarioSpec(dynamics="3-majority", initial="paper-biased", n=1_000, k=3)
        path = tmp_path / "scenario.json"
        spec.save(path)
        with pytest.raises(SystemExit, match="--record-every"):
            main(["simulate", str(path), "--record-every", "3"])

    def test_counts_table_cap_flag_merges_into_dynamics_params(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--dynamics", "h-plurality",
                    "--dynamics-params", '{"h": 4}',
                    "--counts-table-cap", "500",
                    "--initial", "paper-biased",
                    "--n", "2000",
                    "--k", "4",
                    "--replicas", "2",
                    "--seed", "1",
                    "--json",
                ]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["dynamics_params"] == {"h": 4, "counts_table_cap": 500}


class TestTopologyCommands:
    def test_topologies_lists_registry(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("clique", "cycle", "torus", "random-regular",
                     "erdos-renyi", "complete-bipartite", "barbell"):
            assert name in out

    def test_topologies_json(self, capsys):
        assert main(["topologies", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "torus" in data
        assert set(data["torus"]["params"]) == {"rows", "cols"}
        assert data["random-regular"]["params"] == ["d", "seed"]

    def test_simulate_topology_inline(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--dynamics", "3-majority",
                    "--initial", "biased",
                    "--initial-params", '{"bias": 10}',
                    "--topology", "torus",
                    "--topology-params", '{"rows": 10, "cols": 12}',
                    "--n", "120",
                    "--k", "3",
                    "--replicas", "3",
                    "--seed", "0",
                    "--record", "counts",
                    "--json",
                ]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["topology"] == "torus"
        assert record["spec"]["topology_params"] == {"rows": 10, "cols": 12}
        assert record["trace"]["metrics"] == ["counts"]
        assert len(record["trace"]["digest"]) == 64

    def test_simulate_topology_human_output_names_topology(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--dynamics", "3-majority",
                    "--topology", "cycle",
                    "--n", "60",
                    "--k", "2",
                    "--replicas", "2",
                    "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "topology: cycle" in out

    def test_topology_flags_clash_with_file(self, tmp_path):
        spec = ScenarioSpec(dynamics="3-majority", n=100, k=2)
        path = tmp_path / "scenario.json"
        spec.save(path)
        with pytest.raises(SystemExit, match="--topology cannot be combined"):
            main(["simulate", str(path), "--topology", "cycle"])
        with pytest.raises(SystemExit, match="--topology-params cannot be combined"):
            main(["simulate", str(path), "--topology-params", '{"rows": 2}'])

    def test_topology_file_spec_round_trips(self, capsys, tmp_path):
        spec = ScenarioSpec(
            dynamics="3-majority", n=120, k=3, topology="torus",
            topology_params={"rows": 10, "cols": 12}, replicas=2,
            max_rounds=2_000, seed=4,
        )
        path = tmp_path / "graph.json"
        spec.save(path)
        assert main(["simulate", str(path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["spec"] == spec.to_dict()


class TestBatchCommand:
    @staticmethod
    def _spec(seed: int = 0, **overrides) -> dict:
        fields = dict(
            dynamics="3-majority",
            initial="paper-biased",
            n=2_000,
            k=3,
            replicas=4,
            seed=seed,
            max_rounds=400,
            stopping={"rule": "plurality-fraction", "fraction": 0.9},
        )
        fields.update(overrides)
        return fields

    def test_all_valid_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps([self._spec(0), self._spec(0)]))
        assert main(["batch", str(path), "--json", "--no-cache"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == 0
        assert [item["source"] for item in report["items"]] == ["run", "dedup"]
        assert all(item["error"] is None for item in report["items"])

    def test_invalid_items_reported_not_fatal(self, capsys, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(
            json.dumps([self._spec(0), self._spec(0, n="nope"), self._spec(0)])
        )
        assert main(["batch", str(path), "--json", "--no-cache"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["requests"] == 3
        assert report["errors"] == 1
        items = report["items"]
        assert items[0]["source"] == "run" and items[0]["error"] is None
        assert items[1]["source"] == "error"
        assert items[1]["error"]["type"] == "ValueError"
        assert "n must be an integer" in items[1]["error"]["message"]
        # The valid duplicate still dedups against the first item.
        assert items[2]["source"] == "dedup"
        assert items[2]["key"] == items[0]["key"]

    def test_invalid_items_human_output(self, capsys, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps([self._spec(seed=None)]))
        assert main(["batch", str(path), "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "[error]" in out
        assert "1 failed" in out

    def test_unseeded_entry_is_per_item_error(self, capsys, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps([self._spec(seed=None), self._spec(5)]))
        assert main(["batch", str(path), "--json", "--no-cache"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["items"][0]["source"] == "error"
        assert "seed" in report["items"][0]["error"]["message"]
        assert report["items"][1]["source"] == "run"


class TestLoadCommand:
    def test_generate_writes_deterministic_corpus(self, capsys, tmp_path):
        from repro.service.load import corpus_json

        path = tmp_path / "corpus.json"
        assert main(
            ["load", "--generate", "--corpus", str(path), "--unique", "6", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        entries = json.loads(path.read_text())
        assert len(entries) == 7  # 6 unique + 6 // 4 duplicates
        for entry in entries:
            ScenarioSpec.from_dict(entry).validate()
        assert path.read_text() == corpus_json(seed=3, unique=6)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["load", "--smoke"])
        assert args.corpus == "benchmarks/load/corpus.json"
        assert args.smoke is True
        assert args.concurrency == 4

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.host == "127.0.0.1"
        assert args.workers == 0
