"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.scale == "small"
        assert args.seed == 0
        assert args.csv_dir is None

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--scale", "galactic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_describe(self, capsys):
        assert main(["describe", "e4"]) == 0
        out = capsys.readouterr().out
        assert "E4" in out and "Ω(k log n)" in out

    def test_describe_unknown(self):
        with pytest.raises(KeyError):
            main(["describe", "E77"])

    def test_run_smoke_with_csv(self, capsys, tmp_path):
        assert main(["run", "E1", "--scale", "smoke", "--csv-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "completed" in out
        assert (tmp_path / "e1_smoke.csv").exists()
