"""Tests for 3-majority and h-plurality (Lemma 1 law, engines, tie-breaks)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Configuration, HPlurality, ThreeMajority, TwoSampleUniform
from repro.core.majority import three_majority_law

counts_strategy = st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=8).filter(
    lambda xs: sum(xs) > 0
)


class TestThreeMajorityLaw:
    def test_formula_hand_computed(self):
        # c = (2, 1), n = 3: p_0 = (2/27)(9 + 6 - 5) = 20/27.
        law = three_majority_law(np.array([2, 1]))
        assert law[0] == pytest.approx(20 / 27)
        assert law[1] == pytest.approx(7 / 27)

    def test_brute_force_enumeration(self):
        # Compare against exhaustive enumeration of all n^3 ordered triples.
        counts = np.array([3, 2, 1])
        n = counts.sum()
        colors = np.repeat(np.arange(3), counts)
        freq = np.zeros(3)
        for a in colors:
            for b in colors:
                for c in colors:
                    if a == b or a == c:
                        freq[a] += 1
                    elif b == c:
                        freq[b] += 1
                    else:
                        freq[a] += 1  # 'first' tie-break
        freq /= n**3
        assert np.allclose(three_majority_law(counts), freq)

    def test_tie_break_marginal_equivalence_brute_force(self):
        # Uniform tie-break gives the same marginal: each distinct triple
        # contributes 1/3 to each of its colors, and by symmetry over the
        # 6 orderings that equals always picking the first.
        counts = np.array([4, 2, 2])
        n = counts.sum()
        colors = np.repeat(np.arange(3), counts)
        freq = np.zeros(3)
        for a in colors:
            for b in colors:
                for c in colors:
                    if a == b or a == c:
                        freq[a] += 1
                    elif b == c:
                        freq[b] += 1
                    else:
                        freq[a] += 1 / 3
                        freq[b] += 1 / 3
                        freq[c] += 1 / 3
        freq /= n**3
        assert np.allclose(three_majority_law(counts), freq)

    def test_law_is_probability_vector(self):
        law = three_majority_law(np.array([10, 5, 3, 1]))
        assert law.sum() == pytest.approx(1.0)
        assert (law >= 0).all()

    def test_monochromatic_fixed_point(self):
        law = three_majority_law(np.array([0, 7, 0]))
        assert law == pytest.approx([0.0, 1.0, 0.0])

    def test_batched_law(self):
        batch = np.array([[5, 5], [8, 2]])
        laws = three_majority_law(batch)
        assert laws.shape == (2, 2)
        assert np.allclose(laws.sum(axis=1), 1.0)
        assert np.allclose(laws[0], [0.5, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            three_majority_law(np.array([0, 0]))

    @given(counts_strategy)
    def test_law_properties(self, counts):
        law = three_majority_law(np.array(counts))
        assert law.sum() == pytest.approx(1.0)
        assert (law >= -1e-12).all()
        # Extinct colors stay extinct (no spontaneous generation).
        for j, c in enumerate(counts):
            if c == 0:
                assert law[j] == 0.0


class TestThreeMajorityDynamics:
    def test_step_conserves_mass(self, rng):
        out = ThreeMajority().step(np.array([50, 30, 20]), rng)
        assert out.sum() == 100

    def test_step_many_shape(self, rng):
        batch = np.tile(np.array([60, 40]), (5, 1))
        out = ThreeMajority().step_many(batch, rng)
        assert out.shape == (5, 2)
        assert (out.sum(axis=1) == 100).all()

    def test_monochromatic_absorbing(self, rng):
        out = ThreeMajority().step(np.array([0, 100]), rng)
        assert out.tolist() == [0, 100]

    def test_empty_configuration_passthrough(self, rng):
        out = ThreeMajority().step(np.array([0, 0]), rng)
        assert out.tolist() == [0, 0]

    def test_agent_level_matches_exact_mean(self, rng):
        counts = np.array([500, 300, 200])
        exact_mu = three_majority_law(counts) * 1000
        acc = np.zeros(3)
        reps = 400
        dyn = ThreeMajority(agent_level=True)
        for _ in range(reps):
            acc += dyn.step(counts, rng)
        mean = acc / reps
        stderr = np.sqrt(1000 * 0.25 / reps)
        assert np.all(np.abs(mean - exact_mu) < 6 * stderr)

    def test_agent_level_uniform_tiebreak_matches_mean(self, rng):
        counts = np.array([400, 350, 250])
        exact_mu = three_majority_law(counts) * 1000
        dyn = ThreeMajority(agent_level=True, tie_break="uniform")
        acc = np.zeros(3)
        reps = 400
        for _ in range(reps):
            acc += dyn.step(counts, rng)
        mean = acc / reps
        stderr = np.sqrt(1000 * 0.25 / reps)
        assert np.all(np.abs(mean - exact_mu) < 6 * stderr)

    def test_rejects_bad_tie_break(self):
        with pytest.raises(ValueError):
            ThreeMajority(tie_break="nope")

    def test_supports_exact_law(self):
        assert ThreeMajority().supports_exact_law()


class TestHPlurality:
    def test_rejects_bad_h(self):
        with pytest.raises(ValueError):
            HPlurality(0)

    def test_name_includes_h(self):
        assert HPlurality(5).name == "5-plurality"

    def test_h1_is_voter_law(self):
        law = HPlurality(1).color_law(np.array([6, 4]))
        assert np.allclose(law, [0.6, 0.4])

    def test_h3_law_is_three_majority(self):
        counts = np.array([5, 3, 2])
        assert np.allclose(HPlurality(3).color_law(counts), three_majority_law(counts))

    def test_no_law_for_general_h(self):
        # h <= 5 now has the exact composition law; h = 6 is beyond it.
        with pytest.raises(NotImplementedError):
            HPlurality(6).color_law(np.array([5, 5]))
        assert not HPlurality(6).supports_exact_law()
        assert HPlurality(5).supports_exact_law()

    def test_h5_law_is_distribution(self):
        law = HPlurality(5).color_law(np.array([5, 3, 2]))
        assert law.sum() == pytest.approx(1.0)
        assert (law >= 0).all()

    def test_counts_table_cap_overrides_auto_fallback(self):
        # C(k+h-1, h) at h=5, k=64 is ~10M rows: over the default 100k cap
        # the auto engine falls back to agent-level, but an explicit
        # counts_table_cap keeps (or forces off) the exact counts engine.
        k = 64
        rows = HPlurality.composition_count(5, k)
        assert rows > HPlurality._MAX_AUTO_COMPOSITIONS
        assert HPlurality(5).resolved_engine(k) == "agent"
        assert HPlurality(5, counts_table_cap=rows).resolved_engine(k) == "counts"
        assert HPlurality(5, counts_table_cap=10).resolved_engine(8) == "agent"
        # h <= 3 has closed-form laws; the cap never matters there.
        assert HPlurality(3, counts_table_cap=1).resolved_engine(100) == "counts"

    def test_counts_table_cap_validated_and_spec_reachable(self):
        with pytest.raises(ValueError, match="counts_table_cap"):
            HPlurality(4, counts_table_cap=0)
        from repro import ScenarioSpec

        spec = ScenarioSpec(
            dynamics="h-plurality",
            dynamics_params={"h": 4, "counts_table_cap": 10},
            n=1_000,
            k=6,
        )
        dyn = spec.resolve().dynamics
        assert dyn.counts_table_cap == 10
        assert dyn.resolved_engine(6) == "agent"  # C(9,4)=126 > 10

    def test_step_conserves_mass(self, rng):
        for h in (1, 2, 3, 5, 9):
            out = HPlurality(h).step(np.array([40, 35, 25]), rng)
            assert out.sum() == 100, h

    def test_h3_step_matches_exact_law_mean(self, rng):
        counts = np.array([500, 300, 200])
        mu = three_majority_law(counts) * 1000
        acc = np.zeros(3)
        reps = 400
        dyn = HPlurality(3)
        for _ in range(reps):
            acc += dyn.step(counts, rng)
        stderr = np.sqrt(1000 * 0.25 / reps)
        assert np.all(np.abs(acc / reps - mu) < 6 * stderr)

    def test_large_h_amplifies_majority(self, rng):
        # With h = 25 on a 60/40 split, P(sample majority = 0) =
        # P(Binom(25, 0.6) >= 13) ≈ 0.85 — well above the input fraction.
        counts = np.array([6000, 4000])
        out = HPlurality(25).step(counts, rng)
        assert out[0] > 8000

    def test_monochromatic_absorbing(self, rng):
        out = HPlurality(7).step(np.array([0, 50, 0]), rng)
        assert out.tolist() == [0, 50, 0]


class TestTwoSampleUniform:
    def test_law_is_voter(self):
        law = TwoSampleUniform().color_law(np.array([3, 7]))
        assert np.allclose(law, [0.3, 0.7])

    def test_batch_law(self):
        laws = TwoSampleUniform().color_law_batch(np.array([[3, 7], [5, 5]]))
        assert np.allclose(laws, [[0.3, 0.7], [0.5, 0.5]])

    def test_no_drift_two_color(self, rng):
        # E[next c0] = c0 exactly: the martingale that makes 2 samples fail.
        counts = np.array([700, 300])
        reps = 3000
        batch = np.tile(counts, (reps, 1))
        out = TwoSampleUniform().step_many(batch, rng)
        assert abs(out[:, 0].mean() - 700) < 3 * np.sqrt(1000 * 0.21 / reps) * 10


@settings(max_examples=25)
@given(counts_strategy, st.integers(min_value=1, max_value=6))
def test_hplurality_extinct_colors_stay_extinct(counts, h):
    rng = np.random.default_rng(11)
    counts = np.array(counts)
    out = HPlurality(h).step(counts, rng)
    assert out.sum() == counts.sum()
    assert (out[counts == 0] == 0).all()
