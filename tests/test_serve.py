"""Tests for the serving substrate: content-addressed cache + batch executor."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import ResultCache, ScenarioSpec, cache_key, run_batch, simulate_ensemble
from repro.core.process import ENGINE_SCHEMA_VERSION, EnsembleResult
from repro.core.rng import derive_seed
from repro.experiments.harness import grid, sweep
from repro.experiments.parallel import parallel_sweep
from repro.serve.cache import _seed_token


def small_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        dynamics="3-majority",
        initial="paper-biased",
        n=4_000,
        k=4,
        replicas=6,
        seed=0,
        stopping={"rule": "plurality-fraction", "fraction": 0.9},
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def assert_results_identical(a: EnsembleResult, b: EnsembleResult) -> None:
    """Bit-identity over every field of two ensemble results."""
    for name in ("rounds", "winners", "converged"):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype
        assert np.array_equal(left, right)
    assert a.plurality_color == b.plurality_color
    assert a.max_rounds == b.max_rounds
    assert (a.final_counts is None) == (b.final_counts is None)
    if a.final_counts is not None:
        assert a.final_counts.dtype == b.final_counts.dtype
        assert np.array_equal(a.final_counts, b.final_counts)
    assert (a.stopped_by is None) == (b.stopped_by is None)
    if a.stopped_by is not None:
        assert list(a.stopped_by) == list(b.stopped_by)
    assert (a.trace is None) == (b.trace is None)
    if a.trace is not None:
        assert a.trace == b.trace
        assert a.trace.digest() == b.trace.digest()


class TestCacheKey:
    def test_deterministic_and_content_addressed(self):
        spec = small_spec()
        assert cache_key(spec) == cache_key(ScenarioSpec.from_json(spec.to_json()))

    def test_any_field_change_changes_key(self):
        base = small_spec()
        for change in (
            {"seed": 1},
            {"replicas": 7},
            {"n": 4_001},
            {"max_rounds": 99},
            {"dynamics": "voter"},
            {"stopping": None},
            {"record": {"metrics": ["bias"], "every": 1}},
        ):
            assert cache_key(base.with_overrides(**change)) != cache_key(base)

    def test_schema_version_changes_key(self):
        spec = small_spec()
        assert cache_key(spec, schema_version=ENGINE_SCHEMA_VERSION + 1) != cache_key(spec)

    def test_seed_override_replaces_spec_seed(self):
        # Sweeps thread derived streams; the spec's own seed must then be
        # irrelevant to the key, and the override must be part of it.
        stream = derive_seed(7, "exp", 0)
        a = cache_key(small_spec(seed=0), seed=stream)
        b = cache_key(small_spec(seed=123), seed=stream)
        c = cache_key(small_spec(seed=0), seed=derive_seed(7, "exp", 1))
        assert a == b
        assert a != c

    def test_rejects_uncacheable_seeds(self):
        with pytest.raises(ValueError, match="not cacheable"):
            cache_key(small_spec(seed=None))
        with pytest.raises(ValueError, match="not cacheable"):
            cache_key(small_spec(), seed=np.random.default_rng(0))

    def test_seed_token_distinguishes_int_and_sequence(self):
        assert _seed_token(5) != _seed_token(np.random.SeedSequence(5))

    def test_seed_token_includes_pool_size(self):
        # SeedSequences differing only in pool_size generate different
        # streams, so they must not share a cache key.
        a = _seed_token(np.random.SeedSequence(5))
        b = _seed_token(np.random.SeedSequence(5, pool_size=8))
        assert a != b


class TestResultCache:
    def test_miss_then_hit_bit_identical(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        key = cache.key_for(spec)
        assert cache.get(key) is None
        direct = simulate_ensemble(spec)
        cache.put(key, direct)
        hit = cache.get(key)
        assert hit is not None
        assert_results_identical(direct, hit)
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_disk_round_trip_across_instances(self, tmp_path):
        spec = small_spec()
        writer = ResultCache(tmp_path)
        writer.fetch_or_run(spec)
        reader = ResultCache(tmp_path)  # fresh memory layer, same disk
        hit = reader.get(reader.key_for(spec))
        assert hit is not None
        assert_results_identical(simulate_ensemble(spec), hit)

    def test_recorded_spec_round_trips_traceset_bit_identically(self, tmp_path):
        # The acceptance contract: a recorded spec's cached replay — both
        # from the memory layer and from a cold disk read — carries a
        # TraceSet bit-identical to the cold run's.
        spec = small_spec(
            record={"metrics": ["bias", "counts", "plurality-fraction"], "every": 1}
        )
        direct = simulate_ensemble(spec)
        assert direct.trace is not None
        cache = ResultCache(tmp_path)
        cold = cache.fetch_or_run(spec)
        warm = cache.fetch_or_run(spec)
        disk = ResultCache(tmp_path).fetch_or_run(spec)  # cold process, disk layer
        for replay in (cold, warm, disk):
            assert_results_identical(direct, replay)
        assert disk.trace.digest() == direct.trace.digest()

    def test_record_config_separates_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        bare = cache.fetch_or_run(small_spec())
        recorded = cache.fetch_or_run(small_spec(record=["bias"]))
        assert bare.trace is None
        assert recorded.trace is not None
        assert cache.misses == 2  # different content addresses, no collision
        assert np.array_equal(bare.rounds, recorded.rounds)

    def test_fetch_or_run_equals_direct_call(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        cold = cache.fetch_or_run(spec)
        warm = cache.fetch_or_run(spec)
        direct = simulate_ensemble(spec)
        assert_results_identical(direct, cold)
        assert_results_identical(direct, warm)

    def test_engine_schema_version_is_3(self):
        # PR 5 regression: the sparse ensemble layout changed how
        # randomness is consumed (and added the spec engine field to the
        # content address), so two-engine-era entries must be unaddressable.
        assert ENGINE_SCHEMA_VERSION == 3

    def test_engine_field_separates_cache_entries(self, tmp_path):
        keys = {cache_key(small_spec(engine=engine)) for engine in ("auto", "dense", "sparse")}
        assert len(keys) == 3
        # An auto spec keeps the pre-engine-field canonical identity.
        assert "engine" not in small_spec().canonical_json()

    def test_sparse_engine_results_round_trip(self, tmp_path):
        spec = ScenarioSpec(
            dynamics="3-majority",
            initial="balanced",
            n=2_000,
            k=256,
            replicas=6,
            seed=3,
            engine="sparse",
            stopping={"rule": "plurality-fraction", "fraction": 0.5},
            record={"metrics": ["bias", "counts"], "every": 1},
        )
        direct = simulate_ensemble(spec)
        cache = ResultCache(tmp_path)
        cold = cache.fetch_or_run(spec)
        disk = ResultCache(tmp_path).fetch_or_run(spec)
        assert_results_identical(direct, cold)
        assert_results_identical(direct, disk)

    def test_trace_columns_are_packed_and_compressed_on_disk(self, tmp_path):
        # Heterogeneous stopping makes the dense (R, T, k) counts block
        # mostly padding; the disk layer must store only the valid
        # prefixes (flat, first axis = sum of n_recorded) inside a
        # compressed npz, and unpack bit-identically.
        spec = small_spec(record={"metrics": ["counts", "bias"], "every": 1})
        direct = simulate_ensemble(spec)
        trace = direct.trace
        assert trace.n_recorded.min() < trace.n_recorded.max()  # heterogeneous
        cache = ResultCache(tmp_path)
        key = cache.key_for(spec)
        cache.put(key, direct)
        arrays_path = tmp_path / (key + ".npz")
        manifest = json.loads((tmp_path / (key + ".json")).read_text())
        assert manifest["trace"]["packed"] is True
        with np.load(arrays_path) as arrays:
            packed = arrays["trace_values_0"]
            assert packed.shape == (int(trace.n_recorded.sum()), spec.k)
            assert packed.dtype == trace["counts"].dtype
            # Strictly fewer stored cells than the dense padded block (the
            # wall-clock size win at scale is recorded by the benchmark
            # suite; this fixture is too small for zip overhead to win).
            assert packed.nbytes < trace["counts"].nbytes
        replay = ResultCache(tmp_path).get(key)
        assert replay.trace.digest() == trace.digest()

    def test_unpacked_legacy_trace_layout_still_decodes(self):
        # Defence in depth: a manifest without the packed flag decodes the
        # old dense layout (such entries are keyed out by the schema bump,
        # but the decoder should not misread one that reappears).
        from repro.serve.cache import _decode, _encode

        direct = simulate_ensemble(small_spec(record=["bias"]))
        manifest, arrays = _encode(direct)
        dense_arrays = dict(arrays)
        dense_arrays["trace_values_0"] = direct.trace["bias"]
        manifest["trace"] = {k: v for k, v in manifest["trace"].items() if k != "packed"}
        decoded = _decode(manifest, dense_arrays)
        assert decoded.trace.digest() == direct.trace.digest()

    def test_schema_version_invalidates(self, tmp_path):
        # Primary mechanism: the version is hashed into the key, so a new
        # engine simply never addresses old entries.
        spec = small_spec()
        old = ResultCache(tmp_path, schema_version=ENGINE_SCHEMA_VERSION)
        old.fetch_or_run(spec)
        new = ResultCache(tmp_path, schema_version=ENGINE_SCHEMA_VERSION + 1)
        assert new.get(new.key_for(spec)) is None

    def test_stale_manifest_is_removed_not_served(self, tmp_path):
        # Defence in depth: an entry *addressed* by the right key but whose
        # manifest records another engine version is deleted, not decoded.
        spec = small_spec()
        cache = ResultCache(tmp_path)
        key = cache.key_for(spec)
        cache.fetch_or_run(spec)
        manifest_path = tmp_path / (key + ".json")
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = ENGINE_SCHEMA_VERSION - 1
        manifest_path.write_text(json.dumps(manifest))
        fresh = ResultCache(tmp_path)  # bypass the memory layer
        assert fresh.get(key) is None
        assert fresh.invalidated == 1
        assert not manifest_path.exists()

    def test_returned_arrays_are_defensive_copies(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        first = cache.fetch_or_run(spec)
        first.rounds[:] = -99
        second = cache.fetch_or_run(spec)
        assert not np.array_equal(first.rounds, second.rounds)
        assert_results_identical(simulate_ensemble(spec), second)

    def test_memory_lru_evicts_to_disk_layer(self, tmp_path):
        cache = ResultCache(tmp_path, memory_entries=1)
        spec_a, spec_b = small_spec(seed=0), small_spec(seed=1)
        cache.fetch_or_run(spec_a)
        cache.fetch_or_run(spec_b)  # evicts spec_a from memory
        assert len(cache._memory) == 1
        hit = cache.get(cache.key_for(spec_a))  # re-promoted from disk
        assert hit is not None

    def test_memory_only_cache(self):
        cache = ResultCache(None)
        spec = small_spec()
        cold = cache.fetch_or_run(spec)
        warm = cache.fetch_or_run(spec)
        assert cache.hits == 1
        assert_results_identical(cold, warm)
        assert cache.stats()["root"] is None

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.fetch_or_run(small_spec(seed=0))
        cache.fetch_or_run(small_spec(seed=1))
        stats = cache.stats()
        assert stats["disk_entries"] == 2
        assert stats["disk_bytes"] > 0
        # Each entry lives in memory *and* on disk but counts once.
        assert cache.clear() == 2
        assert cache.stats()["disk_entries"] == 0
        assert cache.get(cache.key_for(small_spec(seed=0))) is None

    def test_root_tilde_is_expanded(self):
        cache = ResultCache("~/some-cache")
        assert "~" not in str(cache.root)

    def test_purge_stale_removes_only_other_versions(self, tmp_path):
        current = ResultCache(tmp_path)
        current.fetch_or_run(small_spec(seed=0))
        old = ResultCache(tmp_path, schema_version=ENGINE_SCHEMA_VERSION - 1)
        old.fetch_or_run(small_spec(seed=0))  # different key: old-version entry
        assert current.stats()["disk_entries"] == 2
        assert current.purge_stale() == 1
        assert current.stats()["disk_entries"] == 1
        assert current.get(current.key_for(small_spec(seed=0))) is not None

    def test_in_flight_temp_files_stay_out_of_entry_namespace(self, tmp_path):
        # stats()/clear() glob "*.json"; writer temp files must not match it.
        cache = ResultCache(tmp_path)
        cache.fetch_or_run(small_spec(seed=0))
        (tmp_path / "tmpabc123.json.tmp").write_text("{}")
        (tmp_path / "tmpabc123.npz.tmp").write_bytes(b"")
        assert cache.stats()["disk_entries"] == 1
        assert cache.clear() == 1

    def test_rejects_junk(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(TypeError, match="EnsembleResult"):
            cache.put("deadbeef", {"not": "a result"})
        with pytest.raises(ValueError, match="memory_entries"):
            ResultCache(tmp_path, memory_entries=0)


class TestRunBatch:
    def test_order_preserved_and_bit_identical(self, tmp_path):
        specs = [small_spec(seed=s) for s in (3, 1, 2, 1, 3)]
        report = run_batch(specs, cache=ResultCache(tmp_path), processes=1)
        assert report.requests == 5
        for spec, result in zip(specs, report.results):
            assert_results_identical(simulate_ensemble(spec), result)

    def test_dedup_counts(self, tmp_path):
        specs = [small_spec(seed=0)] * 3 + [small_spec(seed=1)]
        report = run_batch(specs, cache=ResultCache(tmp_path), processes=1)
        assert report.misses == 2
        assert report.deduped == 2
        assert report.hits == 0
        assert report.sources == ["run", "dedup", "dedup", "run"]

    def test_warm_batch_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [small_spec(seed=s) for s in (0, 1)]
        run_batch(specs, cache=cache, processes=1)
        warm = run_batch(specs, cache=cache, processes=1)
        assert warm.hits == 2 and warm.misses == 0
        assert warm.sources == ["cache", "cache"]
        assert warm.summary()["unique"] == 2

    def test_without_cache_still_dedups(self):
        report = run_batch([small_spec(), small_spec()], processes=1)
        assert report.deduped == 1 and report.misses == 1

    def test_rejects_unseeded_specs(self):
        with pytest.raises(ValueError, match="seed=None"):
            run_batch([small_spec(seed=None)], processes=1)
        with pytest.raises(TypeError, match="ScenarioSpec"):
            run_batch(["not a spec"], processes=1)


def build_cached_sweep_spec(params):
    """Module-level builder (parallel_sweep requires picklability)."""
    return ScenarioSpec(
        dynamics="3-majority",
        initial="paper-biased",
        n=int(params["n"]),
        k=4,
        replicas=2,
        seed=0,
        stopping={"rule": "plurality-fraction", "fraction": 0.9},
    )


class TestSweepCacheWiring:
    KW = dict(replicas=5, max_rounds=400, seed=11, experiment_id="cache-wire")

    def test_sweep_warm_equals_cold_equals_uncached(self, tmp_path):
        points = grid(n=[2_000, 4_000])
        cache = ResultCache(tmp_path)
        base = sweep(points, build_cached_sweep_spec, **self.KW)
        cold = sweep(points, build_cached_sweep_spec, cache=cache, **self.KW)
        warm = sweep(points, build_cached_sweep_spec, cache=cache, **self.KW)
        assert cache.misses == 2 and cache.hits == 2
        for b, c, w in zip(base, cold, warm):
            assert_results_identical(b.ensemble, c.ensemble)
            assert_results_identical(b.ensemble, w.ensemble)

    def test_parallel_sweep_shares_the_cache(self, tmp_path):
        points = grid(n=[2_000, 4_000])
        cache = ResultCache(tmp_path)
        seq = sweep(points, build_cached_sweep_spec, cache=cache, **self.KW)
        par = parallel_sweep(
            points, build_cached_sweep_spec, cache=cache, processes=1, **self.KW
        )
        # The parallel pass is warm: the sequential pass populated the cache.
        assert cache.hits == 2
        for s, p in zip(seq, par):
            assert_results_identical(s.ensemble, p.ensemble)

    def test_cache_hit_cannot_bypass_adversary_guard(self, tmp_path):
        from repro import TargetedAdversary

        points = grid(n=[2_000])
        cache = ResultCache(tmp_path)
        parallel_sweep(points, build_cached_sweep_spec, cache=cache, processes=1, **self.KW)
        with pytest.raises(ValueError, match="adversary_for"):
            parallel_sweep(
                points,
                build_cached_sweep_spec,
                cache=cache,
                processes=1,
                adversary_for=lambda p: TargetedAdversary(5),
                **self.KW,
            )


class TestGraphSpecServing:
    """Graph-topology specs flow through the cache + executor unchanged."""

    def _graph_spec(self, **overrides) -> ScenarioSpec:
        fields = dict(
            dynamics="3-majority",
            initial="biased",
            initial_params={"bias": 8},
            n=120,
            k=3,
            topology="torus",
            topology_params={"rows": 10, "cols": 12},
            replicas=4,
            max_rounds=2_000,
            seed=5,
            record={"metrics": ["counts", "bias"], "every": 1},
        )
        fields.update(overrides)
        return ScenarioSpec(**fields)

    def test_cold_warm_disk_bit_identical(self, tmp_path):
        spec = self._graph_spec()
        direct = simulate_ensemble(spec)
        assert direct.trace is not None
        cache = ResultCache(tmp_path)
        cold = cache.fetch_or_run(spec)
        warm = cache.fetch_or_run(spec)
        disk = ResultCache(tmp_path).fetch_or_run(spec)  # cold process, disk layer
        for replay in (cold, warm, disk):
            assert_results_identical(direct, replay)
        assert disk.trace.digest() == direct.trace.digest()

    def test_distinct_keys_per_topology_and_params(self):
        base = self._graph_spec()
        keys = {
            cache_key(base),
            cache_key(base.with_overrides(topology="cycle", topology_params={})),
            cache_key(base.with_overrides(topology_params={"rows": 12, "cols": 10})),
            cache_key(
                base.with_overrides(topology="random-regular", topology_params={"d": 8})
            ),
        }
        assert len(keys) == 4

    def test_run_batch_mixes_graph_and_counts_specs(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [
            small_spec(),
            self._graph_spec(),
            self._graph_spec(),  # duplicate — must dedup, not re-run
        ]
        report = run_batch(specs, cache=cache, processes=1)
        assert report.summary()["deduped"] == 1
        assert_results_identical(report.results[1], report.results[2])
        again = run_batch(specs, cache=cache, processes=1)
        assert again.summary()["hits"] == 2  # per unique spec
        assert again.summary()["misses"] == 0
        for first, second in zip(report.results, again.results):
            assert_results_identical(first, second)


class TestCacheThreadSafety:
    """The cache is shared by service handler threads; hammer it."""

    def test_threaded_readers_writers_and_purge(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path, memory_entries=4)
        specs = [small_spec(seed=s, record={"metrics": ["bias"], "every": 1}) for s in range(6)]
        expected = {cache_key(spec): simulate_ensemble(spec) for spec in specs}
        failures: list[BaseException] = []
        stop = threading.Event()

        def writer(spec: ScenarioSpec) -> None:
            key = cache_key(spec)
            try:
                while not stop.is_set():
                    cache.put(key, expected[key])
            except BaseException as exc:  # noqa: BLE001 — collected for the assert
                failures.append(exc)

        def reader(spec: ScenarioSpec) -> None:
            key = cache_key(spec)
            try:
                while not stop.is_set():
                    hit = cache.get(key)
                    if hit is not None:
                        assert_results_identical(hit, expected[key])
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        def churner() -> None:
            try:
                while not stop.is_set():
                    cache.stats()
                    cache.purge_stale()
                    cache.clear()
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=writer, args=(s,)) for s in specs]
        threads += [threading.Thread(target=reader, args=(s,)) for s in specs]
        threads += [threading.Thread(target=churner)]
        for t in threads:
            t.start()
        import time as _time

        _time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not failures, failures
        # After the dust settles the cache still round-trips bit-identically.
        for spec in specs:
            key = cache_key(spec)
            cache.put(key, expected[key])
            assert_results_identical(cache.get(key), expected[key])

    def test_disk_put_tolerates_entry_dir_vanishing(self, tmp_path, monkeypatch):
        # A concurrent `repro cache clear` can unlink the entry directory
        # between the tmp-file write and the atomic renames; the put must
        # degrade to a no-op miss instead of raising.
        import shutil

        cache = ResultCache(tmp_path)
        spec = small_spec()
        key = cache_key(spec)
        result = simulate_ensemble(spec)

        real_replace = os.replace

        def racing_replace(src, dst):
            shutil.rmtree(tmp_path, ignore_errors=True)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", racing_replace)
        cache.put(key, result)  # must not raise
        monkeypatch.setattr(os, "replace", real_replace)
        cache2 = ResultCache(tmp_path)
        assert cache2.get(key) is None  # degraded to a miss, not corruption


class TestExecutorResilience:
    """Crash/stall recovery and per-item failure envelopes in run_batch."""

    @pytest.fixture(autouse=True)
    def _disarmed(self):
        from repro import faults

        faults.disarm()
        yield
        faults.disarm()

    def test_injected_crash_retries_bit_identical(self):
        from repro import faults

        spec = small_spec()
        baseline = run_batch([spec], processes=1)
        # The first shard attempt crashes, the retry succeeds: one retry
        # recorded, result bit-identical to the fault-free run.
        faults.arm(
            {"rules": [{"point": "executor.worker-crash", "nth": 1, "times": 1}]}
        )
        report = run_batch([spec], processes=1)
        assert report.errors == [None]
        assert sum(report.retries.values()) == 1
        assert_results_identical(report.results[0], baseline.results[0])

    def test_crash_every_attempt_exhausts_bounded(self):
        from repro import faults
        from repro.serve.executor import WorkerPoolError

        faults.arm({"rules": [{"point": "executor.worker-crash", "probability": 1.0}]})
        with pytest.raises(WorkerPoolError, match="after 2 attempts"):
            run_batch([small_spec()], processes=1, max_attempts=2)

    def test_worker_exception_becomes_item_envelope(self, monkeypatch):
        import repro.serve.executor as executor_module

        good = small_spec(seed=0)
        bad = small_spec(seed=1)
        bad_json = bad.to_json(indent=None)
        real = executor_module.simulate_ensemble

        def poisoned(spec, **kwargs):
            if spec.to_json(indent=None) == bad_json:
                raise RuntimeError("poisoned spec")
            return real(spec, **kwargs)

        monkeypatch.setattr(executor_module, "simulate_ensemble", poisoned)
        report = run_batch([good, bad, good], processes=1)
        # Sibling items are unaffected; the poisoned one carries an envelope.
        assert report.results[0] is not None
        assert report.results[2] is not None
        assert report.results[1] is None
        assert report.errors[1] == {"type": "RuntimeError", "message": "poisoned spec"}
        assert report.sources[1] == "error"
        assert report.failed == 1
        assert report.summary()["failed"] == 1

    def test_failed_items_are_not_cached(self, monkeypatch, tmp_path):
        import repro.serve.executor as executor_module

        spec = small_spec()

        def explode(spec, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(executor_module, "simulate_ensemble", explode)
        cache = ResultCache(tmp_path / "cache")
        report = run_batch([spec], cache=cache, processes=1)
        assert report.failed == 1
        assert cache.key_for(spec) not in cache

    def test_injected_fault_is_not_swallowed_as_envelope(self):
        # InjectedFault models infrastructure failure: it must stay
        # retryable, never become a deterministic per-item envelope.
        from repro import faults
        from repro.serve.executor import _run_shard

        spec = small_spec()
        faults.arm({"rules": [{"point": "executor.worker-crash", "probability": 1.0}]})
        with pytest.raises(faults.InjectedWorkerCrash):
            _run_shard([(cache_key(spec), spec.to_json(indent=None))])

    def test_backoff_delay_deterministic_and_capped(self):
        import random

        from repro.serve.executor import BACKOFF_CAP_SECONDS, backoff_delay

        a = [backoff_delay(i, random.Random(0)) for i in range(12)]
        b = [backoff_delay(i, random.Random(0)) for i in range(12)]
        assert a == b
        assert all(delay <= BACKOFF_CAP_SECONDS * 1.5 for delay in a)


class TestCacheQuarantine:
    """Checksum-validated reads: corruption degrades to a recomputable miss."""

    @pytest.fixture(autouse=True)
    def _disarmed(self):
        from repro import faults

        faults.disarm()
        yield
        faults.disarm()

    def _corrupt(self, cache: ResultCache, key: str) -> None:
        arrays_path = cache._paths(key)[1]
        blob = bytearray(arrays_path.read_bytes())
        middle = len(blob) // 2
        for offset in range(middle, min(middle + 16, len(blob))):
            blob[offset] ^= 0xFF
        arrays_path.write_bytes(bytes(blob))

    def test_corrupt_npz_round_trip(self, tmp_path):
        from repro.serve.cache import QUARANTINE_DIR

        spec = small_spec(record={"metrics": ["bias"], "every": 1})
        cache = ResultCache(tmp_path / "cache")
        original = cache.fetch_or_run(spec)
        key = cache.key_for(spec)
        self._corrupt(cache, key)
        cache._memory.clear()  # force the disk read path

        # Corruption → miss + quarantine, not a crash or a wrong-bits hit.
        assert cache.get(key) is None
        stats = cache.stats()
        assert stats["quarantined"] == 1
        quarantine = (tmp_path / "cache") / QUARANTINE_DIR
        assert sorted(p.suffix for p in quarantine.iterdir()) == [".json", ".npz"]
        # Quarantined files are out of the live-entry namespace.
        assert stats["disk_entries"] == 0

        # Recompute and re-store: bit-identical to the original, including
        # the trace digest.
        recomputed = cache.fetch_or_run(spec)
        assert_results_identical(recomputed, original)
        assert recomputed.trace.digest() == original.trace.digest()
        cache._memory.clear()
        served = cache.get(key)
        assert_results_identical(served, original)

    def test_corrupt_manifest_quarantines(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        cache.fetch_or_run(spec)
        key = cache.key_for(spec)
        cache._paths(key)[0].write_text("{not json", encoding="utf-8")
        cache._memory.clear()
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_checksum_recorded_at_write_time(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        cache.fetch_or_run(spec)
        key = cache.key_for(spec)
        manifest = json.loads(cache._paths(key)[0].read_text(encoding="utf-8"))
        import hashlib

        digest = hashlib.sha256(cache._paths(key)[1].read_bytes()).hexdigest()
        assert manifest["checksum"] == digest

    def test_read_error_fault_is_miss_without_deletion(self, tmp_path):
        from repro import faults

        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        cache.fetch_or_run(spec)
        key = cache.key_for(spec)
        cache._memory.clear()
        faults.arm({"rules": [{"point": "cache.read-error", "nth": 1, "times": 1}]})
        # Transient I/O failure: miss, but the good entry stays on disk.
        assert cache.get(key) is None
        assert cache.read_errors == 1
        assert cache._paths(key)[0].exists()
        assert cache.get(key) is not None  # next read succeeds

    def test_corrupt_payload_fault_engages_quarantine_end_to_end(self, tmp_path):
        from repro import faults
        from repro.serve.cache import QUARANTINE_DIR

        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        original = cache.fetch_or_run(spec)
        key = cache.key_for(spec)
        cache._memory.clear()
        faults.arm(
            {"rules": [{"point": "cache.corrupt-payload", "nth": 1, "times": 1}]}
        )
        assert cache.get(key) is None  # the fault corrupted the real file
        assert cache.quarantined == 1
        assert ((tmp_path / "cache") / QUARANTINE_DIR).is_dir()
        recomputed = cache.fetch_or_run(spec)
        assert_results_identical(recomputed, original)

    def test_legacy_entry_without_checksum_still_serves(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        original = cache.fetch_or_run(spec)
        key = cache.key_for(spec)
        manifest_path = cache._paths(key)[0]
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        del manifest["checksum"]
        manifest_path.write_text(json.dumps(manifest, sort_keys=True), encoding="utf-8")
        cache._memory.clear()
        served = cache.get(key)
        assert_results_identical(served, original)

    def test_clear_also_empties_quarantine(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path / "cache")
        cache.fetch_or_run(spec)
        key = cache.key_for(spec)
        self._corrupt(cache, key)
        cache._memory.clear()
        assert cache.get(key) is None
        assert cache.quarantined == 1
        cache.clear()
        from repro.serve.cache import QUARANTINE_DIR

        quarantine = (tmp_path / "cache") / QUARANTINE_DIR
        assert not any(quarantine.iterdir())
