"""Property tests for the active-support compaction substrate.

Two facts make the sparse ensemble engine exact rather than approximate,
and both are properties, not examples:

* **lossless round-trip** — ``scatter_counts(compact_counts(c)) == c``
  for any configuration batch, including the all-dead-but-one and
  full-support edges (the sparse engine's working set is compacted and
  scattered at every result boundary);

* **monotone support** — without an adversary, every built-in dynamics
  is support-closed: the union live support of an ensemble never gains a
  color from one round to the next.  This is the invariant that lets the
  sparse engine drop dead columns forever instead of tracking revivals.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import (
    HPlurality,
    MedianDynamics,
    ThreeMajority,
    TwoChoices,
    TwoSampleUniform,
    Voter,
    majority_rule,
    majority_uniform_rule,
    min_rule,
    skewed_rule,
)
from repro.core.support import compact_counts, scatter_counts, union_support

batches = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 12)),
    elements=st.integers(0, 50),
)


class TestRoundTrip:
    @given(batch=batches)
    def test_scatter_inverts_compact(self, batch):
        compacted, support = compact_counts(batch)
        assert list(support) == sorted(support)
        restored = scatter_counts(compacted, support, batch.shape[1])
        assert restored.dtype == batch.dtype
        assert np.array_equal(restored, batch)

    @given(row=hnp.arrays(np.int64, st.integers(1, 16), elements=st.integers(0, 9)))
    def test_single_row_round_trip(self, row):
        compacted, support = compact_counts(row)
        assert np.array_equal(scatter_counts(compacted, support, row.size), row)

    def test_all_dead_but_one(self):
        batch = np.zeros((4, 1000), dtype=np.int64)
        batch[:, 777] = 5
        compacted, support = compact_counts(batch)
        assert compacted.shape == (4, 1) and list(support) == [777]
        assert np.array_equal(scatter_counts(compacted, support, 1000), batch)

    def test_full_support(self):
        batch = np.arange(1, 13, dtype=np.int64).reshape(3, 4)
        compacted, support = compact_counts(batch)
        assert compacted.shape == batch.shape and list(support) == [0, 1, 2, 3]
        assert np.array_equal(scatter_counts(compacted, support, 4), batch)

    def test_all_zero(self):
        batch = np.zeros((2, 5), dtype=np.int64)
        compacted, support = compact_counts(batch)
        assert compacted.shape == (2, 0) and support.size == 0
        assert np.array_equal(scatter_counts(compacted, support, 5), batch)

    def test_union_support_is_union(self):
        batch = np.array([[1, 0, 0, 2], [0, 0, 3, 0]])
        assert list(union_support(batch)) == [0, 2, 3]

    def test_explicit_support_must_match_width(self):
        with pytest.raises(ValueError, match="does not match"):
            scatter_counts(np.ones((2, 3), dtype=np.int64), np.array([0, 1]), 5)

    def test_support_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            scatter_counts(np.ones((1, 1), dtype=np.int64), np.array([7]), 5)

    def test_compact_does_not_alias(self):
        batch = np.array([[1, 0, 2]])
        compacted, support = compact_counts(batch)
        compacted[0, 0] = 99
        assert batch[0, 0] == 1


def _dynamics_panel():
    return [
        ThreeMajority(),
        ThreeMajority(engine="agent"),
        ThreeMajority(engine="agent", tie_break="uniform"),
        HPlurality(2),
        HPlurality(4),
        HPlurality(4, engine="agent"),
        HPlurality(6),  # no exact law: agent engine
        TwoSampleUniform(),
        Voter(),
        TwoChoices(),
        MedianDynamics(),
        majority_rule(),
        majority_uniform_rule(),
        min_rule(),
        skewed_rule((1, 3, 2)),
    ]


class TestSupportMonotone:
    @settings(max_examples=15)
    @given(
        counts=hnp.arrays(np.int64, st.integers(2, 8), elements=st.integers(0, 30)),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_union_support_never_grows(self, counts, seed):
        """Adversary-free stepping never revives a color, for every rule."""
        if counts.sum() == 0:
            counts[0] = 1
        rng = np.random.default_rng(seed)
        for dynamics in _dynamics_panel():
            batch = np.tile(counts, (3, 1))
            supported = set(union_support(batch))
            for _ in range(4):
                batch = dynamics.step_many(batch, rng)
                now = set(union_support(batch))
                assert now <= supported, (dynamics.name, supported, now)
                supported = now

    def test_support_closed_flags(self):
        for dynamics in _dynamics_panel():
            assert dynamics.support_closed, dynamics.name
