"""Smoke tests: the example scripts must import and (the fast ones) run."""

from __future__ import annotations

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _import_module(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module


class TestExamplesImport:
    @pytest.mark.parametrize(
        "name",
        ["quickstart", "distributed_database", "item_ranking", "sensor_network"],
    )
    def test_importable(self, name):
        module = _import_module(name)
        assert callable(module.main)


class TestExamplesRun:
    @pytest.mark.slow
    def test_quickstart_runs(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "consensus on color" in proc.stdout
        assert "plurality-to-majority" in proc.stdout

    def test_database_reconcile_unit(self):
        # The example's core function, at toy scale.
        module = _import_module("distributed_database")
        out = module.reconcile(n_replicas=5_000, versions=4, byzantine=5, seed=0)
        assert out["correct_version_won"]
        assert out["stale_replicas"] <= 50

    def test_sensor_measure_unit(self):
        # The example's core function, at toy scale: measure() takes one
        # declarative spec, topology field included.
        module = _import_module("sensor_network")
        from repro import ScenarioSpec

        spec = ScenarioSpec(
            dynamics="3-majority",
            initial="biased",
            initial_params={"bias": 60},
            n=200,
            k=3,
            replicas=3,
            max_rounds=2_000,
            seed=0,
        )
        rate, med = module.measure(spec)
        assert rate == 1.0
        assert med < 100

    def test_sensor_spec_builder_sets_topology(self):
        module = _import_module("sensor_network")
        spec = module.sensor_spec("torus", rows=32, cols=32)
        assert spec.topology == "torus"
        assert spec.topology_params == {"rows": 32, "cols": 32}
        assert module.sensor_spec().topology is None
