"""Tests for the paper's expectation formulas (Lemmas 1, 2, 4, 5, 6, 9)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.expectations import (
    bias_growth_factor,
    expected_last_step_extinction_prob,
    expected_minority_mass,
    expected_next_bias_lower_bound,
    expected_next_counts,
    lemma6_growth_cap,
    lemma9_growth_cap,
    minority_mass_decay_factor,
)
from repro.core.majority import ThreeMajority, three_majority_law

counts_strategy = st.lists(st.integers(min_value=0, max_value=300), min_size=2, max_size=8).filter(
    lambda xs: sum(xs) > 0
)


class TestLemma1:
    def test_matches_law_times_n(self):
        c = np.array([50, 30, 20])
        assert np.allclose(expected_next_counts(c), three_majority_law(c) * 100)

    def test_conserves_mass_in_expectation(self):
        c = np.array([7, 5, 3, 1])
        assert expected_next_counts(c).sum() == pytest.approx(16.0)

    def test_monochromatic_fixed_point(self):
        c = np.array([0, 10])
        assert np.allclose(expected_next_counts(c), c)

    def test_empirical_one_round_mean(self, rng):
        c = np.array([600, 250, 150])
        mu = expected_next_counts(c)
        reps = 3000
        out = ThreeMajority().step_many(np.tile(c, (reps, 1)), rng)
        stderr = np.sqrt(1000 * 0.25 / reps)
        assert np.all(np.abs(out.mean(axis=0) - mu) < 6 * stderr)

    @given(counts_strategy)
    def test_mass_conservation_property(self, counts):
        mu = expected_next_counts(np.array(counts))
        assert mu.sum() == pytest.approx(sum(counts))
        assert (mu >= -1e-9).all()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            expected_next_counts(np.array([0, 0]))


class TestLemma2:
    @given(counts_strategy)
    def test_bound_is_respected_by_exact_expectation(self, counts):
        """Lemma 2 proven exactly: mu_(1) - mu_(j) >= s(1 + f1(1-f1))."""
        c = np.sort(np.array(counts))[::-1]
        if c.size < 2:
            return
        mu = expected_next_counts(c)
        bound = expected_next_bias_lower_bound(c)
        # The lemma bounds mu_1 - mu_j for every j != 1 (with sorted c).
        assert mu[0] - mu[1:].max() >= bound - 1e-9

    def test_growth_factor_range(self):
        assert bias_growth_factor(np.array([50, 50])) == pytest.approx(1.25)
        assert bias_growth_factor(np.array([100, 0])) == pytest.approx(1.0)

    def test_bound_zero_when_tied(self):
        assert expected_next_bias_lower_bound(np.array([5, 5])) == 0.0


class TestLemma4:
    def test_decay_below_7_9_in_range(self):
        # c1 = 2n/3 exactly: the proof shows mu_{-1} <= (7/9) * minority.
        c = np.array([600, 200, 100], dtype=np.int64)  # n=900, c1=600=2n/3
        ratio = minority_mass_decay_factor(c)
        assert ratio <= 7 / 9 + 1e-9

    @given(st.integers(min_value=9, max_value=600))
    def test_decay_property_in_lemma_range(self, n):
        # Build c1 in [2n/3, n-1], rest split over two colors.
        c1 = max((2 * n) // 3 + 1, 1)
        if c1 >= n:
            return
        rest = n - c1
        c = np.array([c1, (rest + 1) // 2, rest // 2])
        ratio = minority_mass_decay_factor(c)
        assert ratio <= 8 / 9 + 1e-9

    def test_zero_minority(self):
        assert minority_mass_decay_factor(np.array([10, 0])) == 0.0


class TestLemma5:
    def test_extinction_probability_close_to_one(self):
        n = 100_000
        c = np.array([n - 10, 5, 5])
        p = expected_last_step_extinction_prob(c)
        assert p > 0.99

    def test_extinction_matches_simulation(self, rng):
        c = np.array([9_990, 6, 4])
        p = expected_last_step_extinction_prob(c)
        reps = 2_000
        out = ThreeMajority().step_many(np.tile(c, (reps, 1)), rng)
        emp = float((out[:, 1:].sum(axis=1) == 0).mean())
        assert emp >= p - 0.05  # Markov bound is a lower bound

    def test_minority_mass_formula(self):
        c = np.array([8, 1, 1])
        mu = expected_next_counts(c)
        assert expected_minority_mass(c) == pytest.approx(mu[1] + mu[2])


class TestGrowthCaps:
    def test_lemma6_cap_shape(self):
        assert lemma6_growth_cap(1000, 10, 50) == pytest.approx(100 + 1.3 * 50)

    def test_lemma6_rejects_bad_k(self):
        with pytest.raises(ValueError):
            lemma6_growth_cap(10, 0, 1)

    def test_lemma6_empirically_holds(self, rng):
        # A color at n/k + b should stay below n/k + (1+3/k)b w.h.p.
        n, k = 100_000, 10
        b = int(2 * k * np.sqrt(n * np.log(n)))  # in the lemma's range
        b = min(b, n // k)
        c = np.full(k, (n - b) // k, dtype=np.int64)
        c[0] += b + (n - b) - ((n - b) // k) * k
        actual_b = c[0] - n // k
        reps = 500
        out = ThreeMajority().step_many(np.tile(c, (reps, 1)), rng)
        cap = lemma6_growth_cap(n, k, actual_b)
        assert (out[:, 0] <= cap).mean() > 0.99

    def test_lemma9_cap_shape(self):
        assert lemma9_growth_cap(100, 5, 20) == pytest.approx(20 * 1.5)

    def test_lemma9_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lemma9_growth_cap(0, 3, 1.0)
