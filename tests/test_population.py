"""Tests for the sequential population-protocol engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Configuration,
    PairwiseVoter,
    PopulationProcess,
    UndecidedPopulation,
    UndecidedState,
)


class TestPairwiseVoter:
    def test_interact_copies_responder(self):
        assert PairwiseVoter().interact(0, 2) == 2

    def test_converges(self):
        res = PopulationProcess(PairwiseVoter()).run(np.array([40, 10]), rng=0)
        assert res.converged
        assert res.final_counts.max() == 50

    def test_martingale_win_rate(self):
        # Sequential voter keeps the exact c_j/n absorption law.
        wins = 0
        reps = 200
        proc = PopulationProcess(PairwiseVoter())
        for seed in range(reps):
            res = proc.run(np.array([14, 6]), rng=seed)
            wins += int(res.winner == 0)
        rate = wins / reps
        assert abs(rate - 0.7) < 0.12

    def test_mass_conserved(self):
        res = PopulationProcess(PairwiseVoter()).run(np.array([7, 5, 3]), rng=1)
        assert res.final_counts.sum() == 15

    def test_parallel_rounds_normalisation(self):
        res = PopulationProcess(PairwiseVoter()).run(np.array([30, 10]), rng=2)
        assert res.parallel_rounds(40) == pytest.approx(res.ticks / 40)


class TestUndecidedPopulation:
    def test_slots(self):
        assert UndecidedPopulation().slots(4) == 5

    def test_initial_state_appends_zero(self):
        state = UndecidedPopulation().initial_state(np.array([3, 2]))
        assert state.tolist() == [3, 2, 0]

    def test_interactions(self):
        proto = UndecidedPopulation()
        proto._undecided_slot = 2  # two colors + undecided
        assert proto.interact(0, 1) == 2  # conflict -> undecided
        assert proto.interact(0, 0) == 0  # agreement -> keep
        assert proto.interact(2, 1) == 1  # undecided adopts
        assert proto.interact(2, 2) == 2  # undecided stays
        assert proto.interact(0, 2) == 0  # colored ignores undecided

    def test_converges_with_large_bias(self):
        res = PopulationProcess(UndecidedPopulation()).run(np.array([400, 100]), rng=0)
        assert res.converged
        assert res.plurality_won

    def test_binary_majority_reliability(self):
        # For k=2 with Θ(n) bias the third-state protocol elects the
        # majority w.h.p. — much more reliably than pairwise voting.
        wins = 0
        reps = 40
        proc = PopulationProcess(UndecidedPopulation())
        for seed in range(reps):
            res = proc.run(np.array([70, 30]), rng=seed)
            wins += int(res.plurality_won)
        assert wins / reps > 0.9

    def test_max_ticks_respected(self):
        res = PopulationProcess(UndecidedPopulation()).run(
            np.array([50, 50]), rng=0, max_ticks=10
        )
        assert res.ticks <= 10


class TestProcessValidation:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            PopulationProcess(PairwiseVoter()).run(np.array([1, 0]), rng=0)

    def test_seed_reproducibility(self):
        proc = PopulationProcess(PairwiseVoter())
        a = proc.run(np.array([12, 8]), rng=42)
        b = proc.run(np.array([12, 8]), rng=42)
        assert a.ticks == b.ticks
        assert a.winner == b.winner


class TestCrossModel:
    def test_sequential_vs_parallel_undecided_timescale(self):
        """A parallel round ≈ n sequential ticks (within a small factor)."""
        counts = Configuration.biased(300, 3, 120).counts
        seq = PopulationProcess(UndecidedPopulation())
        seq_rounds = []
        for seed in range(5):
            res = seq.run(counts, rng=seed)
            assert res.converged
            seq_rounds.append(res.parallel_rounds(300))
        from repro import run_process

        par_rounds = []
        for seed in range(5):
            res = run_process(UndecidedState(), Configuration(counts), rng=seed, max_rounds=50_000)
            assert res.converged
            par_rounds.append(res.rounds)
        # Same order of magnitude after tick/n normalisation.
        ratio = np.median(seq_rounds) / max(np.median(par_rounds), 1)
        assert 0.1 < ratio < 20.0
