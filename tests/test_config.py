"""Unit and property tests for :class:`repro.core.config.Configuration`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Configuration


class TestConstruction:
    def test_basic_counts(self):
        cfg = Configuration([3, 2, 1])
        assert cfg.n == 6
        assert cfg.k == 3
        assert list(cfg) == [3, 2, 1]

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            Configuration([3, -1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one color"):
            Configuration([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            Configuration(np.zeros((2, 2)))

    def test_rejects_non_integer_floats(self):
        with pytest.raises(ValueError, match="integers"):
            Configuration([1.5, 2.5])

    def test_accepts_integral_floats(self):
        cfg = Configuration([1.0, 2.0])
        assert cfg.n == 3

    def test_counts_are_read_only(self):
        cfg = Configuration([3, 2, 1])
        with pytest.raises(ValueError):
            cfg.counts[0] = 99

    def test_input_not_aliased(self):
        raw = np.array([3, 2, 1])
        cfg = Configuration(raw)
        raw[0] = 99
        assert cfg[0] == 3


class TestDerivedQuantities:
    def test_plurality(self):
        cfg = Configuration([2, 5, 3])
        assert cfg.plurality_color == 1
        assert cfg.plurality_count == 5
        assert cfg.runner_up_count == 3
        assert cfg.bias == 2

    def test_bias_with_tied_plurality(self):
        cfg = Configuration([4, 4, 2])
        assert cfg.bias == 0
        assert not cfg.has_unique_plurality()

    def test_unique_plurality(self):
        assert Configuration([5, 4, 1]).has_unique_plurality()

    def test_single_color_runner_up(self):
        cfg = Configuration([7])
        assert cfg.runner_up_count == 0
        assert cfg.bias == 7

    def test_monochromatic(self):
        assert Configuration([0, 9, 0]).is_monochromatic
        assert not Configuration([1, 8, 0]).is_monochromatic

    def test_minority_mass(self):
        assert Configuration([6, 3, 1]).minority_mass() == 4

    def test_support_size(self):
        assert Configuration([3, 0, 1, 0]).support_size == 2

    def test_fractions_sum_to_one(self):
        f = Configuration([1, 2, 3]).fractions()
        assert f.sum() == pytest.approx(1.0)

    def test_sum_of_squares(self):
        assert Configuration([3, 2, 1]).sum_of_squares() == 14

    def test_monochromatic_distance_extremes(self):
        assert Configuration([9, 0, 0]).monochromatic_distance() == pytest.approx(1.0)
        assert Configuration([3, 3, 3]).monochromatic_distance() == pytest.approx(3.0)

    def test_sorted_counts(self):
        assert Configuration([1, 5, 3]).sorted_counts().tolist() == [5, 3, 1]


class TestFactories:
    def test_monochromatic_factory(self):
        cfg = Configuration.monochromatic(10, 4, color=2)
        assert cfg.counts.tolist() == [0, 0, 10, 0]

    def test_monochromatic_rejects_bad_color(self):
        with pytest.raises(ValueError):
            Configuration.monochromatic(10, 4, color=4)

    def test_balanced_even(self):
        assert Configuration.balanced(12, 4).counts.tolist() == [3, 3, 3, 3]

    def test_balanced_remainder(self):
        cfg = Configuration.balanced(14, 4)
        assert cfg.counts.tolist() == [4, 4, 3, 3]
        assert cfg.n == 14

    def test_biased_exact_bias(self):
        for n, k, s in [(100, 4, 10), (101, 3, 7), (57, 5, 1)]:
            cfg = Configuration.biased(n, k, s)
            assert cfg.n == n
            assert cfg.bias == s, (n, k, s, cfg.counts)
            assert cfg.plurality_color == 0

    def test_biased_custom_plurality(self):
        cfg = Configuration.biased(100, 4, 8, plurality=2)
        assert cfg.plurality_color == 2
        assert cfg.bias == 8

    def test_biased_rejects_bad_bias(self):
        with pytest.raises(ValueError):
            Configuration.biased(10, 3, 11)

    def test_two_color_by_bias(self):
        cfg = Configuration.two_color(100, bias=20)
        assert cfg.counts.tolist() == [60, 40]

    def test_two_color_odd_bias_rounds_up(self):
        cfg = Configuration.two_color(100, bias=19)
        assert cfg.n == 100
        assert cfg.bias == 20

    def test_two_color_by_fraction(self):
        assert Configuration.two_color(100, majority_fraction=0.7).counts.tolist() == [70, 30]

    def test_from_fractions(self):
        cfg = Configuration.from_fractions(10, [0.5, 0.3, 0.2])
        assert cfg.n == 10
        assert cfg.counts.tolist() == [5, 3, 2]

    def test_from_fractions_rounding_conserves_mass(self):
        cfg = Configuration.from_fractions(7, [1, 1, 1])
        assert cfg.n == 7

    def test_from_fractions_rejects_zero(self):
        with pytest.raises(ValueError):
            Configuration.from_fractions(5, [0, 0])

    def test_random_factory(self, rng):
        cfg = Configuration.random(1000, 5, rng)
        assert cfg.n == 1000
        assert cfg.k == 5


class TestManipulation:
    def test_permuted(self):
        cfg = Configuration([5, 3, 1]).permuted([2, 0, 1])
        assert cfg.counts.tolist() == [1, 5, 3]

    def test_permuted_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Configuration([5, 3, 1]).permuted([0, 0, 1])

    def test_relabel_sorted(self):
        assert Configuration([1, 5, 3]).relabel_sorted().counts.tolist() == [5, 3, 1]

    def test_with_counts_checks_k(self):
        with pytest.raises(ValueError):
            Configuration([1, 2]).with_counts(np.array([1, 2, 3]))

    def test_equality_and_hash(self):
        a = Configuration([3, 2])
        b = Configuration([3, 2])
        c = Configuration([2, 3])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_contains_summary(self):
        r = repr(Configuration([3, 2, 1]))
        assert "n=6" in r and "bias=1" in r


# -- property-based -----------------------------------------------------------

counts_strategy = st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=8).filter(
    lambda xs: sum(xs) > 0
)


@given(counts_strategy)
def test_bias_matches_sorted_definition(counts):
    cfg = Configuration(counts)
    ordered = sorted(counts, reverse=True)
    expected = ordered[0] - (ordered[1] if len(ordered) > 1 else 0)
    assert cfg.bias == expected


@given(counts_strategy)
def test_permutation_invariants(counts):
    cfg = Configuration(counts)
    perm = list(reversed(range(len(counts))))
    permuted = cfg.permuted(perm)
    assert permuted.n == cfg.n
    assert permuted.bias == cfg.bias
    assert permuted.sum_of_squares() == cfg.sum_of_squares()
    assert sorted(permuted.counts.tolist()) == sorted(cfg.counts.tolist())


@given(
    st.integers(min_value=2, max_value=400),
    st.integers(min_value=2, max_value=8),
    st.data(),
)
def test_biased_factory_properties(n, k, data):
    s = data.draw(st.integers(min_value=0, max_value=n - n // k))
    cfg = Configuration.biased(n, k, s)
    assert cfg.n == n
    assert cfg.k == k
    assert cfg.bias >= s  # never weaker than requested
    if (n - s) % k == 0:
        assert cfg.bias == s  # exact whenever the rivals split evenly


@given(counts_strategy)
def test_monochromatic_distance_bounds(counts):
    cfg = Configuration(counts)
    md = cfg.monochromatic_distance()
    assert 1.0 <= md <= cfg.k + 1e-9
