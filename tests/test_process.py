"""Tests for the process runner (trajectories and ensembles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Configuration,
    EnsembleResult,
    ThreeMajority,
    UndecidedState,
    Voter,
    run_ensemble,
    run_process,
)


class TestRunProcess:
    def test_converges_and_records(self):
        cfg = Configuration.biased(10_000, 5, 2_000)
        res = run_process(ThreeMajority(), cfg, rng=0, record=["counts", "bias", "plurality-count"])
        assert res.converged
        assert res.plurality_won
        assert res.winner == 0
        trajectory = res.trace.replica(0, "counts")
        assert trajectory.shape == (res.rounds + 1, 5)
        assert res.trace.replica(0, "bias").size == res.rounds + 1
        assert res.trace.replica(0, "plurality-count")[-1] == 10_000

    def test_trajectory_mass_conserved(self):
        cfg = Configuration.biased(5_000, 4, 600)
        res = run_process(ThreeMajority(), cfg, rng=1, record=["counts"])
        assert (res.trace.replica(0, "counts").sum(axis=1) == 5_000).all()

    def test_monochromatic_start_is_instant(self):
        res = run_process(ThreeMajority(), Configuration.monochromatic(100, 3, 1), rng=0)
        assert res.converged
        assert res.rounds == 0
        assert res.winner == 1

    def test_max_rounds_respected(self):
        cfg = Configuration.balanced(10_000, 10)
        res = run_process(ThreeMajority(), cfg, rng=0, max_rounds=2)
        assert not res.converged
        assert res.rounds == 2
        assert res.winner is None
        assert not res.plurality_won

    def test_stop_at_plurality_fraction(self):
        cfg = Configuration.biased(20_000, 4, 2_000)
        with pytest.warns(DeprecationWarning, match="stop_at_plurality_fraction"):
            res = run_process(
                ThreeMajority(), cfg, rng=0, stop_at_plurality_fraction=0.5, max_rounds=10_000
            )
        plurality = res.trace.replica(0, "plurality-count")
        assert plurality[-1] >= 10_000
        assert not res.converged or plurality[-1] == 20_000

    def test_zero_agents_rejected(self):
        with pytest.raises(ValueError, match="zero agents"):
            run_process(ThreeMajority(), np.array([0, 0]), rng=0)

    def test_seed_reproducibility(self):
        cfg = Configuration.biased(5_000, 4, 400)
        a = run_process(ThreeMajority(), cfg, rng=123, record=["counts"])
        b = run_process(ThreeMajority(), cfg, rng=123, record=["counts"])
        assert a.rounds == b.rounds
        assert a.trace == b.trace

    def test_accepts_raw_counts(self):
        res = run_process(ThreeMajority(), np.array([900, 100]), rng=0)
        assert res.converged

    def test_extra_state_dynamics(self):
        res = run_process(UndecidedState(), Configuration([800, 200]), rng=0, max_rounds=10_000)
        assert res.converged
        assert res.final_counts.size == 2


class TestRunEnsemble:
    def test_basic_shape(self):
        cfg = Configuration.biased(5_000, 4, 800)
        ens = run_ensemble(ThreeMajority(), cfg, 16, rng=0)
        assert ens.replicas == 16
        assert ens.rounds.shape == (16,)
        assert ens.converged.all()
        assert ens.plurality_win_rate == 1.0
        assert ens.final_counts is not None
        assert ens.final_counts.shape == (16, 4)

    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            run_ensemble(ThreeMajority(), Configuration([5, 5]), 0, rng=0)

    def test_non_converged_marked(self):
        cfg = Configuration.balanced(10_000, 8)
        ens = run_ensemble(ThreeMajority(), cfg, 4, max_rounds=2, rng=0)
        assert not ens.converged.any()
        assert (ens.winners == -1).all()
        assert np.isnan(ens.rounds_summary()["median"])

    def test_winner_distribution_voter(self):
        # Exact martingale: P(winner = 0) = 0.7.
        cfg = Configuration([35, 15])
        ens = run_ensemble(Voter(), cfg, 400, max_rounds=100_000, rng=5)
        assert ens.convergence_rate == 1.0
        assert abs(ens.plurality_win_rate - 0.7) < 0.08

    def test_batch_false_runs(self):
        cfg = Configuration.biased(2_000, 3, 400)
        ens = run_ensemble(ThreeMajority(), cfg, 5, rng=7, batch=False)
        assert ens.converged.all()
        assert ens.plurality_win_rate == 1.0

    def test_batch_false_accepts_generator_deterministically(self):
        # Regression: a passed Generator used to be silently discarded in
        # favour of OS entropy.  Now it spawns the per-replica streams, so
        # equal generator state gives equal results...
        cfg = Configuration.biased(2_000, 3, 400)
        a = run_ensemble(ThreeMajority(), cfg, 5, rng=np.random.default_rng(7), batch=False)
        b = run_ensemble(ThreeMajority(), cfg, 5, rng=np.random.default_rng(7), batch=False)
        assert np.array_equal(a.rounds, b.rounds)
        assert np.array_equal(a.final_counts, b.final_counts)
        # ...and matches the int-seed path (same root seed sequence).
        c = run_ensemble(ThreeMajority(), cfg, 5, rng=7, batch=False)
        assert np.array_equal(a.rounds, c.rounds)
        assert np.array_equal(a.final_counts, c.final_counts)

    def test_batch_statistics_match_unbatched(self):
        cfg = Configuration.biased(5_000, 4, 700)
        fast = run_ensemble(ThreeMajority(), cfg, 64, rng=1, batch=True)
        slow = run_ensemble(ThreeMajority(), cfg, 64, rng=2, batch=False)
        assert abs(fast.rounds[fast.converged].mean() - slow.rounds[slow.converged].mean()) < 2.0

    def test_extra_state_ensemble(self):
        cfg = Configuration.biased(2_000, 3, 500)
        ens = run_ensemble(UndecidedState(), cfg, 8, rng=0, max_rounds=10_000)
        assert ens.converged.all()
        assert ens.final_counts is not None
        assert ens.final_counts.shape == (8, 3)

    def test_rounds_summary_fields(self):
        cfg = Configuration.biased(2_000, 3, 500)
        ens = run_ensemble(ThreeMajority(), cfg, 8, rng=0)
        summary = ens.rounds_summary()
        assert set(summary) == {"mean", "median", "p90", "max"}
        assert summary["max"] >= summary["median"] >= 0

    def test_ensemble_result_empty_properties(self):
        ens = EnsembleResult(
            rounds=np.array([], dtype=np.int64),
            winners=np.array([], dtype=np.int64),
            converged=np.array([], dtype=bool),
            plurality_color=0,
            max_rounds=10,
        )
        assert np.isnan(ens.plurality_win_rate)
        assert ens.replicas == 0
        # final_counts is optional: absent here, and rounds_summary still works.
        assert ens.final_counts is None
        assert np.isnan(ens.rounds_summary()["median"])
