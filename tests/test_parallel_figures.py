"""Tests for the multiprocess sweep runner and the ASCII figure registry."""

from __future__ import annotations

import pytest

from repro import Configuration, ThreeMajority
from repro.experiments import figure_ids, render_figure
from repro.experiments.harness import sweep
from repro.experiments.parallel import parallel_sweep


def _build(params):
    """Module-level builder: picklable for the spawn-based pool."""
    return ThreeMajority(), Configuration.biased(int(params["n"]), 4, int(params["n"]) // 10)


POINTS = [{"n": 2_000}, {"n": 4_000}, {"n": 6_000}]


class TestParallelSweep:
    def test_matches_sequential_exactly(self):
        kwargs = dict(
            replicas=4, max_rounds=2_000, seed=11, experiment_id="PTEST"
        )
        seq = sweep(POINTS, _build, **kwargs)
        par = parallel_sweep(POINTS, _build, processes=2, **kwargs)
        assert len(seq) == len(par)
        for a, b in zip(seq, par):
            assert a.params == b.params
            assert (a.ensemble.rounds == b.ensemble.rounds).all()
            assert (a.ensemble.winners == b.ensemble.winners).all()

    def test_single_process_fallback(self):
        out = parallel_sweep(
            POINTS[:2],
            _build,
            processes=1,
            replicas=2,
            max_rounds=2_000,
            seed=0,
            experiment_id="PTEST",
        )
        assert len(out) == 2
        assert all(p.ensemble.convergence_rate == 1.0 for p in out)

    def test_preserves_point_order(self):
        out = parallel_sweep(
            POINTS,
            _build,
            processes=3,
            replicas=2,
            max_rounds=2_000,
            seed=0,
            experiment_id="PTEST",
        )
        assert [p.params["n"] for p in out] == [2_000, 4_000, 6_000]


class TestFigures:
    def test_registry_lists_six(self):
        assert figure_ids() == ["F1", "F2", "F3", "F4", "F5", "F6"]

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            render_figure("F99")

    def test_f6_renders_fast(self):
        out = render_figure("F6", scale="smoke", seed=0)
        assert "Lemmas 3-5" in out
        assert "bias s(c)" in out
        assert "minority mass" in out

    @pytest.mark.slow
    def test_f2_and_f4_render(self):
        for fid, needle in [("F2", "Theorem 2"), ("F4", "Lemma 10")]:
            out = render_figure(fid, scale="smoke", seed=0)
            assert needle in out
            assert "legend" in out

    @pytest.mark.slow
    def test_f1_f3_f5_render(self):
        for fid in ("F1", "F3", "F5"):
            out = render_figure(fid, scale="smoke", seed=0)
            assert "legend" in out
