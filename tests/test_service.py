"""Tests for the network-facing service: HTTP framing, coalescing, sharding,
the load harness, and end-to-end bit-identity against the library."""

from __future__ import annotations

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro import ResultCache, ScenarioSpec, cache_key, simulate_ensemble
from repro.service import (
    BackgroundServer,
    ScenarioService,
    ServiceClient,
    ServiceError,
    ShardMap,
)
from repro.service.app import LatencyHistogram
from repro.service.http import HttpError, encode_response
from repro.service.load import (
    SMOKE_ENTRIES,
    corpus_json,
    generate_corpus,
    run_load,
)


def spec_dict(**overrides) -> dict:
    fields = dict(
        dynamics="3-majority",
        initial="paper-biased",
        n=4_000,
        k=4,
        replicas=6,
        seed=0,
        stopping={"rule": "plurality-fraction", "fraction": 0.9},
        record={"metrics": ["bias"], "every": 1},
    )
    fields.update(overrides)
    return fields


@pytest.fixture(scope="module")
def server():
    service = ScenarioService(cache=ResultCache(None), workers=0)
    with BackgroundServer(service) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServiceClient("127.0.0.1", server.port) as c:
        yield c


class TestShardMap:
    def test_deterministic_and_total(self):
        ring = ShardMap(["a", "b", "c"])
        keys = [f"{i:064x}" for i in range(200)]
        owners = [ring.owner_of(k) for k in keys]
        assert owners == [ShardMap(["c", "a", "b"]).owner_of(k) for k in keys]
        assert set(owners) <= {"a", "b", "c"}

    def test_reasonable_balance(self):
        ring = ShardMap(["a", "b", "c", "d"])
        keys = [f"{i:064x}" for i in range(4_000)]
        counts = {}
        for key in keys:
            owner = ring.owner_of(key)
            counts[owner] = counts.get(owner, 0) + 1
        for node, count in counts.items():
            assert 0.5 * 1_000 < count < 2.0 * 1_000, (node, counts)

    def test_adding_a_node_moves_few_keys(self):
        keys = [f"{i:064x}" for i in range(2_000)]
        before = ShardMap(["a", "b", "c"])
        after = ShardMap(["a", "b", "c", "d"])
        moved = sum(
            1
            for k in keys
            if before.owner_of(k) != after.owner_of(k)
        )
        # Consistent hashing: ~1/4 of keys move to the new node, not ~3/4.
        assert moved < len(keys) * 0.45
        for k in keys:
            if before.owner_of(k) != after.owner_of(k):
                assert after.owner_of(k) == "d"

    def test_assignments_partition_keys(self):
        ring = ShardMap(["x", "y"])
        keys = [f"{i:064x}" for i in range(100)]
        counts = ring.assignments(keys)
        assert set(counts) == {"x", "y"}
        assert sum(counts.values()) == len(keys)

    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            ShardMap([])


class TestLatencyHistogram:
    def test_quantiles_bracket_observations(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 3, 50, 200):
            hist.observe(ms / 1000.0)
        stats = hist.to_dict()
        assert stats["count"] == 5
        assert 0 < stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
        assert stats["p99_ms"] >= 100  # the 200 ms sample dominates the tail

    def test_empty_histogram(self):
        stats = LatencyHistogram().to_dict()
        assert stats["count"] == 0
        assert stats["p50_ms"] is None


class TestHttpLayer:
    def test_encode_response_is_strict_json(self):
        raw = encode_response(200, {"x": 1.5})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200" in head
        assert b"content-length" in head.lower()
        assert json.loads(body) == {"x": 1.5}

    def test_encode_response_rejects_nan(self):
        with pytest.raises(ValueError):
            encode_response(200, {"x": float("nan")})

    def test_http_error_carries_status(self):
        exc = HttpError(413, "too big")
        assert exc.status == 413
        assert "too big" in str(exc)


class TestEndpoints:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["workers"] == 0
        assert payload["cache"] is True

    def test_simulate_cold_then_warm_bit_identical(self, client):
        spec = spec_dict(seed=11)
        cold = client.simulate(spec)
        warm = client.simulate(spec)
        assert cold["source"] == "run"
        assert warm["source"] == "cache"
        for field in ("key", "winners", "rounds", "converged", "plurality_color"):
            assert cold[field] == warm[field]
        assert cold["trace"]["digest"] == warm["trace"]["digest"]

    def test_simulate_agrees_with_direct_library_call(self, client):
        raw = spec_dict(seed=12)
        served = client.simulate(raw)
        direct = simulate_ensemble(ScenarioSpec.from_dict(raw))
        assert served["key"] == cache_key(ScenarioSpec.from_dict(raw))
        assert served["winners"] == [int(w) for w in direct.winners]
        assert served["rounds"] == [int(r) for r in direct.rounds]
        assert served["converged"] == [bool(c) for c in direct.converged]
        assert served["plurality_color"] == direct.plurality_color
        assert served["trace"]["digest"] == direct.trace.digest()
        assert served["spec"] == ScenarioSpec.from_dict(raw).to_dict()

    def test_result_lookup_roundtrip(self, client):
        spec = spec_dict(seed=13)
        posted = client.simulate(spec)
        fetched = client.result(posted["key"])
        assert fetched["source"] == "cache"
        assert fetched["trace"]["digest"] == posted["trace"]["digest"]
        assert fetched["winners"] == posted["winners"]

    def test_result_unknown_key_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.result("0" * 64)
        assert err.value.status == 404

    def test_result_malformed_key_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.result("not-a-key")
        assert err.value.status == 400

    def test_unknown_route_is_404(self, client):
        status, payload = client.request_json("GET", "/v1/nope")
        assert status == 404
        assert payload["error"]["type"] == "HttpError"

    def test_wrong_method_is_405(self, client):
        status, payload = client.request_json("GET", "/v1/simulate")
        assert status == 405
        assert "POST" in payload["error"]["message"]

    def test_malformed_json_body_is_400(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/simulate",
                body=b"{nope",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["type"] == "HttpError"

    def test_invalid_spec_is_400_with_envelope(self, client):
        with pytest.raises(ServiceError) as err:
            client.simulate(spec_dict(n=-1))
        assert err.value.status == 400
        assert err.value.body["error"]["type"] == "ValueError"

    def test_unseeded_spec_is_rejected(self, client):
        with pytest.raises(ServiceError) as err:
            client.simulate(spec_dict(seed=None))
        assert err.value.status == 400
        assert "seed" in err.value.body["error"]["message"]

    def test_unknown_spec_key_is_rejected(self, client):
        with pytest.raises(ServiceError) as err:
            client.simulate(spec_dict(bogus_field=1))
        assert err.value.status == 400

    def test_stats_shape(self, client):
        client.simulate(spec_dict(seed=14))
        stats = client.stats()
        assert stats["runs"] >= 1
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        assert "POST /v1/simulate" in stats["requests"]
        per = stats["requests"]["POST /v1/simulate"]
        assert per["count"] >= 1
        assert per["p95_ms"] is not None
        assert stats["shards"]["nodes"] == ["local"]

    def test_batch_mixed_valid_invalid_and_dedup(self, client):
        good = spec_dict(seed=15)
        bad = spec_dict(seed=15, n="nope")
        report = client.batch([good, bad, good])
        assert report["requests"] == 3
        assert report["errors"] == 1
        assert report["unique"] == 1
        sources = [item["source"] for item in report["items"]]
        assert sources[0] in ("run", "cache")
        assert sources[1] == "error"
        assert sources[2] == "dedup"
        assert report["items"][1]["error"]["type"] == "ValueError"
        assert report["items"][0]["trace"]["digest"] == report["items"][2]["trace"]["digest"]

    def test_batch_scenarios_wrapper_accepted(self, client):
        report = client.batch({"scenarios": [spec_dict(seed=16)]})
        assert report["requests"] == 1
        assert report["items"][0]["error"] is None


class TestCoalescing:
    def test_concurrent_duplicates_run_once(self):
        service = ScenarioService(cache=ResultCache(None), workers=0)
        real_execute = service._execute

        async def slow_execute(key, spec):
            await asyncio.sleep(0.3)  # hold the in-flight window open
            return await real_execute(key, spec)

        service._execute = slow_execute
        spec = spec_dict(seed=17)
        fan_out = 4
        payloads: list[dict] = []
        errors: list[BaseException] = []

        def one_request():
            try:
                with ServiceClient("127.0.0.1", srv.port, timeout=120.0) as c:
                    payloads.append(c.simulate(spec))
            except BaseException as exc:  # noqa: BLE001 — surfaced via the assert
                errors.append(exc)

        with BackgroundServer(service) as srv:
            threads = [threading.Thread(target=one_request) for _ in range(fan_out)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            with ServiceClient("127.0.0.1", srv.port) as c:
                stats = c.stats()
        assert not errors, errors
        assert stats["runs"] == 1
        assert stats["coalesced"] == fan_out - 1
        sources = sorted(p["source"] for p in payloads)
        assert sources.count("coalesced") == fan_out - 1
        digests = {p["trace"]["digest"] for p in payloads}
        assert len(digests) == 1  # every follower saw the owner's bits

    def test_coalesced_failure_propagates_to_followers(self):
        service = ScenarioService(cache=ResultCache(None), workers=0)

        async def exploding_execute(key, spec):
            await asyncio.sleep(0.2)
            raise RuntimeError("engine exploded")

        service._execute = exploding_execute
        spec = spec_dict(seed=18)
        statuses: list[int] = []

        def one_request():
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                try:
                    c.simulate(spec)
                    statuses.append(200)
                except ServiceError as exc:
                    statuses.append(exc.status)

        with BackgroundServer(service) as srv:
            threads = [threading.Thread(target=one_request) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert statuses == [500, 500, 500]


class TestProcessPoolWorkers:
    def test_workers_pool_matches_inline(self, tmp_path):
        spec = spec_dict(seed=19, n=2_000, replicas=4)
        inline = ScenarioService(cache=ResultCache(None), workers=0)
        pooled = ScenarioService(cache=ResultCache(None), workers=1)
        with BackgroundServer(inline) as a, BackgroundServer(pooled) as b:
            with ServiceClient("127.0.0.1", a.port) as ca, ServiceClient(
                "127.0.0.1", b.port
            ) as cb:
                left = ca.simulate(spec)
                right = cb.simulate(spec)
        assert left["key"] == right["key"]
        assert left["winners"] == right["winners"]
        assert left["trace"]["digest"] == right["trace"]["digest"]


class TestShardRouting:
    def test_remote_owner_still_served_but_counted(self):
        spec = spec_dict(seed=20)
        key = cache_key(ScenarioSpec.from_dict(spec))
        ring = ShardMap(["local", "other"])
        owner = ring.owner_of(key)
        service = ScenarioService(
            cache=ResultCache(None),
            workers=0,
            shards=["local", "other"],
            shard_self="local",
        )
        with BackgroundServer(service) as srv:
            with ServiceClient("127.0.0.1", srv.port) as c:
                payload = c.simulate(spec)
                stats = c.stats()
        assert payload["shard"] == owner
        expected_remote = 1 if owner != "local" else 0
        assert stats["remote_shard_requests"] == expected_remote


class TestCorpus:
    def test_generation_is_deterministic(self):
        a = corpus_json(seed=0, unique=12, duplicates=3)
        b = corpus_json(seed=0, unique=12, duplicates=3)
        assert a == b
        assert corpus_json(seed=1, unique=12, duplicates=3) != a

    def test_entries_are_valid_specs(self):
        entries = generate_corpus(seed=0, unique=8, duplicates=2)
        assert len(entries) == 10
        for entry in entries:
            spec = ScenarioSpec.from_dict(entry)
            assert spec.seed is not None
            spec.validate()

    def test_committed_corpus_matches_generator(self):
        committed = (
            __import__("pathlib").Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "load"
            / "corpus.json"
        )
        assert committed.exists(), "benchmarks/load/corpus.json is committed"
        assert committed.read_text() == corpus_json()


class TestLoadDriver:
    def test_run_load_smoke_replays_identically(self, server):
        specs = generate_corpus(seed=0, unique=4, duplicates=2)[:SMOKE_ENTRIES]
        report = asyncio.run(
            run_load("127.0.0.1", server.port, specs, concurrency=2)
        )
        assert report["health"]["status"] == "ok"
        assert report["replay_identical"] is True
        phases = report["phases"]
        assert phases["cold"]["requests"] == len(specs)
        assert phases["warm"]["requests"] == len(specs)
        assert phases["warm"]["sources"].get("cache", 0) + phases["warm"][
            "sources"
        ].get("coalesced", 0) == len(specs)
        assert phases["lookup"]["requests"] == report["unique_keys"]
        for phase in phases.values():
            latency = phase["latency_ms"]
            assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]


class TestValidationMemo:
    def test_validate_runs_once_per_unique_spec(self, monkeypatch):
        # Registry validation can materialise a topology graph; the warm
        # path must not re-pay it for a spec already seen (app._prepare).
        calls: list[int] = []
        real_validate = ScenarioSpec.validate

        def counting_validate(self):
            calls.append(self.seed)
            return real_validate(self)

        monkeypatch.setattr(ScenarioSpec, "validate", counting_validate)
        service = ScenarioService(cache=ResultCache(None), workers=0)
        entry = spec_dict(seed=30)
        for _ in range(3):
            spec, error = service._prepare(entry)
            assert error is None and spec is not None
        assert calls == [30]
        other = spec_dict(seed=31)
        service._prepare(other)
        assert calls == [30, 31]

    def test_invalid_specs_are_not_memoised(self):
        service = ScenarioService(cache=ResultCache(None), workers=0)
        bad = spec_dict(dynamics="no-such-dynamics")
        for _ in range(2):
            spec, error = service._prepare(bad)
            assert spec is None
            assert error["type"] in ("KeyError", "ValueError")
        assert len(service._validated) == 0


class TestServiceResilience:
    """Deadlines, backpressure, drain, worker recovery — under injected faults."""

    @pytest.fixture(autouse=True)
    def _disarmed(self):
        from repro import faults

        faults.disarm()
        yield
        faults.disarm()

    def test_injected_owner_crash_rejects_all_followers_same_envelope(self):
        # Every attempt crashes → bounded retries exhaust → the owner AND
        # every coalesced follower get the same 500 envelope, and the
        # in-flight table is left clean.
        from repro import faults

        service = ScenarioService(cache=ResultCache(None), workers=0, worker_attempts=2)
        real_execute = service._execute

        async def slow_then_real(key, spec):
            await asyncio.sleep(0.3)  # hold the coalescing window open
            return await real_execute(key, spec)

        service._execute = slow_then_real
        faults.arm({"rules": [{"point": "executor.worker-crash", "probability": 1.0}]})
        spec = spec_dict(seed=41)
        outcomes: list[tuple[int, dict]] = []

        def one_request():
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                try:
                    c.simulate(spec)
                    outcomes.append((200, {}))
                except ServiceError as exc:
                    outcomes.append((exc.status, exc.body.get("error", {})))

        with BackgroundServer(service) as srv:
            threads = [threading.Thread(target=one_request) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        statuses = sorted(status for status, _ in outcomes)
        assert statuses == [500, 500, 500]
        envelopes = {json.dumps(envelope, sort_keys=True) for _, envelope in outcomes}
        assert len(envelopes) == 1  # followers see the owner's exact envelope
        assert outcomes[0][1]["type"] == "WorkerPoolError"
        assert service._inflight == {}

    def test_worker_crash_recovers_transparently(self):
        # A sub-certain crash probability: retries absorb every crash and
        # the client never sees a failure.
        from repro import faults

        faults.arm(
            {"seed": 11, "rules": [{"point": "executor.worker-crash", "probability": 0.5}]}
        )
        service = ScenarioService(cache=ResultCache(None), workers=0)
        with BackgroundServer(service) as srv:
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                payloads = [c.simulate(spec_dict(seed=s)) for s in range(6)]
        assert all(p["source"] == "run" for p in payloads)
        assert service.worker_retries > 0  # the plan did fire

    def test_config_deadline_yields_504(self):
        service = ScenarioService(
            cache=ResultCache(None), workers=0, deadline_seconds=0.15
        )

        async def stuck_execute(key, spec):
            await asyncio.sleep(30)

        service._execute = stuck_execute
        with BackgroundServer(service) as srv:
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                with pytest.raises(ServiceError) as err:
                    c.simulate(spec_dict(seed=42))
        assert err.value.status == 504
        assert err.value.body["error"]["type"] == "DeadlineExceeded"
        assert service.deadline_hits == 1
        assert service._inflight == {}

    def test_header_deadline_overrides_config(self):
        import http.client

        service = ScenarioService(cache=ResultCache(None), workers=0)

        async def stuck_execute(key, spec):
            await asyncio.sleep(30)

        service._execute = stuck_execute
        with BackgroundServer(service) as srv:
            conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=60.0)
            try:
                conn.request(
                    "POST",
                    "/v1/simulate",
                    body=json.dumps(spec_dict(seed=43)),
                    headers={
                        "Content-Type": "application/json",
                        "x-deadline-ms": "100",
                    },
                )
                response = conn.getresponse()
                body = json.loads(response.read())
            finally:
                conn.close()
        assert response.status == 504
        assert body["error"]["type"] == "DeadlineExceeded"

    def test_invalid_deadline_header_is_400(self):
        import http.client

        service = ScenarioService(cache=ResultCache(None), workers=0)
        with BackgroundServer(service) as srv:
            conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=30.0)
            try:
                conn.request(
                    "POST",
                    "/v1/simulate",
                    body=json.dumps(spec_dict(seed=44)),
                    headers={"Content-Type": "application/json", "x-deadline-ms": "nope"},
                )
                response = conn.getresponse()
                response.read()
            finally:
                conn.close()
        assert response.status == 400

    def test_owner_deadline_rejects_followers_with_504(self):
        # The owner carries a short x-deadline-ms; the followers have no
        # deadline of their own.  When the owner's budget expires, the
        # shared future is cancelled and the followers must see a typed
        # OwnerCancelled 504 — not hang on work nobody is running.
        import http.client

        service = ScenarioService(cache=ResultCache(None), workers=0)
        started = threading.Event()

        async def stuck_execute(key, spec):
            started.set()
            await asyncio.sleep(30)

        service._execute = stuck_execute
        spec = spec_dict(seed=45)
        owner_result: list[tuple[int, str]] = []
        follower_results: list[tuple[int, str]] = []

        def owner():
            conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=60.0)
            try:
                conn.request(
                    "POST",
                    "/v1/simulate",
                    body=json.dumps(spec),
                    headers={
                        "Content-Type": "application/json",
                        "x-deadline-ms": "300",
                    },
                )
                response = conn.getresponse()
                body = json.loads(response.read())
                owner_result.append((response.status, body["error"]["type"]))
            finally:
                conn.close()

        def follower():
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                try:
                    c.simulate(spec)
                    follower_results.append((200, ""))
                except ServiceError as exc:
                    follower_results.append(
                        (exc.status, exc.body["error"]["type"])
                    )

        with BackgroundServer(service) as srv:
            owner_thread = threading.Thread(target=owner)
            owner_thread.start()
            started.wait(timeout=10)  # the owner holds the in-flight entry
            followers = [threading.Thread(target=follower) for _ in range(2)]
            for t in followers:
                t.start()
            owner_thread.join(timeout=60)
            for t in followers:
                t.join(timeout=60)
        assert owner_result == [(504, "DeadlineExceeded")]
        assert follower_results == [(504, "OwnerCancelled")] * 2
        assert service._inflight == {}

    def test_backpressure_sheds_with_429_and_retry_after(self):
        service = ScenarioService(cache=ResultCache(None), workers=0, max_in_flight=1)
        release = asyncio.Event()
        real_execute = service._execute

        occupied = threading.Event()

        async def gated_execute(key, spec):
            occupied.set()  # the slot is genuinely taken once we get here
            await release.wait()
            return await real_execute(key, spec)

        service._execute = gated_execute
        shed_status: list[int] = []
        retry_after: list[float | None] = []

        def occupant():
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                c.simulate(spec_dict(seed=46))

        with BackgroundServer(service) as srv:
            thread = threading.Thread(target=occupant)
            thread.start()
            occupied.wait(timeout=10)
            deadline = time.perf_counter() + 10
            with ServiceClient("127.0.0.1", srv.port, timeout=30.0) as c:
                while time.perf_counter() < deadline:
                    try:
                        c.simulate(spec_dict(seed=47))
                    except ServiceError as exc:
                        shed_status.append(exc.status)
                        retry_after.append(c.last_retry_after)
                        break
                    time.sleep(0.01)
            srv._loop.call_soon_threadsafe(release.set)
            thread.join(timeout=60)
        assert shed_status == [429]
        assert retry_after == [1.0]
        assert service.shed >= 1

    def test_drain_rejects_new_work_finishes_in_flight(self):
        service = ScenarioService(cache=ResultCache(None), workers=0)
        started = threading.Event()
        real_execute = service._execute

        async def slow_execute(key, spec):
            started.set()
            await asyncio.sleep(0.5)
            return await real_execute(key, spec)

        service._execute = slow_execute
        results: list[dict] = []

        def in_flight_request():
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                results.append(c.simulate(spec_dict(seed=48)))

        with BackgroundServer(service) as srv:
            port = srv.port
            thread = threading.Thread(target=in_flight_request)
            thread.start()
            started.wait(timeout=10)
            # Pre-open a keep-alive connection BEFORE the listener closes:
            # it survives into the drain and must get 503 for new work.
            survivor = ServiceClient("127.0.0.1", port, timeout=30.0)
            survivor.health()
            future = asyncio.run_coroutine_threadsafe(service.drain(10.0), srv._loop)
            time.sleep(0.05)  # drain has closed the listener by now
            try:
                survivor.simulate(spec_dict(seed=49))
                draining_status = 200
            except ServiceError as exc:
                draining_status = exc.status
                draining_type = exc.body["error"]["type"]
            finally:
                survivor.close()
            drained = future.result(timeout=30)
            thread.join(timeout=60)
        assert draining_status == 503
        assert draining_type == "Draining"
        assert drained is True
        assert results and results[0]["source"] == "run"  # in-flight work finished

    def test_slow_response_fault_delays_but_succeeds(self):
        from repro import faults

        faults.arm(
            {
                "rules": [
                    {
                        "point": "service.slow-response",
                        "nth": 1,
                        "times": 1,
                        "params": {"seconds": 0.3},
                    }
                ]
            }
        )
        service = ScenarioService(cache=ResultCache(None), workers=0)
        with BackgroundServer(service) as srv:
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                start = time.perf_counter()
                payload = c.simulate(spec_dict(seed=50))
                elapsed = time.perf_counter() - start
        assert payload["source"] == "run"
        assert elapsed >= 0.3

    def test_stats_surface_resilience_counters(self, client):
        stats = client.stats()
        for field in (
            "shed",
            "deadline_hits",
            "worker_retries",
            "dropped_connections",
            "draining",
            "limits",
            "faults",
        ):
            assert field in stats
        assert stats["faults"] is None  # no plan armed on the shared server


class TestClientResilience:
    """Reconnect-and-resend, typed unavailability, retry policy."""

    @pytest.fixture(autouse=True)
    def _disarmed(self):
        from repro import faults

        faults.disarm()
        yield
        faults.disarm()

    def test_sync_client_resends_over_dropped_connection(self):
        from repro import faults
        from repro.service.client import ServiceUnavailable

        service = ScenarioService(cache=ResultCache(None), workers=0)
        with BackgroundServer(service) as srv:
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                c.health()  # establish the keep-alive connection
                faults.arm(
                    {
                        "rules": [
                            {"point": "service.connection-drop", "nth": 1, "times": 1}
                        ]
                    }
                )
                payload = c.simulate(spec_dict(seed=51))  # dropped once, resent
        assert payload["source"] in ("run", "cache")
        assert service.dropped_connections == 1

    def test_async_connection_resends_over_dropped_connection(self):
        from repro import faults
        from repro.service.client import AsyncConnection

        service = ScenarioService(cache=ResultCache(None), workers=0)
        with BackgroundServer(service) as srv:
            port = srv.port

            async def scenario():
                conn = await AsyncConnection.open("127.0.0.1", port)
                try:
                    status, _ = await conn.request_json("GET", "/v1/health")
                    assert status == 200
                    faults.arm(
                        {
                            "rules": [
                                {
                                    "point": "service.connection-drop",
                                    "nth": 1,
                                    "times": 1,
                                }
                            ]
                        }
                    )
                    status, body = await conn.request_json(
                        "POST", "/v1/simulate", spec_dict(seed=52)
                    )
                    return status, body, conn.reconnects
                finally:
                    await conn.close()

            status, body, reconnects = asyncio.run(scenario())
        assert status == 200
        # The drop happens after dispatch, so the first attempt may have
        # already populated the cache — the resend is idempotent either way.
        assert body["source"] in ("run", "cache")
        assert reconnects == 1

    def test_unreachable_raises_typed_service_unavailable(self):
        import socket

        from repro.service.client import ServiceUnavailable

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        with ServiceClient("127.0.0.1", dead_port, timeout=2.0) as c:
            with pytest.raises(ServiceUnavailable):
                c.health()

    def test_retry_policy_recovers_from_shed(self):
        from repro.service.client import RetryPolicy

        service = ScenarioService(cache=ResultCache(None), workers=0, max_in_flight=1)
        release = asyncio.Event()
        occupied = threading.Event()
        real_execute = service._execute

        async def gated_execute(key, spec):
            occupied.set()
            await release.wait()
            return await real_execute(key, spec)

        service._execute = gated_execute

        def occupant():
            with ServiceClient("127.0.0.1", srv.port, timeout=60.0) as c:
                c.simulate(spec_dict(seed=53))

        with BackgroundServer(service) as srv:
            thread = threading.Thread(target=occupant)
            thread.start()
            occupied.wait(timeout=10)

            def releaser():
                time.sleep(0.4)
                srv._loop.call_soon_threadsafe(release.set)

            release_thread = threading.Thread(target=releaser)
            release_thread.start()
            retry_client = ServiceClient(
                "127.0.0.1",
                srv.port,
                timeout=60.0,
                retry=RetryPolicy(attempts=30, backoff_base=0.05, backoff_cap=0.2),
            )
            try:
                payload = retry_client.simulate(spec_dict(seed=54))
            finally:
                retry_client.close()
            release_thread.join(timeout=10)
            thread.join(timeout=60)
        assert payload["source"] == "run"
        assert retry_client.retried >= 1
        assert service.shed >= 1

    def test_retry_policy_validates(self):
        from repro.service.client import RetryPolicy

        with pytest.raises(ValueError, match="attempts must be >= 1"):
            RetryPolicy(attempts=0)
        policy = RetryPolicy(attempts=3, backoff_cap=0.5)
        assert policy.delay(0, retry_after=7.0) == 0.5  # capped
        assert 0 < policy.delay(5) <= 0.5 * 1.5
