"""Tests for the general-graph substrate (topology packing + agent sim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Configuration, ThreeMajority, majority_rule
from repro.graphs import (
    GraphPluralityProcess,
    GraphState,
    Topology,
    barbell,
    clique,
    complete_bipartite,
    cycle,
    erdos_renyi,
    random_coloring,
    random_regular,
    torus,
)


class TestTopology:
    def test_clique_structure(self):
        topo = clique(5)
        assert topo.n == 5
        assert topo.is_regular
        assert (topo.degrees == 5).all()  # self-loops included

    def test_cycle_structure(self):
        topo = cycle(6)
        assert topo.n == 6
        assert (topo.degrees == 3).all()  # 2 neighbors + self

    def test_torus(self):
        topo = torus(3, 4)
        assert topo.n == 12
        assert (topo.degrees == 5).all()

    def test_random_regular(self):
        topo = random_regular(10, 3, seed=0)
        assert topo.n == 10
        assert (topo.degrees == 4).all()

    def test_erdos_renyi_isolated_nodes_ok(self):
        topo = erdos_renyi(20, 0.0, seed=0)
        assert (topo.degrees == 1).all()  # self-loop only

    def test_bipartite_and_barbell(self):
        assert complete_bipartite(3, 4).n == 7
        assert barbell(4).n == 8

    def test_invalid_offsets(self):
        with pytest.raises(ValueError):
            Topology(np.array([1, 2]), np.array([0, 1]))

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            Topology(np.array([0, 0, 1]), np.array([0]))

    def test_sample_neighbors_shape_and_validity(self, rng):
        topo = cycle(8)
        picks = topo.sample_neighbors(4, rng)
        assert picks.shape == (8, 4)
        # Every pick must be a CSR neighbor of its row.
        for u in range(8):
            pool = set(topo.neighbors[topo.offsets[u] : topo.offsets[u + 1]].tolist())
            assert set(picks[u].tolist()) <= pool

    def test_sample_rejects_bad_h(self, rng):
        with pytest.raises(ValueError):
            clique(3).sample_neighbors(0, rng)


class TestRandomColoring:
    def test_counts_preserved(self, rng):
        topo = clique(30)
        cfg = Configuration([15, 10, 5])
        colors = random_coloring(topo, cfg, rng)
        assert np.bincount(colors, minlength=3).tolist() == [15, 10, 5]

    def test_size_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            random_coloring(clique(10), Configuration([5, 4]), rng)


class TestGraphProcess:
    def test_consensus_on_clique(self, rng):
        topo = clique(500)
        cfg = Configuration([400, 100])
        colors = random_coloring(topo, cfg, rng)
        proc = GraphPluralityProcess(topo, h=3)
        res = proc.run(colors, k=2, rng=rng, max_rounds=2_000)
        assert res.converged
        assert res.plurality_won

    def test_clique_matches_counts_engine_statistics(self, rng_factory):
        # One round of graph-level 3-plurality on the clique must match the
        # Lemma 1 law in expectation.
        n = 2_000
        topo = clique(n)
        cfg = Configuration([1_200, 500, 300])
        law = ThreeMajority().color_law(cfg.counts)
        proc = GraphPluralityProcess(topo, h=3)
        acc = np.zeros(3)
        reps = 200
        for i in range(reps):
            rng = rng_factory(i)
            colors = random_coloring(topo, cfg, rng)
            new = proc.step(colors, 3, rng)
            acc += np.bincount(new, minlength=3)
        mean = acc / reps / n
        stderr = np.sqrt(0.25 / (n * reps))
        assert np.all(np.abs(mean - law) < 8 * stderr)

    def test_three_input_rule_on_graph(self, rng):
        topo = clique(300)
        cfg = Configuration([200, 60, 40])
        colors = random_coloring(topo, cfg, rng)
        proc = GraphPluralityProcess(topo, rule=majority_rule())
        res = proc.run(colors, k=3, rng=rng, max_rounds=2_000)
        assert res.converged
        assert res.plurality_won

    def test_h1_is_graph_voter(self, rng):
        topo = cycle(50)
        colors = np.zeros(50, dtype=np.int64)
        colors[::2] = 1
        proc = GraphPluralityProcess(topo, h=1)
        new = proc.step(colors, 2, rng)
        assert new.shape == (50,)
        assert set(np.unique(new)) <= {0, 1}

    def test_monochromatic_is_absorbing(self, rng):
        topo = random_regular(40, 4, seed=1)
        colors = np.full(40, 2, dtype=np.int64)
        proc = GraphPluralityProcess(topo, h=3)
        res = proc.run(colors, k=3, rng=rng)
        assert res.converged
        assert res.rounds == 0
        assert res.winner == 2

    def test_record_counts_history(self, rng):
        topo = clique(200)
        cfg = Configuration([150, 50])
        colors = random_coloring(topo, cfg, rng)
        proc = GraphPluralityProcess(topo, h=3)
        res = proc.run(colors, k=2, rng=rng, record_counts=True, max_rounds=1_000)
        assert res.counts_history is not None
        assert (res.counts_history.sum(axis=1) == 200).all()

    def test_graph_state_helpers(self):
        state = GraphState(np.array([0, 0, 1]), k=2)
        assert state.counts().tolist() == [2, 1]
        assert not state.is_monochromatic
        assert state.configuration() == Configuration([2, 1])

    def test_size_mismatch_rejected(self, rng):
        proc = GraphPluralityProcess(clique(5), h=3)
        with pytest.raises(ValueError):
            proc.step(np.zeros(4, dtype=np.int64), 2, rng)

    def test_local_topology_slows_consensus(self, rng_factory):
        # Sanity for the substrate: the cycle mixes far slower than the
        # clique at equal n — a qualitative, robust comparison.
        n = 120
        cfg = Configuration([70, 50])
        rounds_clique = []
        rounds_cycle = []
        for i in range(10):
            rng = rng_factory(1_000 + i)
            colors = random_coloring(clique(n), cfg, rng)
            r1 = GraphPluralityProcess(clique(n), h=3).run(
                colors, k=2, rng=rng, max_rounds=20_000
            )
            rng2 = rng_factory(2_000 + i)
            colors2 = random_coloring(cycle(n), cfg, rng2)
            r2 = GraphPluralityProcess(cycle(n), h=3).run(
                colors2, k=2, rng=rng2, max_rounds=20_000
            )
            rounds_clique.append(r1.rounds)
            rounds_cycle.append(r2.rounds)
        assert np.median(rounds_cycle) > np.median(rounds_clique)
