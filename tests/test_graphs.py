"""Tests for the general-graph substrate (topology packing + agent sim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Configuration, ThreeMajority, majority_rule
from repro.graphs import (
    GraphPluralityProcess,
    GraphState,
    Topology,
    barbell,
    clique,
    complete_bipartite,
    cycle,
    erdos_renyi,
    random_coloring,
    random_regular,
    torus,
)


class TestTopology:
    def test_clique_structure(self):
        topo = clique(5)
        assert topo.n == 5
        assert topo.is_regular
        assert (topo.degrees == 5).all()  # self-loops included

    def test_cycle_structure(self):
        topo = cycle(6)
        assert topo.n == 6
        assert (topo.degrees == 3).all()  # 2 neighbors + self

    def test_torus(self):
        topo = torus(3, 4)
        assert topo.n == 12
        assert (topo.degrees == 5).all()

    def test_random_regular(self):
        topo = random_regular(10, 3, seed=0)
        assert topo.n == 10
        assert (topo.degrees == 4).all()

    def test_erdos_renyi_isolated_nodes_ok(self):
        topo = erdos_renyi(20, 0.0, seed=0)
        assert (topo.degrees == 1).all()  # self-loop only

    def test_bipartite_and_barbell(self):
        assert complete_bipartite(3, 4).n == 7
        assert barbell(4).n == 8

    def test_invalid_offsets(self):
        with pytest.raises(ValueError):
            Topology(np.array([1, 2]), np.array([0, 1]))

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            Topology(np.array([0, 0, 1]), np.array([0]))

    def test_sample_neighbors_shape_and_validity(self, rng):
        topo = cycle(8)
        picks = topo.sample_neighbors(4, rng)
        assert picks.shape == (8, 4)
        # Every pick must be a CSR neighbor of its row.
        for u in range(8):
            pool = set(topo.neighbors[topo.offsets[u] : topo.offsets[u + 1]].tolist())
            assert set(picks[u].tolist()) <= pool

    def test_sample_rejects_bad_h(self, rng):
        with pytest.raises(ValueError):
            clique(3).sample_neighbors(0, rng)


class TestRandomColoring:
    def test_counts_preserved(self, rng):
        topo = clique(30)
        cfg = Configuration([15, 10, 5])
        colors = random_coloring(topo, cfg, rng)
        assert np.bincount(colors, minlength=3).tolist() == [15, 10, 5]

    def test_size_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            random_coloring(clique(10), Configuration([5, 4]), rng)


class TestGraphProcess:
    def test_consensus_on_clique(self, rng):
        topo = clique(500)
        cfg = Configuration([400, 100])
        colors = random_coloring(topo, cfg, rng)
        proc = GraphPluralityProcess(topo, h=3)
        res = proc.run(colors, k=2, rng=rng, max_rounds=2_000)
        assert res.converged
        assert res.plurality_won

    def test_clique_matches_counts_engine_statistics(self, rng_factory):
        # One round of graph-level 3-plurality on the clique must match the
        # Lemma 1 law in expectation.
        n = 2_000
        topo = clique(n)
        cfg = Configuration([1_200, 500, 300])
        law = ThreeMajority().color_law(cfg.counts)
        proc = GraphPluralityProcess(topo, h=3)
        acc = np.zeros(3)
        reps = 200
        for i in range(reps):
            rng = rng_factory(i)
            colors = random_coloring(topo, cfg, rng)
            new = proc.step(colors, 3, rng)
            acc += np.bincount(new, minlength=3)
        mean = acc / reps / n
        stderr = np.sqrt(0.25 / (n * reps))
        assert np.all(np.abs(mean - law) < 8 * stderr)

    def test_three_input_rule_on_graph(self, rng):
        topo = clique(300)
        cfg = Configuration([200, 60, 40])
        colors = random_coloring(topo, cfg, rng)
        proc = GraphPluralityProcess(topo, rule=majority_rule())
        res = proc.run(colors, k=3, rng=rng, max_rounds=2_000)
        assert res.converged
        assert res.plurality_won

    def test_h1_is_graph_voter(self, rng):
        topo = cycle(50)
        colors = np.zeros(50, dtype=np.int64)
        colors[::2] = 1
        proc = GraphPluralityProcess(topo, h=1)
        new = proc.step(colors, 2, rng)
        assert new.shape == (50,)
        assert set(np.unique(new)) <= {0, 1}

    def test_monochromatic_is_absorbing(self, rng):
        topo = random_regular(40, 4, seed=1)
        colors = np.full(40, 2, dtype=np.int64)
        proc = GraphPluralityProcess(topo, h=3)
        res = proc.run(colors, k=3, rng=rng)
        assert res.converged
        assert res.rounds == 0
        assert res.winner == 2

    def test_record_counts_history(self, rng):
        topo = clique(200)
        cfg = Configuration([150, 50])
        colors = random_coloring(topo, cfg, rng)
        proc = GraphPluralityProcess(topo, h=3)
        res = proc.run(colors, k=2, rng=rng, record_counts=True, max_rounds=1_000)
        assert res.counts_history is not None
        assert (res.counts_history.sum(axis=1) == 200).all()

    def test_graph_state_helpers(self):
        state = GraphState(np.array([0, 0, 1]), k=2)
        assert state.counts().tolist() == [2, 1]
        assert not state.is_monochromatic
        assert state.configuration() == Configuration([2, 1])

    def test_size_mismatch_rejected(self, rng):
        proc = GraphPluralityProcess(clique(5), h=3)
        with pytest.raises(ValueError):
            proc.step(np.zeros(4, dtype=np.int64), 2, rng)

    def test_local_topology_slows_consensus(self, rng_factory):
        # Sanity for the substrate: the cycle mixes far slower than the
        # clique at equal n — a qualitative, robust comparison.
        n = 120
        cfg = Configuration([70, 50])
        rounds_clique = []
        rounds_cycle = []
        for i in range(10):
            rng = rng_factory(1_000 + i)
            colors = random_coloring(clique(n), cfg, rng)
            r1 = GraphPluralityProcess(clique(n), h=3).run(
                colors, k=2, rng=rng, max_rounds=20_000
            )
            rng2 = rng_factory(2_000 + i)
            colors2 = random_coloring(cycle(n), cfg, rng2)
            r2 = GraphPluralityProcess(cycle(n), h=3).run(
                colors2, k=2, rng=rng2, max_rounds=20_000
            )
            rounds_clique.append(r1.rounds)
            rounds_cycle.append(r2.rounds)
        assert np.median(rounds_cycle) > np.median(rounds_clique)


class TestSampleNeighborsUnbiased:
    """Regression for the float-scaling draw the integer draw replaced.

    The old ``(uniform * degree).astype(int64)`` idiom could round up to
    the row degree (an out-of-pool index spilling into the next node's
    CSR slice) and was measurably non-uniform.  The bounded-integer draw
    must keep every raw index strictly below its row degree and pass a
    chi-square uniformity test per pool on an irregular graph.
    """

    def _irregular(self):
        # Star-plus-path: node 0 has a large pool, leaves tiny ones.
        import networkx as nx

        g = nx.star_graph(9)  # node 0 joined to 1..9
        g.add_edge(1, 2)
        return Topology.from_networkx(g)

    def test_raw_index_strictly_below_degree(self):
        topo = self._irregular()
        start = topo.offsets[:-1]
        rng = np.random.default_rng(5)
        for _ in range(200):
            picks = topo.sample_neighbors(3, rng)
            # Recover pool membership: every pick must live in its row's slice.
            for u in range(topo.n):
                row = topo.neighbors[topo.offsets[u] : topo.offsets[u + 1]]
                assert np.isin(picks[u], row).all(), (u, picks[u], row)
        assert (topo.degrees != topo.degrees[0]).any()  # fixture is irregular
        assert start.shape == (topo.n,)

    def test_per_pool_uniformity_chi_square(self):
        from scipy import stats

        topo = self._irregular()
        rng = np.random.default_rng(11)
        draws = 4_000
        picks = topo.sample_neighbors(draws, rng)  # (n, draws)
        for u in range(topo.n):
            pool = topo.neighbors[topo.offsets[u] : topo.offsets[u + 1]]
            observed = np.array([(picks[u] == v).sum() for v in pool], dtype=float)
            expected = draws / pool.size
            chi2 = float(((observed - expected) ** 2 / expected).sum())
            crit = float(stats.chi2.isf(1e-6, df=pool.size - 1))
            assert chi2 < crit, (u, chi2, crit)

    def test_regular_fast_path_matches_pool(self):
        topo = clique(7)
        assert topo.is_regular
        picks = topo.sample_neighbors(5, np.random.default_rng(3))
        assert picks.min() >= 0 and picks.max() < 7


class TestFromNetworkxVectorized:
    """The edge-array CSR build keeps the historical ordering contract."""

    @staticmethod
    def _reference(graph, include_self):
        # The retired per-node loop: sorted pools, optional self-loop.
        import networkx as nx

        graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
        n = graph.number_of_nodes()
        pools = []
        for u in range(n):
            pool = set(graph.neighbors(u))
            if include_self:
                pool.add(u)
            pools.append(sorted(pool))
        offsets = np.zeros(n + 1, dtype=np.int64)
        offsets[1:] = np.cumsum([len(p) for p in pools])
        return offsets, np.concatenate([np.asarray(p, dtype=np.int64) for p in pools])

    @pytest.mark.parametrize("include_self", (True, False))
    def test_matches_reference_on_random_graph(self, include_self):
        import networkx as nx

        g = nx.gnp_random_graph(40, 0.15, seed=4)
        if not include_self:
            # Keep every pool non-empty without self-loops.
            for u in list(nx.isolates(g)):
                g.add_edge(u, (u + 1) % 40)
        topo = Topology.from_networkx(g, include_self=include_self)
        offsets, neighbors = self._reference(g, include_self)
        assert np.array_equal(topo.offsets, offsets)
        assert np.array_equal(topo.neighbors, neighbors)

    def test_pre_existing_self_loops_not_duplicated(self):
        import networkx as nx

        g = nx.cycle_graph(6)
        g.add_edge(2, 2)  # explicit self-loop before packing
        topo = Topology.from_networkx(g, include_self=True)
        offsets, neighbors = self._reference(g, True)
        assert np.array_equal(topo.offsets, offsets)
        assert np.array_equal(topo.neighbors, neighbors)
        assert (topo.degrees == 3).all()  # loop at 2 contributes exactly once

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ValueError):
            Topology.from_networkx(nx.Graph())

    def test_isolated_node_without_self_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        with pytest.raises(ValueError, match="empty sampling pool"):
            Topology.from_networkx(g, include_self=False)


class TestGraphEnsembleBitIdentity:
    """Batched (R, n) stepping ≡ sequential per-replica runs, bitwise.

    Both paths consume randomness per replica from the same spawned
    streams in the same order, so everything — rounds, winners, final
    counts, recorded traces — must be equal exactly, not statistically.
    """

    DYNAMICS = (
        ("3-majority tie-first", ThreeMajority(), {}),
        ("h-plurality h=4", None, {"h": 4}),  # built below to avoid import cycles
        ("voter", None, {"voter": True}),
    )

    def _pair(self, dynamics, topo, cfg, seed, record=None):
        from repro.core.metrics import RecordSpec
        from repro.graphs import run_graph_ensemble

        kwargs = dict(max_rounds=3_000, rng=seed)
        if record:
            kwargs["record"] = RecordSpec(metrics=tuple(record), every=1)
        batched = run_graph_ensemble(dynamics, topo, cfg, 6, **kwargs)
        sequential = run_graph_ensemble(dynamics, topo, cfg, 6, batch=False, **kwargs)
        return batched, sequential

    @pytest.mark.parametrize("name", [d[0] for d in DYNAMICS])
    def test_bitwise_equal(self, name):
        from repro import HPlurality, Voter

        dynamics = {
            "3-majority tie-first": ThreeMajority(),
            "h-plurality h=4": HPlurality(4),
            "voter": Voter(),
        }[name]
        topo = torus(6, 10)
        cfg = Configuration([30, 20, 10])
        batched, sequential = self._pair(dynamics, topo, cfg, 123, record=("counts", "bias"))
        assert np.array_equal(batched.rounds, sequential.rounds)
        assert np.array_equal(batched.converged, sequential.converged)
        assert np.array_equal(batched.winners, sequential.winners)
        assert np.array_equal(batched.final_counts, sequential.final_counts)
        assert batched.stop_reasons() == sequential.stop_reasons()
        assert batched.trace.digest() == sequential.trace.digest()

    def test_uniform_tiebreak_consumes_rng_identically(self):
        batched, sequential = self._pair(
            ThreeMajority(tie_break="uniform"), clique(40), Configuration([20, 20]), 7
        )
        assert np.array_equal(batched.rounds, sequential.rounds)
        assert np.array_equal(batched.final_counts, sequential.final_counts)

    def test_three_input_rule_kernel(self):
        batched, sequential = self._pair(
            majority_rule(), cycle(50), Configuration([30, 12, 8]), 31
        )
        assert np.array_equal(batched.rounds, sequential.rounds)
        assert np.array_equal(batched.final_counts, sequential.final_counts)


class TestGraphIneligibility:
    def test_undecided_state_rejected(self):
        from repro import UndecidedState
        from repro.graphs import graph_ineligibility

        assert graph_ineligibility(UndecidedState()) is not None

    def test_supported_dynamics_pass(self):
        from repro import HPlurality, Voter
        from repro.graphs import graph_ineligibility

        for dyn in (ThreeMajority(), HPlurality(5), Voter(), majority_rule()):
            assert graph_ineligibility(dyn) is None


class TestRunShimMatchesEngine:
    def test_run_delegates_to_shared_engine(self, rng_factory):
        # The deprecated GraphPluralityProcess.run must produce exactly
        # what the shared engine produces for the same colors + stream.
        from repro.graphs.ensemble import run_graph_colors

        topo = torus(4, 5)
        cfg = Configuration([10, 6, 4])
        colors = random_coloring(topo, cfg, rng_factory(9))
        proc = GraphPluralityProcess(topo, h=3)
        shim = proc.run(colors, k=3, rng=42, record_counts=True)
        result, final = run_graph_colors(
            colors.copy(),
            3,
            proc.kernel(3),
            topo,
            max_rounds=100_000,
            stopping=None,
            record=None,
            generator=np.random.default_rng(42),
        )
        assert shim.rounds == result.rounds
        assert shim.converged == result.converged
        assert np.array_equal(shim.final_state.colors, final)
        assert shim.counts_history is not None
        assert (shim.counts_history.sum(axis=1) == topo.n).all()
