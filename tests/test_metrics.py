"""Tests for the pluggable observation layer: metrics, records, traces.

Three layers of evidence, mirroring the ``tests/test_counts_engines.py``
discipline for step kernels:

* **vectorization** — every registered metric's batched ``compute_many``
  must be bit-identical to a per-row (agent-side) scalar loop, property
  tested over hypothesis-generated count batches;
* **recording** — the vectorized counts-engine recording path of
  ``run_ensemble`` must agree bit for bit with recomputing each metric
  per replica from the recorded counts snapshots, and with the unbatched
  per-replica ``run_process`` assembly;
* **plumbing** — TraceSets stack/pad/digest deterministically, cadence
  thinning works, and the deprecation shims still serve the legacy
  fields.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    METRICS,
    Configuration,
    RecordSpec,
    ThreeMajority,
    TraceSet,
    run_ensemble,
    run_process,
)
from repro.core.metrics import TraceRecorder, as_record_spec, stack_traces

ALL_METRICS = tuple(METRICS.names())
SCALAR_METRICS = tuple(
    name for name in ALL_METRICS if not METRICS.build(name).vector
)


def _counts_batches():
    """Hypothesis strategy: (R, k) int64 count batches with positive mass."""
    return st.integers(min_value=1, max_value=6).flatmap(
        lambda k: st.lists(
            st.lists(st.integers(min_value=0, max_value=10_000), min_size=k, max_size=k),
            min_size=1,
            max_size=8,
        )
    )


class TestMetricVectorization:
    """compute_many over a batch ≡ per-row compute — bit-identical."""

    @pytest.mark.parametrize("name", ALL_METRICS)
    @given(rows=_counts_batches())
    def test_batch_equals_per_row_loop(self, name, rows):
        counts = np.asarray(rows, dtype=np.int64)
        if counts.sum() == 0:
            counts[0, 0] = 1  # metrics divide by n; keep mass positive
        n = int(counts.sum(axis=1).max())
        metric = METRICS.build(name)
        batched = metric.compute_many(counts, n)
        for i, row in enumerate(counts):
            scalar = metric.compute(row, n)
            assert np.array_equal(np.asarray(batched[i]), np.asarray(scalar)), (
                name,
                row,
            )
        assert batched.dtype == np.dtype(metric.dtype)

    def test_known_values(self):
        counts = np.array([[6, 3, 1], [10, 0, 0], [4, 4, 2]])
        n = 10
        assert METRICS.build("plurality-count").compute_many(counts, n).tolist() == [6, 10, 4]
        assert METRICS.build("plurality-fraction").compute_many(counts, n).tolist() == [
            0.6,
            1.0,
            0.4,
        ]
        assert METRICS.build("bias").compute_many(counts, n).tolist() == [3, 10, 0]
        assert METRICS.build("support-size").compute_many(counts, n).tolist() == [3, 1, 3]
        tv = METRICS.build("tv-monochromatic").compute_many(counts, n)
        assert tv.tolist() == [0.4, 0.0, 0.6]
        entropy = METRICS.build("entropy").compute_many(counts, n)
        assert entropy[1] == 0.0  # monochromatic → zero entropy
        assert entropy[2] > entropy[0]  # flatter distribution → more entropy
        snap = METRICS.build("counts").compute_many(counts, n)
        assert np.array_equal(snap, counts) and snap is not counts

    def test_metrics_never_mutate_input(self):
        counts = np.array([[5, 3, 2]])
        frozen = counts.copy()
        for name in ALL_METRICS:
            METRICS.build(name).compute_many(counts, 10)
        assert np.array_equal(counts, frozen)


class TestVectorizedEnsembleRecording:
    """The batched counts-engine recording path vs an agent-side loop.

    One batched ``run_ensemble`` records every scalar metric plus the full
    counts snapshot; each scalar column must equal recomputing the metric
    replica by replica, round by round, from the snapshots — same seed,
    same trajectory, two independent computation paths.
    """

    def test_batched_columns_match_per_replica_recomputation(self):
        cfg = Configuration.biased(6_000, 4, 700)
        record = RecordSpec(metrics=("counts",) + SCALAR_METRICS)
        ens = run_ensemble(ThreeMajority(), cfg, 7, rng=11, record=record, max_rounds=2_000)
        trace = ens.trace
        n = cfg.n
        for name in SCALAR_METRICS:
            metric = METRICS.build(name)
            column = trace[name]
            for i in range(trace.replicas):
                valid = int(trace.n_recorded[i])
                snapshots = trace["counts"][i, :valid]
                expected = [metric.compute(snap, n) for snap in snapshots]
                assert np.array_equal(column[i, :valid], np.asarray(expected)), (name, i)
                # Padding past the replica's stop round stays zero.
                assert not column[i, valid:].any(), (name, i)

    @pytest.mark.parametrize("engine", ["counts", "agent"])
    def test_recording_layer_engine_independent(self, engine):
        """Where both step engines exist, each engine's trace must equal the
        agent-side per-replica recomputation from its own counts snapshots:
        the observation layer is a pure function of the trajectory, whatever
        engine produced it."""
        from repro import majority_rule
        from repro.core.threeinput import ThreeInputRule

        base = majority_rule()
        dyn = ThreeInputRule(base.pair_choice, base.distinct_choice, base.name, engine=engine)
        cfg = Configuration.biased(800, 3, 150)
        ens = run_ensemble(
            dyn, cfg, 4, rng=5, record=["counts", "bias", "entropy"], max_rounds=300
        )
        trace = ens.trace
        for name in ("bias", "entropy"):
            metric = METRICS.build(name)
            for i in range(trace.replicas):
                valid = int(trace.n_recorded[i])
                expected = [metric.compute(snap, cfg.n) for snap in trace["counts"][i, :valid]]
                assert np.array_equal(trace[name][i, :valid], np.asarray(expected))

    def test_unbatched_assembly_matches_run_process_traces(self):
        cfg = Configuration.biased(4_000, 3, 500)
        record = ["bias", "counts"]
        ens = run_ensemble(
            ThreeMajority(), cfg, 5, rng=2, record=record, max_rounds=1_000, batch=False
        )
        from repro.core.rng import spawn_streams

        streams = spawn_streams(2, 5)
        singles = [
            run_process(ThreeMajority(), cfg, record=record, max_rounds=1_000, rng=stream)
            for stream in streams
        ]
        assert ens.trace == stack_traces([r.trace for r in singles])

    def test_every_thinning(self):
        cfg = Configuration.biased(6_000, 4, 800)
        every = run_ensemble(
            ThreeMajority(), cfg, 4, rng=9, record=RecordSpec(("bias",), every=1)
        )
        thinned = run_ensemble(
            ThreeMajority(), cfg, 4, rng=9, record=RecordSpec(("bias",), every=3)
        )
        assert np.array_equal(thinned.rounds, every.rounds)  # observation is passive
        assert np.array_equal(thinned.trace.rounds, every.trace.rounds[::3])
        assert np.array_equal(thinned.trace["bias"], every.trace["bias"][:, ::3])

    def test_early_stopping_truncates_rows(self):
        from repro import PluralityFractionStop

        cfg = Configuration.biased(20_000, 4, 2_000)
        ens = run_ensemble(
            ThreeMajority(),
            cfg,
            8,
            rng=0,
            record=["plurality-count"],
            stopping=PluralityFractionStop(0.5),
            max_rounds=5_000,
        )
        trace = ens.trace
        assert np.array_equal(trace.n_recorded, ens.rounds + 1)
        for i in range(trace.replicas):
            series = trace.replica(i, "plurality-count")
            assert series[-1] >= 0.5 * cfg.n or ens.stopped_by[i] == "monochromatic"


class TestTraceSet:
    def _trace(self, seed=0, replicas=3):
        cfg = Configuration.biased(3_000, 3, 400)
        return run_ensemble(
            ThreeMajority(), cfg, replicas, rng=seed, record=["bias", "counts"]
        ).trace

    def test_equality_and_digest_are_content_based(self):
        a, b = self._trace(), self._trace()
        assert a == b and a is not b
        assert a.digest() == b.digest()
        c = self._trace(seed=1)
        assert a != c
        assert a.digest() != c.digest()

    def test_digest_sensitive_to_every_array(self):
        a = self._trace()
        mutated = a.copy()
        mutated.data["bias"][0, 0] += 1
        assert a.digest() != mutated.digest()

    def test_copy_is_deep(self):
        a = self._trace()
        b = a.copy()
        b.data["counts"][0, 0, 0] += 5
        assert a != b

    def test_unknown_metric_lookup_names_recorded_ones(self):
        a = self._trace()
        with pytest.raises(KeyError, match="recorded: bias, counts"):
            a["entropy"]

    def test_valid_mask_matches_n_recorded(self):
        a = self._trace(replicas=5)
        mask = a.valid_mask()
        assert mask.shape == (5, a.n_rounds)
        assert np.array_equal(mask.sum(axis=1), a.n_recorded)

    def test_stack_traces_rejects_mismatched(self):
        a = self._trace()
        cfg = Configuration.biased(3_000, 3, 400)
        other = run_ensemble(ThreeMajority(), cfg, 2, rng=0, record=["bias"]).trace
        with pytest.raises(ValueError, match="identical"):
            stack_traces([a, other])


class TestRecordSpec:
    def test_round_trip(self):
        spec = RecordSpec(metrics=("bias", "counts"), every=4)
        assert RecordSpec.from_dict(spec.to_dict()) == spec

    def test_as_record_spec_spellings(self):
        assert as_record_spec(None) is None
        assert as_record_spec("bias") == RecordSpec(("bias",))
        assert as_record_spec(["bias", "counts"]) == RecordSpec(("bias", "counts"))
        assert as_record_spec({"metrics": ["bias"], "every": 2}) == RecordSpec(("bias",), 2)
        spec = RecordSpec(("entropy",))
        assert as_record_spec(spec) is spec
        with pytest.raises(ValueError, match="record"):
            as_record_spec(42)

    def test_validation(self):
        with pytest.raises(ValueError, match="every"):
            RecordSpec(("bias",), every=0)
        with pytest.raises(ValueError, match="duplicates"):
            RecordSpec(("bias", "bias"))
        with pytest.raises(KeyError, match="unknown metric"):
            RecordSpec(("nope",)).resolve()

    def test_with_metric_idempotent(self):
        spec = RecordSpec(("bias",))
        assert spec.with_metric("bias") is spec
        assert spec.with_metric("counts").metrics == ("bias", "counts")


class TestDeprecationShims:
    def test_record_trajectory_kwarg_warns_and_matches(self):
        cfg = Configuration.biased(5_000, 4, 600)
        with pytest.warns(DeprecationWarning, match="record_trajectory"):
            old = run_process(ThreeMajority(), cfg, rng=1, record_trajectory=True)
        new = run_process(ThreeMajority(), cfg, rng=1, record=["bias", "plurality-count", "counts"])
        with pytest.warns(DeprecationWarning, match="trajectory"):
            trajectory = old.trajectory
        assert np.array_equal(trajectory, new.trace.replica(0, "counts"))

    def test_history_properties_warn_and_match_trace(self):
        cfg = Configuration.biased(5_000, 4, 600)
        res = run_process(ThreeMajority(), cfg, rng=0)
        with pytest.warns(DeprecationWarning, match="bias_history"):
            bias = res.bias_history
        with pytest.warns(DeprecationWarning, match="plurality_history"):
            plurality = res.plurality_history
        assert np.array_equal(bias, res.trace.replica(0, "bias"))
        assert np.array_equal(plurality, res.trace.replica(0, "plurality-count"))

    def test_trajectory_none_when_counts_not_recorded(self):
        res = run_process(ThreeMajority(), Configuration.biased(1_000, 3, 200), rng=0)
        with pytest.warns(DeprecationWarning):
            assert res.trajectory is None

    def test_history_raises_when_not_in_custom_record(self):
        res = run_process(
            ThreeMajority(), Configuration.biased(1_000, 3, 200), rng=0, record=["entropy"]
        )
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="bias_history"):
                res.bias_history


class TestTraceRecorderInternals:
    def test_zero_metric_record_tracks_rounds_only(self):
        recorder = TraceRecorder(RecordSpec(), n=10, k=2, replicas=2)
        recorder.observe(0, np.array([[6, 4], [6, 4]]))
        trace = recorder.finish()
        assert trace.metrics == ()
        assert trace.n_rounds == 1
        assert trace.n_recorded.tolist() == [1, 1]

    def test_off_cadence_rounds_skipped(self):
        recorder = TraceRecorder(RecordSpec(("bias",), every=2), n=10, k=2, replicas=1)
        for t in range(5):
            recorder.observe(t, np.array([[6, 4]]))
        trace = recorder.finish()
        assert trace.rounds.tolist() == [0, 2, 4]


class TestStreamingTraceConsumers:
    def test_trace_moments_matches_direct_mean(self):
        from repro.analysis import trace_moments

        cfg = Configuration.biased(4_000, 3, 500)
        ens = run_ensemble(ThreeMajority(), cfg, 6, rng=4, record=["counts"], max_rounds=1)
        nxt = ens.trace["counts"][:, 1, :]
        moments = trace_moments(ens.trace, "counts", round_index=1)
        assert np.array_equal(moments.mean, nxt.mean(axis=0))
        assert moments.count == 6

    def test_trace_moments_skips_padded_replicas(self):
        from repro.analysis import trace_moments

        cfg = Configuration.biased(6_000, 4, 800)
        ens = run_ensemble(ThreeMajority(), cfg, 8, rng=0, record=["bias"])
        trace = ens.trace
        last = trace.n_rounds - 1
        moments = trace_moments(trace, "bias", round_index=last)
        still_running = int((trace.n_recorded > last).sum())
        assert moments.count == still_running

    def test_trace_round_means_masks_finished_replicas(self):
        from repro.analysis import trace_round_means

        cfg = Configuration.biased(6_000, 4, 800)
        ens = run_ensemble(ThreeMajority(), cfg, 8, rng=0, record=["tv-monochromatic"])
        out = trace_round_means(ens.trace, "tv-monochromatic")
        assert out["rounds"].size == ens.trace.n_rounds
        assert out["replicas"][0] == 8
        mask = ens.trace.valid_mask()
        t = ens.trace.n_rounds - 1
        manual = ens.trace["tv-monochromatic"][mask[:, t], t].mean()
        assert out["mean"][t] == pytest.approx(manual)

    def test_trace_round_means_rejects_vector_metric(self):
        from repro.analysis import trace_round_means

        cfg = Configuration.biased(1_000, 3, 100)
        ens = run_ensemble(ThreeMajority(), cfg, 2, rng=0, record=["counts"], max_rounds=5)
        with pytest.raises(ValueError, match="vector"):
            trace_round_means(ens.trace, "counts")
