"""Tests for the declarative scenario layer: registries, specs, facades."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Configuration,
    HPlurality,
    ScenarioSpec,
    TargetedAdversary,
    ThreeMajority,
    run_ensemble,
    run_process,
    simulate,
    simulate_ensemble,
)
from repro.core.registry import ADVERSARIES, DYNAMICS, STOPPING, WORKLOADS, Registry
from repro.experiments.harness import sweep
from repro.experiments.workloads import paper_biased

#: Example parameters making every registered dynamics buildable by name.
DYNAMICS_EXAMPLES: dict[str, dict] = {
    "2-sample-uniform": {},
    "3-majority": {},
    "first-rule": {},
    "h-plurality": {"h": 4},
    "majority-rule": {},
    "majority-uniform-rule": {},
    "max-rule": {},
    "median": {},
    "median-rule": {},
    "min-rule": {},
    "skewed-rule": {"delta": [1, 3, 2]},
    "three-input-rule": {
        "pair_choice": {"XXY": "major", "XYX": "major", "YXX": "major"},
        "distinct_choice": "uniform",
    },
    "two-choices": {},
    "undecided-state": {},
    "voter": {},
}

#: Example parameters making every registered workload buildable at (n, k).
WORKLOAD_EXAMPLES: dict[str, tuple[int, int, dict]] = {
    "balanced": (600, 4, {}),
    "biased": (600, 4, {"bias": 100}),
    "corollary3": (6_000, 5, {"beta": 3.0}),
    "geometric-tail": (600, 4, {"ratio": 0.6}),
    "lemma10": (600, 4, {}),
    "lemma8": (600, 3, {}),
    "monochromatic": (600, 4, {"color": 1}),
    "paper-biased": (600, 4, {}),
    "random": (600, 4, {"seed": 5}),
    "soda15-gap": (600, 6, {}),
    "theorem2": (600, 4, {}),
    "theorem4": (600, 4, {}),
    "two-color": (600, 2, {"bias": 50}),
}

ADVERSARY_EXAMPLES: dict[str, dict] = {
    "balancing": {"budget": 3},
    "random": {"budget": 3},
    "revive": {"budget": 3},
    "targeted": {"budget": 3},
}


def _full_spec() -> ScenarioSpec:
    return ScenarioSpec(
        dynamics="h-plurality",
        dynamics_params={"h": 4},
        initial="geometric-tail",
        initial_params={"ratio": 0.7},
        n=5_000,
        k=6,
        adversary="targeted",
        adversary_params={"budget": 5},
        stopping={
            "rule": "any-of",
            "rules": [
                {"rule": "plurality-fraction", "fraction": 0.9},
                {"rule": "round-budget", "rounds": 400},
            ],
        },
        record={"metrics": ["bias", "plurality-fraction"], "every": 2},
        replicas=12,
        max_rounds=1_000,
        seed=42,
    )


class TestRegistryMechanics:
    def test_duplicate_names_rejected(self):
        reg = Registry("thing")

        @reg.register("x")
        def make_x():
            return 1

        with pytest.raises(ValueError, match="already registered"):
            reg.register("x")(make_x)

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="3-majority"):
            DYNAMICS.get("3-mojority")

    def test_bad_params_name_accepted_ones(self):
        with pytest.raises(ValueError, match="h, engine"):
            DYNAMICS.build("h-plurality", hh=4)

    def test_every_dynamics_reachable_by_name(self):
        assert set(DYNAMICS.names()) == set(DYNAMICS_EXAMPLES)
        for name, params in DYNAMICS_EXAMPLES.items():
            built = DYNAMICS.build(name, **params)
            assert hasattr(built, "step"), name

    def test_every_workload_reachable_by_name(self):
        assert set(WORKLOADS.names()) == set(WORKLOAD_EXAMPLES)
        for name, (n, k, params) in WORKLOAD_EXAMPLES.items():
            cfg = WORKLOADS.build(name, n, k, **params)
            assert isinstance(cfg, Configuration), name
            assert cfg.n == n and cfg.k == k, name

    def test_every_adversary_reachable_by_name(self):
        assert set(ADVERSARIES.names()) == set(ADVERSARY_EXAMPLES)
        for name, params in ADVERSARY_EXAMPLES.items():
            built = ADVERSARIES.build(name, **params)
            assert built.budget == 3, name

    def test_stopping_registry_covers_rules(self):
        assert set(STOPPING.names()) == {
            "any-of",
            "bias-threshold",
            "monochromatic",
            "plurality-fraction",
            "round-budget",
        }


class TestSpecRoundTrip:
    def test_dict_and_json_identity(self):
        spec = _full_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        # Full chain: to_dict → from_dict → to_json → from_json.
        chained = ScenarioSpec.from_json(ScenarioSpec.from_dict(spec.to_dict()).to_json())
        assert chained == spec
        assert chained.to_dict() == spec.to_dict()

    def test_defaults_round_trip(self):
        spec = ScenarioSpec(dynamics="voter", n=100, k=2)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = _full_spec()
        path = tmp_path / "scenario.json"
        spec.save(path)
        assert ScenarioSpec.from_file(path) == spec

    def test_stopping_rule_instance_normalised(self):
        from repro import PluralityFractionStop

        spec = ScenarioSpec(
            dynamics="voter", n=100, k=2, stopping=PluralityFractionStop(0.8)
        )
        assert spec.stopping == {"rule": "plurality-fraction", "fraction": 0.8}

    def test_specs_are_hashable_cache_keys(self):
        a = _full_spec()
        b = ScenarioSpec.from_json(a.to_json())
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        assert {a: "cached"}[b] == "cached"

    def test_with_overrides_revalidates(self):
        spec = _full_spec().with_overrides(replicas=3, seed=None)
        assert spec.replicas == 3 and spec.seed is None
        with pytest.raises(ValueError, match="replicas"):
            _full_spec().with_overrides(replicas=0)


class TestSpecValidation:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys: dynamcs"):
            ScenarioSpec.from_dict({"dynamcs": "voter", "dynamics": "voter", "n": 10, "k": 2})

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ValueError, match="missing required keys: k, n"):
            ScenarioSpec.from_dict({"dynamics": "voter"})

    def test_bad_field_types_rejected(self):
        with pytest.raises(ValueError, match="n must be"):
            ScenarioSpec(dynamics="voter", n="many", k=2)
        with pytest.raises(ValueError, match="dynamics_params"):
            ScenarioSpec(dynamics="voter", n=10, k=2, dynamics_params=[1, 2])
        with pytest.raises(ValueError, match="'rule' key"):
            ScenarioSpec(dynamics="voter", n=10, k=2, stopping={"fraction": 0.5})
        with pytest.raises(ValueError, match="seed"):
            ScenarioSpec(dynamics="voter", n=10, k=2, seed=1.5)

    def test_unknown_names_rejected_at_resolve(self):
        with pytest.raises(KeyError, match="unknown dynamics"):
            ScenarioSpec(dynamics="4-majority", n=10, k=2).validate()
        with pytest.raises(KeyError, match="unknown workload"):
            ScenarioSpec(dynamics="voter", initial="nope", n=10, k=2).validate()
        with pytest.raises(KeyError, match="unknown adversary"):
            ScenarioSpec(dynamics="voter", n=10, k=2, adversary="sneaky").validate()
        with pytest.raises(KeyError, match="unknown stopping rule"):
            ScenarioSpec(dynamics="voter", n=10, k=2, stopping={"rule": "nope"}).validate()

    def test_bad_params_rejected_at_resolve(self):
        with pytest.raises(ValueError, match="invalid parameters for dynamics"):
            ScenarioSpec(dynamics="voter", n=10, k=2, dynamics_params={"h": 3}).validate()
        with pytest.raises(ValueError, match="invalid parameters for workload"):
            ScenarioSpec(
                dynamics="voter", initial="biased", n=10, k=2, initial_params={"bais": 3}
            ).validate()

    def test_workload_shape_mismatch_rejected(self):
        # lemma8 builds 3 colors; asking for k=4 must fail loudly.
        with pytest.raises(ValueError, match="lemma8"):
            ScenarioSpec(dynamics="voter", initial="lemma8", n=12, k=4).validate()


class TestFacadeBitIdentity:
    def test_simulate_matches_run_process(self):
        spec = ScenarioSpec(
            dynamics="3-majority", initial="paper-biased", n=20_000, k=5, seed=11,
            record=["counts"],
        )
        facade = simulate(spec)
        direct = run_process(
            ThreeMajority(), paper_biased(20_000, 5), rng=11, record=["counts"]
        )
        assert facade.rounds == direct.rounds
        assert facade.winner == direct.winner
        assert facade.trace == direct.trace

    def test_simulate_ensemble_matches_run_ensemble(self):
        spec = ScenarioSpec(
            dynamics="h-plurality",
            dynamics_params={"h": 4},
            initial="paper-biased",
            n=10_000,
            k=4,
            replicas=8,
            max_rounds=2_000,
            seed=23,
        )
        facade = simulate_ensemble(spec)
        direct = run_ensemble(
            HPlurality(4), paper_biased(10_000, 4), 8, max_rounds=2_000, rng=23
        )
        assert np.array_equal(facade.rounds, direct.rounds)
        assert np.array_equal(facade.winners, direct.winners)
        assert np.array_equal(facade.final_counts, direct.final_counts)

    def test_adversary_scenario_matches_direct(self):
        spec = ScenarioSpec(
            dynamics="3-majority",
            initial="paper-biased",
            n=10_000,
            k=4,
            adversary="targeted",
            adversary_params={"budget": 20},
            replicas=6,
            max_rounds=2_000,
            seed=4,
        )
        facade = simulate_ensemble(spec)
        direct = run_ensemble(
            ThreeMajority(),
            paper_biased(10_000, 4),
            6,
            max_rounds=2_000,
            adversary=TargetedAdversary(20),
            rng=4,
        )
        assert np.array_equal(facade.rounds, direct.rounds)
        assert np.array_equal(facade.winners, direct.winners)

    def test_rng_override_beats_spec_seed(self):
        spec = ScenarioSpec(dynamics="3-majority", initial="paper-biased", n=5_000, k=3, seed=0)
        a = simulate(spec, rng=99)
        b = run_process(ThreeMajority(), paper_biased(5_000, 3), rng=99)
        assert a.rounds == b.rounds


class TestSweepSpecBuilds:
    POINTS = [{"n": 4_000, "k": 3}, {"n": 6_000, "k": 4}]

    def test_spec_build_matches_classic_build(self):
        classic = sweep(
            self.POINTS,
            lambda p: (ThreeMajority(), paper_biased(p["n"], p["k"])),
            replicas=4,
            max_rounds=1_000,
            seed=0,
            experiment_id="TST",
        )
        declarative = sweep(
            self.POINTS,
            lambda p: ScenarioSpec(
                dynamics="3-majority", initial="paper-biased", n=p["n"], k=p["k"]
            ),
            replicas=4,
            max_rounds=1_000,
            seed=0,
            experiment_id="TST",
        )
        for a, b in zip(classic, declarative):
            assert np.array_equal(a.ensemble.rounds, b.ensemble.rounds)
            assert np.array_equal(a.ensemble.winners, b.ensemble.winners)

    def test_spec_build_rejects_adversary_for(self):
        with pytest.raises(ValueError, match="adversary_for"):
            sweep(
                self.POINTS[:1],
                lambda p: ScenarioSpec(
                    dynamics="3-majority", initial="paper-biased", n=p["n"], k=p["k"]
                ),
                replicas=2,
                max_rounds=100,
                seed=0,
                experiment_id="TST",
                adversary_for=lambda p: TargetedAdversary(1),
            )


class TestEveryDynamicsSimulates:
    @pytest.mark.parametrize("name", sorted(DYNAMICS_EXAMPLES))
    def test_scenario_runs_by_name(self, name):
        spec = ScenarioSpec(
            dynamics=name,
            dynamics_params=DYNAMICS_EXAMPLES[name],
            initial="biased",
            initial_params={"bias": 60},
            n=300,
            k=3,
            max_rounds=50,
            seed=0,
        )
        res = simulate(spec)
        assert res.stopped_by in ("monochromatic", "max-rounds")
        assert int(res.final_counts.sum()) <= 300  # colored mass (undecided excluded)


class TestEngineField:
    """The ``engine`` field: validation, identity discipline, facade wiring."""

    def test_defaults_to_auto_and_stays_out_of_canonical_json(self):
        spec = ScenarioSpec(dynamics="voter", n=100, k=2)
        assert spec.engine == "auto"
        assert "engine" not in spec.canonical_json()
        assert "engine" not in spec.to_dict()

    def test_explicit_engine_round_trips_and_changes_identity(self):
        for engine in ("dense", "sparse"):
            spec = ScenarioSpec(dynamics="voter", n=100, k=2, engine=engine)
            assert ScenarioSpec.from_json(spec.to_json()) == spec
            assert f'"engine":"{engine}"' in spec.canonical_json()
        auto = ScenarioSpec(dynamics="voter", n=100, k=2)
        dense = ScenarioSpec(dynamics="voter", n=100, k=2, engine="dense")
        assert auto.canonical_json() != dense.canonical_json()
        assert hash(auto) != hash(dense)

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="engine must be one of"):
            ScenarioSpec(dynamics="voter", n=100, k=2, engine="fast")

    def test_facade_dense_engine_is_bit_identical_to_direct(self):
        spec = ScenarioSpec(
            dynamics="3-majority", initial="paper-biased", n=8_000, k=4,
            replicas=5, max_rounds=2_000, seed=4, engine="dense",
        )
        facade = simulate_ensemble(spec)
        direct = run_ensemble(
            ThreeMajority(), paper_biased(8_000, 4), 5, max_rounds=2_000, rng=4,
            engine="dense",
        )
        assert np.array_equal(facade.rounds, direct.rounds)
        assert np.array_equal(facade.final_counts, direct.final_counts)

    def test_facade_sparse_engine_runs_large_k(self):
        spec = ScenarioSpec(
            dynamics="3-majority", initial="balanced", n=2_000, k=512,
            replicas=4, max_rounds=5_000, seed=1, engine="sparse",
            stopping={"rule": "plurality-fraction", "fraction": 0.5},
        )
        ens = simulate_ensemble(spec)
        assert ens.final_counts.shape == (4, 512)
        assert (ens.final_counts.sum(axis=1) == 2_000).all()

    def test_facade_sparse_with_ineligible_scenario_raises(self):
        spec = ScenarioSpec(
            dynamics="3-majority", initial="balanced", n=1_000, k=64,
            replicas=2, seed=0, engine="sparse",
            adversary="targeted", adversary_params={"budget": 2},
        )
        with pytest.raises(ValueError, match="support-preserving"):
            simulate_ensemble(spec)


class TestRecordField:
    """The ``record`` field: normalization, round-trips, strictness, facades."""

    def test_list_shorthand_normalised_to_dict(self):
        spec = ScenarioSpec(dynamics="voter", n=100, k=2, record=["bias", "entropy"])
        assert spec.record == {"metrics": ["bias", "entropy"], "every": 1}

    def test_recordspec_instance_normalised(self):
        from repro import RecordSpec

        spec = ScenarioSpec(
            dynamics="voter", n=100, k=2, record=RecordSpec(("counts",), every=3)
        )
        assert spec.record == {"metrics": ["counts"], "every": 3}

    def test_record_round_trips_and_changes_identity(self):
        spec = ScenarioSpec(dynamics="voter", n=100, k=2, record=["bias"])
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert '"record"' in spec.canonical_json()
        bare = ScenarioSpec(dynamics="voter", n=100, k=2)
        assert spec.canonical_json() != bare.canonical_json()
        assert hash(spec) != hash(bare)

    def test_bad_record_rejected(self):
        with pytest.raises(ValueError, match="unknown record keys"):
            ScenarioSpec(dynamics="voter", n=100, k=2, record={"metrics": [], "evry": 2})
        with pytest.raises(ValueError, match="every"):
            ScenarioSpec(dynamics="voter", n=100, k=2, record={"metrics": ["bias"], "every": 0})
        with pytest.raises(ValueError, match="duplicates"):
            ScenarioSpec(dynamics="voter", n=100, k=2, record=["bias", "bias"])

    def test_unknown_metric_rejected_at_resolve(self):
        with pytest.raises(KeyError, match="unknown metric"):
            ScenarioSpec(dynamics="voter", n=100, k=2, record=["nope"]).validate()

    def test_every_registered_metric_reachable_via_record(self):
        from repro import METRICS

        for name in METRICS.names():
            spec = ScenarioSpec(
                dynamics="3-majority",
                initial="paper-biased",
                n=2_000,
                k=3,
                replicas=3,
                max_rounds=50,
                seed=7,
                record=[name],
            )
            ens = simulate_ensemble(spec)
            assert ens.trace is not None and name in ens.trace, name

    def test_facade_trace_matches_direct_run_ensemble(self):
        spec = ScenarioSpec(
            dynamics="3-majority",
            initial="paper-biased",
            n=10_000,
            k=4,
            replicas=6,
            max_rounds=2_000,
            seed=5,
            record={"metrics": ["bias", "counts"], "every": 2},
        )
        facade = simulate_ensemble(spec)
        direct = run_ensemble(
            ThreeMajority(),
            paper_biased(10_000, 4),
            6,
            max_rounds=2_000,
            record={"metrics": ["bias", "counts"], "every": 2},
            rng=5,
        )
        assert facade.trace == direct.trace
        assert np.array_equal(facade.rounds, direct.rounds)

    def test_recording_never_perturbs_the_run(self):
        spec = ScenarioSpec(
            dynamics="3-majority", initial="paper-biased", n=8_000, k=4,
            replicas=5, max_rounds=2_000, seed=3,
        )
        bare = simulate_ensemble(spec)
        recorded = simulate_ensemble(spec.with_overrides(record=["entropy", "counts"]))
        assert np.array_equal(bare.rounds, recorded.rounds)
        assert np.array_equal(bare.winners, recorded.winners)
        assert np.array_equal(bare.final_counts, recorded.final_counts)


class TestTopologyField:
    """ScenarioSpec.topology: round-trip, validation, cache-key discipline."""

    def _graph_spec(self, **overrides) -> ScenarioSpec:
        fields = dict(
            dynamics="3-majority",
            initial="biased",
            initial_params={"bias": 10},
            n=120,
            k=3,
            topology="torus",
            topology_params={"rows": 10, "cols": 12},
            replicas=4,
            max_rounds=2_000,
            seed=9,
            record=["counts", "bias"],
        )
        fields.update(overrides)
        return ScenarioSpec(**fields)

    def test_round_trips_strictly(self):
        spec = self._graph_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert "topology" in spec.to_dict()
        assert spec.to_dict()["topology_params"] == {"rows": 10, "cols": 12}

    def test_clique_specs_emit_no_topology_keys(self):
        # Cache-preservation contract: a spec without a topology must
        # produce byte-identical canonical JSON to the pre-topology era.
        spec = ScenarioSpec(dynamics="voter", n=100, k=2, seed=1)
        payload = spec.to_dict()
        assert "topology" not in payload
        assert "topology_params" not in payload

    def test_topology_changes_cache_key(self):
        from repro.serve.cache import cache_key

        base = ScenarioSpec(dynamics="3-majority", n=120, k=3, replicas=4, seed=9)
        keys = {
            cache_key(base),
            cache_key(base.with_overrides(topology="clique")),
            cache_key(base.with_overrides(topology="cycle")),
            cache_key(
                base.with_overrides(topology="torus", topology_params={"rows": 10, "cols": 12})
            ),
        }
        assert len(keys) == 4  # all distinct, counts-engine key untouched

    def test_params_without_topology_rejected(self):
        with pytest.raises(ValueError, match="topology_params"):
            ScenarioSpec(dynamics="voter", n=10, k=2, topology_params={"rows": 2})

    def test_engine_clash_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            ScenarioSpec(dynamics="voter", n=10, k=2, topology="cycle", engine="sparse")

    def test_adversary_clash_rejected_at_resolve(self):
        with pytest.raises(ValueError, match="adversar"):
            self._graph_spec(
                adversary="targeted", adversary_params={"budget": 3}
            ).validate()

    def test_unknown_topology_rejected_at_resolve(self):
        with pytest.raises(KeyError, match="unknown topology"):
            self._graph_spec(topology="moebius", topology_params={}).validate()

    def test_bad_topology_params_rejected_at_resolve(self):
        with pytest.raises(ValueError, match="torus"):
            self._graph_spec(topology_params={"rows": 7, "cols": 7}).validate()

    def test_ineligible_dynamics_rejected_at_resolve(self):
        with pytest.raises(ValueError, match="unavailable"):
            self._graph_spec(dynamics="undecided-state", topology="cycle",
                             topology_params={}).validate()

    def test_registries_lists_topologies(self):
        names = ScenarioSpec.registries()["topologies"]
        for expected in ("clique", "cycle", "torus", "random-regular",
                         "erdos-renyi", "complete-bipartite", "barbell"):
            assert expected in names

    def test_simulate_ensemble_batched_equals_sequential(self):
        spec = self._graph_spec()
        batched = simulate_ensemble(spec)
        sequential = simulate_ensemble(spec, batch=False)
        assert np.array_equal(batched.rounds, sequential.rounds)
        assert np.array_equal(batched.winners, sequential.winners)
        assert np.array_equal(batched.final_counts, sequential.final_counts)
        assert batched.trace.digest() == sequential.trace.digest()

    def test_simulate_single_trajectory(self):
        res = simulate(self._graph_spec(replicas=1))
        assert res.trace is not None
        assert set(res.trace.metrics) == {"counts", "bias"}
        series = res.trace.replica(0, "counts")
        assert (series.sum(axis=1) == 120).all()
