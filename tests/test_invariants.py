"""Cross-dynamics invariants: one property suite over the whole zoo.

These are the laws every implementation must satisfy regardless of its
engine (counts-level exact vs agent-level), and the symmetry facts the
paper's arguments lean on:

* mass conservation and non-negativity of every step;
* monochromatic configurations are absorbing for every dynamics
  (the paper notes this for all h-dynamics in Definition 5's discussion);
* stateless rules never resurrect extinct colors;
* color-permutation equivariance for the *anonymous symmetric* rules
  (3-majority, h-plurality, voter, two-choices, undecided-state) — and
  its deliberate failure for the order-dependent rules (median, min/max),
  which is precisely why they break plurality consensus (Theorem 3).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    HPlurality,
    MedianDynamics,
    ThreeMajority,
    TwoChoices,
    TwoSampleUniform,
    UndecidedState,
    Voter,
    first_rule,
    majority_rule,
    max_rule,
    median_rule,
    min_rule,
    skewed_rule,
)

# Stateless dynamics operating on plain k-color count vectors.
STATELESS = [
    ThreeMajority(),
    ThreeMajority(agent_level=True),
    HPlurality(1),
    HPlurality(4),
    HPlurality(7),
    Voter(),
    TwoChoices(),
    TwoSampleUniform(),
    MedianDynamics(),
    majority_rule(),
    median_rule(),
    min_rule(),
    max_rule(),
    first_rule(),
    skewed_rule(),
]

IDS = [d.name + ("/agent" if getattr(d, "agent_level", False) else "") for d in STATELESS]

counts_strategy = st.lists(st.integers(min_value=0, max_value=80), min_size=2, max_size=6).filter(
    lambda xs: sum(xs) > 0
)


@pytest.mark.parametrize("dynamics", STATELESS, ids=IDS)
class TestUniversalInvariants:
    @settings(max_examples=20)
    @given(counts=counts_strategy, seed=st.integers(min_value=0, max_value=2**31))
    def test_mass_and_nonnegativity(self, dynamics, counts, seed):
        rng = np.random.default_rng(seed)
        c = np.array(counts)
        out = dynamics.step(c, rng)
        assert out.sum() == c.sum()
        assert (out >= 0).all()

    def test_monochromatic_absorbing(self, dynamics, rng):
        c = np.array([0, 37, 0, 0])
        out = dynamics.step(c, rng)
        assert out.tolist() == c.tolist()

    @settings(max_examples=15)
    @given(counts=counts_strategy, seed=st.integers(min_value=0, max_value=2**31))
    def test_no_resurrection(self, dynamics, counts, seed):
        rng = np.random.default_rng(seed)
        c = np.array(counts)
        out = dynamics.step(c, rng)
        assert (out[c == 0] == 0).all()


SYMMETRIC_WITH_LAW = [ThreeMajority(), Voter(), TwoSampleUniform(), TwoChoices()]


@pytest.mark.parametrize("dynamics", SYMMETRIC_WITH_LAW, ids=lambda d: d.name)
class TestPermutationEquivariance:
    @settings(max_examples=20)
    @given(counts=counts_strategy)
    def test_law_equivariant(self, dynamics, counts):
        c = np.array(counts)
        perm = np.arange(c.size)[::-1].copy()
        law = dynamics.color_law(c)
        law_perm = dynamics.color_law(c[perm])
        assert np.allclose(law_perm, law[perm], atol=1e-12)


class TestOrderDependence:
    """Median/min/max are *not* color-equivariant — the Theorem 3 story."""

    def test_median_law_breaks_under_permutation(self):
        # NB: the median IS equivariant under order *reversal* (the median
        # of a reversed order is unchanged), so use a transposition that
        # changes which color sits in the middle of the value order.
        c = np.array([50, 30, 20])
        perm = np.array([1, 0, 2])
        law = MedianDynamics().color_law(c)
        law_perm = MedianDynamics().color_law(c[perm])
        assert not np.allclose(law_perm, law[perm])

    def test_min_rule_breaks_under_permutation(self):
        c = np.array([40, 35, 25])
        perm = np.array([2, 1, 0])
        law = min_rule().color_law(c)
        law_perm = min_rule().color_law(c[perm])
        assert not np.allclose(law_perm, law[perm])

    def test_three_majority_is_equivariant_on_same_input(self):
        c = np.array([40, 35, 25])
        perm = np.array([2, 0, 1])
        law = ThreeMajority().color_law(c)
        assert np.allclose(ThreeMajority().color_law(c[perm]), law[perm])


class TestUndecidedInvariants:
    @settings(max_examples=20)
    @given(
        state=st.lists(st.integers(min_value=0, max_value=60), min_size=3, max_size=6).filter(
            lambda xs: sum(xs) > 0
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_mass_and_support(self, state, seed):
        rng = np.random.default_rng(seed)
        s = np.array(state)
        out = UndecidedState().step(s, rng)
        assert out.sum() == s.sum()
        assert (out >= 0).all()
        assert (out[:-1][s[:-1] == 0] == 0).all()

    def test_color_permutation_equivariance(self, rng_factory):
        # Permuting the *color* slots (not the undecided slot) commutes
        # with the transition law.
        s = np.array([20, 30, 10, 5])  # 3 colors + undecided
        perm = np.array([2, 0, 1])
        dyn = UndecidedState()
        mat = dyn.class_transition_matrix(s)
        s_perm = np.concatenate([s[:-1][perm], s[-1:]])
        mat_perm = dyn.class_transition_matrix(s_perm)
        full_perm = np.concatenate([perm, [3]])
        assert np.allclose(mat_perm, mat[np.ix_(full_perm, full_perm)])


class TestBiasedConfigurationsDriftCorrectly:
    """End-to-end sanity across the zoo: with overwhelming bias, every
    *plurality-respecting* rule wins, and each deviant rule loses in its
    own predicted direction."""

    @pytest.mark.parametrize(
        "dynamics,expected_winner",
        [
            (ThreeMajority(), 1),
            (HPlurality(5), 1),
            (TwoChoices(), 1),
            (majority_rule(), 1),
            (min_rule(), 0),  # attracted to the lowest index
            (max_rule(), 2),  # attracted to the highest index
        ],
        ids=["3maj", "5plur", "2choices", "d3-majority", "min", "max"],
    )
    def test_winner_direction(self, dynamics, expected_winner):
        from repro import Configuration, run_process

        cfg = Configuration([1_500, 7_000, 1_500])
        res = run_process(dynamics, cfg, rng=3, max_rounds=20_000)
        assert res.converged
        assert res.winner == expected_winner, dynamics.name
