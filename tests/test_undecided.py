"""Tests for the undecided-state dynamics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Configuration, UndecidedState, run_process


class TestStateHelpers:
    def test_extend_and_views(self):
        state = UndecidedState.extend_counts(np.array([3, 2]), undecided=5)
        assert state.tolist() == [3, 2, 5]
        assert UndecidedState.colored_view(state).tolist() == [3, 2]
        assert UndecidedState.undecided_count(state) == 5

    def test_extend_rejects_negative(self):
        with pytest.raises(ValueError):
            UndecidedState.extend_counts(np.array([1]), undecided=-1)


class TestTransitions:
    def test_class_matrix_rows_are_distributions(self):
        mat = UndecidedState().class_transition_matrix(np.array([3, 2, 5]))
        assert np.allclose(mat.sum(axis=1), 1.0)
        assert (mat >= 0).all()

    def test_class_matrix_hand_case(self):
        # state (c0, c1, q) = (4, 4, 2), n = 10.
        # Colored-0 survives w.p. (4 + 2)/10 = 0.6, else undecided.
        # Undecided adopts 0 w.p. 0.4, 1 w.p. 0.4, stays w.p. 0.2.
        mat = UndecidedState().class_transition_matrix(np.array([4, 4, 2]))
        assert mat[0, 0] == pytest.approx(0.6)
        assert mat[0, 2] == pytest.approx(0.4)
        assert mat[2].tolist() == pytest.approx([0.4, 0.4, 0.2])

    def test_step_conserves_mass(self, rng):
        state = np.array([30, 20, 10])
        out = UndecidedState().step(state, rng)
        assert out.sum() == 60
        assert out.size == 3

    def test_step_requires_state_vector(self, rng):
        with pytest.raises(ValueError):
            UndecidedState().step(np.array([5]), rng)

    def test_all_undecided_is_absorbing(self, rng):
        out = UndecidedState().step(np.array([0, 0, 25]), rng)
        assert out.tolist() == [0, 0, 25]

    def test_monochromatic_is_absorbing(self, rng):
        out = UndecidedState().step(np.array([25, 0, 0]), rng)
        assert out.tolist() == [25, 0, 0]

    def test_expected_undecided_creation(self, rng):
        # From (50, 50, 0): each colored agent goes undecided w.p. 1/2, so
        # E[new undecided] = 50.
        reps = 2000
        acc = 0
        dyn = UndecidedState()
        for _ in range(reps):
            acc += dyn.step(np.array([50, 50, 0]), rng)[-1]
        assert abs(acc / reps - 50) < 3 * np.sqrt(100 * 0.25 / reps) * 10

    @given(
        st.lists(st.integers(min_value=0, max_value=60), min_size=3, max_size=6).filter(
            lambda xs: sum(xs) > 0
        )
    )
    def test_mass_conservation_property(self, state):
        rng = np.random.default_rng(5)
        state = np.array(state)
        out = UndecidedState().step(state, rng)
        assert out.sum() == state.sum()
        assert (out >= 0).all()
        # extinct colors stay extinct unless revived by... nothing: colored
        # mass only shrinks per color, undecided can only adopt supported
        # colors.
        colored = state[:-1]
        assert (out[:-1][colored == 0] == 0).all()


class TestEndToEnd:
    def test_converges_with_bias(self, rng):
        cfg = Configuration.biased(5_000, 4, 800)
        res = run_process(UndecidedState(), cfg, rng=rng, max_rounds=10_000)
        assert res.converged
        assert res.plurality_won

    def test_process_runner_extends_state(self, rng):
        # run_process must accept plain k-color configurations.
        cfg = Configuration([900, 100])
        res = run_process(UndecidedState(), cfg, rng=rng, max_rounds=10_000)
        assert res.converged
        assert res.final_counts.size == 2  # colored slots only

    def test_fast_on_low_md_configuration(self, rng):
        # md(c) small => very fast even though absolute bias is small.
        counts = np.concatenate([[400, 380], np.ones(220, dtype=np.int64)])
        cfg = Configuration(counts)
        res = run_process(UndecidedState(), cfg, rng=rng, max_rounds=10_000)
        assert res.converged
        assert res.rounds < 200
