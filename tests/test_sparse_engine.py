"""The active-support sparse ensemble engine (``run_ensemble(engine="sparse")``).

Dense and sparse runs consume randomness differently, so equality is
checked at the *semantic* level here (results live in the dense-``k``
contract regardless of layout; winners, masses, labels and traces are
internally consistent) and at the *distribution* level in
``tests/test_counts_engines.py``'s chi-square/TV cross-validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BalancingAdversary,
    Configuration,
    HPlurality,
    RandomAdversary,
    ReviveAdversary,
    RoundBudgetStop,
    TargetedAdversary,
    ThreeMajority,
    UndecidedState,
    Voter,
    majority_rule,
    run_ensemble,
    sparse_ineligibility,
)
from repro.core.metrics import METRICS
from repro.core.process import _SPARSE_AUTO_MIN_K
from repro.core.stopping import AnyOfStop, BiasThresholdStop, PluralityFractionStop


def _sparse_config(k: int = 4096, supported=(7, 900, 4000), masses=(600, 300, 100)):
    counts = np.zeros(k, dtype=np.int64)
    counts[list(supported)] = masses
    return Configuration(counts)


class TestEligibility:
    def test_all_builtin_colour_dynamics_eligible(self):
        for dynamics in (ThreeMajority(), ThreeMajority(engine="agent"), HPlurality(4),
                         HPlurality(6), Voter(), majority_rule()):
            assert sparse_ineligibility(dynamics) is None, dynamics.name

    def test_extra_state_dynamics_rejected(self):
        # Caught by the opt-in support_closed default; even a variant that
        # opted in would still be rejected for its extra non-color slot.
        reason = sparse_ineligibility(UndecidedState())
        assert reason is not None and "support-closed" in reason

        class OptedIn(UndecidedState):
            support_closed = True

        reason = sparse_ineligibility(OptedIn())
        assert reason is not None and "extra" in reason
        with pytest.raises(ValueError, match="sparse.*unavailable"):
            run_ensemble(UndecidedState(), _sparse_config(), 2, rng=0, engine="sparse")

    def test_non_support_closed_dynamics_rejected(self):
        class Reviver(ThreeMajority):
            support_closed = False

        assert "support-closed" in sparse_ineligibility(Reviver())
        with pytest.raises(ValueError, match="support-closed"):
            run_ensemble(Reviver(), _sparse_config(), 2, rng=0, engine="sparse")

    @pytest.mark.parametrize("adv_cls", [TargetedAdversary, RandomAdversary, ReviveAdversary])
    def test_reviving_adversaries_rejected(self, adv_cls):
        assert "support-preserving" in sparse_ineligibility(ThreeMajority(), adv_cls(3))
        with pytest.raises(ValueError, match="support-preserving"):
            run_ensemble(
                ThreeMajority(), _sparse_config(), 2, rng=0, engine="sparse",
                adversary=adv_cls(3),
            )

    def test_balancing_adversary_allowed(self):
        assert sparse_ineligibility(ThreeMajority(), BalancingAdversary(3)) is None
        ens = run_ensemble(
            ThreeMajority(), _sparse_config(), 4, rng=0, engine="sparse",
            adversary=BalancingAdversary(3), max_rounds=50,
        )
        assert (ens.final_counts.sum(axis=1) == 1000).all()

    def test_builtin_stopping_rules_allowed(self):
        rule = AnyOfStop([PluralityFractionStop(0.9), BiasThresholdStop(10),
                          RoundBudgetStop(500)])
        assert sparse_ineligibility(ThreeMajority(), None, rule) is None

    def test_third_party_stopping_rejected(self):
        class Custom(RoundBudgetStop):
            @property
            def sparse_invariant(self):
                return False

        reason = sparse_ineligibility(ThreeMajority(), None, Custom(5))
        assert reason is not None and "sparse-invariant" in reason

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown ensemble engine"):
            run_ensemble(ThreeMajority(), _sparse_config(), 2, rng=0, engine="fast")

    def test_sparse_needs_batched_path(self):
        with pytest.raises(ValueError, match="batch=True"):
            run_ensemble(
                ThreeMajority(), _sparse_config(), 2, rng=0, engine="sparse", batch=False
            )


class TestAutoSelection:
    def test_auto_threshold_covers_existing_workloads(self):
        # Every in-repo workload runs at k <= 100; auto must stay dense
        # (bit-stable with previous releases) below the threshold.
        assert _SPARSE_AUTO_MIN_K > 100

    def test_auto_below_threshold_is_dense_bit_identical(self):
        cfg = Configuration([600, 300, 100])
        auto = run_ensemble(ThreeMajority(), cfg, 16, rng=9)
        dense = run_ensemble(ThreeMajority(), cfg, 16, rng=9, engine="dense")
        assert np.array_equal(auto.rounds, dense.rounds)
        assert np.array_equal(auto.winners, dense.winners)
        assert np.array_equal(auto.final_counts, dense.final_counts)

    def test_auto_above_threshold_ineligible_falls_back_to_dense(self):
        # Targeted adversary forces dense even at large k: bit-identical
        # to an explicit engine="dense" run at equal seed.
        cfg = _sparse_config(k=256, supported=(0, 100, 255), masses=(600, 300, 100))
        auto = run_ensemble(
            ThreeMajority(), cfg, 4, rng=3, adversary=TargetedAdversary(2), max_rounds=30
        )
        dense = run_ensemble(
            ThreeMajority(), cfg, 4, rng=3, adversary=TargetedAdversary(2), max_rounds=30,
            engine="dense",
        )
        assert np.array_equal(auto.final_counts, dense.final_counts)

    def test_auto_above_threshold_upgrades_to_sparse(self):
        # Sparse and dense consume randomness differently; at equal seed an
        # upgraded auto run must match the explicit sparse run bit for bit
        # and (overwhelmingly) differ from the dense one.
        cfg = _sparse_config()
        auto = run_ensemble(ThreeMajority(), cfg, 8, rng=5, max_rounds=200)
        sparse = run_ensemble(ThreeMajority(), cfg, 8, rng=5, max_rounds=200, engine="sparse")
        dense = run_ensemble(ThreeMajority(), cfg, 8, rng=5, max_rounds=200, engine="dense")
        assert np.array_equal(auto.rounds, sparse.rounds)
        assert np.array_equal(auto.final_counts, sparse.final_counts)
        # All replicas absorb on the plurality either way; the per-replica
        # round counts expose the different randomness consumption.
        assert not np.array_equal(dense.rounds, sparse.rounds)


class TestSparseSemantics:
    def test_results_live_in_dense_k(self):
        cfg = _sparse_config()
        ens = run_ensemble(ThreeMajority(), cfg, 32, rng=0, engine="sparse", max_rounds=2_000)
        assert ens.final_counts.shape == (32, 4096)
        assert (ens.final_counts.sum(axis=1) == 1000).all()
        assert ens.convergence_rate == 1.0
        # Winners map back through the support to original color indices.
        assert set(np.unique(ens.winners)) <= {7, 900, 4000}
        assert ens.plurality_color == 7
        # Colors outside the initial support stay extinct everywhere.
        dead = np.ones(4096, dtype=bool)
        dead[[7, 900, 4000]] = False
        assert ens.final_counts[:, dead].sum() == 0

    def test_monochromatic_rows_scatter_correctly(self):
        ens = run_ensemble(ThreeMajority(), _sparse_config(), 16, rng=1, engine="sparse")
        assert ens.convergence_rate == 1.0
        rows = np.arange(16)
        assert (ens.final_counts[rows, ens.winners] == 1000).all()
        assert (ens.stopped_by == "monochromatic").all()

    def test_stopping_rules_fire_on_compacted_counts(self):
        ens = run_ensemble(
            ThreeMajority(), _sparse_config(), 16, rng=2, engine="sparse",
            stopping=PluralityFractionStop(0.9), max_rounds=2_000,
        )
        reasons = ens.stop_reasons()
        assert set(reasons) <= {"plurality-fraction", "monochromatic"}
        assert reasons.get("plurality-fraction", 0) > 0
        stopped = ens.stopped_by == "plurality-fraction"
        assert (ens.final_counts[stopped].max(axis=1) >= 900).all()

    def test_t0_stopping_mirrors_dense(self):
        cfg = _sparse_config(masses=(950, 30, 20))
        for engine in ("dense", "sparse"):
            ens = run_ensemble(
                ThreeMajority(), cfg, 4, rng=0, engine=engine,
                stopping=PluralityFractionStop(0.9),
            )
            assert (ens.rounds == 0).all(), engine
            assert (ens.stopped_by == "plurality-fraction").all(), engine
            assert np.array_equal(ens.final_counts, np.tile(cfg.counts, (4, 1))), engine

    def test_max_rounds_budget_label(self):
        ens = run_ensemble(
            Voter(), _sparse_config(k=200, supported=(0, 199), masses=(500, 500)),
            8, rng=0, engine="sparse", max_rounds=3,
        )
        assert set(ens.stop_reasons()) <= {"max-rounds", "monochromatic"}
        assert (ens.final_counts.sum(axis=1) == 1000).all()

    def test_recompaction_shrinks_working_set_without_changing_results(self):
        # A run long enough for colors to die exercises the hysteresis
        # path; the invariant is simply that outputs stay in dense k with
        # conserved mass and valid winners.
        cfg = _sparse_config(k=512, supported=tuple(range(0, 512, 16)),
                             masses=tuple(range(10, 42)))
        ens = run_ensemble(ThreeMajority(), cfg, 24, rng=4, engine="sparse", max_rounds=5_000)
        assert ens.convergence_rate == 1.0
        assert (ens.final_counts.sum(axis=1) == int(cfg.counts.sum())).all()
        assert set(np.unique(ens.winners)) <= set(range(0, 512, 16))

    def test_hplurality_auto_law_reactivates_on_compacted_width(self):
        # At k = 4096 the h = 5 composition table is impossibly large, so
        # dense auto steps agent-level; compacted to s = 3 the exact
        # counts law comes back.  Both must run; sparse must agree with a
        # small dense-k control in distribution (checked elsewhere) — here
        # we assert the engine resolution itself.
        dyn = HPlurality(5)
        assert dyn.resolved_engine(4096) == "agent"
        assert dyn.resolved_engine(3) == "counts"
        ens = run_ensemble(dyn, _sparse_config(), 8, rng=6, engine="sparse", max_rounds=2_000)
        assert ens.convergence_rate == 1.0


class TestSparseTraces:
    def test_scalar_metrics_match_recomputation_from_counts(self):
        record = ["bias", "plurality-count", "plurality-fraction", "support-size",
                  "entropy", "tv-monochromatic", "counts"]
        ens = run_ensemble(
            ThreeMajority(), _sparse_config(), 8, rng=2, engine="sparse",
            record=record, max_rounds=2_000,
        )
        trace = ens.trace
        assert trace is not None and trace["counts"].shape[2] == 4096
        for name in record[:-1]:
            metric = METRICS.build(name)
            for replica in range(8):
                valid = int(trace.n_recorded[replica])
                recomputed = metric.compute_many(trace["counts"][replica, :valid], 1000)
                np.testing.assert_array_equal(
                    recomputed, trace.replica(replica, name), err_msg=name
                )

    def test_counts_trace_conserves_mass_and_support(self):
        ens = run_ensemble(
            ThreeMajority(), _sparse_config(), 6, rng=3, engine="sparse",
            record=["counts"], max_rounds=2_000,
        )
        trace = ens.trace
        mask = trace.valid_mask()
        sums = trace["counts"].sum(axis=2)
        assert (sums[mask] == 1000).all()
        assert (sums[~mask] == 0).all()  # zero padding past each stop
        dead = np.ones(4096, dtype=bool)
        dead[[7, 900, 4000]] = False
        assert trace["counts"][:, :, dead].sum() == 0

    def test_non_invariant_metric_sees_dense_counts(self):
        from repro.core.metrics import Metric

        class WidthMetric(Metric):
            """Deliberately support-dependent: records the counts width."""

            name = "width"
            dtype = np.int64
            sparse_invariant = False  # must be fed dense-k counts

            def compute_many(self, counts, n):
                counts = np.asarray(counts)
                return np.full(counts.shape[0], counts.shape[1], dtype=np.int64)

        METRICS.register("width")(WidthMetric)
        try:
            ens = run_ensemble(
                ThreeMajority(), _sparse_config(), 4, rng=0, engine="sparse",
                record=["width"], max_rounds=50,
            )
            trace = ens.trace
            assert (trace["width"][trace.valid_mask()] == 4096).all()
        finally:
            METRICS._entries.pop("width", None)
